/root/repo/target/debug/examples/variant_calling-ed5cea49086dcec7.d: crates/gendp/../../examples/variant_calling.rs

/root/repo/target/debug/examples/variant_calling-ed5cea49086dcec7: crates/gendp/../../examples/variant_calling.rs

crates/gendp/../../examples/variant_calling.rs:
