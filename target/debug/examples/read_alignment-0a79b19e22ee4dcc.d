/root/repo/target/debug/examples/read_alignment-0a79b19e22ee4dcc.d: crates/gendp/../../examples/read_alignment.rs

/root/repo/target/debug/examples/read_alignment-0a79b19e22ee4dcc: crates/gendp/../../examples/read_alignment.rs

crates/gendp/../../examples/read_alignment.rs:
