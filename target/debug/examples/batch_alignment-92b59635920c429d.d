/root/repo/target/debug/examples/batch_alignment-92b59635920c429d.d: crates/gendp/../../examples/batch_alignment.rs

/root/repo/target/debug/examples/batch_alignment-92b59635920c429d: crates/gendp/../../examples/batch_alignment.rs

crates/gendp/../../examples/batch_alignment.rs:
