/root/repo/target/debug/examples/quickstart-4b50d5ab41936247.d: crates/gendp/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4b50d5ab41936247: crates/gendp/../../examples/quickstart.rs

crates/gendp/../../examples/quickstart.rs:
