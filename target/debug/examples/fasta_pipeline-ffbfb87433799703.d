/root/repo/target/debug/examples/fasta_pipeline-ffbfb87433799703.d: crates/gendp/../../examples/fasta_pipeline.rs Cargo.toml

/root/repo/target/debug/examples/libfasta_pipeline-ffbfb87433799703.rmeta: crates/gendp/../../examples/fasta_pipeline.rs Cargo.toml

crates/gendp/../../examples/fasta_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
