/root/repo/target/debug/examples/variant_calling-f4ecc14e0dcdbdbf.d: crates/gendp/../../examples/variant_calling.rs

/root/repo/target/debug/examples/variant_calling-f4ecc14e0dcdbdbf: crates/gendp/../../examples/variant_calling.rs

crates/gendp/../../examples/variant_calling.rs:
