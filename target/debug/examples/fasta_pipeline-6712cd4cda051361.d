/root/repo/target/debug/examples/fasta_pipeline-6712cd4cda051361.d: crates/gendp/../../examples/fasta_pipeline.rs

/root/repo/target/debug/examples/fasta_pipeline-6712cd4cda051361: crates/gendp/../../examples/fasta_pipeline.rs

crates/gendp/../../examples/fasta_pipeline.rs:
