/root/repo/target/debug/examples/batch_alignment-7dd798cc7458c110.d: crates/gendp/../../examples/batch_alignment.rs Cargo.toml

/root/repo/target/debug/examples/libbatch_alignment-7dd798cc7458c110.rmeta: crates/gendp/../../examples/batch_alignment.rs Cargo.toml

crates/gendp/../../examples/batch_alignment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
