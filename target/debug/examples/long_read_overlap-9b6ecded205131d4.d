/root/repo/target/debug/examples/long_read_overlap-9b6ecded205131d4.d: crates/gendp/../../examples/long_read_overlap.rs

/root/repo/target/debug/examples/long_read_overlap-9b6ecded205131d4: crates/gendp/../../examples/long_read_overlap.rs

crates/gendp/../../examples/long_read_overlap.rs:
