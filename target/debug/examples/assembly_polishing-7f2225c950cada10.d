/root/repo/target/debug/examples/assembly_polishing-7f2225c950cada10.d: crates/gendp/../../examples/assembly_polishing.rs Cargo.toml

/root/repo/target/debug/examples/libassembly_polishing-7f2225c950cada10.rmeta: crates/gendp/../../examples/assembly_polishing.rs Cargo.toml

crates/gendp/../../examples/assembly_polishing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
