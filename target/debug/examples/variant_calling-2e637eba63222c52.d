/root/repo/target/debug/examples/variant_calling-2e637eba63222c52.d: crates/gendp/../../examples/variant_calling.rs Cargo.toml

/root/repo/target/debug/examples/libvariant_calling-2e637eba63222c52.rmeta: crates/gendp/../../examples/variant_calling.rs Cargo.toml

crates/gendp/../../examples/variant_calling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
