/root/repo/target/debug/examples/quickstart-4f50604d6cc0370e.d: crates/gendp/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4f50604d6cc0370e: crates/gendp/../../examples/quickstart.rs

crates/gendp/../../examples/quickstart.rs:
