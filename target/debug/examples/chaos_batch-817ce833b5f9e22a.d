/root/repo/target/debug/examples/chaos_batch-817ce833b5f9e22a.d: crates/gendp/../../examples/chaos_batch.rs

/root/repo/target/debug/examples/chaos_batch-817ce833b5f9e22a: crates/gendp/../../examples/chaos_batch.rs

crates/gendp/../../examples/chaos_batch.rs:
