/root/repo/target/debug/examples/assembly_polishing-4d1c6b44b101e088.d: crates/gendp/../../examples/assembly_polishing.rs

/root/repo/target/debug/examples/assembly_polishing-4d1c6b44b101e088: crates/gendp/../../examples/assembly_polishing.rs

crates/gendp/../../examples/assembly_polishing.rs:
