/root/repo/target/debug/examples/read_alignment-95b83af9362804b8.d: crates/gendp/../../examples/read_alignment.rs Cargo.toml

/root/repo/target/debug/examples/libread_alignment-95b83af9362804b8.rmeta: crates/gendp/../../examples/read_alignment.rs Cargo.toml

crates/gendp/../../examples/read_alignment.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
