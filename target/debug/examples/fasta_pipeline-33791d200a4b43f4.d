/root/repo/target/debug/examples/fasta_pipeline-33791d200a4b43f4.d: crates/gendp/../../examples/fasta_pipeline.rs

/root/repo/target/debug/examples/fasta_pipeline-33791d200a4b43f4: crates/gendp/../../examples/fasta_pipeline.rs

crates/gendp/../../examples/fasta_pipeline.rs:
