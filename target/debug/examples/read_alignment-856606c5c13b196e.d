/root/repo/target/debug/examples/read_alignment-856606c5c13b196e.d: crates/gendp/../../examples/read_alignment.rs

/root/repo/target/debug/examples/read_alignment-856606c5c13b196e: crates/gendp/../../examples/read_alignment.rs

crates/gendp/../../examples/read_alignment.rs:
