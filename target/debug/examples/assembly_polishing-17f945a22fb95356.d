/root/repo/target/debug/examples/assembly_polishing-17f945a22fb95356.d: crates/gendp/../../examples/assembly_polishing.rs

/root/repo/target/debug/examples/assembly_polishing-17f945a22fb95356: crates/gendp/../../examples/assembly_polishing.rs

crates/gendp/../../examples/assembly_polishing.rs:
