/root/repo/target/debug/examples/long_read_overlap-dfc2e7d528db2851.d: crates/gendp/../../examples/long_read_overlap.rs

/root/repo/target/debug/examples/long_read_overlap-dfc2e7d528db2851: crates/gendp/../../examples/long_read_overlap.rs

crates/gendp/../../examples/long_read_overlap.rs:
