/root/repo/target/debug/examples/long_read_overlap-fadf9f436401d9ee.d: crates/gendp/../../examples/long_read_overlap.rs Cargo.toml

/root/repo/target/debug/examples/liblong_read_overlap-fadf9f436401d9ee.rmeta: crates/gendp/../../examples/long_read_overlap.rs Cargo.toml

crates/gendp/../../examples/long_read_overlap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
