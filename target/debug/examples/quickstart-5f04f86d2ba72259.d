/root/repo/target/debug/examples/quickstart-5f04f86d2ba72259.d: crates/gendp/../../examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-5f04f86d2ba72259.rmeta: crates/gendp/../../examples/quickstart.rs Cargo.toml

crates/gendp/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
