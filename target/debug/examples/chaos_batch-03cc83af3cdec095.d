/root/repo/target/debug/examples/chaos_batch-03cc83af3cdec095.d: crates/gendp/../../examples/chaos_batch.rs Cargo.toml

/root/repo/target/debug/examples/libchaos_batch-03cc83af3cdec095.rmeta: crates/gendp/../../examples/chaos_batch.rs Cargo.toml

crates/gendp/../../examples/chaos_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
