/root/repo/target/debug/deps/chaos_batch-e8fec8c69a9d0d84.d: crates/gendp/../../tests/chaos_batch.rs

/root/repo/target/debug/deps/chaos_batch-e8fec8c69a9d0d84: crates/gendp/../../tests/chaos_batch.rs

crates/gendp/../../tests/chaos_batch.rs:
