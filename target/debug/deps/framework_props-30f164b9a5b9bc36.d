/root/repo/target/debug/deps/framework_props-30f164b9a5b9bc36.d: crates/gendp/../../tests/framework_props.rs Cargo.toml

/root/repo/target/debug/deps/libframework_props-30f164b9a5b9bc36.rmeta: crates/gendp/../../tests/framework_props.rs Cargo.toml

crates/gendp/../../tests/framework_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
