/root/repo/target/debug/deps/fig10a-ca6f6af737401159.d: crates/gendp-bench/src/bin/fig10a.rs

/root/repo/target/debug/deps/fig10a-ca6f6af737401159: crates/gendp-bench/src/bin/fig10a.rs

crates/gendp-bench/src/bin/fig10a.rs:
