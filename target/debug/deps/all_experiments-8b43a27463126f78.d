/root/repo/target/debug/deps/all_experiments-8b43a27463126f78.d: crates/gendp-bench/src/bin/all-experiments.rs

/root/repo/target/debug/deps/all_experiments-8b43a27463126f78: crates/gendp-bench/src/bin/all-experiments.rs

crates/gendp-bench/src/bin/all-experiments.rs:
