/root/repo/target/debug/deps/table16-0bc7f9b4983ad89d.d: crates/gendp-bench/src/bin/table16.rs Cargo.toml

/root/repo/target/debug/deps/libtable16-0bc7f9b4983ad89d.rmeta: crates/gendp-bench/src/bin/table16.rs Cargo.toml

crates/gendp-bench/src/bin/table16.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
