/root/repo/target/debug/deps/fig11-5003f70cd6142bc4.d: crates/gendp-bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-5003f70cd6142bc4.rmeta: crates/gendp-bench/src/bin/fig11.rs Cargo.toml

crates/gendp-bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
