/root/repo/target/debug/deps/pipeline-a43a6ec7b3a70ce0.d: crates/gendp/../../tests/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-a43a6ec7b3a70ce0.rmeta: crates/gendp/../../tests/pipeline.rs Cargo.toml

crates/gendp/../../tests/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
