/root/repo/target/debug/deps/gendp_dpmap-55a3e31bec92a419.d: crates/gendp-dpmap/src/lib.rs crates/gendp-dpmap/src/codegen.rs crates/gendp-dpmap/src/phases.rs crates/gendp-dpmap/src/stats.rs crates/gendp-dpmap/src/subgraph.rs crates/gendp-dpmap/src/work.rs

/root/repo/target/debug/deps/libgendp_dpmap-55a3e31bec92a419.rlib: crates/gendp-dpmap/src/lib.rs crates/gendp-dpmap/src/codegen.rs crates/gendp-dpmap/src/phases.rs crates/gendp-dpmap/src/stats.rs crates/gendp-dpmap/src/subgraph.rs crates/gendp-dpmap/src/work.rs

/root/repo/target/debug/deps/libgendp_dpmap-55a3e31bec92a419.rmeta: crates/gendp-dpmap/src/lib.rs crates/gendp-dpmap/src/codegen.rs crates/gendp-dpmap/src/phases.rs crates/gendp-dpmap/src/stats.rs crates/gendp-dpmap/src/subgraph.rs crates/gendp-dpmap/src/work.rs

crates/gendp-dpmap/src/lib.rs:
crates/gendp-dpmap/src/codegen.rs:
crates/gendp-dpmap/src/phases.rs:
crates/gendp-dpmap/src/stats.rs:
crates/gendp-dpmap/src/subgraph.rs:
crates/gendp-dpmap/src/work.rs:
