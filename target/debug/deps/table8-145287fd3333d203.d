/root/repo/target/debug/deps/table8-145287fd3333d203.d: crates/gendp-bench/src/bin/table8.rs Cargo.toml

/root/repo/target/debug/deps/libtable8-145287fd3333d203.rmeta: crates/gendp-bench/src/bin/table8.rs Cargo.toml

crates/gendp-bench/src/bin/table8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
