/root/repo/target/debug/deps/queue_props-3207cf3193c1a800.d: crates/gendp-runtime/tests/queue_props.rs Cargo.toml

/root/repo/target/debug/deps/libqueue_props-3207cf3193c1a800.rmeta: crates/gendp-runtime/tests/queue_props.rs Cargo.toml

crates/gendp-runtime/tests/queue_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
