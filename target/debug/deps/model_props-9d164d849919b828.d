/root/repo/target/debug/deps/model_props-9d164d849919b828.d: crates/gendp-model/tests/model_props.rs

/root/repo/target/debug/deps/model_props-9d164d849919b828: crates/gendp-model/tests/model_props.rs

crates/gendp-model/tests/model_props.rs:
