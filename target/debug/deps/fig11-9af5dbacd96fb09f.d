/root/repo/target/debug/deps/fig11-9af5dbacd96fb09f.d: crates/gendp-bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-9af5dbacd96fb09f: crates/gendp-bench/src/bin/fig11.rs

crates/gendp-bench/src/bin/fig11.rs:
