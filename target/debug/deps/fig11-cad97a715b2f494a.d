/root/repo/target/debug/deps/fig11-cad97a715b2f494a.d: crates/gendp-bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-cad97a715b2f494a: crates/gendp-bench/src/bin/fig11.rs

crates/gendp-bench/src/bin/fig11.rs:
