/root/repo/target/debug/deps/all_experiments-00a7b6423b678443.d: crates/gendp-bench/src/bin/all-experiments.rs

/root/repo/target/debug/deps/all_experiments-00a7b6423b678443: crates/gendp-bench/src/bin/all-experiments.rs

crates/gendp-bench/src/bin/all-experiments.rs:
