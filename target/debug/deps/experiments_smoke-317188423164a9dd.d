/root/repo/target/debug/deps/experiments_smoke-317188423164a9dd.d: crates/gendp/../../tests/experiments_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments_smoke-317188423164a9dd.rmeta: crates/gendp/../../tests/experiments_smoke.rs Cargo.toml

crates/gendp/../../tests/experiments_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
