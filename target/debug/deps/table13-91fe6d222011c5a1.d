/root/repo/target/debug/deps/table13-91fe6d222011c5a1.d: crates/gendp-bench/src/bin/table13.rs

/root/repo/target/debug/deps/table13-91fe6d222011c5a1: crates/gendp-bench/src/bin/table13.rs

crates/gendp-bench/src/bin/table13.rs:
