/root/repo/target/debug/deps/rand-8b64dff8f5c145b0.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8b64dff8f5c145b0.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8b64dff8f5c145b0.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
