/root/repo/target/debug/deps/fig11-bc13c30972a8f9e2.d: crates/gendp-bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-bc13c30972a8f9e2: crates/gendp-bench/src/bin/fig11.rs

crates/gendp-bench/src/bin/fig11.rs:
