/root/repo/target/debug/deps/gendp-2687e68f16c51d91.d: crates/gendp/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgendp-2687e68f16c51d91.rmeta: crates/gendp/src/lib.rs Cargo.toml

crates/gendp/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
