/root/repo/target/debug/deps/table15-28f945f9cd414d2d.d: crates/gendp-bench/src/bin/table15.rs

/root/repo/target/debug/deps/table15-28f945f9cd414d2d: crates/gendp-bench/src/bin/table15.rs

crates/gendp-bench/src/bin/table15.rs:
