/root/repo/target/debug/deps/gendp_bench-5e0e2377fb4b86cd.d: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs

/root/repo/target/debug/deps/gendp_bench-5e0e2377fb4b86cd: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs

crates/gendp-bench/src/lib.rs:
crates/gendp-bench/src/measure.rs:
crates/gendp-bench/src/tables.rs:
