/root/repo/target/debug/deps/footprint-9b976ea3e947b45c.d: crates/gendp-bench/src/bin/footprint.rs

/root/repo/target/debug/deps/footprint-9b976ea3e947b45c: crates/gendp-bench/src/bin/footprint.rs

crates/gendp-bench/src/bin/footprint.rs:
