/root/repo/target/debug/deps/table1-fe3ccae89e6175e0.d: crates/gendp-bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-fe3ccae89e6175e0.rmeta: crates/gendp-bench/src/bin/table1.rs Cargo.toml

crates/gendp-bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
