/root/repo/target/debug/deps/footprint-c6c3d75ccd051b8d.d: crates/gendp-bench/src/bin/footprint.rs Cargo.toml

/root/repo/target/debug/deps/libfootprint-c6c3d75ccd051b8d.rmeta: crates/gendp-bench/src/bin/footprint.rs Cargo.toml

crates/gendp-bench/src/bin/footprint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
