/root/repo/target/debug/deps/dfg_dot-a0d34d45d827456f.d: crates/gendp-bench/src/bin/dfg-dot.rs

/root/repo/target/debug/deps/dfg_dot-a0d34d45d827456f: crates/gendp-bench/src/bin/dfg-dot.rs

crates/gendp-bench/src/bin/dfg-dot.rs:
