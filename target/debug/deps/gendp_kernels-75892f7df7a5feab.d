/root/repo/target/debug/deps/gendp_kernels-75892f7df7a5feab.d: crates/gendp-kernels/src/lib.rs crates/gendp-kernels/src/align.rs crates/gendp-kernels/src/bellman_ford.rs crates/gendp-kernels/src/bsw.rs crates/gendp-kernels/src/chain.rs crates/gendp-kernels/src/cigar.rs crates/gendp-kernels/src/dfgs.rs crates/gendp-kernels/src/dtw.rs crates/gendp-kernels/src/info.rs crates/gendp-kernels/src/lcs.rs crates/gendp-kernels/src/pairhmm.rs crates/gendp-kernels/src/poa.rs crates/gendp-kernels/src/scoring.rs Cargo.toml

/root/repo/target/debug/deps/libgendp_kernels-75892f7df7a5feab.rmeta: crates/gendp-kernels/src/lib.rs crates/gendp-kernels/src/align.rs crates/gendp-kernels/src/bellman_ford.rs crates/gendp-kernels/src/bsw.rs crates/gendp-kernels/src/chain.rs crates/gendp-kernels/src/cigar.rs crates/gendp-kernels/src/dfgs.rs crates/gendp-kernels/src/dtw.rs crates/gendp-kernels/src/info.rs crates/gendp-kernels/src/lcs.rs crates/gendp-kernels/src/pairhmm.rs crates/gendp-kernels/src/poa.rs crates/gendp-kernels/src/scoring.rs Cargo.toml

crates/gendp-kernels/src/lib.rs:
crates/gendp-kernels/src/align.rs:
crates/gendp-kernels/src/bellman_ford.rs:
crates/gendp-kernels/src/bsw.rs:
crates/gendp-kernels/src/chain.rs:
crates/gendp-kernels/src/cigar.rs:
crates/gendp-kernels/src/dfgs.rs:
crates/gendp-kernels/src/dtw.rs:
crates/gendp-kernels/src/info.rs:
crates/gendp-kernels/src/lcs.rs:
crates/gendp-kernels/src/pairhmm.rs:
crates/gendp-kernels/src/poa.rs:
crates/gendp-kernels/src/scoring.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
