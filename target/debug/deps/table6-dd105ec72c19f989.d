/root/repo/target/debug/deps/table6-dd105ec72c19f989.d: crates/gendp-bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-dd105ec72c19f989: crates/gendp-bench/src/bin/table6.rs

crates/gendp-bench/src/bin/table6.rs:
