/root/repo/target/debug/deps/gendp_runtime-ef106b885914a6b8.d: crates/gendp-runtime/src/lib.rs crates/gendp-runtime/src/batch.rs crates/gendp-runtime/src/device.rs crates/gendp-runtime/src/policy.rs crates/gendp-runtime/src/queue.rs crates/gendp-runtime/src/report.rs crates/gendp-runtime/src/task.rs

/root/repo/target/debug/deps/libgendp_runtime-ef106b885914a6b8.rlib: crates/gendp-runtime/src/lib.rs crates/gendp-runtime/src/batch.rs crates/gendp-runtime/src/device.rs crates/gendp-runtime/src/policy.rs crates/gendp-runtime/src/queue.rs crates/gendp-runtime/src/report.rs crates/gendp-runtime/src/task.rs

/root/repo/target/debug/deps/libgendp_runtime-ef106b885914a6b8.rmeta: crates/gendp-runtime/src/lib.rs crates/gendp-runtime/src/batch.rs crates/gendp-runtime/src/device.rs crates/gendp-runtime/src/policy.rs crates/gendp-runtime/src/queue.rs crates/gendp-runtime/src/report.rs crates/gendp-runtime/src/task.rs

crates/gendp-runtime/src/lib.rs:
crates/gendp-runtime/src/batch.rs:
crates/gendp-runtime/src/device.rs:
crates/gendp-runtime/src/policy.rs:
crates/gendp-runtime/src/queue.rs:
crates/gendp-runtime/src/report.rs:
crates/gendp-runtime/src/task.rs:
