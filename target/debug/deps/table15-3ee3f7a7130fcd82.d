/root/repo/target/debug/deps/table15-3ee3f7a7130fcd82.d: crates/gendp-bench/src/bin/table15.rs

/root/repo/target/debug/deps/table15-3ee3f7a7130fcd82: crates/gendp-bench/src/bin/table15.rs

crates/gendp-bench/src/bin/table15.rs:
