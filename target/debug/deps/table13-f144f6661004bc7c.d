/root/repo/target/debug/deps/table13-f144f6661004bc7c.d: crates/gendp-bench/src/bin/table13.rs Cargo.toml

/root/repo/target/debug/deps/libtable13-f144f6661004bc7c.rmeta: crates/gendp-bench/src/bin/table13.rs Cargo.toml

crates/gendp-bench/src/bin/table13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
