/root/repo/target/debug/deps/dfg_dot-4b45e4672e1c28c0.d: crates/gendp-bench/src/bin/dfg-dot.rs Cargo.toml

/root/repo/target/debug/deps/libdfg_dot-4b45e4672e1c28c0.rmeta: crates/gendp-bench/src/bin/dfg-dot.rs Cargo.toml

crates/gendp-bench/src/bin/dfg-dot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
