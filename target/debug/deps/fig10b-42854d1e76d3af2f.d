/root/repo/target/debug/deps/fig10b-42854d1e76d3af2f.d: crates/gendp-bench/src/bin/fig10b.rs

/root/repo/target/debug/deps/fig10b-42854d1e76d3af2f: crates/gendp-bench/src/bin/fig10b.rs

crates/gendp-bench/src/bin/fig10b.rs:
