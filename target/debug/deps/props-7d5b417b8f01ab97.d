/root/repo/target/debug/deps/props-7d5b417b8f01ab97.d: crates/gendp-kernels/tests/props.rs

/root/repo/target/debug/deps/props-7d5b417b8f01ab97: crates/gendp-kernels/tests/props.rs

crates/gendp-kernels/tests/props.rs:
