/root/repo/target/debug/deps/table16-b748e223be0dbbac.d: crates/gendp-bench/src/bin/table16.rs Cargo.toml

/root/repo/target/debug/deps/libtable16-b748e223be0dbbac.rmeta: crates/gendp-bench/src/bin/table16.rs Cargo.toml

crates/gendp-bench/src/bin/table16.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
