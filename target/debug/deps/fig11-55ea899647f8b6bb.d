/root/repo/target/debug/deps/fig11-55ea899647f8b6bb.d: crates/gendp-bench/src/bin/fig11.rs Cargo.toml

/root/repo/target/debug/deps/libfig11-55ea899647f8b6bb.rmeta: crates/gendp-bench/src/bin/fig11.rs Cargo.toml

crates/gendp-bench/src/bin/fig11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
