/root/repo/target/debug/deps/table8-cfbbe21687cc927a.d: crates/gendp-bench/src/bin/table8.rs Cargo.toml

/root/repo/target/debug/deps/libtable8-cfbbe21687cc927a.rmeta: crates/gendp-bench/src/bin/table8.rs Cargo.toml

crates/gendp-bench/src/bin/table8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
