/root/repo/target/debug/deps/gendp_core-0758c8362bb77253.d: crates/gendp-core/src/lib.rs crates/gendp-core/src/graph2d.rs crates/gendp-core/src/linear1d.rs crates/gendp-core/src/pipeline.rs crates/gendp-core/src/spm1d.rs crates/gendp-core/src/wavefront2d.rs

/root/repo/target/debug/deps/libgendp_core-0758c8362bb77253.rlib: crates/gendp-core/src/lib.rs crates/gendp-core/src/graph2d.rs crates/gendp-core/src/linear1d.rs crates/gendp-core/src/pipeline.rs crates/gendp-core/src/spm1d.rs crates/gendp-core/src/wavefront2d.rs

/root/repo/target/debug/deps/libgendp_core-0758c8362bb77253.rmeta: crates/gendp-core/src/lib.rs crates/gendp-core/src/graph2d.rs crates/gendp-core/src/linear1d.rs crates/gendp-core/src/pipeline.rs crates/gendp-core/src/spm1d.rs crates/gendp-core/src/wavefront2d.rs

crates/gendp-core/src/lib.rs:
crates/gendp-core/src/graph2d.rs:
crates/gendp-core/src/linear1d.rs:
crates/gendp-core/src/pipeline.rs:
crates/gendp-core/src/spm1d.rs:
crates/gendp-core/src/wavefront2d.rs:
