/root/repo/target/debug/deps/table15-f56cd1b36c091959.d: crates/gendp-bench/src/bin/table15.rs Cargo.toml

/root/repo/target/debug/deps/libtable15-f56cd1b36c091959.rmeta: crates/gendp-bench/src/bin/table15.rs Cargo.toml

crates/gendp-bench/src/bin/table15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
