/root/repo/target/debug/deps/rand-4398cb4376aca2c9.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-4398cb4376aca2c9.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-4398cb4376aca2c9.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
