/root/repo/target/debug/deps/fig10b-8f0c612aa20e12e8.d: crates/gendp-bench/src/bin/fig10b.rs Cargo.toml

/root/repo/target/debug/deps/libfig10b-8f0c612aa20e12e8.rmeta: crates/gendp-bench/src/bin/fig10b.rs Cargo.toml

crates/gendp-bench/src/bin/fig10b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
