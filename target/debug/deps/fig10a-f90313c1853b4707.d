/root/repo/target/debug/deps/fig10a-f90313c1853b4707.d: crates/gendp-bench/src/bin/fig10a.rs Cargo.toml

/root/repo/target/debug/deps/libfig10a-f90313c1853b4707.rmeta: crates/gendp-bench/src/bin/fig10a.rs Cargo.toml

crates/gendp-bench/src/bin/fig10a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
