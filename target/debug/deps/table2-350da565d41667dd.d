/root/repo/target/debug/deps/table2-350da565d41667dd.d: crates/gendp-bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-350da565d41667dd: crates/gendp-bench/src/bin/table2.rs

crates/gendp-bench/src/bin/table2.rs:
