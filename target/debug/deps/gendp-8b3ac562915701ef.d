/root/repo/target/debug/deps/gendp-8b3ac562915701ef.d: crates/gendp/src/lib.rs

/root/repo/target/debug/deps/gendp-8b3ac562915701ef: crates/gendp/src/lib.rs

crates/gendp/src/lib.rs:
