/root/repo/target/debug/deps/footprint-142afb868eafe38c.d: crates/gendp-bench/src/bin/footprint.rs

/root/repo/target/debug/deps/footprint-142afb868eafe38c: crates/gendp-bench/src/bin/footprint.rs

crates/gendp-bench/src/bin/footprint.rs:
