/root/repo/target/debug/deps/deprange-65f6020386bd2f6a.d: crates/gendp-bench/src/bin/deprange.rs

/root/repo/target/debug/deps/deprange-65f6020386bd2f6a: crates/gendp-bench/src/bin/deprange.rs

crates/gendp-bench/src/bin/deprange.rs:
