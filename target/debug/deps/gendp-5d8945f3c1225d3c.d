/root/repo/target/debug/deps/gendp-5d8945f3c1225d3c.d: crates/gendp/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgendp-5d8945f3c1225d3c.rmeta: crates/gendp/src/lib.rs Cargo.toml

crates/gendp/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
