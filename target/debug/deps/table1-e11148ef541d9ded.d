/root/repo/target/debug/deps/table1-e11148ef541d9ded.d: crates/gendp-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-e11148ef541d9ded: crates/gendp-bench/src/bin/table1.rs

crates/gendp-bench/src/bin/table1.rs:
