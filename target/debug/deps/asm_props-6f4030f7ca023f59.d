/root/repo/target/debug/deps/asm_props-6f4030f7ca023f59.d: crates/gendp-isa/tests/asm_props.rs

/root/repo/target/debug/deps/asm_props-6f4030f7ca023f59: crates/gendp-isa/tests/asm_props.rs

crates/gendp-isa/tests/asm_props.rs:
