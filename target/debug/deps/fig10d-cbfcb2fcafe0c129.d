/root/repo/target/debug/deps/fig10d-cbfcb2fcafe0c129.d: crates/gendp-bench/src/bin/fig10d.rs

/root/repo/target/debug/deps/fig10d-cbfcb2fcafe0c129: crates/gendp-bench/src/bin/fig10d.rs

crates/gendp-bench/src/bin/fig10d.rs:
