/root/repo/target/debug/deps/table10-ba1175addb19b4d1.d: crates/gendp-bench/src/bin/table10.rs

/root/repo/target/debug/deps/table10-ba1175addb19b4d1: crates/gendp-bench/src/bin/table10.rs

crates/gendp-bench/src/bin/table10.rs:
