/root/repo/target/debug/deps/table14-b5282c8cff935493.d: crates/gendp-bench/src/bin/table14.rs

/root/repo/target/debug/deps/table14-b5282c8cff935493: crates/gendp-bench/src/bin/table14.rs

crates/gendp-bench/src/bin/table14.rs:
