/root/repo/target/debug/deps/table1-9e2efd086f3c01e1.d: crates/gendp-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-9e2efd086f3c01e1: crates/gendp-bench/src/bin/table1.rs

crates/gendp-bench/src/bin/table1.rs:
