/root/repo/target/debug/deps/props-1764e1568b960925.d: crates/gendp-kernels/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-1764e1568b960925.rmeta: crates/gendp-kernels/tests/props.rs Cargo.toml

crates/gendp-kernels/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
