/root/repo/target/debug/deps/fig10d-7d58028c520ea9d1.d: crates/gendp-bench/src/bin/fig10d.rs

/root/repo/target/debug/deps/fig10d-7d58028c520ea9d1: crates/gendp-bench/src/bin/fig10d.rs

crates/gendp-bench/src/bin/fig10d.rs:
