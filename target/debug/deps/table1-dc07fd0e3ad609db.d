/root/repo/target/debug/deps/table1-dc07fd0e3ad609db.d: crates/gendp-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-dc07fd0e3ad609db: crates/gendp-bench/src/bin/table1.rs

crates/gendp-bench/src/bin/table1.rs:
