/root/repo/target/debug/deps/table13-212d5399dd6229ab.d: crates/gendp-bench/src/bin/table13.rs

/root/repo/target/debug/deps/table13-212d5399dd6229ab: crates/gendp-bench/src/bin/table13.rs

crates/gendp-bench/src/bin/table13.rs:
