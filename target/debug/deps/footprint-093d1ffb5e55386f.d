/root/repo/target/debug/deps/footprint-093d1ffb5e55386f.d: crates/gendp-bench/src/bin/footprint.rs

/root/repo/target/debug/deps/footprint-093d1ffb5e55386f: crates/gendp-bench/src/bin/footprint.rs

crates/gendp-bench/src/bin/footprint.rs:
