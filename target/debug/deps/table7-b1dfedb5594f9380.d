/root/repo/target/debug/deps/table7-b1dfedb5594f9380.d: crates/gendp-bench/src/bin/table7.rs Cargo.toml

/root/repo/target/debug/deps/libtable7-b1dfedb5594f9380.rmeta: crates/gendp-bench/src/bin/table7.rs Cargo.toml

crates/gendp-bench/src/bin/table7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
