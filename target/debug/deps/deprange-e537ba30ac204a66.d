/root/repo/target/debug/deps/deprange-e537ba30ac204a66.d: crates/gendp-bench/src/bin/deprange.rs Cargo.toml

/root/repo/target/debug/deps/libdeprange-e537ba30ac204a66.rmeta: crates/gendp-bench/src/bin/deprange.rs Cargo.toml

crates/gendp-bench/src/bin/deprange.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
