/root/repo/target/debug/deps/table15-a21197cc8640f24c.d: crates/gendp-bench/src/bin/table15.rs Cargo.toml

/root/repo/target/debug/deps/libtable15-a21197cc8640f24c.rmeta: crates/gendp-bench/src/bin/table15.rs Cargo.toml

crates/gendp-bench/src/bin/table15.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
