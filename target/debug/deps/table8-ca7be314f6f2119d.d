/root/repo/target/debug/deps/table8-ca7be314f6f2119d.d: crates/gendp-bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-ca7be314f6f2119d: crates/gendp-bench/src/bin/table8.rs

crates/gendp-bench/src/bin/table8.rs:
