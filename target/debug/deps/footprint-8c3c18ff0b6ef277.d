/root/repo/target/debug/deps/footprint-8c3c18ff0b6ef277.d: crates/gendp-bench/src/bin/footprint.rs Cargo.toml

/root/repo/target/debug/deps/libfootprint-8c3c18ff0b6ef277.rmeta: crates/gendp-bench/src/bin/footprint.rs Cargo.toml

crates/gendp-bench/src/bin/footprint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
