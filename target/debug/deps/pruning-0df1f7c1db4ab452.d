/root/repo/target/debug/deps/pruning-0df1f7c1db4ab452.d: crates/gendp-bench/src/bin/pruning.rs Cargo.toml

/root/repo/target/debug/deps/libpruning-0df1f7c1db4ab452.rmeta: crates/gendp-bench/src/bin/pruning.rs Cargo.toml

crates/gendp-bench/src/bin/pruning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
