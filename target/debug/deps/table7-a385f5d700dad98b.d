/root/repo/target/debug/deps/table7-a385f5d700dad98b.d: crates/gendp-bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-a385f5d700dad98b: crates/gendp-bench/src/bin/table7.rs

crates/gendp-bench/src/bin/table7.rs:
