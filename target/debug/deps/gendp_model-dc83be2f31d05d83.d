/root/repo/target/debug/deps/gendp_model-dc83be2f31d05d83.d: crates/gendp-model/src/lib.rs crates/gendp-model/src/area.rs crates/gendp-model/src/baselines.rs crates/gendp-model/src/dram.rs crates/gendp-model/src/power.rs crates/gendp-model/src/scalability.rs crates/gendp-model/src/scalar_isa.rs crates/gendp-model/src/scaling.rs crates/gendp-model/src/softbrain.rs crates/gendp-model/src/throughput.rs crates/gendp-model/src/tia.rs

/root/repo/target/debug/deps/libgendp_model-dc83be2f31d05d83.rlib: crates/gendp-model/src/lib.rs crates/gendp-model/src/area.rs crates/gendp-model/src/baselines.rs crates/gendp-model/src/dram.rs crates/gendp-model/src/power.rs crates/gendp-model/src/scalability.rs crates/gendp-model/src/scalar_isa.rs crates/gendp-model/src/scaling.rs crates/gendp-model/src/softbrain.rs crates/gendp-model/src/throughput.rs crates/gendp-model/src/tia.rs

/root/repo/target/debug/deps/libgendp_model-dc83be2f31d05d83.rmeta: crates/gendp-model/src/lib.rs crates/gendp-model/src/area.rs crates/gendp-model/src/baselines.rs crates/gendp-model/src/dram.rs crates/gendp-model/src/power.rs crates/gendp-model/src/scalability.rs crates/gendp-model/src/scalar_isa.rs crates/gendp-model/src/scaling.rs crates/gendp-model/src/softbrain.rs crates/gendp-model/src/throughput.rs crates/gendp-model/src/tia.rs

crates/gendp-model/src/lib.rs:
crates/gendp-model/src/area.rs:
crates/gendp-model/src/baselines.rs:
crates/gendp-model/src/dram.rs:
crates/gendp-model/src/power.rs:
crates/gendp-model/src/scalability.rs:
crates/gendp-model/src/scalar_isa.rs:
crates/gendp-model/src/scaling.rs:
crates/gendp-model/src/softbrain.rs:
crates/gendp-model/src/throughput.rs:
crates/gendp-model/src/tia.rs:
