/root/repo/target/debug/deps/deprange-4150bf0eebbf99de.d: crates/gendp-bench/src/bin/deprange.rs

/root/repo/target/debug/deps/deprange-4150bf0eebbf99de: crates/gendp-bench/src/bin/deprange.rs

crates/gendp-bench/src/bin/deprange.rs:
