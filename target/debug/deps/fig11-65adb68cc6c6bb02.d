/root/repo/target/debug/deps/fig11-65adb68cc6c6bb02.d: crates/gendp-bench/src/bin/fig11.rs

/root/repo/target/debug/deps/fig11-65adb68cc6c6bb02: crates/gendp-bench/src/bin/fig11.rs

crates/gendp-bench/src/bin/fig11.rs:
