/root/repo/target/debug/deps/table10-71b1c8589b17c7b0.d: crates/gendp-bench/src/bin/table10.rs Cargo.toml

/root/repo/target/debug/deps/libtable10-71b1c8589b17c7b0.rmeta: crates/gendp-bench/src/bin/table10.rs Cargo.toml

crates/gendp-bench/src/bin/table10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
