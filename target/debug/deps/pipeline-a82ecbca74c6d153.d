/root/repo/target/debug/deps/pipeline-a82ecbca74c6d153.d: crates/gendp/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-a82ecbca74c6d153: crates/gendp/../../tests/pipeline.rs

crates/gendp/../../tests/pipeline.rs:
