/root/repo/target/debug/deps/table1-db92bf9e8a64af14.d: crates/gendp-bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-db92bf9e8a64af14.rmeta: crates/gendp-bench/src/bin/table1.rs Cargo.toml

crates/gendp-bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
