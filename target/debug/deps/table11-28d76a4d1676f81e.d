/root/repo/target/debug/deps/table11-28d76a4d1676f81e.d: crates/gendp-bench/src/bin/table11.rs

/root/repo/target/debug/deps/table11-28d76a4d1676f81e: crates/gendp-bench/src/bin/table11.rs

crates/gendp-bench/src/bin/table11.rs:
