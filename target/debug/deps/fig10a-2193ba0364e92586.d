/root/repo/target/debug/deps/fig10a-2193ba0364e92586.d: crates/gendp-bench/src/bin/fig10a.rs

/root/repo/target/debug/deps/fig10a-2193ba0364e92586: crates/gendp-bench/src/bin/fig10a.rs

crates/gendp-bench/src/bin/fig10a.rs:
