/root/repo/target/debug/deps/fig10d-99bbf4f27dde2dbe.d: crates/gendp-bench/src/bin/fig10d.rs

/root/repo/target/debug/deps/fig10d-99bbf4f27dde2dbe: crates/gendp-bench/src/bin/fig10d.rs

crates/gendp-bench/src/bin/fig10d.rs:
