/root/repo/target/debug/deps/table13-6e691cbcf48da3da.d: crates/gendp-bench/src/bin/table13.rs Cargo.toml

/root/repo/target/debug/deps/libtable13-6e691cbcf48da3da.rmeta: crates/gendp-bench/src/bin/table13.rs Cargo.toml

crates/gendp-bench/src/bin/table13.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
