/root/repo/target/debug/deps/fig10b-715c128988f203cc.d: crates/gendp-bench/src/bin/fig10b.rs

/root/repo/target/debug/deps/fig10b-715c128988f203cc: crates/gendp-bench/src/bin/fig10b.rs

crates/gendp-bench/src/bin/fig10b.rs:
