/root/repo/target/debug/deps/table11-db897dfa1de1d556.d: crates/gendp-bench/src/bin/table11.rs

/root/repo/target/debug/deps/table11-db897dfa1de1d556: crates/gendp-bench/src/bin/table11.rs

crates/gendp-bench/src/bin/table11.rs:
