/root/repo/target/debug/deps/table12-28a6bd35d988ed33.d: crates/gendp-bench/src/bin/table12.rs

/root/repo/target/debug/deps/table12-28a6bd35d988ed33: crates/gendp-bench/src/bin/table12.rs

crates/gendp-bench/src/bin/table12.rs:
