/root/repo/target/debug/deps/pruning-d2bebc453c6442f1.d: crates/gendp-bench/src/bin/pruning.rs

/root/repo/target/debug/deps/pruning-d2bebc453c6442f1: crates/gendp-bench/src/bin/pruning.rs

crates/gendp-bench/src/bin/pruning.rs:
