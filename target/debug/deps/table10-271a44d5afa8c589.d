/root/repo/target/debug/deps/table10-271a44d5afa8c589.d: crates/gendp-bench/src/bin/table10.rs

/root/repo/target/debug/deps/table10-271a44d5afa8c589: crates/gendp-bench/src/bin/table10.rs

crates/gendp-bench/src/bin/table10.rs:
