/root/repo/target/debug/deps/queue_props-053dac977710b946.d: crates/gendp-runtime/tests/queue_props.rs

/root/repo/target/debug/deps/queue_props-053dac977710b946: crates/gendp-runtime/tests/queue_props.rs

crates/gendp-runtime/tests/queue_props.rs:
