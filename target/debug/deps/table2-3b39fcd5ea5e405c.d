/root/repo/target/debug/deps/table2-3b39fcd5ea5e405c.d: crates/gendp-bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-3b39fcd5ea5e405c.rmeta: crates/gendp-bench/src/bin/table2.rs Cargo.toml

crates/gendp-bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
