/root/repo/target/debug/deps/gendp_runtime-af43a6927d224441.d: crates/gendp-runtime/src/lib.rs crates/gendp-runtime/src/batch.rs crates/gendp-runtime/src/device.rs crates/gendp-runtime/src/fault.rs crates/gendp-runtime/src/policy.rs crates/gendp-runtime/src/queue.rs crates/gendp-runtime/src/recovery.rs crates/gendp-runtime/src/report.rs crates/gendp-runtime/src/sync.rs crates/gendp-runtime/src/task.rs Cargo.toml

/root/repo/target/debug/deps/libgendp_runtime-af43a6927d224441.rmeta: crates/gendp-runtime/src/lib.rs crates/gendp-runtime/src/batch.rs crates/gendp-runtime/src/device.rs crates/gendp-runtime/src/fault.rs crates/gendp-runtime/src/policy.rs crates/gendp-runtime/src/queue.rs crates/gendp-runtime/src/recovery.rs crates/gendp-runtime/src/report.rs crates/gendp-runtime/src/sync.rs crates/gendp-runtime/src/task.rs Cargo.toml

crates/gendp-runtime/src/lib.rs:
crates/gendp-runtime/src/batch.rs:
crates/gendp-runtime/src/device.rs:
crates/gendp-runtime/src/fault.rs:
crates/gendp-runtime/src/policy.rs:
crates/gendp-runtime/src/queue.rs:
crates/gendp-runtime/src/recovery.rs:
crates/gendp-runtime/src/report.rs:
crates/gendp-runtime/src/sync.rs:
crates/gendp-runtime/src/task.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
