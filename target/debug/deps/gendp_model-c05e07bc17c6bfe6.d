/root/repo/target/debug/deps/gendp_model-c05e07bc17c6bfe6.d: crates/gendp-model/src/lib.rs crates/gendp-model/src/area.rs crates/gendp-model/src/baselines.rs crates/gendp-model/src/dram.rs crates/gendp-model/src/power.rs crates/gendp-model/src/scalability.rs crates/gendp-model/src/scalar_isa.rs crates/gendp-model/src/scaling.rs crates/gendp-model/src/softbrain.rs crates/gendp-model/src/throughput.rs crates/gendp-model/src/tia.rs

/root/repo/target/debug/deps/gendp_model-c05e07bc17c6bfe6: crates/gendp-model/src/lib.rs crates/gendp-model/src/area.rs crates/gendp-model/src/baselines.rs crates/gendp-model/src/dram.rs crates/gendp-model/src/power.rs crates/gendp-model/src/scalability.rs crates/gendp-model/src/scalar_isa.rs crates/gendp-model/src/scaling.rs crates/gendp-model/src/softbrain.rs crates/gendp-model/src/throughput.rs crates/gendp-model/src/tia.rs

crates/gendp-model/src/lib.rs:
crates/gendp-model/src/area.rs:
crates/gendp-model/src/baselines.rs:
crates/gendp-model/src/dram.rs:
crates/gendp-model/src/power.rs:
crates/gendp-model/src/scalability.rs:
crates/gendp-model/src/scalar_isa.rs:
crates/gendp-model/src/scaling.rs:
crates/gendp-model/src/softbrain.rs:
crates/gendp-model/src/throughput.rs:
crates/gendp-model/src/tia.rs:
