/root/repo/target/debug/deps/table8-6ea0cd5f0667a80b.d: crates/gendp-bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-6ea0cd5f0667a80b: crates/gendp-bench/src/bin/table8.rs

crates/gendp-bench/src/bin/table8.rs:
