/root/repo/target/debug/deps/gendp_runtime-c5c154d04f643c02.d: crates/gendp-runtime/src/lib.rs crates/gendp-runtime/src/batch.rs crates/gendp-runtime/src/device.rs crates/gendp-runtime/src/policy.rs crates/gendp-runtime/src/queue.rs crates/gendp-runtime/src/report.rs crates/gendp-runtime/src/task.rs

/root/repo/target/debug/deps/gendp_runtime-c5c154d04f643c02: crates/gendp-runtime/src/lib.rs crates/gendp-runtime/src/batch.rs crates/gendp-runtime/src/device.rs crates/gendp-runtime/src/policy.rs crates/gendp-runtime/src/queue.rs crates/gendp-runtime/src/report.rs crates/gendp-runtime/src/task.rs

crates/gendp-runtime/src/lib.rs:
crates/gendp-runtime/src/batch.rs:
crates/gendp-runtime/src/device.rs:
crates/gendp-runtime/src/policy.rs:
crates/gendp-runtime/src/queue.rs:
crates/gendp-runtime/src/report.rs:
crates/gendp-runtime/src/task.rs:
