/root/repo/target/debug/deps/rand-90664fc06605ef8a.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/rand-90664fc06605ef8a: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
