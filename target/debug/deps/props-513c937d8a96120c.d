/root/repo/target/debug/deps/props-513c937d8a96120c.d: crates/gendp-seq/tests/props.rs

/root/repo/target/debug/deps/props-513c937d8a96120c: crates/gendp-seq/tests/props.rs

crates/gendp-seq/tests/props.rs:
