/root/repo/target/debug/deps/model_props-ada49452ad0d05eb.d: crates/gendp-model/tests/model_props.rs Cargo.toml

/root/repo/target/debug/deps/libmodel_props-ada49452ad0d05eb.rmeta: crates/gendp-model/tests/model_props.rs Cargo.toml

crates/gendp-model/tests/model_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
