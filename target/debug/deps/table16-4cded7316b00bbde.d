/root/repo/target/debug/deps/table16-4cded7316b00bbde.d: crates/gendp-bench/src/bin/table16.rs

/root/repo/target/debug/deps/table16-4cded7316b00bbde: crates/gendp-bench/src/bin/table16.rs

crates/gendp-bench/src/bin/table16.rs:
