/root/repo/target/debug/deps/table7-5130011d56c5724a.d: crates/gendp-bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-5130011d56c5724a: crates/gendp-bench/src/bin/table7.rs

crates/gendp-bench/src/bin/table7.rs:
