/root/repo/target/debug/deps/table10-e038d2bb6dcd2a45.d: crates/gendp-bench/src/bin/table10.rs

/root/repo/target/debug/deps/table10-e038d2bb6dcd2a45: crates/gendp-bench/src/bin/table10.rs

crates/gendp-bench/src/bin/table10.rs:
