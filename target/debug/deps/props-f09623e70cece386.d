/root/repo/target/debug/deps/props-f09623e70cece386.d: crates/gendp-seq/tests/props.rs Cargo.toml

/root/repo/target/debug/deps/libprops-f09623e70cece386.rmeta: crates/gendp-seq/tests/props.rs Cargo.toml

crates/gendp-seq/tests/props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
