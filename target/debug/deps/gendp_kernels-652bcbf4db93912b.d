/root/repo/target/debug/deps/gendp_kernels-652bcbf4db93912b.d: crates/gendp-kernels/src/lib.rs crates/gendp-kernels/src/align.rs crates/gendp-kernels/src/bellman_ford.rs crates/gendp-kernels/src/bsw.rs crates/gendp-kernels/src/chain.rs crates/gendp-kernels/src/cigar.rs crates/gendp-kernels/src/dfgs.rs crates/gendp-kernels/src/dtw.rs crates/gendp-kernels/src/info.rs crates/gendp-kernels/src/lcs.rs crates/gendp-kernels/src/pairhmm.rs crates/gendp-kernels/src/poa.rs crates/gendp-kernels/src/scoring.rs

/root/repo/target/debug/deps/gendp_kernels-652bcbf4db93912b: crates/gendp-kernels/src/lib.rs crates/gendp-kernels/src/align.rs crates/gendp-kernels/src/bellman_ford.rs crates/gendp-kernels/src/bsw.rs crates/gendp-kernels/src/chain.rs crates/gendp-kernels/src/cigar.rs crates/gendp-kernels/src/dfgs.rs crates/gendp-kernels/src/dtw.rs crates/gendp-kernels/src/info.rs crates/gendp-kernels/src/lcs.rs crates/gendp-kernels/src/pairhmm.rs crates/gendp-kernels/src/poa.rs crates/gendp-kernels/src/scoring.rs

crates/gendp-kernels/src/lib.rs:
crates/gendp-kernels/src/align.rs:
crates/gendp-kernels/src/bellman_ford.rs:
crates/gendp-kernels/src/bsw.rs:
crates/gendp-kernels/src/chain.rs:
crates/gendp-kernels/src/cigar.rs:
crates/gendp-kernels/src/dfgs.rs:
crates/gendp-kernels/src/dtw.rs:
crates/gendp-kernels/src/info.rs:
crates/gendp-kernels/src/lcs.rs:
crates/gendp-kernels/src/pairhmm.rs:
crates/gendp-kernels/src/poa.rs:
crates/gendp-kernels/src/scoring.rs:
