/root/repo/target/debug/deps/pruning-c8f2be457ed04a74.d: crates/gendp-bench/src/bin/pruning.rs

/root/repo/target/debug/deps/pruning-c8f2be457ed04a74: crates/gendp-bench/src/bin/pruning.rs

crates/gendp-bench/src/bin/pruning.rs:
