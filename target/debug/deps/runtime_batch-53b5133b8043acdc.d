/root/repo/target/debug/deps/runtime_batch-53b5133b8043acdc.d: crates/gendp/../../tests/runtime_batch.rs

/root/repo/target/debug/deps/runtime_batch-53b5133b8043acdc: crates/gendp/../../tests/runtime_batch.rs

crates/gendp/../../tests/runtime_batch.rs:
