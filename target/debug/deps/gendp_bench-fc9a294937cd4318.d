/root/repo/target/debug/deps/gendp_bench-fc9a294937cd4318.d: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libgendp_bench-fc9a294937cd4318.rmeta: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs Cargo.toml

crates/gendp-bench/src/lib.rs:
crates/gendp-bench/src/measure.rs:
crates/gendp-bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
