/root/repo/target/debug/deps/gendp_bench-2e3b568f506279fb.d: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs

/root/repo/target/debug/deps/libgendp_bench-2e3b568f506279fb.rlib: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs

/root/repo/target/debug/deps/libgendp_bench-2e3b568f506279fb.rmeta: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs

crates/gendp-bench/src/lib.rs:
crates/gendp-bench/src/measure.rs:
crates/gendp-bench/src/tables.rs:
