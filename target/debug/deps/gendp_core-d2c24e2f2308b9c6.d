/root/repo/target/debug/deps/gendp_core-d2c24e2f2308b9c6.d: crates/gendp-core/src/lib.rs crates/gendp-core/src/graph2d.rs crates/gendp-core/src/linear1d.rs crates/gendp-core/src/pipeline.rs crates/gendp-core/src/spm1d.rs crates/gendp-core/src/wavefront2d.rs Cargo.toml

/root/repo/target/debug/deps/libgendp_core-d2c24e2f2308b9c6.rmeta: crates/gendp-core/src/lib.rs crates/gendp-core/src/graph2d.rs crates/gendp-core/src/linear1d.rs crates/gendp-core/src/pipeline.rs crates/gendp-core/src/spm1d.rs crates/gendp-core/src/wavefront2d.rs Cargo.toml

crates/gendp-core/src/lib.rs:
crates/gendp-core/src/graph2d.rs:
crates/gendp-core/src/linear1d.rs:
crates/gendp-core/src/pipeline.rs:
crates/gendp-core/src/spm1d.rs:
crates/gendp-core/src/wavefront2d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
