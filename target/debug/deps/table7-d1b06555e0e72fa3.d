/root/repo/target/debug/deps/table7-d1b06555e0e72fa3.d: crates/gendp-bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-d1b06555e0e72fa3: crates/gendp-bench/src/bin/table7.rs

crates/gendp-bench/src/bin/table7.rs:
