/root/repo/target/debug/deps/dfg_dot-4e1e128612cc3c41.d: crates/gendp-bench/src/bin/dfg-dot.rs

/root/repo/target/debug/deps/dfg_dot-4e1e128612cc3c41: crates/gendp-bench/src/bin/dfg-dot.rs

crates/gendp-bench/src/bin/dfg-dot.rs:
