/root/repo/target/debug/deps/table13-c6e2f20a6f9ad9da.d: crates/gendp-bench/src/bin/table13.rs

/root/repo/target/debug/deps/table13-c6e2f20a6f9ad9da: crates/gendp-bench/src/bin/table13.rs

crates/gendp-bench/src/bin/table13.rs:
