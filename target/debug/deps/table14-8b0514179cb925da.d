/root/repo/target/debug/deps/table14-8b0514179cb925da.d: crates/gendp-bench/src/bin/table14.rs

/root/repo/target/debug/deps/table14-8b0514179cb925da: crates/gendp-bench/src/bin/table14.rs

crates/gendp-bench/src/bin/table14.rs:
