/root/repo/target/debug/deps/all_experiments-bb905a8f312e1498.d: crates/gendp-bench/src/bin/all-experiments.rs

/root/repo/target/debug/deps/all_experiments-bb905a8f312e1498: crates/gendp-bench/src/bin/all-experiments.rs

crates/gendp-bench/src/bin/all-experiments.rs:
