/root/repo/target/debug/deps/table14-654aa3b1d07f26ac.d: crates/gendp-bench/src/bin/table14.rs

/root/repo/target/debug/deps/table14-654aa3b1d07f26ac: crates/gendp-bench/src/bin/table14.rs

crates/gendp-bench/src/bin/table14.rs:
