/root/repo/target/debug/deps/table2-16794e3394a8c0a8.d: crates/gendp-bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-16794e3394a8c0a8: crates/gendp-bench/src/bin/table2.rs

crates/gendp-bench/src/bin/table2.rs:
