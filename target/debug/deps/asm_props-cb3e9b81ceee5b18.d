/root/repo/target/debug/deps/asm_props-cb3e9b81ceee5b18.d: crates/gendp-isa/tests/asm_props.rs Cargo.toml

/root/repo/target/debug/deps/libasm_props-cb3e9b81ceee5b18.rmeta: crates/gendp-isa/tests/asm_props.rs Cargo.toml

crates/gendp-isa/tests/asm_props.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
