/root/repo/target/debug/deps/proptest-96386055ed52ac69.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-96386055ed52ac69.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-96386055ed52ac69.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
