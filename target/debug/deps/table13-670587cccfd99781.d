/root/repo/target/debug/deps/table13-670587cccfd99781.d: crates/gendp-bench/src/bin/table13.rs

/root/repo/target/debug/deps/table13-670587cccfd99781: crates/gendp-bench/src/bin/table13.rs

crates/gendp-bench/src/bin/table13.rs:
