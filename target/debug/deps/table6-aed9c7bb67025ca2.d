/root/repo/target/debug/deps/table6-aed9c7bb67025ca2.d: crates/gendp-bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-aed9c7bb67025ca2: crates/gendp-bench/src/bin/table6.rs

crates/gendp-bench/src/bin/table6.rs:
