/root/repo/target/debug/deps/footprint-8e3d1611950127ca.d: crates/gendp-bench/src/bin/footprint.rs

/root/repo/target/debug/deps/footprint-8e3d1611950127ca: crates/gendp-bench/src/bin/footprint.rs

crates/gendp-bench/src/bin/footprint.rs:
