/root/repo/target/debug/deps/table16-8cddb95020497538.d: crates/gendp-bench/src/bin/table16.rs

/root/repo/target/debug/deps/table16-8cddb95020497538: crates/gendp-bench/src/bin/table16.rs

crates/gendp-bench/src/bin/table16.rs:
