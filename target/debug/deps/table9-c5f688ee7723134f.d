/root/repo/target/debug/deps/table9-c5f688ee7723134f.d: crates/gendp-bench/src/bin/table9.rs Cargo.toml

/root/repo/target/debug/deps/libtable9-c5f688ee7723134f.rmeta: crates/gendp-bench/src/bin/table9.rs Cargo.toml

crates/gendp-bench/src/bin/table9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
