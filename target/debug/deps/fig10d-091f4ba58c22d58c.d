/root/repo/target/debug/deps/fig10d-091f4ba58c22d58c.d: crates/gendp-bench/src/bin/fig10d.rs

/root/repo/target/debug/deps/fig10d-091f4ba58c22d58c: crates/gendp-bench/src/bin/fig10d.rs

crates/gendp-bench/src/bin/fig10d.rs:
