/root/repo/target/debug/deps/all_experiments-658acee2bd019490.d: crates/gendp-bench/src/bin/all-experiments.rs

/root/repo/target/debug/deps/all_experiments-658acee2bd019490: crates/gendp-bench/src/bin/all-experiments.rs

crates/gendp-bench/src/bin/all-experiments.rs:
