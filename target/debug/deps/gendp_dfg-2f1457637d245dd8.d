/root/repo/target/debug/deps/gendp_dfg-2f1457637d245dd8.d: crates/gendp-dfg/src/lib.rs crates/gendp-dfg/src/dot.rs crates/gendp-dfg/src/eval.rs crates/gendp-dfg/src/graph.rs Cargo.toml

/root/repo/target/debug/deps/libgendp_dfg-2f1457637d245dd8.rmeta: crates/gendp-dfg/src/lib.rs crates/gendp-dfg/src/dot.rs crates/gendp-dfg/src/eval.rs crates/gendp-dfg/src/graph.rs Cargo.toml

crates/gendp-dfg/src/lib.rs:
crates/gendp-dfg/src/dot.rs:
crates/gendp-dfg/src/eval.rs:
crates/gendp-dfg/src/graph.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
