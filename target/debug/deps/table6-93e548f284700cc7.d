/root/repo/target/debug/deps/table6-93e548f284700cc7.d: crates/gendp-bench/src/bin/table6.rs Cargo.toml

/root/repo/target/debug/deps/libtable6-93e548f284700cc7.rmeta: crates/gendp-bench/src/bin/table6.rs Cargo.toml

crates/gendp-bench/src/bin/table6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
