/root/repo/target/debug/deps/gendp_runtime-ef38b900c2b18109.d: crates/gendp-runtime/src/lib.rs crates/gendp-runtime/src/batch.rs crates/gendp-runtime/src/device.rs crates/gendp-runtime/src/fault.rs crates/gendp-runtime/src/policy.rs crates/gendp-runtime/src/queue.rs crates/gendp-runtime/src/recovery.rs crates/gendp-runtime/src/report.rs crates/gendp-runtime/src/sync.rs crates/gendp-runtime/src/task.rs

/root/repo/target/debug/deps/gendp_runtime-ef38b900c2b18109: crates/gendp-runtime/src/lib.rs crates/gendp-runtime/src/batch.rs crates/gendp-runtime/src/device.rs crates/gendp-runtime/src/fault.rs crates/gendp-runtime/src/policy.rs crates/gendp-runtime/src/queue.rs crates/gendp-runtime/src/recovery.rs crates/gendp-runtime/src/report.rs crates/gendp-runtime/src/sync.rs crates/gendp-runtime/src/task.rs

crates/gendp-runtime/src/lib.rs:
crates/gendp-runtime/src/batch.rs:
crates/gendp-runtime/src/device.rs:
crates/gendp-runtime/src/fault.rs:
crates/gendp-runtime/src/policy.rs:
crates/gendp-runtime/src/queue.rs:
crates/gendp-runtime/src/recovery.rs:
crates/gendp-runtime/src/report.rs:
crates/gendp-runtime/src/sync.rs:
crates/gendp-runtime/src/task.rs:
