/root/repo/target/debug/deps/kernels_vs_dpax-3b6526b6ffe44d29.d: crates/gendp/../../tests/kernels_vs_dpax.rs

/root/repo/target/debug/deps/kernels_vs_dpax-3b6526b6ffe44d29: crates/gendp/../../tests/kernels_vs_dpax.rs

crates/gendp/../../tests/kernels_vs_dpax.rs:
