/root/repo/target/debug/deps/table12-da8863fbda3ea376.d: crates/gendp-bench/src/bin/table12.rs Cargo.toml

/root/repo/target/debug/deps/libtable12-da8863fbda3ea376.rmeta: crates/gendp-bench/src/bin/table12.rs Cargo.toml

crates/gendp-bench/src/bin/table12.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
