/root/repo/target/debug/deps/gendp_isa-6d8da5ce863afad2.d: crates/gendp-isa/src/lib.rs crates/gendp-isa/src/compute.rs crates/gendp-isa/src/control.rs crates/gendp-isa/src/error.rs crates/gendp-isa/src/loc.rs crates/gendp-isa/src/program.rs crates/gendp-isa/src/sem.rs crates/gendp-isa/src/word.rs

/root/repo/target/debug/deps/gendp_isa-6d8da5ce863afad2: crates/gendp-isa/src/lib.rs crates/gendp-isa/src/compute.rs crates/gendp-isa/src/control.rs crates/gendp-isa/src/error.rs crates/gendp-isa/src/loc.rs crates/gendp-isa/src/program.rs crates/gendp-isa/src/sem.rs crates/gendp-isa/src/word.rs

crates/gendp-isa/src/lib.rs:
crates/gendp-isa/src/compute.rs:
crates/gendp-isa/src/control.rs:
crates/gendp-isa/src/error.rs:
crates/gendp-isa/src/loc.rs:
crates/gendp-isa/src/program.rs:
crates/gendp-isa/src/sem.rs:
crates/gendp-isa/src/word.rs:
