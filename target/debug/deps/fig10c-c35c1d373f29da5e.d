/root/repo/target/debug/deps/fig10c-c35c1d373f29da5e.d: crates/gendp-bench/src/bin/fig10c.rs

/root/repo/target/debug/deps/fig10c-c35c1d373f29da5e: crates/gendp-bench/src/bin/fig10c.rs

crates/gendp-bench/src/bin/fig10c.rs:
