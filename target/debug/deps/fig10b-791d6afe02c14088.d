/root/repo/target/debug/deps/fig10b-791d6afe02c14088.d: crates/gendp-bench/src/bin/fig10b.rs

/root/repo/target/debug/deps/fig10b-791d6afe02c14088: crates/gendp-bench/src/bin/fig10b.rs

crates/gendp-bench/src/bin/fig10b.rs:
