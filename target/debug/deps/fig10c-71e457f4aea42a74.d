/root/repo/target/debug/deps/fig10c-71e457f4aea42a74.d: crates/gendp-bench/src/bin/fig10c.rs

/root/repo/target/debug/deps/fig10c-71e457f4aea42a74: crates/gendp-bench/src/bin/fig10c.rs

crates/gendp-bench/src/bin/fig10c.rs:
