/root/repo/target/debug/deps/ablations-2ce75ad3718a5fe3.d: crates/gendp-bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-2ce75ad3718a5fe3.rmeta: crates/gendp-bench/benches/ablations.rs Cargo.toml

crates/gendp-bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
