/root/repo/target/debug/deps/fig10c-b78f2e145212f1e3.d: crates/gendp-bench/src/bin/fig10c.rs Cargo.toml

/root/repo/target/debug/deps/libfig10c-b78f2e145212f1e3.rmeta: crates/gendp-bench/src/bin/fig10c.rs Cargo.toml

crates/gendp-bench/src/bin/fig10c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
