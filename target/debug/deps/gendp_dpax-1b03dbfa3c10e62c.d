/root/repo/target/debug/deps/gendp_dpax-1b03dbfa3c10e62c.d: crates/gendp-dpax/src/lib.rs crates/gendp-dpax/src/array.rs crates/gendp-dpax/src/config.rs crates/gendp-dpax/src/error.rs crates/gendp-dpax/src/pe.rs crates/gendp-dpax/src/stats.rs crates/gendp-dpax/src/trace.rs

/root/repo/target/debug/deps/libgendp_dpax-1b03dbfa3c10e62c.rlib: crates/gendp-dpax/src/lib.rs crates/gendp-dpax/src/array.rs crates/gendp-dpax/src/config.rs crates/gendp-dpax/src/error.rs crates/gendp-dpax/src/pe.rs crates/gendp-dpax/src/stats.rs crates/gendp-dpax/src/trace.rs

/root/repo/target/debug/deps/libgendp_dpax-1b03dbfa3c10e62c.rmeta: crates/gendp-dpax/src/lib.rs crates/gendp-dpax/src/array.rs crates/gendp-dpax/src/config.rs crates/gendp-dpax/src/error.rs crates/gendp-dpax/src/pe.rs crates/gendp-dpax/src/stats.rs crates/gendp-dpax/src/trace.rs

crates/gendp-dpax/src/lib.rs:
crates/gendp-dpax/src/array.rs:
crates/gendp-dpax/src/config.rs:
crates/gendp-dpax/src/error.rs:
crates/gendp-dpax/src/pe.rs:
crates/gendp-dpax/src/stats.rs:
crates/gendp-dpax/src/trace.rs:
