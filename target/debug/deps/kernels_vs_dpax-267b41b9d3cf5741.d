/root/repo/target/debug/deps/kernels_vs_dpax-267b41b9d3cf5741.d: crates/gendp/../../tests/kernels_vs_dpax.rs Cargo.toml

/root/repo/target/debug/deps/libkernels_vs_dpax-267b41b9d3cf5741.rmeta: crates/gendp/../../tests/kernels_vs_dpax.rs Cargo.toml

crates/gendp/../../tests/kernels_vs_dpax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
