/root/repo/target/debug/deps/align_modes-4af542e442825592.d: crates/gendp/../../tests/align_modes.rs

/root/repo/target/debug/deps/align_modes-4af542e442825592: crates/gendp/../../tests/align_modes.rs

crates/gendp/../../tests/align_modes.rs:
