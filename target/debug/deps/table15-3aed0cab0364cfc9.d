/root/repo/target/debug/deps/table15-3aed0cab0364cfc9.d: crates/gendp-bench/src/bin/table15.rs

/root/repo/target/debug/deps/table15-3aed0cab0364cfc9: crates/gendp-bench/src/bin/table15.rs

crates/gendp-bench/src/bin/table15.rs:
