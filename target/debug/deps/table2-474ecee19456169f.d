/root/repo/target/debug/deps/table2-474ecee19456169f.d: crates/gendp-bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-474ecee19456169f: crates/gendp-bench/src/bin/table2.rs

crates/gendp-bench/src/bin/table2.rs:
