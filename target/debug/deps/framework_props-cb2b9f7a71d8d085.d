/root/repo/target/debug/deps/framework_props-cb2b9f7a71d8d085.d: crates/gendp/../../tests/framework_props.rs

/root/repo/target/debug/deps/framework_props-cb2b9f7a71d8d085: crates/gendp/../../tests/framework_props.rs

crates/gendp/../../tests/framework_props.rs:
