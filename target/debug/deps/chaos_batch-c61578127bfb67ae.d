/root/repo/target/debug/deps/chaos_batch-c61578127bfb67ae.d: crates/gendp/../../tests/chaos_batch.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_batch-c61578127bfb67ae.rmeta: crates/gendp/../../tests/chaos_batch.rs Cargo.toml

crates/gendp/../../tests/chaos_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
