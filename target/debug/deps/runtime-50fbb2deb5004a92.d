/root/repo/target/debug/deps/runtime-50fbb2deb5004a92.d: crates/gendp-bench/benches/runtime.rs Cargo.toml

/root/repo/target/debug/deps/libruntime-50fbb2deb5004a92.rmeta: crates/gendp-bench/benches/runtime.rs Cargo.toml

crates/gendp-bench/benches/runtime.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
