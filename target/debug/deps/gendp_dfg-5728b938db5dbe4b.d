/root/repo/target/debug/deps/gendp_dfg-5728b938db5dbe4b.d: crates/gendp-dfg/src/lib.rs crates/gendp-dfg/src/dot.rs crates/gendp-dfg/src/eval.rs crates/gendp-dfg/src/graph.rs

/root/repo/target/debug/deps/gendp_dfg-5728b938db5dbe4b: crates/gendp-dfg/src/lib.rs crates/gendp-dfg/src/dot.rs crates/gendp-dfg/src/eval.rs crates/gendp-dfg/src/graph.rs

crates/gendp-dfg/src/lib.rs:
crates/gendp-dfg/src/dot.rs:
crates/gendp-dfg/src/eval.rs:
crates/gendp-dfg/src/graph.rs:
