/root/repo/target/debug/deps/gendp_bench-3174813f895181c8.d: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs

/root/repo/target/debug/deps/libgendp_bench-3174813f895181c8.rlib: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs

/root/repo/target/debug/deps/libgendp_bench-3174813f895181c8.rmeta: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs

crates/gendp-bench/src/lib.rs:
crates/gendp-bench/src/measure.rs:
crates/gendp-bench/src/tables.rs:
