/root/repo/target/debug/deps/gendp_model-da52af6d53027fd3.d: crates/gendp-model/src/lib.rs crates/gendp-model/src/area.rs crates/gendp-model/src/baselines.rs crates/gendp-model/src/dram.rs crates/gendp-model/src/power.rs crates/gendp-model/src/scalability.rs crates/gendp-model/src/scalar_isa.rs crates/gendp-model/src/scaling.rs crates/gendp-model/src/softbrain.rs crates/gendp-model/src/throughput.rs crates/gendp-model/src/tia.rs Cargo.toml

/root/repo/target/debug/deps/libgendp_model-da52af6d53027fd3.rmeta: crates/gendp-model/src/lib.rs crates/gendp-model/src/area.rs crates/gendp-model/src/baselines.rs crates/gendp-model/src/dram.rs crates/gendp-model/src/power.rs crates/gendp-model/src/scalability.rs crates/gendp-model/src/scalar_isa.rs crates/gendp-model/src/scaling.rs crates/gendp-model/src/softbrain.rs crates/gendp-model/src/throughput.rs crates/gendp-model/src/tia.rs Cargo.toml

crates/gendp-model/src/lib.rs:
crates/gendp-model/src/area.rs:
crates/gendp-model/src/baselines.rs:
crates/gendp-model/src/dram.rs:
crates/gendp-model/src/power.rs:
crates/gendp-model/src/scalability.rs:
crates/gendp-model/src/scalar_isa.rs:
crates/gendp-model/src/scaling.rs:
crates/gendp-model/src/softbrain.rs:
crates/gendp-model/src/throughput.rs:
crates/gendp-model/src/tia.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
