/root/repo/target/debug/deps/prop-43313b1d13b7fd7d.d: crates/gendp-dpmap/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-43313b1d13b7fd7d.rmeta: crates/gendp-dpmap/tests/prop.rs Cargo.toml

crates/gendp-dpmap/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
