/root/repo/target/debug/deps/all_experiments-caa447c278b174c9.d: crates/gendp-bench/src/bin/all-experiments.rs Cargo.toml

/root/repo/target/debug/deps/liball_experiments-caa447c278b174c9.rmeta: crates/gendp-bench/src/bin/all-experiments.rs Cargo.toml

crates/gendp-bench/src/bin/all-experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
