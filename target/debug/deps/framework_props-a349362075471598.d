/root/repo/target/debug/deps/framework_props-a349362075471598.d: crates/gendp/../../tests/framework_props.rs

/root/repo/target/debug/deps/framework_props-a349362075471598: crates/gendp/../../tests/framework_props.rs

crates/gendp/../../tests/framework_props.rs:
