/root/repo/target/debug/deps/fig10c-0ea5b31fb25d2fdf.d: crates/gendp-bench/src/bin/fig10c.rs

/root/repo/target/debug/deps/fig10c-0ea5b31fb25d2fdf: crates/gendp-bench/src/bin/fig10c.rs

crates/gendp-bench/src/bin/fig10c.rs:
