/root/repo/target/debug/deps/gendp_isa-779b621998be0a30.d: crates/gendp-isa/src/lib.rs crates/gendp-isa/src/compute.rs crates/gendp-isa/src/control.rs crates/gendp-isa/src/error.rs crates/gendp-isa/src/loc.rs crates/gendp-isa/src/program.rs crates/gendp-isa/src/sem.rs crates/gendp-isa/src/word.rs

/root/repo/target/debug/deps/libgendp_isa-779b621998be0a30.rlib: crates/gendp-isa/src/lib.rs crates/gendp-isa/src/compute.rs crates/gendp-isa/src/control.rs crates/gendp-isa/src/error.rs crates/gendp-isa/src/loc.rs crates/gendp-isa/src/program.rs crates/gendp-isa/src/sem.rs crates/gendp-isa/src/word.rs

/root/repo/target/debug/deps/libgendp_isa-779b621998be0a30.rmeta: crates/gendp-isa/src/lib.rs crates/gendp-isa/src/compute.rs crates/gendp-isa/src/control.rs crates/gendp-isa/src/error.rs crates/gendp-isa/src/loc.rs crates/gendp-isa/src/program.rs crates/gendp-isa/src/sem.rs crates/gendp-isa/src/word.rs

crates/gendp-isa/src/lib.rs:
crates/gendp-isa/src/compute.rs:
crates/gendp-isa/src/control.rs:
crates/gendp-isa/src/error.rs:
crates/gendp-isa/src/loc.rs:
crates/gendp-isa/src/program.rs:
crates/gendp-isa/src/sem.rs:
crates/gendp-isa/src/word.rs:
