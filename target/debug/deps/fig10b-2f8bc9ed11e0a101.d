/root/repo/target/debug/deps/fig10b-2f8bc9ed11e0a101.d: crates/gendp-bench/src/bin/fig10b.rs

/root/repo/target/debug/deps/fig10b-2f8bc9ed11e0a101: crates/gendp-bench/src/bin/fig10b.rs

crates/gendp-bench/src/bin/fig10b.rs:
