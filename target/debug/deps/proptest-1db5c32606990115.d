/root/repo/target/debug/deps/proptest-1db5c32606990115.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-1db5c32606990115: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
