/root/repo/target/debug/deps/gendp_dfg-ad766e15e3b7bdc1.d: crates/gendp-dfg/src/lib.rs crates/gendp-dfg/src/dot.rs crates/gendp-dfg/src/eval.rs crates/gendp-dfg/src/graph.rs

/root/repo/target/debug/deps/libgendp_dfg-ad766e15e3b7bdc1.rlib: crates/gendp-dfg/src/lib.rs crates/gendp-dfg/src/dot.rs crates/gendp-dfg/src/eval.rs crates/gendp-dfg/src/graph.rs

/root/repo/target/debug/deps/libgendp_dfg-ad766e15e3b7bdc1.rmeta: crates/gendp-dfg/src/lib.rs crates/gendp-dfg/src/dot.rs crates/gendp-dfg/src/eval.rs crates/gendp-dfg/src/graph.rs

crates/gendp-dfg/src/lib.rs:
crates/gendp-dfg/src/dot.rs:
crates/gendp-dfg/src/eval.rs:
crates/gendp-dfg/src/graph.rs:
