/root/repo/target/debug/deps/pruning-da7443de7c320515.d: crates/gendp-bench/src/bin/pruning.rs

/root/repo/target/debug/deps/pruning-da7443de7c320515: crates/gendp-bench/src/bin/pruning.rs

crates/gendp-bench/src/bin/pruning.rs:
