/root/repo/target/debug/deps/table9-5b764dd0d26439b2.d: crates/gendp-bench/src/bin/table9.rs

/root/repo/target/debug/deps/table9-5b764dd0d26439b2: crates/gendp-bench/src/bin/table9.rs

crates/gendp-bench/src/bin/table9.rs:
