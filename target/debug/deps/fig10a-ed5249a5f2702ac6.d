/root/repo/target/debug/deps/fig10a-ed5249a5f2702ac6.d: crates/gendp-bench/src/bin/fig10a.rs Cargo.toml

/root/repo/target/debug/deps/libfig10a-ed5249a5f2702ac6.rmeta: crates/gendp-bench/src/bin/fig10a.rs Cargo.toml

crates/gendp-bench/src/bin/fig10a.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
