/root/repo/target/debug/deps/table6-567e8bb05bbc0491.d: crates/gendp-bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-567e8bb05bbc0491: crates/gendp-bench/src/bin/table6.rs

crates/gendp-bench/src/bin/table6.rs:
