/root/repo/target/debug/deps/table9-5b21951d3f3d2dbb.d: crates/gendp-bench/src/bin/table9.rs

/root/repo/target/debug/deps/table9-5b21951d3f3d2dbb: crates/gendp-bench/src/bin/table9.rs

crates/gendp-bench/src/bin/table9.rs:
