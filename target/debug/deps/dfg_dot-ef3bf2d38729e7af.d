/root/repo/target/debug/deps/dfg_dot-ef3bf2d38729e7af.d: crates/gendp-bench/src/bin/dfg-dot.rs

/root/repo/target/debug/deps/dfg_dot-ef3bf2d38729e7af: crates/gendp-bench/src/bin/dfg-dot.rs

crates/gendp-bench/src/bin/dfg-dot.rs:
