/root/repo/target/debug/deps/deprange-66e4607ca3c16fa7.d: crates/gendp-bench/src/bin/deprange.rs

/root/repo/target/debug/deps/deprange-66e4607ca3c16fa7: crates/gendp-bench/src/bin/deprange.rs

crates/gendp-bench/src/bin/deprange.rs:
