/root/repo/target/debug/deps/gendp_seq-44da635e6106bec6.d: crates/gendp-seq/src/lib.rs crates/gendp-seq/src/anchors.rs crates/gendp-seq/src/fasta.rs crates/gendp-seq/src/phred.rs crates/gendp-seq/src/base.rs crates/gendp-seq/src/genome.rs crates/gendp-seq/src/haplotype.rs crates/gendp-seq/src/mutate.rs crates/gendp-seq/src/readgroup.rs crates/gendp-seq/src/reads.rs crates/gendp-seq/src/seq.rs

/root/repo/target/debug/deps/libgendp_seq-44da635e6106bec6.rlib: crates/gendp-seq/src/lib.rs crates/gendp-seq/src/anchors.rs crates/gendp-seq/src/fasta.rs crates/gendp-seq/src/phred.rs crates/gendp-seq/src/base.rs crates/gendp-seq/src/genome.rs crates/gendp-seq/src/haplotype.rs crates/gendp-seq/src/mutate.rs crates/gendp-seq/src/readgroup.rs crates/gendp-seq/src/reads.rs crates/gendp-seq/src/seq.rs

/root/repo/target/debug/deps/libgendp_seq-44da635e6106bec6.rmeta: crates/gendp-seq/src/lib.rs crates/gendp-seq/src/anchors.rs crates/gendp-seq/src/fasta.rs crates/gendp-seq/src/phred.rs crates/gendp-seq/src/base.rs crates/gendp-seq/src/genome.rs crates/gendp-seq/src/haplotype.rs crates/gendp-seq/src/mutate.rs crates/gendp-seq/src/readgroup.rs crates/gendp-seq/src/reads.rs crates/gendp-seq/src/seq.rs

crates/gendp-seq/src/lib.rs:
crates/gendp-seq/src/anchors.rs:
crates/gendp-seq/src/fasta.rs:
crates/gendp-seq/src/phred.rs:
crates/gendp-seq/src/base.rs:
crates/gendp-seq/src/genome.rs:
crates/gendp-seq/src/haplotype.rs:
crates/gendp-seq/src/mutate.rs:
crates/gendp-seq/src/readgroup.rs:
crates/gendp-seq/src/reads.rs:
crates/gendp-seq/src/seq.rs:
