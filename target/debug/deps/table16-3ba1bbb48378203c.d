/root/repo/target/debug/deps/table16-3ba1bbb48378203c.d: crates/gendp-bench/src/bin/table16.rs

/root/repo/target/debug/deps/table16-3ba1bbb48378203c: crates/gendp-bench/src/bin/table16.rs

crates/gendp-bench/src/bin/table16.rs:
