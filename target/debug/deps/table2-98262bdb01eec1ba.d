/root/repo/target/debug/deps/table2-98262bdb01eec1ba.d: crates/gendp-bench/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-98262bdb01eec1ba.rmeta: crates/gendp-bench/src/bin/table2.rs Cargo.toml

crates/gendp-bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
