/root/repo/target/debug/deps/fig10d-4bfb2a83593cceea.d: crates/gendp-bench/src/bin/fig10d.rs Cargo.toml

/root/repo/target/debug/deps/libfig10d-4bfb2a83593cceea.rmeta: crates/gendp-bench/src/bin/fig10d.rs Cargo.toml

crates/gendp-bench/src/bin/fig10d.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
