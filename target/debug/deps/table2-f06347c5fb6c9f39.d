/root/repo/target/debug/deps/table2-f06347c5fb6c9f39.d: crates/gendp-bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-f06347c5fb6c9f39: crates/gendp-bench/src/bin/table2.rs

crates/gendp-bench/src/bin/table2.rs:
