/root/repo/target/debug/deps/kernels_vs_dpax-030f274f90b55bec.d: crates/gendp/../../tests/kernels_vs_dpax.rs

/root/repo/target/debug/deps/kernels_vs_dpax-030f274f90b55bec: crates/gendp/../../tests/kernels_vs_dpax.rs

crates/gendp/../../tests/kernels_vs_dpax.rs:
