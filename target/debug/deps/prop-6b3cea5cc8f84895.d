/root/repo/target/debug/deps/prop-6b3cea5cc8f84895.d: crates/gendp-dpmap/tests/prop.rs

/root/repo/target/debug/deps/prop-6b3cea5cc8f84895: crates/gendp-dpmap/tests/prop.rs

crates/gendp-dpmap/tests/prop.rs:
