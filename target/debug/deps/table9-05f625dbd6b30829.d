/root/repo/target/debug/deps/table9-05f625dbd6b30829.d: crates/gendp-bench/src/bin/table9.rs Cargo.toml

/root/repo/target/debug/deps/libtable9-05f625dbd6b30829.rmeta: crates/gendp-bench/src/bin/table9.rs Cargo.toml

crates/gendp-bench/src/bin/table9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
