/root/repo/target/debug/deps/deprange-4b1536d0616829ac.d: crates/gendp-bench/src/bin/deprange.rs Cargo.toml

/root/repo/target/debug/deps/libdeprange-4b1536d0616829ac.rmeta: crates/gendp-bench/src/bin/deprange.rs Cargo.toml

crates/gendp-bench/src/bin/deprange.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
