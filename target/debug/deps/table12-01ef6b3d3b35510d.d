/root/repo/target/debug/deps/table12-01ef6b3d3b35510d.d: crates/gendp-bench/src/bin/table12.rs

/root/repo/target/debug/deps/table12-01ef6b3d3b35510d: crates/gendp-bench/src/bin/table12.rs

crates/gendp-bench/src/bin/table12.rs:
