/root/repo/target/debug/deps/fig10b-fa0d72af04a18bc3.d: crates/gendp-bench/src/bin/fig10b.rs Cargo.toml

/root/repo/target/debug/deps/libfig10b-fa0d72af04a18bc3.rmeta: crates/gendp-bench/src/bin/fig10b.rs Cargo.toml

crates/gendp-bench/src/bin/fig10b.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
