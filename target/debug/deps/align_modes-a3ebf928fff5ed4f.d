/root/repo/target/debug/deps/align_modes-a3ebf928fff5ed4f.d: crates/gendp/../../tests/align_modes.rs

/root/repo/target/debug/deps/align_modes-a3ebf928fff5ed4f: crates/gendp/../../tests/align_modes.rs

crates/gendp/../../tests/align_modes.rs:
