/root/repo/target/debug/deps/dpax-ef2340fb91ac03b3.d: crates/gendp-bench/benches/dpax.rs Cargo.toml

/root/repo/target/debug/deps/libdpax-ef2340fb91ac03b3.rmeta: crates/gendp-bench/benches/dpax.rs Cargo.toml

crates/gendp-bench/benches/dpax.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
