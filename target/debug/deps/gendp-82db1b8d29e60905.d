/root/repo/target/debug/deps/gendp-82db1b8d29e60905.d: crates/gendp/src/lib.rs

/root/repo/target/debug/deps/libgendp-82db1b8d29e60905.rlib: crates/gendp/src/lib.rs

/root/repo/target/debug/deps/libgendp-82db1b8d29e60905.rmeta: crates/gendp/src/lib.rs

crates/gendp/src/lib.rs:
