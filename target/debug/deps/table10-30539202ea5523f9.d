/root/repo/target/debug/deps/table10-30539202ea5523f9.d: crates/gendp-bench/src/bin/table10.rs

/root/repo/target/debug/deps/table10-30539202ea5523f9: crates/gendp-bench/src/bin/table10.rs

crates/gendp-bench/src/bin/table10.rs:
