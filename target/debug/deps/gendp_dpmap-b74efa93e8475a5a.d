/root/repo/target/debug/deps/gendp_dpmap-b74efa93e8475a5a.d: crates/gendp-dpmap/src/lib.rs crates/gendp-dpmap/src/codegen.rs crates/gendp-dpmap/src/phases.rs crates/gendp-dpmap/src/stats.rs crates/gendp-dpmap/src/subgraph.rs crates/gendp-dpmap/src/work.rs Cargo.toml

/root/repo/target/debug/deps/libgendp_dpmap-b74efa93e8475a5a.rmeta: crates/gendp-dpmap/src/lib.rs crates/gendp-dpmap/src/codegen.rs crates/gendp-dpmap/src/phases.rs crates/gendp-dpmap/src/stats.rs crates/gendp-dpmap/src/subgraph.rs crates/gendp-dpmap/src/work.rs Cargo.toml

crates/gendp-dpmap/src/lib.rs:
crates/gendp-dpmap/src/codegen.rs:
crates/gendp-dpmap/src/phases.rs:
crates/gendp-dpmap/src/stats.rs:
crates/gendp-dpmap/src/subgraph.rs:
crates/gendp-dpmap/src/work.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
