/root/repo/target/debug/deps/pruning-4f32df41e228084b.d: crates/gendp-bench/src/bin/pruning.rs

/root/repo/target/debug/deps/pruning-4f32df41e228084b: crates/gendp-bench/src/bin/pruning.rs

crates/gendp-bench/src/bin/pruning.rs:
