/root/repo/target/debug/deps/table15-e4edcae44705865e.d: crates/gendp-bench/src/bin/table15.rs

/root/repo/target/debug/deps/table15-e4edcae44705865e: crates/gendp-bench/src/bin/table15.rs

crates/gendp-bench/src/bin/table15.rs:
