/root/repo/target/debug/deps/table7-ce6780fd1e300084.d: crates/gendp-bench/src/bin/table7.rs

/root/repo/target/debug/deps/table7-ce6780fd1e300084: crates/gendp-bench/src/bin/table7.rs

crates/gendp-bench/src/bin/table7.rs:
