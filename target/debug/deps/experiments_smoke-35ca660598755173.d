/root/repo/target/debug/deps/experiments_smoke-35ca660598755173.d: crates/gendp/../../tests/experiments_smoke.rs

/root/repo/target/debug/deps/experiments_smoke-35ca660598755173: crates/gendp/../../tests/experiments_smoke.rs

crates/gendp/../../tests/experiments_smoke.rs:
