/root/repo/target/debug/deps/gendp_seq-d031006360faab3c.d: crates/gendp-seq/src/lib.rs crates/gendp-seq/src/anchors.rs crates/gendp-seq/src/base.rs crates/gendp-seq/src/fasta.rs crates/gendp-seq/src/genome.rs crates/gendp-seq/src/haplotype.rs crates/gendp-seq/src/mutate.rs crates/gendp-seq/src/phred.rs crates/gendp-seq/src/readgroup.rs crates/gendp-seq/src/reads.rs crates/gendp-seq/src/seq.rs Cargo.toml

/root/repo/target/debug/deps/libgendp_seq-d031006360faab3c.rmeta: crates/gendp-seq/src/lib.rs crates/gendp-seq/src/anchors.rs crates/gendp-seq/src/base.rs crates/gendp-seq/src/fasta.rs crates/gendp-seq/src/genome.rs crates/gendp-seq/src/haplotype.rs crates/gendp-seq/src/mutate.rs crates/gendp-seq/src/phred.rs crates/gendp-seq/src/readgroup.rs crates/gendp-seq/src/reads.rs crates/gendp-seq/src/seq.rs Cargo.toml

crates/gendp-seq/src/lib.rs:
crates/gendp-seq/src/anchors.rs:
crates/gendp-seq/src/base.rs:
crates/gendp-seq/src/fasta.rs:
crates/gendp-seq/src/genome.rs:
crates/gendp-seq/src/haplotype.rs:
crates/gendp-seq/src/mutate.rs:
crates/gendp-seq/src/phred.rs:
crates/gendp-seq/src/readgroup.rs:
crates/gendp-seq/src/reads.rs:
crates/gendp-seq/src/seq.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
