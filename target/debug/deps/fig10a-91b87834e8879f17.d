/root/repo/target/debug/deps/fig10a-91b87834e8879f17.d: crates/gendp-bench/src/bin/fig10a.rs

/root/repo/target/debug/deps/fig10a-91b87834e8879f17: crates/gendp-bench/src/bin/fig10a.rs

crates/gendp-bench/src/bin/fig10a.rs:
