/root/repo/target/debug/deps/table11-a7fa5c513a0862c1.d: crates/gendp-bench/src/bin/table11.rs

/root/repo/target/debug/deps/table11-a7fa5c513a0862c1: crates/gendp-bench/src/bin/table11.rs

crates/gendp-bench/src/bin/table11.rs:
