/root/repo/target/debug/deps/table11-5af8e4fbe903970a.d: crates/gendp-bench/src/bin/table11.rs Cargo.toml

/root/repo/target/debug/deps/libtable11-5af8e4fbe903970a.rmeta: crates/gendp-bench/src/bin/table11.rs Cargo.toml

crates/gendp-bench/src/bin/table11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
