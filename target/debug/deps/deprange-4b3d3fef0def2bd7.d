/root/repo/target/debug/deps/deprange-4b3d3fef0def2bd7.d: crates/gendp-bench/src/bin/deprange.rs

/root/repo/target/debug/deps/deprange-4b3d3fef0def2bd7: crates/gendp-bench/src/bin/deprange.rs

crates/gendp-bench/src/bin/deprange.rs:
