/root/repo/target/debug/deps/dpmap-ecd0c00d3f6f4c9e.d: crates/gendp-bench/benches/dpmap.rs Cargo.toml

/root/repo/target/debug/deps/libdpmap-ecd0c00d3f6f4c9e.rmeta: crates/gendp-bench/benches/dpmap.rs Cargo.toml

crates/gendp-bench/benches/dpmap.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
