/root/repo/target/debug/deps/table11-ca1bdcb00c861eb8.d: crates/gendp-bench/src/bin/table11.rs

/root/repo/target/debug/deps/table11-ca1bdcb00c861eb8: crates/gendp-bench/src/bin/table11.rs

crates/gendp-bench/src/bin/table11.rs:
