/root/repo/target/debug/deps/table14-d52686825dda7cc6.d: crates/gendp-bench/src/bin/table14.rs Cargo.toml

/root/repo/target/debug/deps/libtable14-d52686825dda7cc6.rmeta: crates/gendp-bench/src/bin/table14.rs Cargo.toml

crates/gendp-bench/src/bin/table14.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
