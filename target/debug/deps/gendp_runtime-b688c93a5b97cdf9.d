/root/repo/target/debug/deps/gendp_runtime-b688c93a5b97cdf9.d: crates/gendp-runtime/src/lib.rs crates/gendp-runtime/src/batch.rs crates/gendp-runtime/src/device.rs crates/gendp-runtime/src/fault.rs crates/gendp-runtime/src/policy.rs crates/gendp-runtime/src/queue.rs crates/gendp-runtime/src/recovery.rs crates/gendp-runtime/src/report.rs crates/gendp-runtime/src/sync.rs crates/gendp-runtime/src/task.rs

/root/repo/target/debug/deps/libgendp_runtime-b688c93a5b97cdf9.rlib: crates/gendp-runtime/src/lib.rs crates/gendp-runtime/src/batch.rs crates/gendp-runtime/src/device.rs crates/gendp-runtime/src/fault.rs crates/gendp-runtime/src/policy.rs crates/gendp-runtime/src/queue.rs crates/gendp-runtime/src/recovery.rs crates/gendp-runtime/src/report.rs crates/gendp-runtime/src/sync.rs crates/gendp-runtime/src/task.rs

/root/repo/target/debug/deps/libgendp_runtime-b688c93a5b97cdf9.rmeta: crates/gendp-runtime/src/lib.rs crates/gendp-runtime/src/batch.rs crates/gendp-runtime/src/device.rs crates/gendp-runtime/src/fault.rs crates/gendp-runtime/src/policy.rs crates/gendp-runtime/src/queue.rs crates/gendp-runtime/src/recovery.rs crates/gendp-runtime/src/report.rs crates/gendp-runtime/src/sync.rs crates/gendp-runtime/src/task.rs

crates/gendp-runtime/src/lib.rs:
crates/gendp-runtime/src/batch.rs:
crates/gendp-runtime/src/device.rs:
crates/gendp-runtime/src/fault.rs:
crates/gendp-runtime/src/policy.rs:
crates/gendp-runtime/src/queue.rs:
crates/gendp-runtime/src/recovery.rs:
crates/gendp-runtime/src/report.rs:
crates/gendp-runtime/src/sync.rs:
crates/gendp-runtime/src/task.rs:
