/root/repo/target/debug/deps/table9-ad6d41569de5d765.d: crates/gendp-bench/src/bin/table9.rs

/root/repo/target/debug/deps/table9-ad6d41569de5d765: crates/gendp-bench/src/bin/table9.rs

crates/gendp-bench/src/bin/table9.rs:
