/root/repo/target/debug/deps/pipeline-e54aad0b1fea6080.d: crates/gendp/../../tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-e54aad0b1fea6080: crates/gendp/../../tests/pipeline.rs

crates/gendp/../../tests/pipeline.rs:
