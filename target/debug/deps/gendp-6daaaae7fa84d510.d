/root/repo/target/debug/deps/gendp-6daaaae7fa84d510.d: crates/gendp/src/lib.rs

/root/repo/target/debug/deps/libgendp-6daaaae7fa84d510.rlib: crates/gendp/src/lib.rs

/root/repo/target/debug/deps/libgendp-6daaaae7fa84d510.rmeta: crates/gendp/src/lib.rs

crates/gendp/src/lib.rs:
