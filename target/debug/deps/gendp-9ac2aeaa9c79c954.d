/root/repo/target/debug/deps/gendp-9ac2aeaa9c79c954.d: crates/gendp/src/lib.rs

/root/repo/target/debug/deps/gendp-9ac2aeaa9c79c954: crates/gendp/src/lib.rs

crates/gendp/src/lib.rs:
