/root/repo/target/debug/deps/table6-c77070fa8cee832c.d: crates/gendp-bench/src/bin/table6.rs

/root/repo/target/debug/deps/table6-c77070fa8cee832c: crates/gendp-bench/src/bin/table6.rs

crates/gendp-bench/src/bin/table6.rs:
