/root/repo/target/debug/deps/gendp_dpax-d95995010a36872e.d: crates/gendp-dpax/src/lib.rs crates/gendp-dpax/src/array.rs crates/gendp-dpax/src/config.rs crates/gendp-dpax/src/error.rs crates/gendp-dpax/src/pe.rs crates/gendp-dpax/src/stats.rs crates/gendp-dpax/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libgendp_dpax-d95995010a36872e.rmeta: crates/gendp-dpax/src/lib.rs crates/gendp-dpax/src/array.rs crates/gendp-dpax/src/config.rs crates/gendp-dpax/src/error.rs crates/gendp-dpax/src/pe.rs crates/gendp-dpax/src/stats.rs crates/gendp-dpax/src/trace.rs Cargo.toml

crates/gendp-dpax/src/lib.rs:
crates/gendp-dpax/src/array.rs:
crates/gendp-dpax/src/config.rs:
crates/gendp-dpax/src/error.rs:
crates/gendp-dpax/src/pe.rs:
crates/gendp-dpax/src/stats.rs:
crates/gendp-dpax/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
