/root/repo/target/debug/deps/kernels-f840c6bac50d61eb.d: crates/gendp-bench/benches/kernels.rs Cargo.toml

/root/repo/target/debug/deps/libkernels-f840c6bac50d61eb.rmeta: crates/gendp-bench/benches/kernels.rs Cargo.toml

crates/gendp-bench/benches/kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
