/root/repo/target/debug/deps/dfg_dot-a4b379d9481a7075.d: crates/gendp-bench/src/bin/dfg-dot.rs Cargo.toml

/root/repo/target/debug/deps/libdfg_dot-a4b379d9481a7075.rmeta: crates/gendp-bench/src/bin/dfg-dot.rs Cargo.toml

crates/gendp-bench/src/bin/dfg-dot.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
