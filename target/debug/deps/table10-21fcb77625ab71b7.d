/root/repo/target/debug/deps/table10-21fcb77625ab71b7.d: crates/gendp-bench/src/bin/table10.rs Cargo.toml

/root/repo/target/debug/deps/libtable10-21fcb77625ab71b7.rmeta: crates/gendp-bench/src/bin/table10.rs Cargo.toml

crates/gendp-bench/src/bin/table10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
