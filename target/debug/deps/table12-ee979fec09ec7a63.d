/root/repo/target/debug/deps/table12-ee979fec09ec7a63.d: crates/gendp-bench/src/bin/table12.rs

/root/repo/target/debug/deps/table12-ee979fec09ec7a63: crates/gendp-bench/src/bin/table12.rs

crates/gendp-bench/src/bin/table12.rs:
