/root/repo/target/debug/deps/table12-417640f0cbbafb21.d: crates/gendp-bench/src/bin/table12.rs

/root/repo/target/debug/deps/table12-417640f0cbbafb21: crates/gendp-bench/src/bin/table12.rs

crates/gendp-bench/src/bin/table12.rs:
