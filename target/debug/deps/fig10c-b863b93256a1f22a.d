/root/repo/target/debug/deps/fig10c-b863b93256a1f22a.d: crates/gendp-bench/src/bin/fig10c.rs

/root/repo/target/debug/deps/fig10c-b863b93256a1f22a: crates/gendp-bench/src/bin/fig10c.rs

crates/gendp-bench/src/bin/fig10c.rs:
