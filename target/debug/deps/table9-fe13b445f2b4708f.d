/root/repo/target/debug/deps/table9-fe13b445f2b4708f.d: crates/gendp-bench/src/bin/table9.rs

/root/repo/target/debug/deps/table9-fe13b445f2b4708f: crates/gendp-bench/src/bin/table9.rs

crates/gendp-bench/src/bin/table9.rs:
