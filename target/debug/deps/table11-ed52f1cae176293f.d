/root/repo/target/debug/deps/table11-ed52f1cae176293f.d: crates/gendp-bench/src/bin/table11.rs Cargo.toml

/root/repo/target/debug/deps/libtable11-ed52f1cae176293f.rmeta: crates/gendp-bench/src/bin/table11.rs Cargo.toml

crates/gendp-bench/src/bin/table11.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
