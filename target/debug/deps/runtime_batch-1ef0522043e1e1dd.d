/root/repo/target/debug/deps/runtime_batch-1ef0522043e1e1dd.d: crates/gendp/../../tests/runtime_batch.rs Cargo.toml

/root/repo/target/debug/deps/libruntime_batch-1ef0522043e1e1dd.rmeta: crates/gendp/../../tests/runtime_batch.rs Cargo.toml

crates/gendp/../../tests/runtime_batch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
