/root/repo/target/debug/deps/table8-3be02a0f64630a1c.d: crates/gendp-bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-3be02a0f64630a1c: crates/gendp-bench/src/bin/table8.rs

crates/gendp-bench/src/bin/table8.rs:
