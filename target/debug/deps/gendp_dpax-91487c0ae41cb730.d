/root/repo/target/debug/deps/gendp_dpax-91487c0ae41cb730.d: crates/gendp-dpax/src/lib.rs crates/gendp-dpax/src/array.rs crates/gendp-dpax/src/config.rs crates/gendp-dpax/src/error.rs crates/gendp-dpax/src/pe.rs crates/gendp-dpax/src/stats.rs crates/gendp-dpax/src/trace.rs

/root/repo/target/debug/deps/gendp_dpax-91487c0ae41cb730: crates/gendp-dpax/src/lib.rs crates/gendp-dpax/src/array.rs crates/gendp-dpax/src/config.rs crates/gendp-dpax/src/error.rs crates/gendp-dpax/src/pe.rs crates/gendp-dpax/src/stats.rs crates/gendp-dpax/src/trace.rs

crates/gendp-dpax/src/lib.rs:
crates/gendp-dpax/src/array.rs:
crates/gendp-dpax/src/config.rs:
crates/gendp-dpax/src/error.rs:
crates/gendp-dpax/src/pe.rs:
crates/gendp-dpax/src/stats.rs:
crates/gendp-dpax/src/trace.rs:
