/root/repo/target/debug/deps/table8-50059cfc04322fd2.d: crates/gendp-bench/src/bin/table8.rs

/root/repo/target/debug/deps/table8-50059cfc04322fd2: crates/gendp-bench/src/bin/table8.rs

crates/gendp-bench/src/bin/table8.rs:
