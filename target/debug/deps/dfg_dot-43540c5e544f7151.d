/root/repo/target/debug/deps/dfg_dot-43540c5e544f7151.d: crates/gendp-bench/src/bin/dfg-dot.rs

/root/repo/target/debug/deps/dfg_dot-43540c5e544f7151: crates/gendp-bench/src/bin/dfg-dot.rs

crates/gendp-bench/src/bin/dfg-dot.rs:
