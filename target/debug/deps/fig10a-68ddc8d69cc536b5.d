/root/repo/target/debug/deps/fig10a-68ddc8d69cc536b5.d: crates/gendp-bench/src/bin/fig10a.rs

/root/repo/target/debug/deps/fig10a-68ddc8d69cc536b5: crates/gendp-bench/src/bin/fig10a.rs

crates/gendp-bench/src/bin/fig10a.rs:
