/root/repo/target/debug/deps/align_modes-aeb15fb5059f2e49.d: crates/gendp/../../tests/align_modes.rs Cargo.toml

/root/repo/target/debug/deps/libalign_modes-aeb15fb5059f2e49.rmeta: crates/gendp/../../tests/align_modes.rs Cargo.toml

crates/gendp/../../tests/align_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
