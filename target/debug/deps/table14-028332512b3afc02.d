/root/repo/target/debug/deps/table14-028332512b3afc02.d: crates/gendp-bench/src/bin/table14.rs

/root/repo/target/debug/deps/table14-028332512b3afc02: crates/gendp-bench/src/bin/table14.rs

crates/gendp-bench/src/bin/table14.rs:
