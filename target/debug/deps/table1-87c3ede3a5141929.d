/root/repo/target/debug/deps/table1-87c3ede3a5141929.d: crates/gendp-bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-87c3ede3a5141929: crates/gendp-bench/src/bin/table1.rs

crates/gendp-bench/src/bin/table1.rs:
