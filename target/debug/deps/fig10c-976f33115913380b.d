/root/repo/target/debug/deps/fig10c-976f33115913380b.d: crates/gendp-bench/src/bin/fig10c.rs Cargo.toml

/root/repo/target/debug/deps/libfig10c-976f33115913380b.rmeta: crates/gendp-bench/src/bin/fig10c.rs Cargo.toml

crates/gendp-bench/src/bin/fig10c.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
