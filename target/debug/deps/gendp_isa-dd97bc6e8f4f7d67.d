/root/repo/target/debug/deps/gendp_isa-dd97bc6e8f4f7d67.d: crates/gendp-isa/src/lib.rs crates/gendp-isa/src/compute.rs crates/gendp-isa/src/control.rs crates/gendp-isa/src/error.rs crates/gendp-isa/src/loc.rs crates/gendp-isa/src/program.rs crates/gendp-isa/src/sem.rs crates/gendp-isa/src/word.rs Cargo.toml

/root/repo/target/debug/deps/libgendp_isa-dd97bc6e8f4f7d67.rmeta: crates/gendp-isa/src/lib.rs crates/gendp-isa/src/compute.rs crates/gendp-isa/src/control.rs crates/gendp-isa/src/error.rs crates/gendp-isa/src/loc.rs crates/gendp-isa/src/program.rs crates/gendp-isa/src/sem.rs crates/gendp-isa/src/word.rs Cargo.toml

crates/gendp-isa/src/lib.rs:
crates/gendp-isa/src/compute.rs:
crates/gendp-isa/src/control.rs:
crates/gendp-isa/src/error.rs:
crates/gendp-isa/src/loc.rs:
crates/gendp-isa/src/program.rs:
crates/gendp-isa/src/sem.rs:
crates/gendp-isa/src/word.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
