/root/repo/target/debug/deps/gendp_dpmap-f13788dfe5929851.d: crates/gendp-dpmap/src/lib.rs crates/gendp-dpmap/src/codegen.rs crates/gendp-dpmap/src/phases.rs crates/gendp-dpmap/src/stats.rs crates/gendp-dpmap/src/subgraph.rs crates/gendp-dpmap/src/work.rs

/root/repo/target/debug/deps/gendp_dpmap-f13788dfe5929851: crates/gendp-dpmap/src/lib.rs crates/gendp-dpmap/src/codegen.rs crates/gendp-dpmap/src/phases.rs crates/gendp-dpmap/src/stats.rs crates/gendp-dpmap/src/subgraph.rs crates/gendp-dpmap/src/work.rs

crates/gendp-dpmap/src/lib.rs:
crates/gendp-dpmap/src/codegen.rs:
crates/gendp-dpmap/src/phases.rs:
crates/gendp-dpmap/src/stats.rs:
crates/gendp-dpmap/src/subgraph.rs:
crates/gendp-dpmap/src/work.rs:
