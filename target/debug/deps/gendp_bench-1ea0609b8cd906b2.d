/root/repo/target/debug/deps/gendp_bench-1ea0609b8cd906b2.d: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs

/root/repo/target/debug/deps/gendp_bench-1ea0609b8cd906b2: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs

crates/gendp-bench/src/lib.rs:
crates/gendp-bench/src/measure.rs:
crates/gendp-bench/src/tables.rs:
