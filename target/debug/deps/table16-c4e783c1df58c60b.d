/root/repo/target/debug/deps/table16-c4e783c1df58c60b.d: crates/gendp-bench/src/bin/table16.rs

/root/repo/target/debug/deps/table16-c4e783c1df58c60b: crates/gendp-bench/src/bin/table16.rs

crates/gendp-bench/src/bin/table16.rs:
