/root/repo/target/debug/deps/experiments_smoke-ccb6a56c1a11a36f.d: crates/gendp/../../tests/experiments_smoke.rs

/root/repo/target/debug/deps/experiments_smoke-ccb6a56c1a11a36f: crates/gendp/../../tests/experiments_smoke.rs

crates/gendp/../../tests/experiments_smoke.rs:
