/root/repo/target/debug/deps/gendp_core-7355c8a9977cde74.d: crates/gendp-core/src/lib.rs crates/gendp-core/src/graph2d.rs crates/gendp-core/src/linear1d.rs crates/gendp-core/src/pipeline.rs crates/gendp-core/src/spm1d.rs crates/gendp-core/src/wavefront2d.rs

/root/repo/target/debug/deps/gendp_core-7355c8a9977cde74: crates/gendp-core/src/lib.rs crates/gendp-core/src/graph2d.rs crates/gendp-core/src/linear1d.rs crates/gendp-core/src/pipeline.rs crates/gendp-core/src/spm1d.rs crates/gendp-core/src/wavefront2d.rs

crates/gendp-core/src/lib.rs:
crates/gendp-core/src/graph2d.rs:
crates/gendp-core/src/linear1d.rs:
crates/gendp-core/src/pipeline.rs:
crates/gendp-core/src/spm1d.rs:
crates/gendp-core/src/wavefront2d.rs:
