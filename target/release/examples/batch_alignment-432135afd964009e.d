/root/repo/target/release/examples/batch_alignment-432135afd964009e.d: crates/gendp/../../examples/batch_alignment.rs

/root/repo/target/release/examples/batch_alignment-432135afd964009e: crates/gendp/../../examples/batch_alignment.rs

crates/gendp/../../examples/batch_alignment.rs:
