/root/repo/target/release/examples/chaos_batch-699048dced1b96ad.d: crates/gendp/../../examples/chaos_batch.rs

/root/repo/target/release/examples/chaos_batch-699048dced1b96ad: crates/gendp/../../examples/chaos_batch.rs

crates/gendp/../../examples/chaos_batch.rs:
