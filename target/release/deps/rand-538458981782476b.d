/root/repo/target/release/deps/rand-538458981782476b.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-538458981782476b.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-538458981782476b.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
