/root/repo/target/release/deps/fig11-d3e93519c4029c6c.d: crates/gendp-bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-d3e93519c4029c6c: crates/gendp-bench/src/bin/fig11.rs

crates/gendp-bench/src/bin/fig11.rs:
