/root/repo/target/release/deps/table2-2b6a26ebd5542a7f.d: crates/gendp-bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-2b6a26ebd5542a7f: crates/gendp-bench/src/bin/table2.rs

crates/gendp-bench/src/bin/table2.rs:
