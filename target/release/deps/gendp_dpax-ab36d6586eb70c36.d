/root/repo/target/release/deps/gendp_dpax-ab36d6586eb70c36.d: crates/gendp-dpax/src/lib.rs crates/gendp-dpax/src/array.rs crates/gendp-dpax/src/config.rs crates/gendp-dpax/src/error.rs crates/gendp-dpax/src/pe.rs crates/gendp-dpax/src/stats.rs crates/gendp-dpax/src/trace.rs

/root/repo/target/release/deps/libgendp_dpax-ab36d6586eb70c36.rlib: crates/gendp-dpax/src/lib.rs crates/gendp-dpax/src/array.rs crates/gendp-dpax/src/config.rs crates/gendp-dpax/src/error.rs crates/gendp-dpax/src/pe.rs crates/gendp-dpax/src/stats.rs crates/gendp-dpax/src/trace.rs

/root/repo/target/release/deps/libgendp_dpax-ab36d6586eb70c36.rmeta: crates/gendp-dpax/src/lib.rs crates/gendp-dpax/src/array.rs crates/gendp-dpax/src/config.rs crates/gendp-dpax/src/error.rs crates/gendp-dpax/src/pe.rs crates/gendp-dpax/src/stats.rs crates/gendp-dpax/src/trace.rs

crates/gendp-dpax/src/lib.rs:
crates/gendp-dpax/src/array.rs:
crates/gendp-dpax/src/config.rs:
crates/gendp-dpax/src/error.rs:
crates/gendp-dpax/src/pe.rs:
crates/gendp-dpax/src/stats.rs:
crates/gendp-dpax/src/trace.rs:
