/root/repo/target/release/deps/gendp_core-6e8ea1878a4d839d.d: crates/gendp-core/src/lib.rs crates/gendp-core/src/graph2d.rs crates/gendp-core/src/linear1d.rs crates/gendp-core/src/pipeline.rs crates/gendp-core/src/spm1d.rs crates/gendp-core/src/wavefront2d.rs

/root/repo/target/release/deps/libgendp_core-6e8ea1878a4d839d.rlib: crates/gendp-core/src/lib.rs crates/gendp-core/src/graph2d.rs crates/gendp-core/src/linear1d.rs crates/gendp-core/src/pipeline.rs crates/gendp-core/src/spm1d.rs crates/gendp-core/src/wavefront2d.rs

/root/repo/target/release/deps/libgendp_core-6e8ea1878a4d839d.rmeta: crates/gendp-core/src/lib.rs crates/gendp-core/src/graph2d.rs crates/gendp-core/src/linear1d.rs crates/gendp-core/src/pipeline.rs crates/gendp-core/src/spm1d.rs crates/gendp-core/src/wavefront2d.rs

crates/gendp-core/src/lib.rs:
crates/gendp-core/src/graph2d.rs:
crates/gendp-core/src/linear1d.rs:
crates/gendp-core/src/pipeline.rs:
crates/gendp-core/src/spm1d.rs:
crates/gendp-core/src/wavefront2d.rs:
