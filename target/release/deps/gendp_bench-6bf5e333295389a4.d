/root/repo/target/release/deps/gendp_bench-6bf5e333295389a4.d: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs

/root/repo/target/release/deps/libgendp_bench-6bf5e333295389a4.rlib: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs

/root/repo/target/release/deps/libgendp_bench-6bf5e333295389a4.rmeta: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs

crates/gendp-bench/src/lib.rs:
crates/gendp-bench/src/measure.rs:
crates/gendp-bench/src/tables.rs:
