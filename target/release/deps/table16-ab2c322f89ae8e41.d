/root/repo/target/release/deps/table16-ab2c322f89ae8e41.d: crates/gendp-bench/src/bin/table16.rs

/root/repo/target/release/deps/table16-ab2c322f89ae8e41: crates/gendp-bench/src/bin/table16.rs

crates/gendp-bench/src/bin/table16.rs:
