/root/repo/target/release/deps/deprange-98c500f79ee1d7ab.d: crates/gendp-bench/src/bin/deprange.rs

/root/repo/target/release/deps/deprange-98c500f79ee1d7ab: crates/gendp-bench/src/bin/deprange.rs

crates/gendp-bench/src/bin/deprange.rs:
