/root/repo/target/release/deps/table9-e583083d367c893d.d: crates/gendp-bench/src/bin/table9.rs

/root/repo/target/release/deps/table9-e583083d367c893d: crates/gendp-bench/src/bin/table9.rs

crates/gendp-bench/src/bin/table9.rs:
