/root/repo/target/release/deps/chaos_batch-e9c3eef0b35b6067.d: crates/gendp/../../tests/chaos_batch.rs

/root/repo/target/release/deps/chaos_batch-e9c3eef0b35b6067: crates/gendp/../../tests/chaos_batch.rs

crates/gendp/../../tests/chaos_batch.rs:
