/root/repo/target/release/deps/fig10c-3d8faad7a02e8bfb.d: crates/gendp-bench/src/bin/fig10c.rs

/root/repo/target/release/deps/fig10c-3d8faad7a02e8bfb: crates/gendp-bench/src/bin/fig10c.rs

crates/gendp-bench/src/bin/fig10c.rs:
