/root/repo/target/release/deps/fig10c-332d9e65698c2a34.d: crates/gendp-bench/src/bin/fig10c.rs

/root/repo/target/release/deps/fig10c-332d9e65698c2a34: crates/gendp-bench/src/bin/fig10c.rs

crates/gendp-bench/src/bin/fig10c.rs:
