/root/repo/target/release/deps/gendp_seq-b3a8a7115bcf08ac.d: crates/gendp-seq/src/lib.rs crates/gendp-seq/src/anchors.rs crates/gendp-seq/src/base.rs crates/gendp-seq/src/fasta.rs crates/gendp-seq/src/genome.rs crates/gendp-seq/src/haplotype.rs crates/gendp-seq/src/mutate.rs crates/gendp-seq/src/phred.rs crates/gendp-seq/src/readgroup.rs crates/gendp-seq/src/reads.rs crates/gendp-seq/src/seq.rs

/root/repo/target/release/deps/libgendp_seq-b3a8a7115bcf08ac.rlib: crates/gendp-seq/src/lib.rs crates/gendp-seq/src/anchors.rs crates/gendp-seq/src/base.rs crates/gendp-seq/src/fasta.rs crates/gendp-seq/src/genome.rs crates/gendp-seq/src/haplotype.rs crates/gendp-seq/src/mutate.rs crates/gendp-seq/src/phred.rs crates/gendp-seq/src/readgroup.rs crates/gendp-seq/src/reads.rs crates/gendp-seq/src/seq.rs

/root/repo/target/release/deps/libgendp_seq-b3a8a7115bcf08ac.rmeta: crates/gendp-seq/src/lib.rs crates/gendp-seq/src/anchors.rs crates/gendp-seq/src/base.rs crates/gendp-seq/src/fasta.rs crates/gendp-seq/src/genome.rs crates/gendp-seq/src/haplotype.rs crates/gendp-seq/src/mutate.rs crates/gendp-seq/src/phred.rs crates/gendp-seq/src/readgroup.rs crates/gendp-seq/src/reads.rs crates/gendp-seq/src/seq.rs

crates/gendp-seq/src/lib.rs:
crates/gendp-seq/src/anchors.rs:
crates/gendp-seq/src/base.rs:
crates/gendp-seq/src/fasta.rs:
crates/gendp-seq/src/genome.rs:
crates/gendp-seq/src/haplotype.rs:
crates/gendp-seq/src/mutate.rs:
crates/gendp-seq/src/phred.rs:
crates/gendp-seq/src/readgroup.rs:
crates/gendp-seq/src/reads.rs:
crates/gendp-seq/src/seq.rs:
