/root/repo/target/release/deps/fig10d-28a914e504b8ae60.d: crates/gendp-bench/src/bin/fig10d.rs

/root/repo/target/release/deps/fig10d-28a914e504b8ae60: crates/gendp-bench/src/bin/fig10d.rs

crates/gendp-bench/src/bin/fig10d.rs:
