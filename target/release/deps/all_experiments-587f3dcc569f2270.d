/root/repo/target/release/deps/all_experiments-587f3dcc569f2270.d: crates/gendp-bench/src/bin/all-experiments.rs

/root/repo/target/release/deps/all_experiments-587f3dcc569f2270: crates/gendp-bench/src/bin/all-experiments.rs

crates/gendp-bench/src/bin/all-experiments.rs:
