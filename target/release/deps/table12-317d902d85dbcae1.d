/root/repo/target/release/deps/table12-317d902d85dbcae1.d: crates/gendp-bench/src/bin/table12.rs

/root/repo/target/release/deps/table12-317d902d85dbcae1: crates/gendp-bench/src/bin/table12.rs

crates/gendp-bench/src/bin/table12.rs:
