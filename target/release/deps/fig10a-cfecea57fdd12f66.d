/root/repo/target/release/deps/fig10a-cfecea57fdd12f66.d: crates/gendp-bench/src/bin/fig10a.rs

/root/repo/target/release/deps/fig10a-cfecea57fdd12f66: crates/gendp-bench/src/bin/fig10a.rs

crates/gendp-bench/src/bin/fig10a.rs:
