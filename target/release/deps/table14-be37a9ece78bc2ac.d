/root/repo/target/release/deps/table14-be37a9ece78bc2ac.d: crates/gendp-bench/src/bin/table14.rs

/root/repo/target/release/deps/table14-be37a9ece78bc2ac: crates/gendp-bench/src/bin/table14.rs

crates/gendp-bench/src/bin/table14.rs:
