/root/repo/target/release/deps/runtime-f0f1e2ad53171f38.d: crates/gendp-bench/benches/runtime.rs

/root/repo/target/release/deps/runtime-f0f1e2ad53171f38: crates/gendp-bench/benches/runtime.rs

crates/gendp-bench/benches/runtime.rs:
