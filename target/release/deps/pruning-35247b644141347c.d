/root/repo/target/release/deps/pruning-35247b644141347c.d: crates/gendp-bench/src/bin/pruning.rs

/root/repo/target/release/deps/pruning-35247b644141347c: crates/gendp-bench/src/bin/pruning.rs

crates/gendp-bench/src/bin/pruning.rs:
