/root/repo/target/release/deps/table7-1289b23b5e164ed2.d: crates/gendp-bench/src/bin/table7.rs

/root/repo/target/release/deps/table7-1289b23b5e164ed2: crates/gendp-bench/src/bin/table7.rs

crates/gendp-bench/src/bin/table7.rs:
