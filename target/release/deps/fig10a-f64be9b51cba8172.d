/root/repo/target/release/deps/fig10a-f64be9b51cba8172.d: crates/gendp-bench/src/bin/fig10a.rs

/root/repo/target/release/deps/fig10a-f64be9b51cba8172: crates/gendp-bench/src/bin/fig10a.rs

crates/gendp-bench/src/bin/fig10a.rs:
