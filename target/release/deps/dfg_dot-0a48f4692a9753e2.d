/root/repo/target/release/deps/dfg_dot-0a48f4692a9753e2.d: crates/gendp-bench/src/bin/dfg-dot.rs

/root/repo/target/release/deps/dfg_dot-0a48f4692a9753e2: crates/gendp-bench/src/bin/dfg-dot.rs

crates/gendp-bench/src/bin/dfg-dot.rs:
