/root/repo/target/release/deps/table8-d60515c401295f30.d: crates/gendp-bench/src/bin/table8.rs

/root/repo/target/release/deps/table8-d60515c401295f30: crates/gendp-bench/src/bin/table8.rs

crates/gendp-bench/src/bin/table8.rs:
