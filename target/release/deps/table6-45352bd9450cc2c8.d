/root/repo/target/release/deps/table6-45352bd9450cc2c8.d: crates/gendp-bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-45352bd9450cc2c8: crates/gendp-bench/src/bin/table6.rs

crates/gendp-bench/src/bin/table6.rs:
