/root/repo/target/release/deps/proptest-b7a76fad537d7b8e.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-b7a76fad537d7b8e.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-b7a76fad537d7b8e.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
