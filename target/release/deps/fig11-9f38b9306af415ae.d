/root/repo/target/release/deps/fig11-9f38b9306af415ae.d: crates/gendp-bench/src/bin/fig11.rs

/root/repo/target/release/deps/fig11-9f38b9306af415ae: crates/gendp-bench/src/bin/fig11.rs

crates/gendp-bench/src/bin/fig11.rs:
