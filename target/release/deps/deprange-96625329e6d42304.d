/root/repo/target/release/deps/deprange-96625329e6d42304.d: crates/gendp-bench/src/bin/deprange.rs

/root/repo/target/release/deps/deprange-96625329e6d42304: crates/gendp-bench/src/bin/deprange.rs

crates/gendp-bench/src/bin/deprange.rs:
