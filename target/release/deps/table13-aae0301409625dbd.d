/root/repo/target/release/deps/table13-aae0301409625dbd.d: crates/gendp-bench/src/bin/table13.rs

/root/repo/target/release/deps/table13-aae0301409625dbd: crates/gendp-bench/src/bin/table13.rs

crates/gendp-bench/src/bin/table13.rs:
