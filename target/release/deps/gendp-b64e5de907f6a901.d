/root/repo/target/release/deps/gendp-b64e5de907f6a901.d: crates/gendp/src/lib.rs

/root/repo/target/release/deps/libgendp-b64e5de907f6a901.rlib: crates/gendp/src/lib.rs

/root/repo/target/release/deps/libgendp-b64e5de907f6a901.rmeta: crates/gendp/src/lib.rs

crates/gendp/src/lib.rs:
