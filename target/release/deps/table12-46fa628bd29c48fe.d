/root/repo/target/release/deps/table12-46fa628bd29c48fe.d: crates/gendp-bench/src/bin/table12.rs

/root/repo/target/release/deps/table12-46fa628bd29c48fe: crates/gendp-bench/src/bin/table12.rs

crates/gendp-bench/src/bin/table12.rs:
