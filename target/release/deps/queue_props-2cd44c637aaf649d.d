/root/repo/target/release/deps/queue_props-2cd44c637aaf649d.d: crates/gendp-runtime/tests/queue_props.rs

/root/repo/target/release/deps/queue_props-2cd44c637aaf649d: crates/gendp-runtime/tests/queue_props.rs

crates/gendp-runtime/tests/queue_props.rs:
