/root/repo/target/release/deps/gendp-774cc96636bcc508.d: crates/gendp/src/lib.rs

/root/repo/target/release/deps/libgendp-774cc96636bcc508.rlib: crates/gendp/src/lib.rs

/root/repo/target/release/deps/libgendp-774cc96636bcc508.rmeta: crates/gendp/src/lib.rs

crates/gendp/src/lib.rs:
