/root/repo/target/release/deps/pruning-549efd4b706d2832.d: crates/gendp-bench/src/bin/pruning.rs

/root/repo/target/release/deps/pruning-549efd4b706d2832: crates/gendp-bench/src/bin/pruning.rs

crates/gendp-bench/src/bin/pruning.rs:
