/root/repo/target/release/deps/dfg_dot-d7a60a6c5279305a.d: crates/gendp-bench/src/bin/dfg-dot.rs

/root/repo/target/release/deps/dfg_dot-d7a60a6c5279305a: crates/gendp-bench/src/bin/dfg-dot.rs

crates/gendp-bench/src/bin/dfg-dot.rs:
