/root/repo/target/release/deps/table14-47bd05b4f3960c14.d: crates/gendp-bench/src/bin/table14.rs

/root/repo/target/release/deps/table14-47bd05b4f3960c14: crates/gendp-bench/src/bin/table14.rs

crates/gendp-bench/src/bin/table14.rs:
