/root/repo/target/release/deps/all_experiments-4f61d8aca1de23aa.d: crates/gendp-bench/src/bin/all-experiments.rs

/root/repo/target/release/deps/all_experiments-4f61d8aca1de23aa: crates/gendp-bench/src/bin/all-experiments.rs

crates/gendp-bench/src/bin/all-experiments.rs:
