/root/repo/target/release/deps/footprint-66ee3740745b48d4.d: crates/gendp-bench/src/bin/footprint.rs

/root/repo/target/release/deps/footprint-66ee3740745b48d4: crates/gendp-bench/src/bin/footprint.rs

crates/gendp-bench/src/bin/footprint.rs:
