/root/repo/target/release/deps/table10-03f176145550e556.d: crates/gendp-bench/src/bin/table10.rs

/root/repo/target/release/deps/table10-03f176145550e556: crates/gendp-bench/src/bin/table10.rs

crates/gendp-bench/src/bin/table10.rs:
