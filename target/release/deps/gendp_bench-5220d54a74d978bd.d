/root/repo/target/release/deps/gendp_bench-5220d54a74d978bd.d: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs

/root/repo/target/release/deps/libgendp_bench-5220d54a74d978bd.rlib: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs

/root/repo/target/release/deps/libgendp_bench-5220d54a74d978bd.rmeta: crates/gendp-bench/src/lib.rs crates/gendp-bench/src/measure.rs crates/gendp-bench/src/tables.rs

crates/gendp-bench/src/lib.rs:
crates/gendp-bench/src/measure.rs:
crates/gendp-bench/src/tables.rs:
