/root/repo/target/release/deps/gendp_dfg-8e31032dc5596022.d: crates/gendp-dfg/src/lib.rs crates/gendp-dfg/src/dot.rs crates/gendp-dfg/src/eval.rs crates/gendp-dfg/src/graph.rs

/root/repo/target/release/deps/libgendp_dfg-8e31032dc5596022.rlib: crates/gendp-dfg/src/lib.rs crates/gendp-dfg/src/dot.rs crates/gendp-dfg/src/eval.rs crates/gendp-dfg/src/graph.rs

/root/repo/target/release/deps/libgendp_dfg-8e31032dc5596022.rmeta: crates/gendp-dfg/src/lib.rs crates/gendp-dfg/src/dot.rs crates/gendp-dfg/src/eval.rs crates/gendp-dfg/src/graph.rs

crates/gendp-dfg/src/lib.rs:
crates/gendp-dfg/src/dot.rs:
crates/gendp-dfg/src/eval.rs:
crates/gendp-dfg/src/graph.rs:
