/root/repo/target/release/deps/fig10b-3c50580099bb5d0f.d: crates/gendp-bench/src/bin/fig10b.rs

/root/repo/target/release/deps/fig10b-3c50580099bb5d0f: crates/gendp-bench/src/bin/fig10b.rs

crates/gendp-bench/src/bin/fig10b.rs:
