/root/repo/target/release/deps/table15-12eb2c1ad8b411eb.d: crates/gendp-bench/src/bin/table15.rs

/root/repo/target/release/deps/table15-12eb2c1ad8b411eb: crates/gendp-bench/src/bin/table15.rs

crates/gendp-bench/src/bin/table15.rs:
