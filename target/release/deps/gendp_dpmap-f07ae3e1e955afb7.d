/root/repo/target/release/deps/gendp_dpmap-f07ae3e1e955afb7.d: crates/gendp-dpmap/src/lib.rs crates/gendp-dpmap/src/codegen.rs crates/gendp-dpmap/src/phases.rs crates/gendp-dpmap/src/stats.rs crates/gendp-dpmap/src/subgraph.rs crates/gendp-dpmap/src/work.rs

/root/repo/target/release/deps/libgendp_dpmap-f07ae3e1e955afb7.rlib: crates/gendp-dpmap/src/lib.rs crates/gendp-dpmap/src/codegen.rs crates/gendp-dpmap/src/phases.rs crates/gendp-dpmap/src/stats.rs crates/gendp-dpmap/src/subgraph.rs crates/gendp-dpmap/src/work.rs

/root/repo/target/release/deps/libgendp_dpmap-f07ae3e1e955afb7.rmeta: crates/gendp-dpmap/src/lib.rs crates/gendp-dpmap/src/codegen.rs crates/gendp-dpmap/src/phases.rs crates/gendp-dpmap/src/stats.rs crates/gendp-dpmap/src/subgraph.rs crates/gendp-dpmap/src/work.rs

crates/gendp-dpmap/src/lib.rs:
crates/gendp-dpmap/src/codegen.rs:
crates/gendp-dpmap/src/phases.rs:
crates/gendp-dpmap/src/stats.rs:
crates/gendp-dpmap/src/subgraph.rs:
crates/gendp-dpmap/src/work.rs:
