/root/repo/target/release/deps/table11-ca45c0e92a3f8663.d: crates/gendp-bench/src/bin/table11.rs

/root/repo/target/release/deps/table11-ca45c0e92a3f8663: crates/gendp-bench/src/bin/table11.rs

crates/gendp-bench/src/bin/table11.rs:
