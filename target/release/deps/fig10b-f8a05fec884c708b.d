/root/repo/target/release/deps/fig10b-f8a05fec884c708b.d: crates/gendp-bench/src/bin/fig10b.rs

/root/repo/target/release/deps/fig10b-f8a05fec884c708b: crates/gendp-bench/src/bin/fig10b.rs

crates/gendp-bench/src/bin/fig10b.rs:
