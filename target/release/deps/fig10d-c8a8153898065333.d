/root/repo/target/release/deps/fig10d-c8a8153898065333.d: crates/gendp-bench/src/bin/fig10d.rs

/root/repo/target/release/deps/fig10d-c8a8153898065333: crates/gendp-bench/src/bin/fig10d.rs

crates/gendp-bench/src/bin/fig10d.rs:
