/root/repo/target/release/deps/gendp_runtime-531f03258cff0866.d: crates/gendp-runtime/src/lib.rs crates/gendp-runtime/src/batch.rs crates/gendp-runtime/src/device.rs crates/gendp-runtime/src/fault.rs crates/gendp-runtime/src/policy.rs crates/gendp-runtime/src/queue.rs crates/gendp-runtime/src/recovery.rs crates/gendp-runtime/src/report.rs crates/gendp-runtime/src/sync.rs crates/gendp-runtime/src/task.rs

/root/repo/target/release/deps/libgendp_runtime-531f03258cff0866.rlib: crates/gendp-runtime/src/lib.rs crates/gendp-runtime/src/batch.rs crates/gendp-runtime/src/device.rs crates/gendp-runtime/src/fault.rs crates/gendp-runtime/src/policy.rs crates/gendp-runtime/src/queue.rs crates/gendp-runtime/src/recovery.rs crates/gendp-runtime/src/report.rs crates/gendp-runtime/src/sync.rs crates/gendp-runtime/src/task.rs

/root/repo/target/release/deps/libgendp_runtime-531f03258cff0866.rmeta: crates/gendp-runtime/src/lib.rs crates/gendp-runtime/src/batch.rs crates/gendp-runtime/src/device.rs crates/gendp-runtime/src/fault.rs crates/gendp-runtime/src/policy.rs crates/gendp-runtime/src/queue.rs crates/gendp-runtime/src/recovery.rs crates/gendp-runtime/src/report.rs crates/gendp-runtime/src/sync.rs crates/gendp-runtime/src/task.rs

crates/gendp-runtime/src/lib.rs:
crates/gendp-runtime/src/batch.rs:
crates/gendp-runtime/src/device.rs:
crates/gendp-runtime/src/fault.rs:
crates/gendp-runtime/src/policy.rs:
crates/gendp-runtime/src/queue.rs:
crates/gendp-runtime/src/recovery.rs:
crates/gendp-runtime/src/report.rs:
crates/gendp-runtime/src/sync.rs:
crates/gendp-runtime/src/task.rs:
