/root/repo/target/release/deps/table1-498a4342b5c17846.d: crates/gendp-bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-498a4342b5c17846: crates/gendp-bench/src/bin/table1.rs

crates/gendp-bench/src/bin/table1.rs:
