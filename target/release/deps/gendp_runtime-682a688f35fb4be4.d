/root/repo/target/release/deps/gendp_runtime-682a688f35fb4be4.d: crates/gendp-runtime/src/lib.rs crates/gendp-runtime/src/batch.rs crates/gendp-runtime/src/device.rs crates/gendp-runtime/src/fault.rs crates/gendp-runtime/src/policy.rs crates/gendp-runtime/src/queue.rs crates/gendp-runtime/src/recovery.rs crates/gendp-runtime/src/report.rs crates/gendp-runtime/src/sync.rs crates/gendp-runtime/src/task.rs

/root/repo/target/release/deps/gendp_runtime-682a688f35fb4be4: crates/gendp-runtime/src/lib.rs crates/gendp-runtime/src/batch.rs crates/gendp-runtime/src/device.rs crates/gendp-runtime/src/fault.rs crates/gendp-runtime/src/policy.rs crates/gendp-runtime/src/queue.rs crates/gendp-runtime/src/recovery.rs crates/gendp-runtime/src/report.rs crates/gendp-runtime/src/sync.rs crates/gendp-runtime/src/task.rs

crates/gendp-runtime/src/lib.rs:
crates/gendp-runtime/src/batch.rs:
crates/gendp-runtime/src/device.rs:
crates/gendp-runtime/src/fault.rs:
crates/gendp-runtime/src/policy.rs:
crates/gendp-runtime/src/queue.rs:
crates/gendp-runtime/src/recovery.rs:
crates/gendp-runtime/src/report.rs:
crates/gendp-runtime/src/sync.rs:
crates/gendp-runtime/src/task.rs:
