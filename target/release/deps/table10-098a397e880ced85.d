/root/repo/target/release/deps/table10-098a397e880ced85.d: crates/gendp-bench/src/bin/table10.rs

/root/repo/target/release/deps/table10-098a397e880ced85: crates/gendp-bench/src/bin/table10.rs

crates/gendp-bench/src/bin/table10.rs:
