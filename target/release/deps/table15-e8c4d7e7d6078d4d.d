/root/repo/target/release/deps/table15-e8c4d7e7d6078d4d.d: crates/gendp-bench/src/bin/table15.rs

/root/repo/target/release/deps/table15-e8c4d7e7d6078d4d: crates/gendp-bench/src/bin/table15.rs

crates/gendp-bench/src/bin/table15.rs:
