/root/repo/target/release/deps/table8-02eb0d14631b5b62.d: crates/gendp-bench/src/bin/table8.rs

/root/repo/target/release/deps/table8-02eb0d14631b5b62: crates/gendp-bench/src/bin/table8.rs

crates/gendp-bench/src/bin/table8.rs:
