/root/repo/target/release/deps/table2-d75da2966444e435.d: crates/gendp-bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-d75da2966444e435: crates/gendp-bench/src/bin/table2.rs

crates/gendp-bench/src/bin/table2.rs:
