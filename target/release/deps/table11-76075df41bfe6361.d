/root/repo/target/release/deps/table11-76075df41bfe6361.d: crates/gendp-bench/src/bin/table11.rs

/root/repo/target/release/deps/table11-76075df41bfe6361: crates/gendp-bench/src/bin/table11.rs

crates/gendp-bench/src/bin/table11.rs:
