/root/repo/target/release/deps/footprint-7d4d9d4dab728998.d: crates/gendp-bench/src/bin/footprint.rs

/root/repo/target/release/deps/footprint-7d4d9d4dab728998: crates/gendp-bench/src/bin/footprint.rs

crates/gendp-bench/src/bin/footprint.rs:
