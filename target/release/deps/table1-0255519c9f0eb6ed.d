/root/repo/target/release/deps/table1-0255519c9f0eb6ed.d: crates/gendp-bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-0255519c9f0eb6ed: crates/gendp-bench/src/bin/table1.rs

crates/gendp-bench/src/bin/table1.rs:
