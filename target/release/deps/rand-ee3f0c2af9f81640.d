/root/repo/target/release/deps/rand-ee3f0c2af9f81640.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-ee3f0c2af9f81640.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-ee3f0c2af9f81640.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
