/root/repo/target/release/deps/gendp_isa-260b4f394137510c.d: crates/gendp-isa/src/lib.rs crates/gendp-isa/src/compute.rs crates/gendp-isa/src/control.rs crates/gendp-isa/src/error.rs crates/gendp-isa/src/loc.rs crates/gendp-isa/src/program.rs crates/gendp-isa/src/sem.rs crates/gendp-isa/src/word.rs

/root/repo/target/release/deps/libgendp_isa-260b4f394137510c.rlib: crates/gendp-isa/src/lib.rs crates/gendp-isa/src/compute.rs crates/gendp-isa/src/control.rs crates/gendp-isa/src/error.rs crates/gendp-isa/src/loc.rs crates/gendp-isa/src/program.rs crates/gendp-isa/src/sem.rs crates/gendp-isa/src/word.rs

/root/repo/target/release/deps/libgendp_isa-260b4f394137510c.rmeta: crates/gendp-isa/src/lib.rs crates/gendp-isa/src/compute.rs crates/gendp-isa/src/control.rs crates/gendp-isa/src/error.rs crates/gendp-isa/src/loc.rs crates/gendp-isa/src/program.rs crates/gendp-isa/src/sem.rs crates/gendp-isa/src/word.rs

crates/gendp-isa/src/lib.rs:
crates/gendp-isa/src/compute.rs:
crates/gendp-isa/src/control.rs:
crates/gendp-isa/src/error.rs:
crates/gendp-isa/src/loc.rs:
crates/gendp-isa/src/program.rs:
crates/gendp-isa/src/sem.rs:
crates/gendp-isa/src/word.rs:
