/root/repo/target/release/deps/gendp_core-d8ba31ae325bfeb6.d: crates/gendp-core/src/lib.rs crates/gendp-core/src/graph2d.rs crates/gendp-core/src/linear1d.rs crates/gendp-core/src/pipeline.rs crates/gendp-core/src/spm1d.rs crates/gendp-core/src/wavefront2d.rs

/root/repo/target/release/deps/libgendp_core-d8ba31ae325bfeb6.rlib: crates/gendp-core/src/lib.rs crates/gendp-core/src/graph2d.rs crates/gendp-core/src/linear1d.rs crates/gendp-core/src/pipeline.rs crates/gendp-core/src/spm1d.rs crates/gendp-core/src/wavefront2d.rs

/root/repo/target/release/deps/libgendp_core-d8ba31ae325bfeb6.rmeta: crates/gendp-core/src/lib.rs crates/gendp-core/src/graph2d.rs crates/gendp-core/src/linear1d.rs crates/gendp-core/src/pipeline.rs crates/gendp-core/src/spm1d.rs crates/gendp-core/src/wavefront2d.rs

crates/gendp-core/src/lib.rs:
crates/gendp-core/src/graph2d.rs:
crates/gendp-core/src/linear1d.rs:
crates/gendp-core/src/pipeline.rs:
crates/gendp-core/src/spm1d.rs:
crates/gendp-core/src/wavefront2d.rs:
