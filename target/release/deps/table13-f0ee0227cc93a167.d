/root/repo/target/release/deps/table13-f0ee0227cc93a167.d: crates/gendp-bench/src/bin/table13.rs

/root/repo/target/release/deps/table13-f0ee0227cc93a167: crates/gendp-bench/src/bin/table13.rs

crates/gendp-bench/src/bin/table13.rs:
