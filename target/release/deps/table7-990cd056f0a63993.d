/root/repo/target/release/deps/table7-990cd056f0a63993.d: crates/gendp-bench/src/bin/table7.rs

/root/repo/target/release/deps/table7-990cd056f0a63993: crates/gendp-bench/src/bin/table7.rs

crates/gendp-bench/src/bin/table7.rs:
