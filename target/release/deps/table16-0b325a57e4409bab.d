/root/repo/target/release/deps/table16-0b325a57e4409bab.d: crates/gendp-bench/src/bin/table16.rs

/root/repo/target/release/deps/table16-0b325a57e4409bab: crates/gendp-bench/src/bin/table16.rs

crates/gendp-bench/src/bin/table16.rs:
