/root/repo/target/release/deps/runtime-a001b2384f795f57.d: crates/gendp-bench/benches/runtime.rs

/root/repo/target/release/deps/runtime-a001b2384f795f57: crates/gendp-bench/benches/runtime.rs

crates/gendp-bench/benches/runtime.rs:
