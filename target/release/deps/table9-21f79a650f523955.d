/root/repo/target/release/deps/table9-21f79a650f523955.d: crates/gendp-bench/src/bin/table9.rs

/root/repo/target/release/deps/table9-21f79a650f523955: crates/gendp-bench/src/bin/table9.rs

crates/gendp-bench/src/bin/table9.rs:
