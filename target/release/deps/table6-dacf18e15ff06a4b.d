/root/repo/target/release/deps/table6-dacf18e15ff06a4b.d: crates/gendp-bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-dacf18e15ff06a4b: crates/gendp-bench/src/bin/table6.rs

crates/gendp-bench/src/bin/table6.rs:
