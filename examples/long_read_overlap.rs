//! Long-read mapping via seeding + chaining (the paper's Chain pipeline
//! stage, §2.3): extract k-mer anchors, chain them on the simulated
//! accelerator, and recover each read's true position.
//!
//! ```sh
//! cargo run --release --example long_read_overlap
//! ```

use gendp::core::GendpPipeline;
use gendp::kernels::chain::{chain_reordered, ChainParams};
use gendp::seq::{extract_anchors, Genome, KmerIndex, LongReadProfile};
use rand::{rngs::SmallRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(17);
    let genome = Genome::random(60_000, &mut rng);
    let index = KmerIndex::build(genome.seq(), 15);
    let profile = LongReadProfile {
        min_len: 800,
        max_len: 1_500,
        ..LongReadProfile::pacbio()
    };
    let reads = profile.sample(&genome, 4, &mut rng);

    let n_pes = 16; // four concatenated 4-PE arrays
    let params = ChainParams {
        n_prev: n_pes,
        ..ChainParams::minimap2(15.0)
    };
    let accel = GendpPipeline::chain(params);

    let mut correct = 0usize;
    for (i, read) in reads.iter().enumerate() {
        let anchors = extract_anchors(&index, &read.seq);
        if anchors.is_empty() {
            println!("read {i}: no anchors (mapping failure)");
            continue;
        }
        let run = accel.run(&anchors, n_pes)?;
        // The accelerator's scores are bit-identical to the reordered
        // chaining reference.
        let reference = chain_reordered(&anchors, &params);
        assert_eq!(run.scores, reference.scores);

        // Trace the best chain on the host (the paper's downstream step).
        let best = reference.best().expect("anchors nonempty");
        let chain = reference.trace(best);
        let first = anchors[chain[0]];
        let predicted = (first.rpos - first.qpos).max(0);
        let err = (predicted - read.true_pos as i32).abs();
        let ok = err < 100;
        correct += usize::from(ok);
        println!(
            "read {i}: {} anchors, chain of {} (score {}), predicted {} vs true {} ({})",
            anchors.len(),
            chain.len(),
            reference.scores[best],
            predicted,
            read.true_pos,
            if ok { "ok" } else { "MISS" },
        );
    }
    println!(
        "{correct}/{} reads mapped to their true position",
        reads.len()
    );
    Ok(())
}
