//! Chaos batch demo: run a 1000-task mixed batch on the paper-shaped
//! device while deterministically injecting ~5% faults of every kind
//! (deadlocks, timeouts, bad accesses, worker panics), and report how
//! the fault-tolerance layer recovered.
//!
//! ```text
//! cargo run --release --example chaos_batch [seed] [fault_ppm]
//! ```
//!
//! The same seed always produces the same fault plan, retry counts and
//! per-task outcomes, at any worker count.

use gendp::kernels::Scoring;
use gendp::runtime::{
    silence_injected_panics, Device, DeviceConfig, DispatchPolicy, FaultConfig, Task,
};
use gendp::seq::DnaSeq;
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn mixed_batch(n: usize, seed: u64) -> Vec<Task> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| match i % 3 {
            0 => Task::bsw_local(
                DnaSeq::random(12 + i % 8, &mut rng),
                DnaSeq::random(14 + i % 6, &mut rng),
                Scoring::bwa_mem(),
            ),
            1 => Task::dtw(
                (0..8 + i % 6).map(|_| rng.gen_range(0..400)).collect(),
                (0..9 + i % 5).map(|_| rng.gen_range(0..400)).collect(),
            ),
            _ => Task::bsw_global(
                DnaSeq::random(10 + i % 5, &mut rng),
                DnaSeq::random(10 + i % 5, &mut rng),
                Scoring::bwa_mem(),
            ),
        })
        .collect()
}

fn main() {
    silence_injected_panics();
    let mut args = std::env::args().skip(1);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2023);
    let fault_ppm: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(50_000);
    let n = 1000;

    println!("chaos batch: {n} tasks, fault rate {fault_ppm} ppm, seed {seed}");

    let fault = FaultConfig::uniform(seed, fault_ppm);
    let mut device = Device::new(DeviceConfig {
        workers: 8,
        policy: DispatchPolicy::WorkStealing,
        fault: Some(fault),
        ..DeviceConfig::default()
    });
    let outcome = device
        .run_batch(mixed_batch(n, seed))
        .expect("batch is placeable");

    let recovery = outcome.report.recovery;
    println!(
        "completed {}/{} tasks ({} failed for good)",
        outcome.completed(),
        n,
        outcome.failed()
    );
    println!(
        "injected {} faults ({} worker panics contained)",
        recovery.faults_injected, recovery.panics_contained
    );
    println!(
        "retries {} (budget escalations {}, redispatches {}), quarantined arrays {}",
        recovery.retries,
        recovery.budget_escalations,
        recovery.redispatches,
        recovery.quarantined_arrays
    );
    for (id, failure) in outcome.failures() {
        println!("  task {id}: {failure}");
    }

    // Replay the identical fault plan at a different worker count: the
    // outcome fingerprint must not move.
    let mut replay_device = Device::new(DeviceConfig {
        workers: 1,
        policy: DispatchPolicy::RoundRobin,
        fault: Some(fault),
        ..DeviceConfig::default()
    });
    let replay = replay_device
        .run_batch(mixed_batch(n, seed))
        .expect("replay batch");
    assert_eq!(
        outcome.fingerprint(),
        replay.fingerprint(),
        "fault plan must replay identically across worker counts"
    );
    println!("replay at 1 worker: fingerprint identical ({n} tasks)");

    // And a fault-free run of the same batch for contrast.
    let mut clean_device = Device::new(DeviceConfig {
        workers: 8,
        policy: DispatchPolicy::WorkStealing,
        ..DeviceConfig::default()
    });
    let clean = clean_device
        .run_batch(mixed_batch(n, seed))
        .expect("clean batch");
    let agree = outcome
        .ok_results()
        .filter(|r| {
            clean.results[r.id]
                .as_ref()
                .is_ok_and(|c| c.value == r.value)
        })
        .count();
    println!(
        "fault-free contrast: {:.2} GCUPS, {}/{} surviving values identical",
        clean.report.gcups(),
        agree,
        outcome.completed()
    );
    assert_eq!(
        agree,
        outcome.completed(),
        "injection must never corrupt a value"
    );
}
