//! Whole-device batch alignment (paper Fig. 4, §7.2): drive a read set
//! through all of DPAx's parallel arrays at once with the
//! `gendp-runtime` batch executor, then print the per-array utilization
//! report and compare the dispatch policies.
//!
//! ```sh
//! cargo run --release --example batch_alignment
//! ```

use gendp::dpax::TierPolicy;
use gendp::kernels::Scoring;
use gendp::runtime::{BatchAligner, DeviceConfig, DispatchPolicy};
use gendp::seq::{Genome, ShortReadProfile};
use rand::{rngs::SmallRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(17);
    let genome = Genome::random(20_000, &mut rng);
    let profile = ShortReadProfile {
        len: 32, // short tables keep the example fast in debug builds
        ..ShortReadProfile::illumina()
    };
    let reads = profile.sample(&genome, 64, &mut rng);

    let mut baseline_scores = None;
    for policy in DispatchPolicy::ALL {
        let aligner = BatchAligner::new(
            genome.clone(),
            Scoring::bwa_mem(),
            DeviceConfig {
                int_arrays: 8,
                float_arrays: 0,
                workers: 4,
                policy,
                // Functional tier where a task lowers to one (2-D
                // wavefronts do), automatic fallback everywhere else;
                // results are bit-identical on every tier.
                tiers: TierPolicy::functional(),
                ..DeviceConfig::default()
            },
        );
        let aligned = aligner.align(&reads)?;
        println!("=== {} ===", policy.name());
        print!("{}", aligned.report);
        println!(
            "aggregate: {:.3} cells/cycle, tile balance {:.2}",
            aligned.report.aggregate_run().cells_per_cycle(),
            aligned.report.tile_report().balance(),
        );
        println!();

        // Placement never changes the scores.
        match &baseline_scores {
            None => baseline_scores = Some(aligned.scores),
            Some(first) => assert_eq!(first, &aligned.scores, "{}", policy.name()),
        }
    }
    println!(
        "all {} policies produced identical scores for {} reads",
        DispatchPolicy::ALL.len(),
        reads.len()
    );
    Ok(())
}
