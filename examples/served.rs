//! `gendp-serve` as a real daemon: a Unix-domain socket accept loop
//! over [`Server::serve_unix_stream`], with SIGTERM-triggered graceful
//! drain — stop accepting, let in-flight connections and batches
//! finish, deliver every outstanding ticket, then exit.
//!
//! The example is self-driving: it spawns its own wire clients over
//! the socket (one pipelining alignments, one probing shard status),
//! then raises SIGTERM against itself to exercise the drain path —
//! exactly what a process supervisor would do on redeploy.
//!
//! ```sh
//! cargo run --release --example served
//! ```

#[cfg(unix)]
fn main() -> Result<(), Box<dyn std::error::Error>> {
    unix::run()
}

#[cfg(not(unix))]
fn main() {
    eprintln!("the served example needs Unix-domain sockets; use serve_demo instead");
}

#[cfg(unix)]
mod unix {
    use std::io;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::thread;
    use std::time::Duration;

    use gendp::kernels::Scoring;
    use gendp::runtime::{silence_injected_panics, DeviceConfig, FaultConfig, RetryPolicy, Task};
    use gendp::seq::DnaSeq;
    use gendp::serve::{
        Priority, ServeConfig, Server, ShardState, TenantConfig, WireClient, WireOutcome,
    };
    use rand::{rngs::SmallRng, SeedableRng};

    /// Set from the signal handler; the accept loop polls it.
    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    unsafe extern "C" {
        /// libc `signal(2)`: enough for flipping one atomic — no
        /// sigaction niceties needed here.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        /// libc `raise(3)`: the demo terminates itself like a
        /// supervisor would.
        fn raise(signum: i32) -> i32;
    }

    extern "C" fn on_terminate(_signum: i32) {
        SHUTDOWN.store(true, Ordering::Release);
    }

    /// One pipelined wire client over its own socket connection.
    fn drive_client(path: &std::path::Path, tenant: &str, n: usize, seed: u64) -> io::Result<u64> {
        let stream = UnixStream::connect(path)?;
        let reader = stream.try_clone()?;
        let mut client = WireClient::new(reader, stream);
        client.ping()?;
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..n {
            client.submit(
                tenant,
                Task::bsw_local(
                    DnaSeq::random(24, &mut rng),
                    DnaSeq::random(32, &mut rng),
                    Scoring::bwa_mem(),
                ),
            )?;
        }
        let mut completed = 0u64;
        for _ in 0..n {
            match client.recv()? {
                Some(response) => match response.outcome {
                    WireOutcome::Ok { .. } => completed += 1,
                    other => panic!("unexpected outcome: {other:?}"),
                },
                None => break,
            }
        }
        Ok(completed)
    }

    pub fn run() -> Result<(), Box<dyn std::error::Error>> {
        silence_injected_panics();
        unsafe {
            signal(SIGTERM, on_terminate);
            signal(SIGINT, on_terminate);
        }

        let config = ServeConfig {
            shards: 2,
            shard_config: DeviceConfig {
                int_arrays: 8,
                float_arrays: 1,
                workers: 2,
                retry: RetryPolicy {
                    max_attempts: 6,
                    ..RetryPolicy::default()
                },
                fault: Some(FaultConfig::uniform(3, 20_000)),
                ..DeviceConfig::default()
            },
            ..ServeConfig::default()
        };
        let tenants = vec![
            TenantConfig::new("mapper").priority(Priority::Interactive),
            TenantConfig::new("polisher").priority(Priority::Batch),
        ];
        let mut server = Server::start(config, tenants)?;

        let path = std::env::temp_dir().join(format!("gendp-served-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        // Non-blocking accepts so the loop can notice SIGTERM between
        // connections.
        listener.set_nonblocking(true)?;
        println!("serving on {}", path.display());

        let completed = thread::scope(|scope| -> io::Result<u64> {
            // The self-driving clients; a real deployment would have
            // these on other processes.
            let mapper = {
                let path = path.clone();
                scope.spawn(move || drive_client(&path, "mapper", 120, 41))
            };
            let polisher = {
                let path = path.clone();
                scope.spawn(move || drive_client(&path, "polisher", 80, 42))
            };
            let prober = {
                let path = path.clone();
                scope.spawn(move || -> io::Result<()> {
                    let stream = UnixStream::connect(&path)?;
                    let reader = stream.try_clone()?;
                    let mut client = WireClient::new(reader, stream);
                    let shards = client.shard_status()?;
                    assert!(shards.iter().all(|s| s.state != ShardState::Dead));
                    println!("probe: {} shards up", shards.len());
                    Ok(())
                })
            };

            let mut conns = Vec::new();
            while !SHUTDOWN.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false)?;
                        let server = &server;
                        conns.push(scope.spawn(move || server.serve_unix_stream(stream)));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        // Once the demo clients are done, terminate
                        // ourselves the way a supervisor would.
                        if mapper.is_finished() && polisher.is_finished() && prober.is_finished() {
                            unsafe { raise(SIGTERM) };
                        }
                        thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => return Err(e),
                }
            }
            println!("SIGTERM: draining {} connection(s)", conns.len());
            // Graceful drain: no new accepts; every open connection
            // runs until its client hangs up, with all of its
            // responses delivered.
            for conn in conns {
                conn.join().expect("connection thread")?;
            }
            let total = mapper.join().expect("mapper client")?
                + polisher.join().expect("polisher client")?;
            prober.join().expect("probe client")?;
            Ok(total)
        })?;
        let _ = std::fs::remove_file(&path);

        server.shutdown();
        let stats = server.stats();
        assert_eq!(completed, 200, "every pipelined submission answered");
        assert!(stats.totals.drained(), "drain delivered everything");
        assert_eq!(stats.totals.failed, 0);
        println!(
            "drained clean: {} completed across {} shards, {} faults absorbed",
            stats.totals.completed,
            stats.shards.len(),
            stats.recovery.faults_injected,
        );
        Ok(())
    }
}
