//! Variant-calling likelihoods (the paper's PairHMM pipeline stage, §2.3):
//! score a read against two candidate haplotypes — the variant-carrying
//! truth and the reference — on the simulated accelerator, and call the
//! variant from the likelihood ratio.
//!
//! ```sh
//! cargo run --release --example variant_calling
//! ```

use gendp::core::{pairhmm_loglik, GendpPipeline};
use gendp::kernels::dfgs::pairhmm_luts;
use gendp::kernels::pairhmm::{forward_log_fixed, PairHmmParams};
use gendp::seq::{DnaSeq, Genome, MutationProfile};
use rand::{rngs::SmallRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(19);
    let genome = Genome::random(1_000, &mut rng);
    let reference_hap = genome.window(200, 30);

    // The sample carries one SNP inside the window.
    let mut variant = reference_hap.bases().to_vec();
    variant[12] = variant[12].complement();
    let variant_hap = DnaSeq::from(variant);

    // A read sequenced from the variant haplotype.
    let read = MutationProfile::illumina().apply(&variant_hap.window(4, 24), &mut rng);
    let read = read.window(0, read.len().min(20));
    let qual = 30u8;
    let quals = vec![qual; read.len()];

    let params = PairHmmParams::gatk();
    let scale = 1024;
    let luts = pairhmm_luts(qual, scale);
    let codes = |s: &DnaSeq| -> Vec<i32> { s.codes().iter().map(|&c| c as i32).collect() };

    let mut lls = Vec::new();
    for (name, hap) in [("reference", &reference_hap), ("variant", &variant_hap)] {
        let accel = GendpPipeline::pairhmm(&params, qual, scale, hap.len());
        let out = accel.run(&codes(&read), &codes(hap), 4)?;
        let ll = pairhmm_loglik(&out, &luts);
        // Bit-exact against the fixed-point reference.
        assert_eq!(
            ll,
            forward_log_fixed(&read, &quals, hap, &params, scale),
            "accelerator == fixed-point reference"
        );
        println!(
            "ln P(read | {name:9}) = {:9.3}  ({} cells in {} cycles)",
            ll as f64 / scale as f64,
            out.stats.cells(),
            out.stats.cycles
        );
        lls.push(ll);
    }

    let ratio = (lls[1] - lls[0]) as f64 / scale as f64;
    println!("\nlog-likelihood ratio (variant - reference) = {ratio:.3}");
    if ratio > 2.0 {
        println!("call: VARIANT supported");
    } else if ratio < -2.0 {
        println!("call: reference supported");
    } else {
        println!("call: ambiguous");
    }
    assert!(ratio > 0.0, "the variant haplotype should win");
    Ok(())
}
