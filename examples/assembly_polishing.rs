//! Assembly polishing (the paper's POA pipeline stage, §2.3): build a
//! partial-order graph from noisy long reads, align further reads on the
//! simulated accelerator, and extract the consensus.
//!
//! ```sh
//! cargo run --release --example assembly_polishing
//! ```

use gendp::core::GendpPipeline;
use gendp::kernels::poa::Poa;
use gendp::kernels::Scoring;
use gendp::seq::{Genome, MutationProfile, ReadGroupProfile};
use rand::{rngs::SmallRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(13);
    let genome = Genome::random(2_000, &mut rng);
    let profile = ReadGroupProfile {
        window_len: 60, // keep graphs small for a debug-build example
        min_reads: 8,
        max_reads: 8,
        errors: MutationProfile::nanopore(),
    };
    let group = profile.sample(&genome, 1, &mut rng).remove(0);
    let scoring = Scoring::racon();

    // Seed the graph with the first read, then align each further read on
    // the accelerator (the graph fusion itself runs on the host, as the
    // paper's trace-back does).
    let mut poa = Poa::new();
    poa.add_sequence(&group.reads[0], &scoring);
    let accel = GendpPipeline::poa(scoring);
    let mut cells = 0u64;
    let mut cycles = 0u64;
    for read in &group.reads[1..] {
        let run = accel.run(&poa, read, 4)?;
        let reference = poa.align(read, &scoring);
        assert_eq!(run.score, reference.score, "accelerator == reference");
        cells += run.stats.cells();
        cycles += run.stats.cycles;
        poa.add_sequence(read, &scoring);
    }

    let consensus = poa.consensus();
    let n = consensus.len().min(group.truth.len());
    let identity = consensus.window(0, n).identity(&group.truth.window(0, n));
    println!(
        "graph: {} nodes, {} edges after {} reads",
        poa.node_count(),
        poa.edge_count(),
        group.reads.len()
    );
    println!(
        "consensus identity to truth: {:.1}% over {n} bases",
        100.0 * identity
    );
    println!(
        "accelerator: {cells} cells in {cycles} cycles ({:.3} cells/cycle)",
        cells as f64 / cycles as f64
    );
    println!("every accelerator alignment score matched the reference POA");
    Ok(())
}
