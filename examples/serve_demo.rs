//! The multi-tenant alignment service end to end: three tenants with
//! different QoS contracts share two simulated DPAx devices under fault
//! injection — one in-process, one over the framed wire protocol.
//!
//! ```sh
//! cargo run --release --example serve_demo
//! ```

use std::thread;

use gendp::kernels::pairhmm::PairHmmParams;
use gendp::kernels::Scoring;
use gendp::runtime::{silence_injected_panics, DeviceConfig, FaultConfig, RetryPolicy, Task};
use gendp::seq::DnaSeq;
use gendp::serve::{
    duplex, Priority, RateLimit, ServeConfig, Server, TenantConfig, WireClient, WireOutcome,
};
use rand::{rngs::SmallRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    silence_injected_panics();

    // Two shards, each a full device (16 int + 1 FP arrays), with a 2%
    // fault plan the retry budget absorbs.
    let config = ServeConfig {
        shards: 2,
        shard_config: DeviceConfig {
            workers: 2,
            retry: RetryPolicy {
                max_attempts: 6,
                ..RetryPolicy::default()
            },
            fault: Some(FaultConfig::uniform(11, 20_000)),
            ..DeviceConfig::default()
        },
        ..ServeConfig::default()
    };
    let tenants = vec![
        TenantConfig::new("mapper")
            .priority(Priority::Interactive)
            .weight(2),
        TenantConfig::new("caller").rate(RateLimit::per_sec(50_000.0)),
        TenantConfig::new("polisher").priority(Priority::Batch),
    ];
    let mut server = Server::start(config, tenants)?;

    // Two in-process tenants submit concurrently through cloneable
    // clients; every ticket resolves exactly once.
    let mut rng = SmallRng::seed_from_u64(5);
    let mapper = server.client("mapper").expect("registered tenant");
    let caller = server.client("caller").expect("registered tenant");
    let mut tickets = Vec::new();
    for _ in 0..60 {
        tickets.push(mapper.submit(Task::bsw_local(
            DnaSeq::random(24, &mut rng),
            DnaSeq::random(32, &mut rng),
            Scoring::bwa_mem(),
        ))?);
        tickets.push(caller.submit(Task::PairHmm {
            read: DnaSeq::random(16, &mut rng),
            haplotype: DnaSeq::random(24, &mut rng),
            qual: 30,
            scale: 1024,
            params: PairHmmParams::gatk(),
        })?);
    }
    for ticket in tickets {
        let done = ticket.wait()?;
        assert!(done.attempts >= 1 && done.shard < 2);
    }

    // The third tenant connects over the framed protocol on an
    // in-process duplex stream — byte-identical to a Unix socket.
    let ((srv_r, srv_w), (cli_r, cli_w)) = duplex();
    thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        let server = &server;
        let conn = scope.spawn(move || server.serve_connection(srv_r, srv_w));
        let mut wire = WireClient::new(cli_r, cli_w);
        wire.ping()?;
        let mut rng = SmallRng::seed_from_u64(6);
        let mut pending = Vec::new();
        for _ in 0..20 {
            pending.push(wire.submit(
                "polisher",
                Task::bsw_global(
                    DnaSeq::random(20, &mut rng),
                    DnaSeq::random(20, &mut rng),
                    Scoring::bwa_mem(),
                ),
            )?);
        }
        for _ in &pending {
            let response = wire.recv()?.expect("open connection");
            assert!(matches!(response.outcome, WireOutcome::Ok { .. }));
        }
        drop(wire);
        conn.join().expect("connection thread")?;
        Ok(())
    })?;

    server.shutdown();
    let stats = server.stats();
    println!("tenant        completed  p50 ms   p99 ms  (effective weight)");
    for t in &stats.tenants {
        println!(
            "{:<13} {:>9} {:>7.2} {:>8.2}  ({}x)",
            t.name,
            t.counters.completed,
            t.latency.quantile(0.50) as f64 / 1e6,
            t.latency.quantile(0.99) as f64 / 1e6,
            t.effective_weight,
        );
    }
    println!(
        "recovery across {} shards: {} faults injected, {} retries, {} panics contained",
        stats.shards.len(),
        stats.recovery.faults_injected,
        stats.recovery.retries,
        stats.recovery.panics_contained,
    );
    assert!(stats.totals.drained(), "zero lost tasks");
    assert_eq!(stats.totals.failed, 0);
    println!(
        "delivered {}/{} admitted tasks — zero lost",
        stats.totals.completed, stats.totals.accepted
    );
    Ok(())
}
