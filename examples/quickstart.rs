//! Quickstart: map a DP objective function onto the DPAx accelerator with
//! DPMap, run it on the cycle-level simulator, and compare against the
//! software kernel.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use gendp::core::{bsw_score, AcceleratorRun, GendpPipeline};
use gendp::dpax::TierPolicy;
use gendp::dpmap::map_dfg;
use gendp::kernels::dfgs::bsw_dfg;
use gendp::kernels::{bsw_i32, AlignMode, Scoring};
use gendp::seq::{DnaSeq, Genome, MutationProfile};
use rand::{rngs::SmallRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small alignment task: a noisy read against its source window.
    let mut rng = SmallRng::seed_from_u64(7);
    let genome = Genome::random(400, &mut rng);
    let target: DnaSeq = genome.window(100, 60);
    let query = MutationProfile::illumina().apply(&target, &mut rng);
    println!("query : {query}");
    println!("target: {target}");

    // 2. Look at what DPMap does with the BSW objective function.
    let scoring = Scoring::bwa_mem();
    let dfg = bsw_dfg(&scoring);
    let mapping = map_dfg(&dfg);
    println!(
        "\nDPMap: {} DFG operators -> {} compute-unit subgraphs in {} VLIW cycles",
        dfg.len(),
        mapping.stats.subgraphs,
        mapping.program.len()
    );
    println!("compute program:\n{}", mapping.program);

    // 3. Run the task on a simulated 4-PE integer array.
    let accel = GendpPipeline::bsw(&scoring);
    let rows: Vec<i32> = target.codes().iter().map(|&c| c as i32).collect();
    let cols: Vec<i32> = query.codes().iter().map(|&c| c as i32).collect();
    let out = accel.run(&rows, &cols, 4)?;
    let run = AcceleratorRun::from_stats(&out.stats);

    // 4. Compare against the reference software kernel.
    let reference = bsw_i32(&query, &target, &scoring, 1000, AlignMode::Local);
    println!(
        "\naccelerator score {}  |  reference score {}",
        bsw_score(&out),
        reference.score
    );
    assert_eq!(bsw_score(&out), reference.score);

    println!(
        "\n{} cells in {} cycles ({:.3} cells/cycle); {:.1} insts/cell; VLIW util {:.1}%",
        run.cells,
        run.cycles,
        run.cells_per_cycle(),
        run.insts_per_cell(),
        100.0 * run.vliw_utilization
    );
    println!(
        "one DPAx tile (16 arrays) at 2 GHz ~= {:.1} GCUPS on this kernel",
        run.gcups(16, 1)
    );

    // 5. The functional fast path: the same task through the tier policy,
    //    skipping per-cycle simulation. Outputs are bit-identical; cycles
    //    come from the certificate's analytic model, and the run's
    //    provenance records which tier actually executed.
    let fast = GendpPipeline::bsw(&scoring).tiers(TierPolicy::functional());
    let fout = fast.run(&rows, &cols, 4)?;
    assert_eq!(bsw_score(&fout), reference.score);
    println!(
        "\nfunctional tier: score {} on the `{}` tier, {} cycles ({})",
        bsw_score(&fout),
        fout.stats.tier,
        fout.stats.cycles,
        if fout.stats.cycles_estimated {
            "analytic bound"
        } else {
            "exact"
        }
    );
    Ok(())
}
