//! File-based pipeline: write simulated reads and a reference to FASTA,
//! read them back, align each read on the simulated accelerator, and emit
//! SAM-like records with host-side CIGAR tracebacks.
//!
//! ```sh
//! cargo run --release --example fasta_pipeline
//! ```

use gendp::core::{bsw_score, GendpPipeline};
use gendp::kernels::{align_traceback, AlignMode, Scoring};
use gendp::seq::{read_fasta, write_fasta, FastaRecord, Genome, ShortReadProfile};
use rand::{rngs::SmallRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate a reference and reads; round-trip them through FASTA.
    let mut rng = SmallRng::seed_from_u64(23);
    let genome = Genome::random(4_000, &mut rng);
    let profile = ShortReadProfile {
        len: 36,
        ..ShortReadProfile::illumina()
    };
    let reads = profile.sample(&genome, 6, &mut rng);

    let mut fasta = Vec::new();
    write_fasta(
        &mut fasta,
        &[FastaRecord {
            name: "ref".into(),
            seq: genome.seq().clone(),
        }],
        70,
    )?;
    let mut reads_fasta = Vec::new();
    let records: Vec<FastaRecord> = reads
        .iter()
        .enumerate()
        .map(|(i, r)| FastaRecord {
            name: format!("read{i} pos={}", r.true_pos),
            seq: r.seq.clone(),
        })
        .collect();
    write_fasta(&mut reads_fasta, &records, 70)?;

    let reference = read_fasta(fasta.as_slice())?.remove(0).seq;
    let parsed_reads = read_fasta(reads_fasta.as_slice())?;
    println!(
        "loaded 1 reference ({} bp) and {} reads\n",
        reference.len(),
        parsed_reads.len()
    );

    // 2. Align each read against its window on the accelerator, then
    //    recover the base-level alignment on the host.
    let scoring = Scoring::bwa_mem();
    let accel = GendpPipeline::bsw(&scoring);
    println!("name    | accel score | CIGAR          | identity");
    for (record, read) in parsed_reads.iter().zip(&reads) {
        let window = genome.window(read.true_pos, profile.len + 6);
        let rows: Vec<i32> = window.codes().iter().map(|&c| c as i32).collect();
        let cols: Vec<i32> = record.seq.codes().iter().map(|&c| c as i32).collect();
        let out = accel.run(&rows, &cols, 4)?;
        let accel_score = bsw_score(&out);
        let tb = align_traceback(&record.seq, &window, &scoring, AlignMode::Local);
        assert_eq!(accel_score, tb.score, "accelerator == traceback score");
        let name = record.name.split_whitespace().next().unwrap_or("?");
        println!(
            "{name:7} | {accel_score:11} | {:14} | {:5.1}%",
            tb.cigar.to_string(),
            100.0 * tb.cigar.identity()
        );
    }
    println!("\nall accelerator scores matched the host traceback");
    Ok(())
}
