//! Short-read alignment (the paper's BSW pipeline stage, §2.3): align a
//! batch of Illumina-like reads to their reference windows on the
//! simulated accelerator, four reads at a time in the 8-bit SIMD lanes.
//!
//! ```sh
//! cargo run --release --example read_alignment
//! ```

use gendp::core::{bsw_simd_scores, pack_lanes, AcceleratorRun, GendpPipeline};
use gendp::kernels::{bsw_i8, Scoring};
use gendp::seq::{Genome, ShortReadProfile};
use rand::{rngs::SmallRng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SmallRng::seed_from_u64(11);
    let genome = Genome::random(20_000, &mut rng);
    let profile = ShortReadProfile {
        len: 40, // short tables keep the example fast in debug builds
        ..ShortReadProfile::illumina()
    };
    let reads = profile.sample(&genome, 16, &mut rng);
    let scoring = Scoring::bwa_mem();
    let accel = GendpPipeline::bsw_simd(&scoring);

    let mut total_cells = 0u64;
    let mut total_cycles = 0u64;
    let mut checked = 0usize;
    for batch in reads.chunks(4) {
        // Pack four reads (and their reference windows) into SIMD lanes.
        let q_codes: Vec<Vec<u8>> = batch.iter().map(|r| r.seq.codes()).collect();
        let t_codes: Vec<Vec<u8>> = batch
            .iter()
            .map(|r| genome.window(r.true_pos, profile.len + 8).codes())
            .collect();
        let get = |v: &Vec<Vec<u8>>, i: usize| -> Vec<u8> { v.get(i).cloned().unwrap_or_default() };
        let cols = pack_lanes([
            &get(&q_codes, 0),
            &get(&q_codes, 1),
            &get(&q_codes, 2),
            &get(&q_codes, 3),
        ]);
        let rows = pack_lanes([
            &get(&t_codes, 0),
            &get(&t_codes, 1),
            &get(&t_codes, 2),
            &get(&t_codes, 3),
        ]);
        let out = accel.run(&rows, &cols, 4)?;
        let scores = bsw_simd_scores(&out);
        for (lane, read) in batch.iter().enumerate() {
            let window = genome.window(read.true_pos, profile.len + 8);
            let expect = bsw_i8(&read.seq, &window, &scoring, 1000);
            assert_eq!(scores[lane] as i32, expect.score, "lane {lane}");
            checked += 1;
        }
        total_cells += out.stats.cells() * 4; // four lanes per cell
        total_cycles += out.stats.cycles;
    }
    let run = AcceleratorRun {
        cells: total_cells,
        cycles: total_cycles,
        ctrl_insts: 0,
        vliw_insts: 0,
        vliw_utilization: 0.0,
    };
    println!(
        "aligned {checked} reads; {} lane-cells in {} cycles = {:.2} cells/cycle/array",
        total_cells,
        total_cycles,
        run.cells_per_cycle()
    );
    println!(
        "one DPAx tile (16 arrays, 4 SIMD lanes) ~= {:.1} GCUPS",
        run.gcups(16, 1)
    );
    println!("all accelerator scores matched the 8-bit software kernel");
    Ok(())
}
