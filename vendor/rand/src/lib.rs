//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate, vendored because the build environment has no registry access.
//!
//! Only the surface this workspace uses is implemented:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range` (integer and float ranges,
//!   half-open and inclusive), `gen_bool`, and `gen` over primitives,
//! * [`SeedableRng`] with `from_seed` / `seed_from_u64`,
//! * [`rngs::SmallRng`] (xoshiro256++, the same family rand 0.8 uses on
//!   64-bit targets) and a [`rngs::StdRng`] alias.
//!
//! Streams are deterministic per seed but are **not** bit-identical to the
//! registry crate's; nothing in this workspace depends on the exact
//! sequence, only on reproducibility within a build.

use std::ops::{Range, RangeInclusive};

/// Core random-number source: 64 bits at a time.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A type a range of which can be sampled uniformly.
pub trait SampleUniform: Sized {
    /// Uniform value in `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform value in `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let span = (high as i128) - (low as i128);
                let r = (rng.next_u64() as i128) % span;
                (low as i128 + r) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                let span = (high as i128) - (low as i128) + 1;
                let r = (rng.next_u64() as i128) % span;
                (low as i128 + r) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                low + (high - low) * (unit_f64(rng) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                low + (high - low) * (unit_f64(rng) as $t)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Uniform `f64` in `[0, 1)` from the top 53 bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(rng, low, high)
    }
}

/// Primitive types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// A uniformly distributed value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        unit_f64(self) < p
    }

    /// A uniformly distributed primitive value.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64 (the
    /// same expansion rand 0.8 documents for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    /// Alias: the workspace needs reproducibility, not cryptographic
    /// strength, so the standard generator is the small one.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000), b.gen_range(0..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(8);
        let same: Vec<i32> = (0..32).map(|_| c.gen_range(0..1000)).collect();
        assert!(same.iter().any(|&v| v != same[0]), "stream looks constant");
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i32 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&v));
            let w: usize = rng.gen_range(3..=7);
            assert!((3..=7).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn rng_works_through_mut_references() {
        fn sum(rng: &mut impl Rng) -> u64 {
            (0..4).map(|_| rng.gen_range(0u64..10)).sum()
        }
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(sum(&mut rng) < 40);
    }
}
