//! Test configuration, outcome type, and the deterministic test RNG.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is discarded.
    Reject(String),
    /// A `prop_assert*` failed; the whole property fails.
    Fail(String),
}

impl TestCaseError {
    /// A failure outcome.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection outcome.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// The RNG driving strategy sampling: deterministic per test name, so
/// every run of a property generates the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// A generator seeded from the test's name (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1_0000_0000_01B3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(hash),
        }
    }

    /// A generator from an explicit seed.
    pub fn from_seed_u64(seed: u64) -> Self {
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn named_rngs_are_deterministic_and_distinct() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let sa: Vec<u32> = (0..16).map(|_| a.gen_range(0u32..1000)).collect();
        let sb: Vec<u32> = (0..16).map(|_| b.gen_range(0u32..1000)).collect();
        let sc: Vec<u32> = (0..16).map(|_| c.gen_range(0u32..1000)).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }
}
