//! The [`Strategy`] trait and combinators.

use std::rc::Rc;

use crate::test_runner::TestRng;
use rand::Rng;

/// A generator of values for property tests.
///
/// Unlike the registry crate there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Derives a second strategy from every generated value and draws from
    /// it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.source.sample(rng)).sample(rng)
    }
}

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Uniform choice among type-erased strategies.
#[derive(Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds the union.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let k = rng.gen_range(0..self.arms.len());
        self.arms[k].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
