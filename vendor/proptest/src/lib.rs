//! Offline, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored because
//! the build environment has no registry access.
//!
//! It implements the surface this workspace's property tests use — the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map` / `boxed`, [`prop_oneof!`], [`strategy::Just`],
//! [`arbitrary::any`], [`collection::vec`], `array::uniform{2,3,4}`,
//! ranges as strategies, and the `prop_assert*` / [`prop_assume!`]
//! macros — on top of a deterministic per-test RNG.
//!
//! Unlike the registry crate there is **no shrinking**: a failing case
//! reports the assertion message and case number only. Generation is
//! purely random (deterministic per test name), which preserves the
//! tests' role as randomized differential checks.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` strategies for primitives.

    use std::fmt::Debug;
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngCore;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized + Debug {
        /// A uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Length specification for [`vec`]: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            SizeRange {
                lo,
                hi_exclusive: hi + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for vectors of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `[S::Value; N]`, each element drawn independently.
    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize>(S);

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.0.sample(rng))
        }
    }

    /// Strategy for 2-element arrays of `strategy` values.
    pub fn uniform2<S: Strategy>(strategy: S) -> UniformArray<S, 2> {
        UniformArray(strategy)
    }

    /// Strategy for 3-element arrays of `strategy` values.
    pub fn uniform3<S: Strategy>(strategy: S) -> UniformArray<S, 3> {
        UniformArray(strategy)
    }

    /// Strategy for 4-element arrays of `strategy` values.
    pub fn uniform4<S: Strategy>(strategy: S) -> UniformArray<S, 4> {
        UniformArray(strategy)
    }
}

pub mod prelude {
    //! One-stop imports, mirroring the registry crate's prelude.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespaced access to the strategy modules (`prop::collection::vec`,
    /// `prop::array::uniform4`, ...).
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property-test functions: each parameter is drawn from its
/// strategy for every case, and `prop_assert*` failures abort the run
/// with the case's message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                let mut __cases_passed: u32 = 0;
                let mut __attempts: u32 = 0;
                while __cases_passed < __config.cases {
                    __attempts += 1;
                    if __attempts > __config.cases.saturating_mul(20).max(1000) {
                        panic!(
                            "proptest `{}`: too many rejected cases ({} attempts, {} passed)",
                            stringify!($name), __attempts, __cases_passed
                        );
                    }
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __cases_passed += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest `{}` failed at case {}: {}",
                                stringify!($name), __cases_passed, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), __l, __r
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discards the current case (does not count toward the case budget)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// Picks uniformly among the given strategies (all must share a value
/// type). Weighted arms are not supported by this subset.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = i32> {
        (0i32..100).prop_map(|v| v * 2)
    }

    proptest! {
        #[test]
        fn mapped_values_hold_invariants(v in small_even(), w in 1usize..8) {
            prop_assert!(v % 2 == 0);
            prop_assert!((1..8).contains(&w));
        }

        #[test]
        fn vectors_respect_size_and_range(
            xs in prop::collection::vec(-5i32..5, 2..10),
            arr in prop::array::uniform4(0u16..100),
        ) {
            prop_assert!((2..10).contains(&xs.len()));
            prop_assert!(xs.iter().all(|x| (-5..5).contains(x)));
            prop_assert!(arr.iter().all(|&a| a < 100));
        }

        #[test]
        fn oneof_and_flat_map_compose(
            v in prop_oneof![Just(1i32), Just(2i32), 10i32..20],
            pair in (1usize..5).prop_flat_map(|n| (Just(n), prop::collection::vec(0u8..4, n))),
        ) {
            prop_assert!(v == 1 || v == 2 || (10..20).contains(&v));
            let (n, xs) = pair;
            prop_assert_eq!(xs.len(), n);
        }

        #[test]
        fn assume_rejects_without_failing(v in 0i32..10) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(v in 0i32..10) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        always_fails();
    }
}
