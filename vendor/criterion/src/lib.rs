//! Offline, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness,
//! vendored because the build environment has no registry access.
//!
//! Benchmarks compile and run with the same source as against the registry
//! crate; measurement is a simple calibrated mean (wall time per
//! iteration, plus throughput when declared) printed to stdout — no
//! statistical analysis, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput declaration for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group name provides context).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives timed iterations of one benchmark.
pub struct Bencher {
    sample_size: u64,
}

impl Bencher {
    /// Times `f`, first calibrating an iteration count so one benchmark
    /// stays within a bounded wall-clock budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration run (also warms caches).
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        // Budget ~200ms per benchmark, capped by the configured samples.
        let budget = Duration::from_millis(200);
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, self.sample_size as u128) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let stats = BenchStats {
            iters,
            mean: t1.elapsed() / iters as u32,
        };
        CURRENT_STATS.with(|slot| slot.set(Some(stats)));
    }
}

/// Result of one benchmark: iterations run and mean wall time.
#[derive(Debug, Clone, Copy)]
pub struct BenchStats {
    /// Iterations measured.
    pub iters: u64,
    /// Mean wall time per iteration.
    pub mean: Duration,
}

fn report(id: &str, stats: BenchStats, throughput: Option<Throughput>) {
    let per_iter = stats.mean.as_secs_f64();
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  thrpt: {:.3} Kelem/s", n as f64 / per_iter / 1e3),
        Throughput::Bytes(n) => format!(
            "  thrpt: {:.3} MiB/s",
            n as f64 / per_iter / (1 << 20) as f64
        ),
    });
    println!(
        "{id:<40} time: {:>12.3?} ({} iters){}",
        stats.mean,
        stats.iters,
        rate.unwrap_or_default()
    );
}

/// The benchmark manager: holds configuration and runs benchmarks.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the target number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = n;
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size as u64,
        };
        let stats = run_one(&mut b, &mut f);
        report(id, stats, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Runs the user closure against a fresh [`Bencher`] and returns the stats
/// its `iter` call recorded (zeros if the closure never called `iter`).
fn run_one<F: FnMut(&mut Bencher)>(b: &mut Bencher, f: &mut F) -> BenchStats {
    CURRENT_STATS.with(|slot| slot.take());
    f(b);
    CURRENT_STATS
        .with(|slot| slot.take())
        .unwrap_or(BenchStats {
            iters: 0,
            mean: Duration::ZERO,
        })
}

thread_local! {
    static CURRENT_STATS: std::cell::Cell<Option<BenchStats>> = const { std::cell::Cell::new(None) };
}

/// A group of related benchmarks sharing a name and optional throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            sample_size: self.criterion.sample_size as u64,
        };
        let stats = run_one(&mut b, &mut f);
        report(&format!("{}/{}", self.name, id.id), stats, self.throughput);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting is incremental; this is a no-op).
    pub fn finish(self) {}
}

/// Defines a benchmark-group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
        });
        let mut group = c.benchmark_group("grouped");
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter(|| black_box(7 * 7));
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_every_shape() {
        benches();
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { sample_size: 20 };
        b.iter(|| std::thread::sleep(std::time::Duration::from_micros(50)));
        let stats = CURRENT_STATS
            .with(|slot| slot.get())
            .expect("iter records stats");
        assert!(stats.iters >= 1);
        assert!(stats.mean >= std::time::Duration::from_micros(40));
    }
}
