//! End-to-end tests of the multi-tenant alignment service: correctness
//! under fault injection across shards, admission control, and the
//! framed wire protocol over the in-process duplex transport.

use std::collections::HashMap;
use std::thread;
use std::time::Duration;

use gendp::kernels::bellman_ford::Graph;
use gendp::kernels::chain::ChainParams;
use gendp::kernels::pairhmm::PairHmmParams;
use gendp::kernels::poa::Poa;
use gendp::kernels::Scoring;
use gendp::runtime::{
    silence_injected_panics, DeviceConfig, FaultConfig, RetryPolicy, Task, TaskValue,
};
use gendp::seq::{Anchor, DnaSeq};
use gendp::serve::{
    duplex, AdmissionError, Priority, RateLimit, ServeConfig, Server, TenantConfig, Ticket,
    WireClient, WireOutcome,
};
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn seq(rng: &mut SmallRng, len: usize) -> DnaSeq {
    DnaSeq::random(len, rng)
}

/// One of each kernel kind, cycling with `i`, deterministic in `rng`.
fn mixed_task(rng: &mut SmallRng, i: usize) -> Task {
    match i % 9 {
        0 => Task::bsw_local(seq(rng, 12), seq(rng, 16), Scoring::bwa_mem()),
        1 => Task::bsw_simd(
            (0..4).map(|_| (seq(rng, 8), seq(rng, 8))).collect(),
            Scoring::bwa_mem(),
        ),
        2 => Task::PairHmm {
            read: seq(rng, 10),
            haplotype: seq(rng, 14),
            qual: 30,
            scale: 1024,
            params: PairHmmParams::gatk(),
        },
        3 => Task::PairHmmFloat {
            read: seq(rng, 8),
            haplotype: seq(rng, 12),
            qual: 30,
            params: PairHmmParams::gatk(),
        },
        4 => {
            let xs: Vec<i32> = (0..10).map(|_| rng.gen_range(0..100)).collect();
            let ys: Vec<i32> = (0..10).map(|_| rng.gen_range(0..100)).collect();
            Task::dtw(xs, ys)
        }
        5 => {
            let xs: Vec<i32> = (0..10).map(|_| rng.gen_range(0..100)).collect();
            let ys: Vec<i32> = (0..12).map(|_| rng.gen_range(0..100)).collect();
            Task::DtwBanded { xs, ys, width: 6 }
        }
        6 => {
            let mut rpos = 0i32;
            let anchors: Vec<Anchor> = (0..8)
                .map(|_| {
                    rpos += rng.gen_range(5..30);
                    Anchor {
                        rpos,
                        qpos: rpos - rng.gen_range(0..4),
                        span: 11,
                    }
                })
                .collect();
            Task::Chain {
                anchors,
                params: ChainParams {
                    n_prev: 8,
                    ..ChainParams::minimap2(11.0)
                },
            }
        }
        7 => {
            let backbone = seq(rng, 14);
            let mut graph = Poa::new();
            graph.add_sequence(&backbone, &Scoring::racon());
            Task::Poa {
                graph,
                probe: seq(rng, 14),
                scoring: Scoring::racon(),
            }
        }
        _ => {
            let n = 10;
            let mut graph = Graph::new(n);
            for v in 0..n - 1 {
                graph.add_edge(v, v + 1, rng.gen_range(1..9));
            }
            graph.add_edge(0, n - 1, 40);
            Task::BellmanFord {
                graph,
                source: 0,
                rounds: 3,
            }
        }
    }
}

fn faulty_config() -> ServeConfig {
    ServeConfig {
        shards: 2,
        shard_config: DeviceConfig {
            int_arrays: 4,
            float_arrays: 1,
            workers: 2,
            retry: RetryPolicy {
                max_attempts: 8,
                ..RetryPolicy::default()
            },
            // 5% rate faults plus one permanently broken int slot per
            // shard: rate decisions hash batch position (so how many
            // fire depends on batch shapes, which depend on timing),
            // but the broken slot faults on every attempt placed there
            // — the redispatch/retry path is exercised no matter how
            // the scheduler slices the batches.
            fault: Some(FaultConfig {
                broken_slots: 0b1,
                ..FaultConfig::uniform(7, 50_000)
            }),
            ..DeviceConfig::default()
        },
        batch_max: 16,
        quantum_cells: 256,
        dispatch_queue: 2,
        ..ServeConfig::default()
    }
}

/// The tentpole invariant: a 3-tenant mixed-kernel workload on two
/// shards under 5% fault injection loses nothing, and every value
/// matches the direct single-task execution of the same task.
#[test]
fn mixed_workload_on_faulty_shards_is_lossless_and_correct() {
    silence_injected_panics();
    let tenants = vec![
        TenantConfig::new("mapper").priority(Priority::Interactive),
        TenantConfig::new("caller"),
        TenantConfig::new("polisher").priority(Priority::Batch),
    ];
    let mut server = Server::start(faulty_config(), tenants).expect("server start");

    let mut rng = SmallRng::seed_from_u64(99);
    let mut expected: Vec<TaskValue> = Vec::new();
    let mut tickets: Vec<Ticket> = Vec::new();
    for i in 0..300 {
        let task = mixed_task(&mut rng, i);
        let (reference, _) = task.execute(4).expect("reference execution");
        expected.push(reference);
        let tenant = ["mapper", "caller", "polisher"][i % 3];
        let client = server.client(tenant).expect("tenant exists");
        tickets.push(client.submit(task).expect("admitted"));
    }

    for (i, (ticket, want)) in tickets.into_iter().zip(expected).enumerate() {
        let completed = ticket
            .wait_timeout(Duration::from_secs(30))
            .expect("delivered within 30s")
            .unwrap_or_else(|e| panic!("task {i} failed: {e}"));
        assert_eq!(completed.value, want, "task {i} value diverged");
        assert!(completed.shard < 2);
        assert!(completed.attempts >= 1);
    }

    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.totals.submitted, 300);
    assert_eq!(stats.totals.accepted, 300);
    assert_eq!(stats.totals.completed, 300);
    assert_eq!(stats.totals.failed, 0);
    assert!(stats.totals.drained(), "zero lost tasks");
    assert!(
        stats.recovery.faults_injected > 0,
        "the fault plan actually fired"
    );
    // Both fault domains served work.
    for shard in &stats.shards {
        assert!(shard.device.batches > 0, "shard {} sat idle", shard.shard);
    }
}

#[test]
fn admission_rejects_invalid_rate_limited_and_shutdown() {
    let tenants = vec![
        TenantConfig::new("free"),
        TenantConfig::new("limited").rate(RateLimit {
            requests_per_sec: 0.0,
            burst: 1.0,
        }),
    ];
    let mut server = Server::start(ServeConfig::default(), tenants).expect("server start");

    // Preflight rejection: an empty query can never execute.
    let free = server.client("free").expect("tenant");
    let invalid = Task::bsw_local(
        DnaSeq::default(),
        "ACGT".parse().unwrap(),
        Scoring::bwa_mem(),
    );
    match free.submit(invalid) {
        Err(AdmissionError::Invalid(report)) => {
            assert!(report.contains("empty"), "unexpected report: {report}")
        }
        other => panic!("expected Invalid, got {other:?}"),
    }

    // Token bucket: burst of one, zero refill — second submit rejects.
    let limited = server.client("limited").expect("tenant");
    let ok_task = || {
        Task::bsw_local(
            "ACGTAC".parse().unwrap(),
            "ACGTAC".parse().unwrap(),
            Scoring::bwa_mem(),
        )
    };
    let first = limited.submit(ok_task()).expect("burst token");
    assert!(matches!(
        limited.submit(ok_task()),
        Err(AdmissionError::RateLimited)
    ));
    assert!(first.wait().is_ok());

    // Unknown tenants never get a client.
    assert!(server.client("nobody").is_none());

    // After shutdown every submit rejects and counters balance.
    server.shutdown();
    assert!(matches!(
        free.submit(ok_task()),
        Err(AdmissionError::ShuttingDown)
    ));
    let stats = server.stats();
    assert!(stats.totals.drained());
    assert_eq!(stats.totals.rejected_invalid, 1);
    assert_eq!(stats.totals.rejected_rate, 1);
}

/// With a configured shard cycle rate, a request whose certified cycle
/// lower bound cannot fit its deadline is rejected at admission with
/// the stable `deadline-infeasible` code, instead of being admitted
/// only to expire in the queue.
#[test]
fn certified_deadline_infeasible_rejects_at_admission() {
    let config = ServeConfig {
        // 1k simulated cycles per wall-second: a deliberately glacial
        // budget so small tasks are still provably late on tight
        // deadlines.
        cycle_rate: Some(1_000),
        ..ServeConfig::default()
    };
    let mut server = Server::start(config, vec![TenantConfig::new("t")]).expect("server start");
    let client = server.client("t").expect("tenant");
    let task = || {
        Task::bsw_local(
            "ACGTACGTACGT".parse().unwrap(),
            "ACGTTCGTACGTTCGT".parse().unwrap(),
            Scoring::bwa_mem(),
        )
    };

    // A BSW pair certifies to a cycle floor in the hundreds; at 1k
    // cycles/sec a 1 ms deadline is provably unreachable.
    let err = client
        .submit_with_deadline(task(), Duration::from_millis(1))
        .unwrap_err();
    assert_eq!(err, AdmissionError::DeadlineInfeasible);
    assert_eq!(err.code(), "deadline-infeasible");

    // The same task with a roomy deadline admits and completes, and a
    // deadline-free submit never trips the gate.
    let ticket = client
        .submit_with_deadline(task(), Duration::from_secs(60))
        .expect("feasible deadline");
    assert!(ticket.wait().is_ok());
    assert!(client.submit(task()).expect("no deadline").wait().is_ok());

    server.shutdown();
    let stats = server.stats();
    assert!(stats.totals.drained());
    assert_eq!(stats.totals.rejected_infeasible, 1);
    assert_eq!(stats.totals.rejected(), 1);
}

#[test]
fn in_flight_quota_sheds_the_open_loop_excess() {
    let tenants = vec![TenantConfig::new("t").quotas(4, 4)];
    let mut server = Server::start(ServeConfig::default(), tenants).expect("server start");
    let client = server.client("t").expect("tenant");
    let mut rng = SmallRng::seed_from_u64(3);

    // Fire far more than the quota without waiting; some are admitted,
    // the excess rejects with a quota error, and nothing is lost.
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    for _ in 0..64 {
        match client.submit(Task::bsw_local(
            seq(&mut rng, 32),
            seq(&mut rng, 32),
            Scoring::bwa_mem(),
        )) {
            Ok(t) => tickets.push(t),
            Err(AdmissionError::OverQuota | AdmissionError::QueueFull) => rejected += 1,
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    assert!(rejected > 0, "quota never engaged");
    for ticket in tickets {
        assert!(ticket.wait().is_ok());
    }
    server.shutdown();
    let stats = server.stats();
    assert!(stats.totals.drained());
    assert_eq!(stats.totals.rejected_quota, rejected);
}

/// The framed protocol end to end over the in-process duplex transport:
/// ping, pipelined submissions from two tenants, inline rejections for
/// an unknown tenant and an invalid task, and a clean drain on close.
#[test]
fn wire_connection_pipelines_and_drains() {
    silence_injected_panics();
    let tenants = vec![TenantConfig::new("alpha"), TenantConfig::new("beta")];
    let mut server = Server::start(faulty_config(), tenants).expect("server start");

    let ((server_reader, server_writer), (client_reader, client_writer)) = duplex();
    thread::scope(|scope| {
        let server = &server;
        let conn = scope.spawn(move || server.serve_connection(server_reader, server_writer));

        let mut client = WireClient::new(client_reader, client_writer);
        client.ping().expect("pong");

        // Pipeline a mixed-kernel burst without reading anything back.
        let mut rng = SmallRng::seed_from_u64(7);
        let mut expected: HashMap<u64, TaskValue> = HashMap::new();
        for i in 0..40 {
            let task = mixed_task(&mut rng, i);
            let (value, _) = task.execute(4).expect("reference execution");
            let tenant = if i % 2 == 0 { "alpha" } else { "beta" };
            let id = client.submit(tenant, task).expect("submit frame");
            expected.insert(id, value);
        }
        let ghost_id = client
            .submit("ghost", Task::dtw(vec![1], vec![1]))
            .expect("submit frame");
        let invalid_id = client
            .submit("alpha", Task::dtw(vec![], vec![]))
            .expect("submit frame");

        // Every request gets exactly one response, in completion order.
        for _ in 0..expected.len() + 2 {
            let response = client
                .recv()
                .expect("read frame")
                .expect("connection still open");
            match response.outcome {
                WireOutcome::Ok {
                    value, attempts, ..
                } => {
                    let want = expected.remove(&response.id).expect("known id, once");
                    assert_eq!(value, want, "id {} value diverged", response.id);
                    assert!(attempts >= 1);
                }
                WireOutcome::Rejected { code, .. } if response.id == ghost_id => {
                    assert_eq!(code, "unknown-tenant");
                }
                WireOutcome::Rejected { code, .. } if response.id == invalid_id => {
                    assert_eq!(code, "invalid");
                }
                other => panic!("unexpected response {}: {other:?}", response.id),
            }
        }
        assert!(expected.is_empty(), "every submission answered");

        // Closing the client ends the server's reader loop cleanly.
        drop(client);
        conn.join()
            .expect("connection thread")
            .expect("clean close");
    });

    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.totals.completed, 40);
    assert_eq!(stats.totals.rejected_invalid, 1);
    assert!(stats.totals.drained());
}
