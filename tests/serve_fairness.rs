//! Tenant-fairness under contention: a saturating high-priority tenant
//! must never starve a low-priority one, at every worker count.
//!
//! The deficit-round-robin scheduler's guarantee is *weighted* shares,
//! not strict priority — so a `Batch` tenant's small job list drains
//! while an `Interactive` hog still has hundreds of requests queued.

use std::time::Duration;

use gendp::kernels::Scoring;
use gendp::runtime::{DeviceConfig, Task};
use gendp::seq::DnaSeq;
use gendp::serve::{Priority, ServeConfig, Server, TenantConfig, Ticket};
use rand::{rngs::SmallRng, SeedableRng};

const HOG_TASKS: usize = 600;
const TURTLE_TASKS: usize = 15;

fn fairness_round(workers: usize) {
    let config = ServeConfig {
        shards: 1,
        shard_config: DeviceConfig {
            int_arrays: 4,
            float_arrays: 1,
            workers,
            ..DeviceConfig::default()
        },
        batch_max: 16,
        quantum_cells: 512,
        dispatch_queue: 2,
        ..ServeConfig::default()
    };
    let tenants = vec![
        TenantConfig::new("hog")
            .priority(Priority::Interactive)
            .weight(8)
            .quotas(HOG_TASKS, HOG_TASKS),
        TenantConfig::new("turtle")
            .priority(Priority::Batch)
            .weight(1),
    ];
    let mut server = Server::start(config, tenants).expect("server start");
    let hog = server.client("hog").expect("tenant");
    let turtle = server.client("turtle").expect("tenant");
    let mut rng = SmallRng::seed_from_u64(workers as u64);

    // The hog floods its entire job list first, so its queue is deep
    // before the turtle's first request ever arrives.
    let hog_tickets: Vec<Ticket> = (0..HOG_TASKS)
        .map(|_| {
            hog.submit(Task::bsw_local(
                DnaSeq::random(24, &mut rng),
                DnaSeq::random(32, &mut rng),
                Scoring::bwa_mem(),
            ))
            .expect("hog admitted")
        })
        .collect();
    let turtle_tickets: Vec<Ticket> = (0..TURTLE_TASKS)
        .map(|_| {
            turtle
                .submit(Task::bsw_local(
                    DnaSeq::random(16, &mut rng),
                    DnaSeq::random(16, &mut rng),
                    Scoring::bwa_mem(),
                ))
                .expect("turtle admitted")
        })
        .collect();

    // The turtle drains on a bounded clock even though the hog arrived
    // first with 40x the work and a 128x effective weight.
    for (i, ticket) in turtle_tickets.into_iter().enumerate() {
        ticket
            .wait_timeout(Duration::from_secs(30))
            .unwrap_or_else(|| panic!("workers={workers}: turtle task {i} starved"))
            .unwrap_or_else(|e| panic!("workers={workers}: turtle task {i} failed: {e}"));
    }
    let mid = server.stats();
    let hog_done = mid
        .tenants
        .iter()
        .find(|t| t.name == "hog")
        .expect("hog stats")
        .counters
        .completed;
    assert!(
        hog_done < HOG_TASKS as u64,
        "workers={workers}: turtle only finished after the whole hog \
         backlog ({hog_done}/{HOG_TASKS}) — that is starvation"
    );

    for ticket in hog_tickets {
        ticket.wait().expect("hog task delivered");
    }
    server.shutdown();
    let stats = server.stats();
    assert!(stats.totals.drained(), "workers={workers}: lost tasks");
    assert_eq!(stats.totals.completed, (HOG_TASKS + TURTLE_TASKS) as u64);
}

#[test]
fn batch_tenant_is_not_starved_with_one_worker() {
    fairness_round(1);
}

#[test]
fn batch_tenant_is_not_starved_with_two_workers() {
    fairness_round(2);
}

#[test]
fn batch_tenant_is_not_starved_with_eight_workers() {
    fairness_round(8);
}
