//! Integration of the framework layers: DFG → DPMap → programs → DPAx,
//! with the performance counters the evaluation section consumes.

use gendp::core::{bsw_score, AcceleratorRun, GendpPipeline};
use gendp::dpmap::{analyze_tree_depth, map_dfg};
use gendp::kernels::chain::ChainParams;
use gendp::kernels::dfgs;
use gendp::kernels::pairhmm::PairHmmParams;
use gendp::kernels::Scoring;
use gendp::seq::{DnaSeq, Genome, MutationProfile};
use rand::{rngs::SmallRng, SeedableRng};

#[test]
fn every_kernel_dfg_maps_onto_compute_units() {
    let dfgs = [
        dfgs::bsw_dfg(&Scoring::bwa_mem()),
        dfgs::bsw_simd_dfg(&Scoring::bwa_mem()),
        dfgs::pairhmm_log_dfg(&PairHmmParams::gatk(), 1024),
        dfgs::poa_dfg(&Scoring::racon()),
        dfgs::chain_dfg(&ChainParams::minimap2(15.0)),
        dfgs::dtw_dfg(),
        dfgs::bellman_ford_dfg(),
        dfgs::lcs_dfg(),
    ];
    for dfg in &dfgs {
        let m = map_dfg(dfg);
        assert!(!m.program.is_empty(), "{}", dfg.name());
        assert!(m.stats.cu_utilization() > 0.0 && m.stats.cu_utilization() <= 1.0);
        assert!(m.stats.subgraphs >= 1);
        // Every subgraph fits one compute unit.
        assert!(m.subgraphs.iter().all(|s| s.op_count() <= 3));
    }
}

#[test]
fn tree_depth_ablation_is_monotone_for_all_kernels() {
    let dfgs = [
        dfgs::bsw_dfg(&Scoring::bwa_mem()),
        dfgs::pairhmm_log_dfg(&PairHmmParams::gatk(), 1024),
        dfgs::poa_dfg(&Scoring::racon()),
        dfgs::chain_dfg(&ChainParams::minimap2(15.0)),
    ];
    for dfg in &dfgs {
        let l1 = analyze_tree_depth(dfg, 1);
        let l2 = analyze_tree_depth(dfg, 2);
        let l3 = analyze_tree_depth(dfg, 3);
        // Deeper trees reduce register-file writes; levels 2 and 3 can tie
        // (the paper's Table 2 shows Chain at 20/20 and POA at 56/54), and
        // the generic depth-3 packer may land one write above the real
        // DPMap result.
        assert!(
            l1.rf_accesses() >= l2.rf_accesses() && l2.rf_accesses() + 1 >= l3.rf_accesses(),
            "{}: {} {} {}",
            dfg.name(),
            l1.rf_accesses(),
            l2.rf_accesses(),
            l3.rf_accesses()
        );
        assert!(l1.rf_accesses() >= l3.rf_accesses(), "{}", dfg.name());
        assert!(
            l1.cu_utilization() >= l2.cu_utilization() && l2.cu_utilization() > l3.cu_utilization(),
            "{}",
            dfg.name()
        );
    }
}

#[test]
fn accelerator_counters_are_sane() {
    let mut rng = SmallRng::seed_from_u64(201);
    let g = Genome::random(100, &mut rng);
    let t = g.window(0, 40);
    let q = MutationProfile::illumina().apply(&g.window(0, 40), &mut rng);
    let q = q.window(0, q.len().min(40));
    let scoring = Scoring::bwa_mem();
    let accel = GendpPipeline::bsw(&scoring);
    let rows: Vec<i32> = t.codes().iter().map(|&c| c as i32).collect();
    let cols: Vec<i32> = q.codes().iter().map(|&c| c as i32).collect();
    let out = accel.run(&rows, &cols, 4).expect("simulation");
    let run = AcceleratorRun::from_stats(&out.stats);
    assert_eq!(run.cells, (t.len() * q.len()) as u64);
    assert!(run.cells_per_cycle() > 0.0 && run.cells_per_cycle() < 4.0);
    assert!(run.vliw_utilization > 0.3 && run.vliw_utilization <= 1.0);
    assert!(run.insts_per_cell() > 5.0 && run.insts_per_cell() < 40.0);
    // One tile: 16 arrays; a plausible throughput figure comes out.
    let gcups = run.gcups(16, 1);
    assert!(gcups > 1.0, "gcups {gcups}");
    // The score is right, of course.
    assert_eq!(
        bsw_score(&out),
        gendp::kernels::bsw_i32(&q, &t, &scoring, 1000, gendp::kernels::AlignMode::Local).score
    );
}

#[test]
fn measured_vliw_utilization_matches_static_mapping() {
    // The simulator's measured VLIW slot utilization must equal the static
    // utilization of the mapped compute program (every cell runs the same
    // program).
    let scoring = Scoring::bwa_mem();
    let mapping = map_dfg(&dfgs::bsw_dfg(&scoring));
    let static_util = mapping.program.vliw_utilization();
    let accel = GendpPipeline::bsw(&scoring);
    let mut rng = SmallRng::seed_from_u64(202);
    let t = DnaSeq::random(20, &mut rng);
    let q = DnaSeq::random(20, &mut rng);
    let rows: Vec<i32> = t.codes().iter().map(|&c| c as i32).collect();
    let cols: Vec<i32> = q.codes().iter().map(|&c| c as i32).collect();
    let out = accel.run(&rows, &cols, 4).expect("simulation");
    assert!((out.stats.vliw_utilization() - static_util).abs() < 1e-9);
}

#[test]
fn tile_scheduler_balances_a_batch() {
    use gendp::core::{schedule_tile, GendpPipeline};
    let mut rng = SmallRng::seed_from_u64(203);
    let scoring = Scoring::bwa_mem();
    let accel = GendpPipeline::bsw(&scoring);
    // 20 tasks of varying size across a 16-array tile.
    let mut stats = Vec::new();
    for _ in 0..20 {
        let t = DnaSeq::random(rand::Rng::gen_range(&mut rng, 6..20), &mut rng);
        let q = DnaSeq::random(rand::Rng::gen_range(&mut rng, 6..20), &mut rng);
        let rows: Vec<i32> = t.codes().iter().map(|&c| c as i32).collect();
        let cols: Vec<i32> = q.codes().iter().map(|&c| c as i32).collect();
        stats.push(accel.run(&rows, &cols, 4).expect("simulation").stats);
    }
    let report = schedule_tile(&stats, 16);
    assert_eq!(report.tasks, 20);
    assert_eq!(report.per_array_cycles.len(), 16);
    // Makespan at least the longest task, at most the serial sum.
    let longest = stats.iter().map(|s| s.cycles).max().unwrap();
    let serial: u64 = stats.iter().map(|s| s.cycles).sum();
    assert!(report.makespan_cycles >= longest);
    assert!(report.makespan_cycles < serial);
    assert!(report.balance() > 0.2 && report.balance() <= 1.0);
    assert!(report.gcups(1) > 0.0);
    // One array degenerates to the serial sum.
    let serial_report = schedule_tile(&stats, 1);
    assert_eq!(serial_report.makespan_cycles, serial);
    assert!((serial_report.balance() - 1.0).abs() < 1e-12);
}

#[test]
#[should_panic(expected = "empty table")]
fn wavefront_rejects_empty_tables() {
    let accel = GendpPipeline::bsw(&Scoring::bwa_mem());
    let _ = accel.run(&[], &[1, 2], 4);
}

#[test]
#[should_panic(expected = "not streamed")]
fn wavefront_rejects_unknown_stream_wiring() {
    use gendp::core::Wavefront2d;
    use gendp::isa::{Luts, Mode};
    let dfg = dfgs::dtw_dfg();
    let mut w = Wavefront2d::new(&dfg, Mode::Int32, Luts::default(), "x", "y");
    w.up("d_up", "never-declared");
}

#[test]
#[should_panic(expected = "row char ext")]
fn wavefront_rejects_unknown_char_ext() {
    use gendp::core::Wavefront2d;
    use gendp::isa::{Luts, Mode};
    let dfg = dfgs::dtw_dfg();
    let _ = Wavefront2d::new(&dfg, Mode::Int32, Luts::default(), "bogus", "y");
}

#[test]
fn generated_programs_round_trip_through_assembly() {
    // Every generated control program survives a Display -> parse cycle:
    // the assembler covers the full generated instruction repertoire.
    let accel = GendpPipeline::bsw(&Scoring::bwa_mem());
    let rows = vec![0, 1, 2, 3, 0];
    let cols = vec![1, 2, 3];
    for prog in accel.generate_programs(&rows, &cols, 4) {
        let text = prog.to_string();
        let parsed: gendp::isa::ControlProgram = text.parse().expect("parse");
        assert_eq!(parsed, prog);
    }
}

#[test]
fn simulator_budget_errors_are_reported_cleanly() {
    use gendp::dpax::{PeArray, PeArrayConfig, SimError};
    let mut a = PeArray::new(PeArrayConfig::with_pes(1));
    let prog: gendp::isa::ControlProgram = "li a[0] 0\nbeq a0 a0 0".parse().unwrap();
    a.load_pe_control(0, prog);
    match a.run(25) {
        Err(SimError::Timeout { max_cycles }) => assert_eq!(max_cycles, 25),
        other => panic!("expected timeout, got {other:?}"),
    }
}
