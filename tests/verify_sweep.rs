//! Seed-verify sweep: every shipped kernel — its DFG, its DPMap-compiled
//! compute program, and the per-PE control programs the framework
//! generates for it — must verify with **zero diagnostics**, warnings
//! included. This is the acceptance contract of `gendp-verify`: the
//! analyzer is precise enough that known-good programs are completely
//! clean, so any diagnostic on user code is signal, not noise.

use gendp::core::{pack_halves, pack_lanes, GendpPipeline};
use gendp::dpmap::try_map_dfg;
use gendp::kernels::bellman_ford::random_roadmap;
use gendp::kernels::chain::ChainParams;
use gendp::kernels::dfgs;
use gendp::kernels::pairhmm::PairHmmParams;
use gendp::kernels::poa::Poa;
use gendp::kernels::{GapModel, Scoring};
use gendp::seq::{DnaSeq, MutationProfile};
use gendp::verify::{Report, Rule, Verifier};
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn assert_clean(what: &str, report: &Report) {
    assert!(
        report.is_clean(),
        "{what} must verify with zero diagnostics, got:\n{report}"
    );
}

fn codes(s: &DnaSeq) -> Vec<i32> {
    s.codes().iter().map(|&c| c as i32).collect()
}

fn convex_scoring() -> Scoring {
    Scoring {
        matches: 1,
        mismatch: 4,
        gap: GapModel::Convex {
            open1: 4,
            extend1: 2,
            open2: 14,
            extend2: 1,
        },
    }
}

/// Every shipped DFG passes the DFG lints and maps without diagnostics.
#[test]
fn all_kernel_dfgs_verify_clean() {
    let scoring = Scoring::bwa_mem();
    let dfg_list = [
        dfgs::bsw_dfg(&scoring),
        dfgs::bsw_simd_dfg(&scoring),
        dfgs::bsw_simd16_dfg(&scoring),
        dfgs::bsw_global_dfg(&scoring),
        dfgs::bsw_semiglobal_dfg(&scoring, 24),
        dfgs::bsw_convex_dfg(&convex_scoring()),
        dfgs::pairhmm_log_dfg(&PairHmmParams::gatk(), 1024),
        dfgs::pairhmm_float_dfg(&PairHmmParams::gatk()),
        dfgs::poa_dfg(&Scoring::racon()),
        dfgs::chain_dfg(&ChainParams::minimap2(15.0)),
        dfgs::dtw_dfg(),
        dfgs::dtw_banded_dfg(32),
        dfgs::bellman_ford_dfg(),
        dfgs::lcs_dfg(),
    ];
    for dfg in &dfg_list {
        // PairHMM-float is multiply-heavy by design (eight of its nodes
        // are probability products); the multiplier-pressure advisory is
        // expected there and suppressed through the verifier's own
        // mechanism rather than special-cased in the assert.
        let verifier = if dfg.name() == "pairhmm-float" {
            Verifier::default().allow(Rule::DfgMulPressure)
        } else {
            Verifier::default()
        };
        assert_clean(dfg.name(), &verifier.verify_dfg(dfg));
        let mapping = try_map_dfg(dfg).unwrap_or_else(|r| panic!("{}: {r}", dfg.name()));
        assert_clean(
            &format!("{} compute program", dfg.name()),
            &Verifier::default().verify_compute(&mapping.program),
        );
    }
}

/// Every wavefront pipeline's generated array programs verify clean for a
/// representative task shape.
#[test]
fn wavefront_pipelines_verify_clean() {
    let mut rng = SmallRng::seed_from_u64(71);
    let scoring = Scoring::bwa_mem();
    let t = DnaSeq::random(24, &mut rng);
    let q = MutationProfile::illumina().apply(&t.window(2, 18), &mut rng);
    let (rows, cols) = (codes(&t), codes(&q));

    for (name, w) in [
        ("bsw", GendpPipeline::bsw(&scoring)),
        ("bsw_global", GendpPipeline::bsw_global(&scoring)),
        (
            "bsw_semiglobal",
            GendpPipeline::bsw_semiglobal(&scoring, cols.len()),
        ),
        ("bsw_convex", GendpPipeline::bsw_convex(&convex_scoring())),
        (
            "pairhmm",
            GendpPipeline::pairhmm(&PairHmmParams::gatk(), 30, 1024, rows.len()),
        ),
        (
            "pairhmm_float",
            GendpPipeline::pairhmm_float(&PairHmmParams::gatk(), 30, rows.len()),
        ),
        ("lcs", GendpPipeline::lcs()),
    ] {
        assert_clean(name, &w.verify(&rows, &cols, 4));
    }

    // DTW streams raw signal values rather than base codes.
    let xs: Vec<i32> = (0..15).map(|_| rng.gen_range(0..200)).collect();
    let ys: Vec<i32> = (0..12).map(|_| rng.gen_range(0..200)).collect();
    assert_clean("dtw", &GendpPipeline::dtw().verify(&xs, &ys, 4));
    assert_clean(
        "dtw_banded",
        &GendpPipeline::dtw_banded(ys.len()).verify_banded(&xs, &ys, 5, 1 << 20, 4),
    );

    // SIMD modes pack multiple lanes per word; the packed immediates in
    // the generated programs must pass the equal-lane width check.
    let lanes: Vec<Vec<u8>> = (0..4)
        .map(|_| DnaSeq::random(16, &mut rng).codes())
        .collect();
    let rows8 = pack_lanes([&lanes[0], &lanes[1], &lanes[2], &lanes[3]]);
    let cols8 = pack_lanes([&lanes[1], &lanes[2], &lanes[3], &lanes[0]]);
    assert_clean(
        "bsw_simd",
        &GendpPipeline::bsw_simd(&scoring).verify(&rows8, &cols8, 4),
    );
    let h0: Vec<i16> = lanes[0].iter().map(|&c| c as i16).collect();
    let h1: Vec<i16> = lanes[1].iter().map(|&c| c as i16).collect();
    let rows16 = pack_halves([&h0, &h1]);
    let cols16 = pack_halves([&h1, &h0]);
    assert_clean(
        "bsw_simd16",
        &GendpPipeline::bsw_simd16(&scoring).verify(&rows16, &cols16, 4),
    );
}

/// The non-wavefront accelerators (1-D chain, POA graph, Bellman-Ford
/// scratchpad relaxation) verify clean too.
#[test]
fn chain_poa_bellman_ford_verify_clean() {
    let mut rng = SmallRng::seed_from_u64(72);
    let n_pes = 8;
    let params = ChainParams {
        n_prev: n_pes,
        ..ChainParams::minimap2(15.0)
    };
    assert_clean("chain", &GendpPipeline::chain(params).verify(30, n_pes));

    let truth = DnaSeq::random(30, &mut rng);
    let mut poa = Poa::new();
    poa.add_sequence(&truth, &Scoring::racon());
    poa.add_sequence(
        &MutationProfile::nanopore().apply(&truth, &mut rng),
        &Scoring::racon(),
    );
    assert_clean(
        "poa",
        &GendpPipeline::poa(Scoring::racon()).verify(&poa, truth.len(), 4),
    );

    let g = random_roadmap(20, 2, 5, &mut rng);
    assert_clean(
        "bellman_ford",
        &GendpPipeline::bellman_ford().verify(&g, 0, g.vertex_count() - 1),
    );
}
