//! The central correctness contract of the reproduction: every kernel's
//! DPAx simulation reproduces the reference software kernel exactly
//! (DESIGN.md §3).

use gendp::core::{bsw_score, bsw_simd_scores, pack_lanes, pairhmm_loglik, GendpPipeline};
use gendp::kernels::chain::{chain_reordered, ChainParams};
use gendp::kernels::dfgs::pairhmm_luts;
use gendp::kernels::pairhmm::{forward_f64, forward_log_fixed, PairHmmParams};
use gendp::kernels::poa::Poa;
use gendp::kernels::{bsw_i32, bsw_i8, AlignMode, Scoring};
use gendp::seq::{extract_anchors, DnaSeq, Genome, KmerIndex, MutationProfile};
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn codes(s: &DnaSeq) -> Vec<i32> {
    s.codes().iter().map(|&c| c as i32).collect()
}

#[test]
fn bsw_i32_end_to_end() {
    let mut rng = SmallRng::seed_from_u64(101);
    let scoring = Scoring::bwa_mem();
    let accel = GendpPipeline::bsw(&scoring);
    for _ in 0..5 {
        let g = Genome::random(200, &mut rng);
        let t = g.window(0, rng.gen_range(20..60));
        let q = MutationProfile::pacbio().apply(&g.window(5, rng.gen_range(20..50)), &mut rng);
        let out = accel.run(&codes(&t), &codes(&q), 4).expect("simulation");
        let expect = bsw_i32(&q, &t, &scoring, 10_000, AlignMode::Local);
        assert_eq!(bsw_score(&out), expect.score, "q={q} t={t}");
        assert_eq!(out.stats.cells(), (t.len() * q.len()) as u64);
    }
}

#[test]
fn bsw_simd_end_to_end() {
    let mut rng = SmallRng::seed_from_u64(102);
    let scoring = Scoring::bwa_mem();
    let accel = GendpPipeline::bsw_simd(&scoring);
    let tasks: Vec<(DnaSeq, DnaSeq)> = (0..4)
        .map(|_| (DnaSeq::random(16, &mut rng), DnaSeq::random(20, &mut rng)))
        .collect();
    let qs: Vec<Vec<u8>> = tasks.iter().map(|(q, _)| q.codes()).collect();
    let ts: Vec<Vec<u8>> = tasks.iter().map(|(_, t)| t.codes()).collect();
    let cols = pack_lanes([&qs[0], &qs[1], &qs[2], &qs[3]]);
    let rows = pack_lanes([&ts[0], &ts[1], &ts[2], &ts[3]]);
    let out = accel.run(&rows, &cols, 4).expect("simulation");
    let scores = bsw_simd_scores(&out);
    for (lane, (q, t)) in tasks.iter().enumerate() {
        assert_eq!(
            scores[lane] as i32,
            bsw_i8(q, t, &scoring, 1000).score,
            "lane {lane}"
        );
    }
}

#[test]
fn pairhmm_end_to_end_and_tracks_float() {
    let mut rng = SmallRng::seed_from_u64(103);
    let params = PairHmmParams::gatk();
    let (qual, scale) = (30u8, 1024);
    let g = Genome::random(500, &mut rng);
    let hap = g.window(10, 24);
    let read = MutationProfile::illumina().apply(&g.window(14, 12), &mut rng);
    let read = read.window(0, read.len().min(12));
    let accel = GendpPipeline::pairhmm(&params, qual, scale, hap.len());
    let out = accel
        .run(&codes(&read), &codes(&hap), 4)
        .expect("simulation");
    let got = pairhmm_loglik(&out, &pairhmm_luts(qual, scale));
    let quals = vec![qual; read.len()];
    // Bit-exact vs the fixed-point reference...
    assert_eq!(got, forward_log_fixed(&read, &quals, &hap, &params, scale));
    // ...which tracks the floating-point forward algorithm.
    let f = forward_f64(&read, &quals, &hap, &params);
    assert!(
        (got as f64 / scale as f64 - f).abs() < 0.5,
        "fixed {} vs float {f}",
        got as f64 / scale as f64
    );
}

#[test]
fn poa_end_to_end() {
    let mut rng = SmallRng::seed_from_u64(104);
    let truth = DnaSeq::random(30, &mut rng);
    let mut poa = Poa::new();
    poa.add_sequence(&truth, &Scoring::racon());
    for _ in 0..3 {
        poa.add_sequence(
            &MutationProfile::nanopore().apply(&truth, &mut rng),
            &Scoring::racon(),
        );
    }
    let probe = MutationProfile::nanopore().apply(&truth, &mut rng);
    let accel = GendpPipeline::poa(Scoring::racon());
    let run = accel.run(&poa, &probe, 4).expect("simulation");
    assert_eq!(run.score, poa.align(&probe, &Scoring::racon()).score);
}

#[test]
fn chain_end_to_end() {
    let mut rng = SmallRng::seed_from_u64(105);
    let g = Genome::random(10_000, &mut rng);
    let read = MutationProfile::pacbio().apply(&g.window(3_000, 1_000), &mut rng);
    let idx = KmerIndex::build(g.seq(), 14);
    let anchors = extract_anchors(&idx, &read);
    assert!(anchors.len() > 30);
    let n_pes = 8;
    let params = ChainParams {
        n_prev: n_pes,
        ..ChainParams::minimap2(14.0)
    };
    let accel = GendpPipeline::chain(params);
    let run = accel.run(&anchors, n_pes).expect("simulation");
    assert_eq!(run.scores, chain_reordered(&anchors, &params).scores);
}

#[test]
fn dtw_bellman_ford_lcs_end_to_end() {
    let mut rng = SmallRng::seed_from_u64(106);
    // DTW.
    let xs: Vec<i32> = (0..15).map(|_| rng.gen_range(0..200)).collect();
    let ys: Vec<i32> = (0..12).map(|_| rng.gen_range(0..200)).collect();
    let out = GendpPipeline::dtw().run(&xs, &ys, 4).expect("dtw");
    assert_eq!(
        *out.last_row["d"].last().unwrap() as i64,
        gendp::kernels::dtw::dtw(&xs, &ys).distance
    );
    // Bellman-Ford.
    let g = gendp::kernels::bellman_ford::random_roadmap(30, 3, 6, &mut rng);
    let run = GendpPipeline::bellman_ford()
        .run(&g, 0, g.vertex_count() - 1)
        .expect("bf");
    let expect = gendp::kernels::bellman_ford::bellman_ford(&g, 0);
    for (got, want) in run.dist.iter().zip(&expect.dist) {
        match want {
            Some(v) => assert_eq!(*got, *v as i32),
            None => assert_eq!(*got, gendp::core::spm1d::INF),
        }
    }
    // LCS.
    let a: Vec<i32> = (0..14).map(|_| rng.gen_range(0..4)).collect();
    let b: Vec<i32> = (0..17).map(|_| rng.gen_range(0..4)).collect();
    let out = GendpPipeline::lcs().run(&a, &b, 4).expect("lcs");
    assert_eq!(
        *out.last_row["c"].last().unwrap(),
        gendp::kernels::lcs::lcs(&a, &b).length as i32
    );
}

#[test]
fn pairhmm_float_on_fp_array_is_bit_exact() {
    use gendp::core::pairhmm_float_lik;
    use gendp::kernels::pairhmm::forward_f32;
    let mut rng = SmallRng::seed_from_u64(107);
    let params = PairHmmParams::gatk();
    let qual = 30u8;
    for round in 0..3 {
        let g = Genome::random(300, &mut rng);
        let hap = g.window(3, 18);
        let read = g.window(5, 10);
        let accel = GendpPipeline::pairhmm_float(&params, qual, hap.len());
        let out = accel
            .run(&codes(&read), &codes(&hap), 4)
            .expect("simulation");
        let got = pairhmm_float_lik(&out);
        let quals = vec![qual; read.len()];
        let expect = forward_f32(&read, &quals, &hap, &params);
        assert_eq!(got.to_bits(), expect.to_bits(), "round {round}");
        // And the single-precision path tracks the f64 forward.
        let f = gendp::kernels::pairhmm::forward_f64(&read, &quals, &hap, &params);
        assert!(((got as f64).ln() - f).abs() < 1e-3);
    }
}

#[test]
fn poa_with_long_range_bridge_edges() {
    // A read with a long internal deletion creates a bridge edge spanning
    // many rows — the long-range dependency pattern of paper Fig. 2c. The
    // live-set streaming must carry the bridged row's values across every
    // intermediate row.
    let mut rng = SmallRng::seed_from_u64(108);
    let backbone = DnaSeq::random(60, &mut rng);
    let mut cut: Vec<gendp::seq::Base> = backbone.bases()[..20].to_vec();
    cut.extend_from_slice(&backbone.bases()[45..]);
    let deleted = DnaSeq::from(cut);

    let mut poa = Poa::new();
    poa.add_sequence(&backbone, &Scoring::racon());
    poa.add_sequence(&deleted, &Scoring::racon());
    // Confirm a long-range edge exists (distance > 4 rows).
    let order = poa.topological_order();
    let mut rank = vec![0usize; poa.node_count()];
    for (k, &v) in order.iter().enumerate() {
        rank[v] = k;
    }
    let mut max_dist = 0usize;
    for &v in &order {
        for &(u, _) in poa.preds(v) {
            max_dist = max_dist.max(rank[v] - rank[u]);
        }
    }
    assert!(max_dist > 4, "expected a long-range edge, got {max_dist}");

    let accel = GendpPipeline::poa(Scoring::racon());
    for probe in [
        backbone.clone(),
        deleted.clone(),
        MutationProfile::nanopore().apply(&backbone, &mut rng),
    ] {
        for n_pes in [1, 4] {
            let run = accel.run(&poa, &probe, n_pes).expect("simulation");
            assert_eq!(
                run.score,
                poa.align(&probe, &Scoring::racon()).score,
                "n_pes {n_pes}"
            );
        }
    }
}

#[test]
fn bellman_ford_with_negative_weights_on_dpax() {
    use gendp::kernels::bellman_ford::{bellman_ford, Graph};
    let mut g = Graph::new(6);
    g.add_edge(0, 1, 10);
    g.add_edge(0, 2, 3);
    g.add_edge(2, 1, -5);
    g.add_edge(1, 3, 2);
    g.add_edge(2, 3, 8);
    g.add_edge(3, 4, -1);
    g.add_edge(4, 5, 4);
    let accel = GendpPipeline::bellman_ford();
    let run = accel.run(&g, 0, 5).expect("simulation");
    let expect = bellman_ford(&g, 0);
    for (got, want) in run.dist.iter().zip(&expect.dist) {
        assert_eq!(*got, want.unwrap() as i32);
    }
    // Spot-check the relaxation through the negative edge: 0->2->1 = -2.
    assert_eq!(run.dist[1], -2);
}
