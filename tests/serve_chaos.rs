//! Service-level chaos tests for the self-healing shard lifecycle:
//! killing and retiring shards under sustained mixed-kernel load,
//! deadline enforcement, wire-path survival of shard death, and
//! organic detection of a fully-quarantined shard.
//!
//! The injected fault rate is tunable so CI can crank it up:
//! `GENDP_SERVE_CHAOS_FAULT_PPM` (parts per million per execution
//! attempt, default 50 000 = 5%).

use std::collections::HashMap;
use std::thread;
use std::time::{Duration, Instant};

use gendp::kernels::bellman_ford::Graph;
use gendp::kernels::chain::ChainParams;
use gendp::kernels::pairhmm::PairHmmParams;
use gendp::kernels::poa::Poa;
use gendp::kernels::Scoring;
use gendp::runtime::{
    silence_injected_panics, DeviceConfig, FaultConfig, RetryPolicy, Task, TaskValue,
};
use gendp::seq::{Anchor, DnaSeq};
use gendp::serve::{
    duplex, LifecyclePolicy, Priority, ServeConfig, ServeError, Server, ShardState, TenantConfig,
    Ticket, WireClient, WireOutcome,
};
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn seq(rng: &mut SmallRng, len: usize) -> DnaSeq {
    DnaSeq::random(len, rng)
}

/// One of each kernel kind, cycling with `i`, deterministic in `rng`.
fn mixed_task(rng: &mut SmallRng, i: usize) -> Task {
    match i % 9 {
        0 => Task::bsw_local(seq(rng, 12), seq(rng, 16), Scoring::bwa_mem()),
        1 => Task::bsw_simd(
            (0..4).map(|_| (seq(rng, 8), seq(rng, 8))).collect(),
            Scoring::bwa_mem(),
        ),
        2 => Task::PairHmm {
            read: seq(rng, 10),
            haplotype: seq(rng, 14),
            qual: 30,
            scale: 1024,
            params: PairHmmParams::gatk(),
        },
        3 => Task::PairHmmFloat {
            read: seq(rng, 8),
            haplotype: seq(rng, 12),
            qual: 30,
            params: PairHmmParams::gatk(),
        },
        4 => {
            let xs: Vec<i32> = (0..10).map(|_| rng.gen_range(0..100)).collect();
            let ys: Vec<i32> = (0..10).map(|_| rng.gen_range(0..100)).collect();
            Task::dtw(xs, ys)
        }
        5 => {
            let xs: Vec<i32> = (0..10).map(|_| rng.gen_range(0..100)).collect();
            let ys: Vec<i32> = (0..12).map(|_| rng.gen_range(0..100)).collect();
            Task::DtwBanded { xs, ys, width: 6 }
        }
        6 => {
            let mut rpos = 0i32;
            let anchors: Vec<Anchor> = (0..8)
                .map(|_| {
                    rpos += rng.gen_range(5..30);
                    Anchor {
                        rpos,
                        qpos: rpos - rng.gen_range(0..4),
                        span: 11,
                    }
                })
                .collect();
            Task::Chain {
                anchors,
                params: ChainParams {
                    n_prev: 8,
                    ..ChainParams::minimap2(11.0)
                },
            }
        }
        7 => {
            let backbone = seq(rng, 14);
            let mut graph = Poa::new();
            graph.add_sequence(&backbone, &Scoring::racon());
            Task::Poa {
                graph,
                probe: seq(rng, 14),
                scoring: Scoring::racon(),
            }
        }
        _ => {
            let n = 10;
            let mut graph = Graph::new(n);
            for v in 0..n - 1 {
                graph.add_edge(v, v + 1, rng.gen_range(1..9));
            }
            graph.add_edge(0, n - 1, 40);
            Task::BellmanFord {
                graph,
                source: 0,
                rounds: 3,
            }
        }
    }
}

fn chaos_fault_ppm() -> u32 {
    std::env::var("GENDP_SERVE_CHAOS_FAULT_PPM")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50_000)
}

/// N shards, each with one permanently broken int slot plus rate
/// faults at the (env-tunable) chaos rate.
fn chaos_config(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        shard_config: DeviceConfig {
            int_arrays: 4,
            float_arrays: 1,
            workers: 2,
            retry: RetryPolicy {
                max_attempts: 10,
                ..RetryPolicy::default()
            },
            fault: Some(FaultConfig {
                broken_slots: 0b1,
                ..FaultConfig::uniform(11, chaos_fault_ppm())
            }),
            ..DeviceConfig::default()
        },
        batch_max: 16,
        quantum_cells: 256,
        dispatch_queue: 2,
        ..ServeConfig::default()
    }
}

/// The tentpole chaos invariant: under sustained mixed-kernel faulty
/// load on three shards, abruptly killing one shard and retiring
/// another loses zero tickets, every delivered value matches the
/// direct single-task execution, and the auto-respawned replacement
/// joins the pool and serves traffic.
#[test]
fn kill_and_retire_under_load_lose_nothing() {
    silence_injected_panics();
    let tenants = vec![
        TenantConfig::new("mapper").priority(Priority::Interactive),
        TenantConfig::new("caller"),
        TenantConfig::new("polisher").priority(Priority::Batch),
    ];
    let mut server = Server::start(chaos_config(3), tenants).expect("server start");
    let clients: Vec<_> = ["mapper", "caller", "polisher"]
        .iter()
        .map(|t| server.client(t).expect("tenant exists"))
        .collect();

    let mut rng = SmallRng::seed_from_u64(4242);
    let mut expected: Vec<TaskValue> = Vec::new();
    let mut tickets: Vec<Ticket> = Vec::new();
    for i in 0..450 {
        if i == 150 {
            server.kill_shard(0).expect("shard 0 is alive to kill");
        }
        if i == 300 {
            server
                .retire_shard(1)
                .expect("shard 1 is dispatchable to retire");
        }
        let task = mixed_task(&mut rng, i);
        let (reference, _) = task.execute(4).expect("reference execution");
        expected.push(reference);
        tickets.push(clients[i % 3].submit(task).expect("admitted"));
    }

    for (i, (ticket, want)) in tickets.into_iter().zip(expected).enumerate() {
        let completed = ticket
            .wait_timeout(Duration::from_secs(60))
            .expect("delivered within 60s")
            .unwrap_or_else(|e| panic!("task {i} failed: {e}"));
        assert_eq!(completed.value, want, "task {i} value diverged");
    }

    // The replacement (spawn id >= 3) must actually serve: feed small
    // follow-up waves until it has completed work and been promoted.
    let patience = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = server.stats();
        if stats
            .shards
            .iter()
            .any(|s| s.shard >= 3 && s.completed > 0 && s.state == ShardState::Healthy)
        {
            break;
        }
        assert!(
            Instant::now() < patience,
            "replacement shard never served traffic: {:?}",
            stats
                .shards
                .iter()
                .map(|s| (s.shard, s.state, s.completed))
                .collect::<Vec<_>>()
        );
        for i in 0..8 {
            let task = mixed_task(&mut rng, i);
            let (want, _) = task.execute(4).expect("reference execution");
            let got = clients[0]
                .submit(task)
                .expect("admitted")
                .wait()
                .expect("follow-up wave completes");
            assert_eq!(got.value, want);
        }
    }

    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.totals.failed, 0);
    assert!(stats.totals.drained(), "zero lost tickets");
    assert!(stats.lifecycle.died >= 1, "the killed shard was detected");
    assert_eq!(stats.lifecycle.retired, 1, "the retirement completed");
    assert!(stats.lifecycle.respawned >= 1, "a replacement was spawned");
    let state_of = |id: usize| {
        stats
            .shards
            .iter()
            .find(|s| s.shard == id)
            .map(|s| s.state)
            .expect("shard in stats")
    };
    assert_eq!(state_of(0), ShardState::Dead, "killed shard");
    assert_eq!(state_of(1), ShardState::Dead, "retired shard drained");
}

/// Deterministic replay: the same seed drives the same task stream to
/// the same values, chaos or not — byte-identical across two runs.
#[test]
fn chaos_workload_is_deterministic_under_fixed_seed() {
    silence_injected_panics();
    let run = || -> Vec<TaskValue> {
        let mut server =
            Server::start(chaos_config(2), vec![TenantConfig::new("t")]).expect("server start");
        let client = server.client("t").expect("tenant");
        let mut rng = SmallRng::seed_from_u64(77);
        let tickets: Vec<Ticket> = (0..90)
            .map(|i| client.submit(mixed_task(&mut rng, i)).expect("admitted"))
            .collect();
        let values = tickets
            .into_iter()
            .map(|t| t.wait().expect("completes").value)
            .collect();
        server.shutdown();
        values
    };
    assert_eq!(run(), run(), "same seed, same values");
}

/// Deadline semantics: already-expired work is rejected with the
/// stable `deadline-exceeded` code and never occupies a dispatch slot;
/// tenant-default deadlines apply to plain submits; generous deadlines
/// do not interfere with completion.
#[test]
fn expired_deadlines_reject_without_dispatch() {
    let config = ServeConfig {
        shards: 1,
        shard_config: DeviceConfig {
            int_arrays: 2,
            float_arrays: 1,
            workers: 1,
            ..DeviceConfig::default()
        },
        ..ServeConfig::default()
    };
    let tenants = vec![
        TenantConfig::new("explicit"),
        TenantConfig::new("strict").deadline(Duration::ZERO),
        TenantConfig::new("patient").deadline(Duration::from_secs(30)),
    ];
    let mut server = Server::start(config, tenants).expect("server start");
    let task = || {
        Task::bsw_local(
            "ACGTACGT".parse().unwrap(),
            "ACGTTCGT".parse().unwrap(),
            Scoring::bwa_mem(),
        )
    };

    // Per-request deadline of zero: admitted, then expired at the
    // dispatch gate.
    let explicit = server.client("explicit").expect("tenant");
    let tickets: Vec<Ticket> = (0..20)
        .map(|_| {
            explicit
                .submit_with_deadline(task(), Duration::ZERO)
                .expect("admitted")
        })
        .collect();
    for ticket in tickets {
        match ticket.wait() {
            Err(e @ ServeError::DeadlineExceeded) => {
                assert_eq!(e.code(), "deadline-exceeded");
            }
            other => panic!("expected deadline expiry, got {other:?}"),
        }
    }

    // Tenant-default deadline of zero behaves identically on a plain
    // submit.
    let strict = server.client("strict").expect("tenant");
    assert!(matches!(
        strict.submit(task()).expect("admitted").wait(),
        Err(ServeError::DeadlineExceeded)
    ));

    // A generous default deadline completes normally.
    let patient = server.client("patient").expect("tenant");
    let completed = patient
        .submit(task())
        .expect("admitted")
        .wait()
        .expect("completes well inside its deadline");
    assert!(matches!(completed.value, TaskValue::Score(_)));

    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.totals.deadline_expired, 21);
    assert_eq!(stats.totals.completed, 1);
    assert_eq!(stats.totals.failed, 0);
    assert!(stats.totals.drained(), "expiries balance the ledger");
    // Only the patient tenant's single task ever reached the device.
    assert_eq!(
        stats.shards[0].completed, 1,
        "expired work must never occupy a dispatch slot"
    );
    let by_code: HashMap<&str, u64> = stats.totals.by_code().into_iter().collect();
    assert_eq!(by_code["deadline-exceeded"], 21);
}

/// The wire path survives shard death: pipeline a burst over the
/// duplex transport, kill a shard mid-stream, and every submission
/// still gets exactly one correct response. Shard-status probes see
/// the pool before and after.
#[test]
fn wire_pipelined_completions_survive_shard_death() {
    silence_injected_panics();
    let mut server =
        Server::start(chaos_config(3), vec![TenantConfig::new("alpha")]).expect("server start");

    let ((server_reader, server_writer), (client_reader, client_writer)) = duplex();
    thread::scope(|scope| {
        let server = &server;
        let conn = scope.spawn(move || server.serve_connection(server_reader, server_writer));

        let mut client = WireClient::new(client_reader, client_writer);
        let frames = client.shard_status().expect("status probe");
        assert_eq!(frames.len(), 3, "three shards at start");
        assert!(frames.iter().all(|f| f.state.is_dispatchable()));

        let mut rng = SmallRng::seed_from_u64(13);
        let mut expected: HashMap<u64, TaskValue> = HashMap::new();
        for i in 0..60 {
            if i == 30 {
                server.kill_shard(0).expect("shard 0 is alive to kill");
            }
            let task = mixed_task(&mut rng, i);
            let (value, _) = task.execute(4).expect("reference execution");
            let id = client.submit("alpha", task).expect("submit frame");
            expected.insert(id, value);
        }

        for _ in 0..60 {
            let response = client
                .recv()
                .expect("read frame")
                .expect("connection still open");
            match response.outcome {
                WireOutcome::Ok { value, .. } => {
                    let want = expected.remove(&response.id).expect("known id, once");
                    assert_eq!(value, want, "id {} value diverged", response.id);
                }
                other => panic!("unexpected response {}: {other:?}", response.id),
            }
        }
        assert!(expected.is_empty(), "every submission answered");

        // The probe now reports the dead shard and its replacement.
        let frames = client.shard_status().expect("status probe");
        assert!(
            frames
                .iter()
                .any(|f| f.id == 0 && f.state == ShardState::Dead),
            "killed shard visible on the wire: {frames:?}"
        );
        assert!(
            frames.iter().any(|f| f.id >= 3),
            "replacement visible on the wire: {frames:?}"
        );

        drop(client);
        conn.join()
            .expect("connection thread")
            .expect("clean close");
    });

    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.totals.completed, 60);
    assert!(stats.totals.drained());
    assert!(stats.lifecycle.died >= 1);
}

/// Protocol robustness: frames with an unknown version byte or an
/// undecodable payload draw a structured error frame, and the
/// connection stays open for well-formed traffic afterwards.
#[test]
fn malformed_frames_draw_errors_without_dropping_the_connection() {
    use gendp::serve::wire::{read_frame, write_frame_versioned, Request, Response};
    use gendp::serve::WIRE_VERSION;

    let mut server =
        Server::start(ServeConfig::default(), vec![TenantConfig::new("t")]).expect("server start");

    let ((server_reader, server_writer), (mut client_reader, mut client_writer)) = duplex();
    thread::scope(|scope| {
        let server = &server;
        let conn = scope.spawn(move || server.serve_connection(server_reader, server_writer));

        let recv = |reader: &mut dyn std::io::Read| -> Response {
            let (version, payload) = read_frame(reader)
                .expect("read frame")
                .expect("connection open");
            assert_eq!(version, WIRE_VERSION);
            Response::decode(&payload).expect("valid response frame")
        };

        // A frame from the future: version 9 of an otherwise valid ping.
        let ping = Request::Ping { id: 1 }.encode();
        write_frame_versioned(&mut client_writer, 9, &ping).expect("write frame");
        match recv(&mut client_reader).outcome {
            WireOutcome::Error { code, detail } => {
                assert_eq!(code, "unsupported-version");
                assert!(detail.contains('9'), "names the bad version: {detail}");
            }
            other => panic!("expected version error, got {other:?}"),
        }

        // A current-version frame whose payload is garbage.
        write_frame_versioned(&mut client_writer, WIRE_VERSION, &[0xEE, 0xEE, 0xEE])
            .expect("write frame");
        match recv(&mut client_reader).outcome {
            WireOutcome::Error { code, .. } => assert_eq!(code, "bad-frame"),
            other => panic!("expected decode error, got {other:?}"),
        }

        // The connection survived both: a well-formed ping still works.
        write_frame_versioned(
            &mut client_writer,
            WIRE_VERSION,
            &Request::Ping { id: 7 }.encode(),
        )
        .expect("write frame");
        let response = recv(&mut client_reader);
        assert_eq!(response.id, 7);
        assert!(matches!(response.outcome, WireOutcome::Pong));

        drop(client_writer);
        drop(client_reader);
        conn.join()
            .expect("connection thread")
            .expect("clean close");
    });
    server.shutdown();
}

/// Organic self-healing: a joined shard whose int class rots down to
/// its last healthy slot (via the quarantine machine, not a kill
/// switch) is detected by the crippled-streak policy, declared dead,
/// and replaced — while every task it ever touched still completes
/// correctly.
#[test]
fn fully_quarantined_shard_dies_and_is_replaced() {
    silence_injected_panics();
    let config = ServeConfig {
        shards: 1,
        shard_config: DeviceConfig {
            int_arrays: 2,
            float_arrays: 1,
            workers: 1,
            ..DeviceConfig::default()
        },
        batch_max: 16,
        quantum_cells: 256,
        dispatch_queue: 2,
        // One crippled snapshot is enough: once the rotten shard reads
        // as degraded, dispatch steers work away from it, so a longer
        // streak requirement could starve before it re-confirms.
        lifecycle: LifecyclePolicy {
            dead_after_crippled: 1,
            ..LifecyclePolicy::default()
        },
        cycle_rate: None,
    };
    let mut server = Server::start(config, vec![TenantConfig::new("t")]).expect("server start");
    let client = server.client("t").expect("tenant");

    // Join a rotten shard: one of its two int slots faults on every
    // attempt, and a hair-trigger quarantine threshold makes each batch
    // rediscover that — reading as crippled snapshot after snapshot.
    let rotten = DeviceConfig {
        int_arrays: 2,
        float_arrays: 1,
        workers: 1,
        retry: RetryPolicy {
            max_attempts: 8,
            quarantine_after: 1,
            ..RetryPolicy::default()
        },
        fault: Some(FaultConfig {
            broken_slots: 0b1,
            ..FaultConfig::uniform(5, 0)
        }),
        ..DeviceConfig::default()
    };
    let rotten_id = server.add_shard_with(rotten).expect("shard joins");
    assert_eq!(rotten_id, 1);

    let mut rng = SmallRng::seed_from_u64(21);
    let patience = Instant::now() + Duration::from_secs(30);
    loop {
        // Int-only waves, big enough that the healthy shard's bounded
        // dispatch queue overflows and the rotten shard keeps drawing
        // fresh batches (dispatch steers away from quarantine, so a
        // trickle would starve it and never build the streak).
        let tickets: Vec<(Ticket, TaskValue)> = (0..96)
            .map(|_| {
                let task =
                    Task::bsw_local(seq(&mut rng, 12), seq(&mut rng, 16), Scoring::bwa_mem());
                let (want, _) = task.execute(4).expect("reference execution");
                (client.submit(task).expect("admitted"), want)
            })
            .collect();
        for (ticket, want) in tickets {
            let completed = ticket.wait().expect("survives the rotten shard");
            assert_eq!(completed.value, want);
        }
        let stats = server.stats();
        let rotten_state = stats
            .shards
            .iter()
            .find(|s| s.shard == rotten_id)
            .map(|s| s.state)
            .expect("rotten shard in stats");
        if rotten_state == ShardState::Dead {
            assert!(stats.lifecycle.died >= 1);
            assert!(stats.lifecycle.respawned >= 1, "replacement spawned");
            assert!(
                stats.shards.iter().any(|s| s.shard > rotten_id),
                "replacement in the table"
            );
            break;
        }
        assert!(
            Instant::now() < patience,
            "monitor never declared the rotten shard dead (state {rotten_state})"
        );
    }

    server.shutdown();
    let stats = server.stats();
    assert_eq!(stats.totals.failed, 0);
    assert!(stats.totals.drained());
}
