//! Certificate soundness: the static certificate `gendp-verify` attaches
//! to every prepared task must be an over-approximation the simulator
//! never escapes, on every shipped kernel and on proptest-generated
//! programs.
//!
//! For each kernel the suite checks, against an actual simulation:
//!
//! * **cycles** — `cycle_floor ≤ simulated ≤ cycle_bound` (when the
//!   bound is finite), and `cycle_exact == simulated` where the model
//!   promises exactness;
//! * **cost** — `cost_cells ≥ stats.cells()`, with equality when the
//!   certificate claims the count is exact;
//! * **FIFO** — the observed high-water mark never exceeds the certified
//!   peak;
//! * **unchecked path** — when the certificate proves every access in
//!   bounds (`is_certified`), the bounds-check-free decoded hot loop
//!   must produce output words bit-identical to the checked interpreter.

use gendp::core::{GendpPipeline, Wavefront2d};
use gendp::dpax::{PeArray, PeArrayConfig, Tier, TierPolicy};
use gendp::isa::{ControlProgram, Word};
use gendp::kernels::bellman_ford::random_roadmap;
use gendp::kernels::chain::ChainParams;
use gendp::kernels::pairhmm::PairHmmParams;
use gendp::kernels::poa::Poa;
use gendp::kernels::Scoring;
use gendp::seq::{DnaSeq, MutationProfile};
use gendp::{AccelConfig, Accelerator};
use gendp_core::{BandSpec, BellmanFordTask, ChainTask, PoaTask, WavefrontTask};
use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn codes(s: &DnaSeq) -> Vec<i32> {
    s.codes().iter().map(|&c| c as i32).collect()
}

/// Prepares one task, reads its certificate, executes on the default
/// (decoded) engine, and checks every certified bound against the run.
/// Returns the output words for the cross-engine comparison.
fn assert_certificate_sound<A, F>(name: &str, build: F, task: &A::Task<'_>) -> Vec<Word>
where
    A: Accelerator,
    F: Fn() -> A,
{
    let mut prepared = build()
        .configure(AccelConfig::new().tiers(TierPolicy::decoded_certified()))
        .prepare(task);
    let cert = prepared
        .certificate()
        .unwrap_or_else(|| panic!("{name}: no certificate"))
        .clone();
    assert!(
        prepared.is_certified(),
        "{name}: kernel programs must certify safe (unchecked path engages)"
    );
    let stats = prepared.execute().unwrap_or_else(|e| panic!("{name}: {e}"));

    assert!(
        cert.cycle_floor() <= stats.cycles,
        "{name}: certified floor {} exceeds simulated cycles {}",
        cert.cycle_floor(),
        stats.cycles
    );
    if let Some(bound) = cert.cycle_bound() {
        assert!(
            stats.cycles <= bound,
            "{name}: simulated cycles {} exceed certified bound {bound}",
            stats.cycles
        );
    }
    if let Some(exact) = cert.cycle_exact() {
        assert_eq!(
            exact, stats.cycles,
            "{name}: certificate promised an exact cycle count"
        );
    }
    let cost = cert
        .cost_cells()
        .unwrap_or_else(|| panic!("{name}: kernel cost must be bounded"));
    if cert.cells_exact() {
        assert_eq!(
            cost,
            stats.cells(),
            "{name}: certificate promised an exact cell count"
        );
    } else {
        assert!(
            cost >= stats.cells(),
            "{name}: certified cost {cost} under-counts simulated cells {}",
            stats.cells()
        );
    }
    if let Some(peak) = cert.fifo_peak() {
        assert!(
            stats.fifo_high_water as u64 <= peak,
            "{name}: FIFO high water {} exceeds certified peak {peak}",
            stats.fifo_high_water
        );
    }

    let unchecked = prepared.output().to_vec();

    // The checked interpreter is the semantic reference; the certified
    // bounds-check-free path must be bit-identical to it.
    let mut checked = build()
        .configure(AccelConfig::new().tiers(TierPolicy::interpreted()))
        .prepare(task);
    assert!(
        !checked.is_certified(),
        "{name}: only the decoded engine may take the unchecked path"
    );
    checked
        .execute()
        .unwrap_or_else(|e| panic!("{name} (interpreted): {e}"));
    assert_eq!(
        unchecked,
        checked.output(),
        "{name}: unchecked output diverges from the checked interpreter"
    );
    unchecked
}

fn wavefront_case(name: &str, build: impl Fn() -> Wavefront2d, rows: &[i32], cols: &[i32]) {
    let task = WavefrontTask {
        rows,
        cols,
        n_pes: 4,
        band: None,
    };
    assert_certificate_sound(name, build, &task);
}

/// The six shipped kernels of the paper's evaluation: BSW, PairHMM,
/// DTW (banded), chaining, POA and Bellman-Ford, each certified and
/// simulated.
#[test]
fn certificates_are_sound_on_all_six_kernels() {
    let mut rng = SmallRng::seed_from_u64(97);
    let scoring = Scoring::bwa_mem();

    // 1. BSW (local alignment).
    let t = DnaSeq::random(24, &mut rng);
    let q = MutationProfile::illumina().apply(&t.window(2, 18), &mut rng);
    let (rows, cols) = (codes(&t), codes(&q));
    wavefront_case("bsw", || GendpPipeline::bsw(&scoring), &rows, &cols);

    // 2. PairHMM (fixed-point forward).
    wavefront_case(
        "pairhmm",
        || GendpPipeline::pairhmm(&PairHmmParams::gatk(), 30, 1024, rows.len()),
        &rows,
        &cols,
    );

    // 3. DTW, full and banded.
    let xs: Vec<i32> = (0..15).map(|_| rng.gen_range(0..200)).collect();
    let ys: Vec<i32> = (0..12).map(|_| rng.gen_range(0..200)).collect();
    wavefront_case("dtw", GendpPipeline::dtw, &xs, &ys);
    let banded = WavefrontTask {
        rows: &ys,
        cols: &xs,
        n_pes: 4,
        band: Some(BandSpec {
            width: 5,
            sentinel: 1 << 20,
        }),
    };
    assert_certificate_sound(
        "dtw_banded",
        || GendpPipeline::dtw_banded(xs.len()),
        &banded,
    );

    // 4. Chaining.
    let n_pes = 8;
    let params = ChainParams {
        n_prev: n_pes,
        ..ChainParams::minimap2(15.0)
    };
    let mut anchors: Vec<gendp::seq::Anchor> = {
        let mut pos = 0;
        (0..30)
            .map(|_| {
                pos += rng.gen_range(1..6);
                gendp::seq::Anchor {
                    qpos: pos,
                    rpos: pos + rng.gen_range(0..3),
                    span: 15,
                }
            })
            .collect()
    };
    anchors.sort();
    let chain_task = ChainTask {
        anchors: &anchors,
        n_pes,
    };
    assert_certificate_sound("chain", || GendpPipeline::chain(params), &chain_task);

    // 5. POA.
    let truth = DnaSeq::random(30, &mut rng);
    let mut poa = Poa::new();
    poa.add_sequence(&truth, &Scoring::racon());
    poa.add_sequence(
        &MutationProfile::nanopore().apply(&truth, &mut rng),
        &Scoring::racon(),
    );
    let probe = MutationProfile::nanopore().apply(&truth, &mut rng);
    let poa_task = PoaTask {
        graph: &poa,
        seq: &probe,
        n_pes: 4,
    };
    assert_certificate_sound("poa", || GendpPipeline::poa(Scoring::racon()), &poa_task);

    // 6. Bellman-Ford.
    let g = random_roadmap(20, 2, 5, &mut rng);
    let bf_task = BellmanFordTask {
        graph: &g,
        source: 0,
        rounds: g.vertex_count() - 1,
    };
    assert_certificate_sound("bellman_ford", GendpPipeline::bellman_ford, &bf_task);
}

/// Re-preparing and re-executing must keep the certificate stable, and a
/// replayed execution must stay inside the same bounds (reset() keeps
/// the verification result, so replays exercise the cached gate).
#[test]
fn certificate_survives_replay() {
    let mut rng = SmallRng::seed_from_u64(98);
    let t = DnaSeq::random(20, &mut rng);
    let q = DnaSeq::random(16, &mut rng);
    let (rows, cols) = (codes(&t), codes(&q));
    let task = WavefrontTask {
        rows: &rows,
        cols: &cols,
        n_pes: 4,
        band: None,
    };
    let accel = GendpPipeline::bsw(&Scoring::bwa_mem());
    let mut prepared = Accelerator::prepare(&accel, &task);
    let cert = prepared.certificate().expect("certificate").clone();
    for _ in 0..3 {
        let stats = prepared.execute().expect("replay");
        assert!(cert.cycle_floor() <= stats.cycles);
        assert!(stats.cycles <= cert.cycle_bound().expect("bounded kernel"));
        assert!(prepared.is_certified(), "replay keeps the unchecked path");
    }
}

/// Renders a straight-line control program: `li`/`addi` address
/// arithmetic and `mv` traffic between rf and spm, all in bounds, no
/// branches, no FIFO/port traffic — the stall-free fragment where the
/// certificate promises an *exact* cycle count.
fn straight_line_program(steps: &[(u8, u8, i16)]) -> ControlProgram {
    let mut text = String::from("li a[0] 0\nli a[1] 1\n");
    for &(kind, reg, imm) in steps {
        let reg = reg % 2; // a0 or a1, both initialized above
        let imm = (imm % 64).abs(); // spm offsets stay well inside 1024 words
        match kind % 3 {
            0 => text.push_str(&format!("addi a{reg} a{reg} {}\n", imm % 8)),
            1 => text.push_str(&format!("mv spm[{imm}] a[{reg}]\n")),
            _ => text.push_str(&format!("mv a[{reg}] spm[{imm}]\n")),
        }
    }
    text.push_str("halt");
    text.parse().expect("fixture parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary in-bounds straight-line programs: the certificate must
    /// claim exactness (loop-free, stall-free) and the simulator must
    /// land on exactly the promised cycle count, on both engines.
    #[test]
    fn straight_line_programs_certify_exact_cycles(
        steps in prop::collection::vec((0u8..3, 0u8..2, 0i16..64), 0..24),
    ) {
        let program = straight_line_program(&steps);
        for tiers in [TierPolicy::decoded_certified(), TierPolicy::interpreted()] {
            let mut array = PeArray::new(PeArrayConfig::with_pes(1).tiers(tiers));
            array.load_pe_control(0, program.clone());
            let stats = array.run(100_000).expect("straight line runs");
            let cert = array.certificate().expect("verified run").clone();
            prop_assert!(cert.safe(), "straight-line program must certify");
            let exact = cert.cycle_exact();
            prop_assert_eq!(
                exact,
                Some(stats.cycles),
                "stall-free straight-line programs promise exact cycles"
            );
            prop_assert_eq!(array.is_certified(), tiers.requested() == Tier::DecodedCertified);
        }
    }

    /// Programs with data-dependent loops still get sound (if not exact)
    /// bounds: floor ≤ simulated ≤ bound whenever the bound is finite.
    #[test]
    fn bounded_loops_stay_inside_certified_bounds(
        trip in 1i32..12,
        body in prop::collection::vec((0u8..3, 0u8..2, 0i16..64), 0..6),
    ) {
        let mut text = format!("li a[0] 0\nli a[1] {trip}\n");
        for &(kind, reg, imm) in &body {
            let reg = reg % 2;
            let imm = (imm % 64).abs();
            // Only a2/a3 and spm traffic in the body: the loop counter
            // a0 advances solely through the addi below.
            match kind % 3 {
                0 => text.push_str(&format!("mv spm[{imm}] a[{reg}]\n")),
                1 => text.push_str(&format!("mv a[2] spm[{imm}]\n")),
                _ => text.push_str(&format!("mv a[3] spm[{imm}]\n")),
            }
        }
        // The branch offset is relative to the blt itself; the loop head
        // is the first body instruction (pc 2).
        text.push_str(&format!("addi a0 a0 1\nblt a0 a1 -{}\nhalt", body.len() + 1));
        let program: ControlProgram = text.parse().expect("fixture parses");

        let mut array = PeArray::new(PeArrayConfig::with_pes(1));
        array.load_pe_control(0, program);
        let stats = array.run(1_000_000).expect("loop runs");
        let cert = array.certificate().expect("verified run").clone();
        prop_assert!(cert.cycle_floor() <= stats.cycles);
        if let Some(bound) = cert.cycle_bound() {
            prop_assert!(
                stats.cycles <= bound,
                "simulated {} > certified bound {}", stats.cycles, bound
            );
        }
    }
}
