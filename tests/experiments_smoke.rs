//! Smoke tests for the experiment machinery: the models produce the rows
//! the harness binaries print, with values in the paper's ballpark.

use gendp::kernels::chain::ChainParams;
use gendp::kernels::dfgs;
use gendp::kernels::pairhmm::PairHmmParams;
use gendp::kernels::Scoring;
use gendp::model::area::AreaBreakdown;
use gendp::model::baselines::{Kernel, PAPER};
use gendp::model::dram::DramModel;
use gendp::model::power::PowerBreakdown;
use gendp::model::scalability::scale_tiles;
use gendp::model::scalar_isa::{instructions_per_cell, ScalarIsa};
use gendp::model::softbrain::softbrain_mappings;
use gendp::model::throughput::geomean;
use gendp::model::tia::{estimate_tia, TiaPattern};

#[test]
fn table7_totals() {
    let b = AreaBreakdown::dpax_28nm();
    assert!((b.total_area() - 5.391).abs() < 0.05);
}

#[test]
fn table8_totals() {
    let p = PowerBreakdown::dpax_28nm();
    assert!((p.total() - 4.660).abs() < 1e-6);
}

#[test]
fn table10_tia_estimates_track_paper() {
    let cases = [
        (dfgs::bsw_dfg(&Scoring::bwa_mem()), Kernel::Bsw),
        (
            dfgs::pairhmm_log_dfg(&PairHmmParams::gatk(), 1024),
            Kernel::PairHmm,
        ),
        (dfgs::poa_dfg(&Scoring::racon()), Kernel::Poa),
        (dfgs::chain_dfg(&ChainParams::minimap2(15.0)), Kernel::Chain),
    ];
    for (dfg, kernel) in cases {
        let est = estimate_tia(&dfg, TiaPattern::for_kernel(kernel));
        let idx = Kernel::ALL.iter().position(|&k| k == kernel).unwrap();
        let paper_tis = PAPER.tia_tis[idx];
        // Within 2x of the paper's counts: the model is an estimate.
        assert!(
            est.tis as f64 / paper_tis as f64 > 0.5 && (est.tis as f64 / paper_tis as f64) < 2.0,
            "{kernel}: est {} vs paper {paper_tis}",
            est.tis
        );
    }
}

#[test]
fn fig10d_scalar_isa_shape() {
    // riscv64 needs more instructions than x86-64, and both dwarf the
    // GenDP VLIW count, for every kernel.
    let dfgs = [
        dfgs::bsw_dfg(&Scoring::bwa_mem()),
        dfgs::pairhmm_log_dfg(&PairHmmParams::gatk(), 1024),
        dfgs::poa_dfg(&Scoring::racon()),
        dfgs::chain_dfg(&ChainParams::minimap2(15.0)),
    ];
    for dfg in &dfgs {
        let riscv = instructions_per_cell(dfg, ScalarIsa::Riscv64);
        let x86 = instructions_per_cell(dfg, ScalarIsa::X8664);
        let gendp = gendp::dpmap::map_dfg(dfg).program.len() as u32;
        assert!(riscv > x86, "{}", dfg.name());
        assert!(x86 > gendp, "{}: x86 {x86} vs gendp {gendp}", dfg.name());
    }
}

#[test]
fn table12_scaling_point() {
    let r = scale_tiles(297.5 / 64.0, 0.5, &DramModel::ddr4_2400_8ch());
    assert_eq!(r.tiles, 64);
    assert!((r.speedup_vs_gpu - PAPER.scalability.4).abs() < 0.1);
}

#[test]
fn table9_softbrain_rows_complete() {
    let rows = softbrain_mappings();
    assert_eq!(rows.len(), 4);
    let speeds: Vec<f64> = rows.iter().map(|r| r.paper_gendp_speedup).collect();
    assert!((geomean(&speeds) - 2.12).abs() < 0.2);
}

#[test]
fn headline_numbers_recorded() {
    assert_eq!(PAPER.headline_speedups, (132.0, 157.8));
    assert_eq!(PAPER.perf_per_watt_vs_gpu, 15.1);
    for k in Kernel::ALL {
        let row = PAPER.table15_row(k);
        assert!(row.gendp_mcups_mm2 > row.cpu_mcups_mm2);
        assert!(row.gendp_mcups_mm2 > row.gpu_mcups_mm2);
    }
}
