//! Property tests across crate boundaries: the accelerator equals the
//! reference kernels on randomized inputs.

use gendp::core::{bsw_score, GendpPipeline};
use gendp::kernels::chain::{chain_reordered, ChainParams};
use gendp::kernels::{bsw_i32, AlignMode, Scoring};
use gendp::seq::{Anchor, DnaSeq};
use proptest::prelude::*;

fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = DnaSeq> {
    prop::collection::vec(0u8..4, len)
        .prop_map(|codes| codes.into_iter().map(gendp::seq::Base::from_code).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// BSW on the accelerator equals the reference for arbitrary sequences
    /// and array widths.
    #[test]
    fn bsw_accelerator_equals_reference(
        q in dna(1..24),
        t in dna(1..24),
        n_pes in 1usize..6,
    ) {
        let scoring = Scoring::bwa_mem();
        let accel = GendpPipeline::bsw(&scoring);
        let rows: Vec<i32> = t.codes().iter().map(|&c| c as i32).collect();
        let cols: Vec<i32> = q.codes().iter().map(|&c| c as i32).collect();
        let out = accel.run(&rows, &cols, n_pes).expect("simulation");
        let expect = bsw_i32(&q, &t, &scoring, 1000, AlignMode::Local);
        prop_assert_eq!(bsw_score(&out), expect.score);
    }

    /// Chaining on the accelerator equals the reordered reference for
    /// arbitrary sorted anchor sets.
    #[test]
    fn chain_accelerator_equals_reference(
        raw in prop::collection::vec((0i32..2000, 0i32..2000), 1..40),
    ) {
        let mut anchors: Vec<Anchor> = raw
            .into_iter()
            .map(|(r, q)| Anchor { rpos: r, qpos: q, span: 13 })
            .collect();
        anchors.sort_unstable();
        anchors.dedup();
        let n_pes = 5;
        let params = ChainParams { n_prev: n_pes, ..ChainParams::minimap2(13.0) };
        let accel = GendpPipeline::chain(params);
        let run = accel.run(&anchors, n_pes).expect("simulation");
        prop_assert_eq!(run.scores, chain_reordered(&anchors, &params).scores);
    }

    /// DTW on the accelerator equals the reference.
    #[test]
    fn dtw_accelerator_equals_reference(
        xs in prop::collection::vec(0i32..1000, 1..16),
        ys in prop::collection::vec(0i32..1000, 1..16),
    ) {
        let out = GendpPipeline::dtw().run(&xs, &ys, 4).expect("simulation");
        let got = *out.last_row["d"].last().unwrap() as i64;
        prop_assert_eq!(got, gendp::kernels::dtw::dtw(&xs, &ys).distance);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// POA alignment on the accelerator equals the reference for random
    /// graphs built from noisy copies of a random backbone.
    #[test]
    fn poa_accelerator_equals_reference(
        backbone in dna(8..20),
        extra_reads in 0usize..3,
        probe_seed in 0u64..1000,
        n_pes in 1usize..5,
    ) {
        use gendp::kernels::poa::Poa;
        use gendp::kernels::Scoring;
        use gendp::seq::MutationProfile;
        use rand::{rngs::SmallRng, SeedableRng};

        let mut rng = SmallRng::seed_from_u64(probe_seed);
        let mut poa = Poa::new();
        poa.add_sequence(&backbone, &Scoring::racon());
        for _ in 0..extra_reads {
            let noisy = MutationProfile::pacbio().apply(&backbone, &mut rng);
            if !noisy.is_empty() {
                poa.add_sequence(&noisy, &Scoring::racon());
            }
        }
        let probe = MutationProfile::pacbio().apply(&backbone, &mut rng);
        prop_assume!(!probe.is_empty());
        let accel = GendpPipeline::poa(Scoring::racon());
        let run = accel.run(&poa, &probe, n_pes).expect("simulation");
        prop_assert_eq!(run.score, poa.align(&probe, &Scoring::racon()).score);
    }

    /// The log-domain PairHMM accelerator is bit-exact against its
    /// fixed-point reference for random read/haplotype pairs.
    #[test]
    fn pairhmm_accelerator_equals_reference(
        read in dna(1..10),
        hap in dna(1..14),
    ) {
        use gendp::core::pairhmm_loglik;
        use gendp::kernels::dfgs::pairhmm_luts;
        use gendp::kernels::pairhmm::{forward_log_fixed, PairHmmParams};

        let params = PairHmmParams::gatk();
        let (qual, scale) = (30u8, 512);
        let accel = GendpPipeline::pairhmm(&params, qual, scale, hap.len());
        let rows: Vec<i32> = read.codes().iter().map(|&c| c as i32).collect();
        let cols: Vec<i32> = hap.codes().iter().map(|&c| c as i32).collect();
        let out = accel.run(&rows, &cols, 4).expect("simulation");
        let got = pairhmm_loglik(&out, &pairhmm_luts(qual, scale));
        let quals = vec![qual; read.len()];
        prop_assert_eq!(got, forward_log_fixed(&read, &quals, &hap, &params, scale));
    }
}
