//! Alignment-mode coverage (paper §7.6.3): the accelerator supports
//! local, global and semi-global string matching with linear, affine and
//! convex gap scoring. Each mode runs end-to-end against its reference.

use gendp::core::{bsw_score, bsw_semiglobal_score, GendpPipeline};
use gendp::kernels::{align, bsw_i32, AlignMode, GapModel, Scoring};
use gendp::seq::{DnaSeq, Genome, MutationProfile};
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn codes(s: &DnaSeq) -> Vec<i32> {
    s.codes().iter().map(|&c| c as i32).collect()
}

#[test]
fn global_mode_matches_reference() {
    let mut rng = SmallRng::seed_from_u64(301);
    let scoring = Scoring::bwa_mem();
    let accel = GendpPipeline::bsw_global(&scoring);
    for _ in 0..6 {
        let g = Genome::random(100, &mut rng);
        let t = g.window(0, rng.gen_range(4..30));
        let q = MutationProfile::pacbio().apply(&g.window(0, rng.gen_range(4..30)), &mut rng);
        if q.is_empty() {
            continue;
        }
        let out = accel.run(&codes(&t), &codes(&q), 4).expect("simulation");
        let got = *out.last_row["h"].last().expect("corner cell");
        let expect = bsw_i32(&q, &t, &scoring, 1000, AlignMode::Global);
        assert_eq!(got, expect.score, "q={q} t={t}");
    }
}

#[test]
fn global_mode_various_array_sizes() {
    let mut rng = SmallRng::seed_from_u64(302);
    let scoring = Scoring::bwa_mem();
    let t = DnaSeq::random(11, &mut rng);
    let q = DnaSeq::random(9, &mut rng);
    let expect = bsw_i32(&q, &t, &scoring, 1000, AlignMode::Global);
    for n_pes in [1, 2, 4, 8] {
        let accel = GendpPipeline::bsw_global(&scoring);
        let out = accel
            .run(&codes(&t), &codes(&q), n_pes)
            .expect("simulation");
        assert_eq!(
            *out.last_row["h"].last().unwrap(),
            expect.score,
            "n_pes {n_pes}"
        );
    }
}

#[test]
fn semiglobal_mode_matches_reference() {
    let mut rng = SmallRng::seed_from_u64(303);
    let scoring = Scoring::bwa_mem();
    for _ in 0..6 {
        let g = Genome::random(100, &mut rng);
        let t = g.window(0, rng.gen_range(6..40));
        let q = g.window(rng.gen_range(0..10), rng.gen_range(4..20));
        let accel = GendpPipeline::bsw_semiglobal(&scoring, q.len());
        let out = accel.run(&codes(&t), &codes(&q), 4).expect("simulation");
        let expect = bsw_i32(&q, &t, &scoring, 1000, AlignMode::SemiGlobal);
        assert_eq!(bsw_semiglobal_score(&out), expect.score, "q={q} t={t}");
    }
}

#[test]
fn semiglobal_overlap_is_free_where_global_pays() {
    // Query matches a prefix of a much longer target.
    let scoring = Scoring::bwa_mem();
    let q: DnaSeq = "ACGTAC".parse().unwrap();
    let t: DnaSeq = "ACGTACTTTTTTTTTTTT".parse().unwrap();
    let semi_accel = GendpPipeline::bsw_semiglobal(&scoring, q.len());
    let semi = semi_accel.run(&codes(&t), &codes(&q), 4).expect("semi");
    let global_accel = GendpPipeline::bsw_global(&scoring);
    let global = global_accel.run(&codes(&t), &codes(&q), 4).expect("global");
    assert_eq!(bsw_semiglobal_score(&semi), 6);
    assert!(*global.last_row["h"].last().unwrap() < 6);
}

#[test]
fn convex_mode_matches_reference() {
    let mut rng = SmallRng::seed_from_u64(304);
    let convex = Scoring {
        matches: 1,
        mismatch: 4,
        gap: GapModel::Convex {
            open1: 4,
            extend1: 2,
            open2: 14,
            extend2: 1,
        },
    };
    let accel = GendpPipeline::bsw_convex(&convex);
    for _ in 0..6 {
        let g = Genome::random(100, &mut rng);
        let t = g.window(0, rng.gen_range(6..30));
        let q = MutationProfile::pacbio().apply(&g.window(0, rng.gen_range(6..30)), &mut rng);
        if q.is_empty() {
            continue;
        }
        let out = accel.run(&codes(&t), &codes(&q), 4).expect("simulation");
        let expect = align(&q, &t, &convex, AlignMode::Local);
        assert_eq!(bsw_score(&out), expect.score, "q={q} t={t}");
    }
}

#[test]
fn convex_accelerator_bridges_long_gaps_better_than_affine() {
    // A 20-base insertion: the convex second piece caps the cost.
    let convex = Scoring {
        matches: 1,
        mismatch: 4,
        gap: GapModel::Convex {
            open1: 4,
            extend1: 2,
            open2: 14,
            extend2: 1,
        },
    };
    let affine = Scoring {
        matches: 1,
        mismatch: 4,
        gap: GapModel::Affine { open: 4, extend: 2 },
    };
    // 40-base flanks: bridging the 20-base gap gains 80 matches at a cost
    // of 34 (convex: 14 + 20*1) or 44 (affine: 4 + 20*2); only the convex
    // bridge beats keeping a single 40-match flank.
    let mut q_text = "ACGT".repeat(20);
    let t_text = q_text.clone();
    q_text.insert_str(40, &"T".repeat(20));
    let q: DnaSeq = q_text.parse().unwrap();
    let t: DnaSeq = t_text.parse().unwrap();

    let cx = GendpPipeline::bsw_convex(&convex);
    let out_cx = cx.run(&codes(&t), &codes(&q), 4).expect("convex");
    let af = GendpPipeline::bsw(&affine);
    let out_af = af.run(&codes(&t), &codes(&q), 4).expect("affine");
    assert!(
        bsw_score(&out_cx) > bsw_score(&out_af),
        "convex {} vs affine {}",
        bsw_score(&out_cx),
        bsw_score(&out_af)
    );
}

#[test]
fn simd16_two_tasks_match_reference() {
    use gendp::core::{bsw_simd16_scores, pack_halves, GendpPipeline};
    use gendp::kernels::bsw_i16;
    let mut rng = SmallRng::seed_from_u64(305);
    let scoring = Scoring::bwa_mem();
    let accel = GendpPipeline::bsw_simd16(&scoring);
    let tasks: Vec<(DnaSeq, DnaSeq)> = (0..2)
        .map(|_| (DnaSeq::random(30, &mut rng), DnaSeq::random(26, &mut rng)))
        .collect();
    let q0: Vec<i16> = tasks[0].0.codes().iter().map(|&c| c as i16).collect();
    let q1: Vec<i16> = tasks[1].0.codes().iter().map(|&c| c as i16).collect();
    let t0: Vec<i16> = tasks[0].1.codes().iter().map(|&c| c as i16).collect();
    let t1: Vec<i16> = tasks[1].1.codes().iter().map(|&c| c as i16).collect();
    let cols = pack_halves([&q0, &q1]);
    let rows = pack_halves([&t0, &t1]);
    let out = accel.run(&rows, &cols, 4).expect("simulation");
    let scores = bsw_simd16_scores(&out);
    for (half, (q, t)) in tasks.iter().enumerate() {
        let expect = bsw_i16(q, t, &scoring, 1000);
        assert_eq!(scores[half] as i32, expect.score, "half {half}");
    }
}

#[test]
fn simd16_handles_scores_beyond_8_bit() {
    use gendp::core::{bsw_simd16_scores, pack_halves, GendpPipeline};
    use gendp::kernels::bsw_i16;
    let mut rng = SmallRng::seed_from_u64(306);
    let scoring = Scoring::bwa_mem();
    // A 200-base near-perfect alignment scores ~200 > 127.
    let t = DnaSeq::random(200, &mut rng);
    let q = MutationProfile::illumina().apply(&t, &mut rng);
    let q = q.window(0, q.len().min(200));
    let qc: Vec<i16> = q.codes().iter().map(|&c| c as i16).collect();
    let tc: Vec<i16> = t.codes().iter().map(|&c| c as i16).collect();
    let cols = pack_halves([&qc, &qc]);
    let rows = pack_halves([&tc, &tc]);
    let accel = GendpPipeline::bsw_simd16(&scoring);
    let out = accel.run(&rows, &cols, 4).expect("simulation");
    let scores = bsw_simd16_scores(&out);
    let expect = bsw_i16(&q, &t, &scoring, 1000);
    assert!(
        expect.score > 127,
        "score {} must exceed 8-bit",
        expect.score
    );
    assert_eq!(scores[0] as i32, expect.score);
    assert_eq!(scores[1] as i32, expect.score);
}

#[test]
fn banded_dtw_on_dpax_matches_reference() {
    use gendp::core::{dtw_banded_distance, GendpPipeline};
    use gendp::kernels::dtw::dtw_band_asymmetric;
    let mut rng = SmallRng::seed_from_u64(307);
    const SENTINEL: i32 = 1 << 20;
    let mut checked = 0;
    while checked < 5 {
        let m = rng.gen_range(6..30i64);
        let width = rng.gen_range(3..12usize);
        // The corner must lie inside the band: 0 <= n - m < width.
        let n = m + rng.gen_range(0..width as i64);
        let xs: Vec<i32> = (0..m).map(|_| rng.gen_range(0..500)).collect();
        let ys: Vec<i32> = (0..n).map(|_| rng.gen_range(0..500)).collect();
        let expect = dtw_band_asymmetric(&xs, &ys, 0, width as i64 - 1);
        let accel = GendpPipeline::dtw_banded(ys.len());
        let out = accel
            .run_banded(&xs, &ys, width, SENTINEL, 4)
            .expect("simulation");
        let got = dtw_banded_distance(&out, xs.len()) as i64;
        assert_eq!(got, expect.distance, "m={m} n={n} w={width}");
        // The banded run computes exactly width cells per row.
        assert_eq!(out.stats.cells(), (m as u64) * (width as u64));
        checked += 1;
    }
}

#[test]
fn banded_dtw_costs_fewer_cells_than_full() {
    use gendp::core::{dtw_banded_distance, GendpPipeline};
    let xs: Vec<i32> = (0..40).collect();
    let ys: Vec<i32> = (0..40).collect();
    let banded = GendpPipeline::dtw_banded(40)
        .run_banded(&xs, &ys, 6, 1 << 20, 4)
        .expect("banded");
    let full = GendpPipeline::dtw().run(&xs, &ys, 4).expect("full");
    assert!(banded.stats.cells() < full.stats.cells());
    // The identical-signal path is on the diagonal: both find 0.
    assert_eq!(dtw_banded_distance(&banded, 40), 0);
    assert_eq!(*full.last_row["d"].last().unwrap(), 0);
}

#[test]
fn linear_gap_alignment_on_dpax_via_poa_chain_graph() {
    // A chain-shaped POA graph *is* a linear-gap pairwise aligner: this
    // covers the paper's "linear" scoring mode end to end on the
    // accelerator (§7.6.3), checked against the generic aligner.
    use gendp::kernels::poa::Poa;
    let mut rng = SmallRng::seed_from_u64(308);
    for _ in 0..4 {
        let t = DnaSeq::random(rng.gen_range(5..25), &mut rng);
        let q = DnaSeq::random(rng.gen_range(5..25), &mut rng);
        let mut poa = Poa::new();
        poa.add_sequence(&t, &Scoring::racon());
        let accel = GendpPipeline::poa(Scoring::racon());
        let run = accel.run(&poa, &q, 4).expect("simulation");
        // The POA reference on a chain graph equals global linear-gap
        // alignment of q against t.
        let expect = align(&q, &t, &Scoring::racon(), AlignMode::Global);
        assert_eq!(run.score, expect.score, "q={q} t={t}");
    }
}
