//! Execution-tier equivalence sweep: for every shipped kernel, the
//! pre-decoded execution engine, the instruction-level interpreter and —
//! where it engages — the functional fast-path tier must be
//! **bit-identical** on functional outputs. Decoded and interpreted must
//! additionally agree on every
//! [`RunStats`](gendp::dpax::RunStats) counter (cycles, instruction
//! counts, port/FIFO/SPM traffic); the functional tier must agree on DP
//! cells and carries its cycles from the certificate's analytic model
//! instead.
//!
//! Task shapes mirror `verify_sweep.rs` so the equivalence evidence
//! covers exactly the program set the verifier acceptance contract
//! covers. Tier selection goes exclusively through
//! [`TierPolicy`](gendp::dpax::TierPolicy); the fallback-chain tests at
//! the bottom pin the resolution rules (strict vs. fallback, provenance
//! stamping) the redesigned API promises.

use gendp::core::{pack_halves, pack_lanes, GendpPipeline, Wavefront2d};
use gendp::dpax::{SimError, Tier, TierPolicy};
use gendp::kernels::bellman_ford::random_roadmap;
use gendp::kernels::chain::ChainParams;
use gendp::kernels::pairhmm::PairHmmParams;
use gendp::kernels::poa::Poa;
use gendp::kernels::{GapModel, Scoring};
use gendp::seq::{DnaSeq, MutationProfile};
use gendp::{AccelConfig, Accelerator, TaskOutput};
use gendp_core::{BandSpec, BellmanFordTask, ChainTask, PoaTask, WavefrontTask};
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn codes(s: &DnaSeq) -> Vec<i32> {
    s.codes().iter().map(|&c| c as i32).collect()
}

fn convex_scoring() -> Scoring {
    Scoring {
        matches: 1,
        mismatch: 4,
        gap: GapModel::Convex {
            open1: 4,
            extend1: 2,
            open2: 14,
            extend2: 1,
        },
    }
}

fn with_tiers<A: Accelerator>(accel: A, tiers: TierPolicy) -> A {
    accel.configure(AccelConfig::new().tiers(tiers))
}

/// Runs one task on every execution tier through the unified
/// [`Accelerator`] lifecycle and asserts bit-identical outputs: decoded
/// vs. interpreted on outputs *and* statistics, then the functional tier
/// (when the driver lowers one) vs. the prepared decoded reference on
/// output words and DP-cell counts.
fn assert_tiers_agree<A, F>(name: &str, build: F, task: &A::Task<'_>, expect_functional: bool)
where
    A: Accelerator,
    A::Output: std::fmt::Debug + PartialEq,
    F: Fn() -> A,
{
    let decoded = with_tiers(build(), TierPolicy::decoded())
        .run_task(task)
        .unwrap_or_else(|e| panic!("{name} (decoded): {e}"));
    let interpreted = with_tiers(build(), TierPolicy::interpreted())
        .run_task(task)
        .unwrap_or_else(|e| panic!("{name} (interpreted): {e}"));
    assert_eq!(decoded, interpreted, "{name}: functional outputs diverge");
    assert_eq!(
        decoded.stats(),
        interpreted.stats(),
        "{name}: statistics diverge"
    );
    assert_eq!(
        decoded.stats().tier,
        Tier::Decoded,
        "{name}: decoded provenance"
    );
    assert_eq!(
        interpreted.stats().tier,
        Tier::Interpreted,
        "{name}: interpreted provenance"
    );

    // Prepared decoded-certified reference: the output words the
    // functional tier must reproduce bit-exactly.
    let mut reference = Accelerator::prepare(&with_tiers(build(), TierPolicy::default()), task);
    let ref_stats = reference
        .execute()
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let ref_out = reference.output().to_vec();

    let mut func = Accelerator::prepare(&with_tiers(build(), TierPolicy::functional()), task);
    let func_stats = func
        .execute()
        .unwrap_or_else(|e| panic!("{name} (functional): {e}"));
    if expect_functional {
        assert_eq!(
            func.resolved_tier(),
            Tier::Functional,
            "{name}: functional tier did not engage"
        );
        assert_eq!(
            func_stats.tier,
            Tier::Functional,
            "{name}: functional provenance"
        );
        assert_eq!(
            func.output(),
            &ref_out[..],
            "{name}: functional output words diverge from decoded"
        );
        assert_eq!(
            func_stats.cells(),
            ref_stats.cells(),
            "{name}: functional DP-cell count diverges"
        );
    } else {
        // Drivers without a functional lowering fall back down the chain:
        // identical results, simulated provenance.
        assert_ne!(
            func.resolved_tier(),
            Tier::Functional,
            "{name}: unexpected functional engagement"
        );
        assert_eq!(
            func.output(),
            &ref_out[..],
            "{name}: fallback output diverges"
        );
        assert_eq!(func_stats, ref_stats, "{name}: fallback statistics diverge");
    }
}

fn wavefront_case(name: &str, build: impl Fn() -> Wavefront2d, rows: &[i32], cols: &[i32]) {
    let task = WavefrontTask {
        rows,
        cols,
        n_pes: 4,
        band: None,
    };
    assert_tiers_agree(name, build, &task, true);
}

/// Every wavefront kernel (BSW family, PairHMM, DTW, LCS): decoded ==
/// interpreted == functional, outputs and stats.
#[test]
fn wavefront_kernels_tier_equivalent() {
    let mut rng = SmallRng::seed_from_u64(71);
    let scoring = Scoring::bwa_mem();
    let t = DnaSeq::random(24, &mut rng);
    let q = MutationProfile::illumina().apply(&t.window(2, 18), &mut rng);
    let (rows, cols) = (codes(&t), codes(&q));

    wavefront_case("bsw", || GendpPipeline::bsw(&scoring), &rows, &cols);
    wavefront_case(
        "bsw_global",
        || GendpPipeline::bsw_global(&scoring),
        &rows,
        &cols,
    );
    wavefront_case(
        "bsw_semiglobal",
        || GendpPipeline::bsw_semiglobal(&scoring, cols.len()),
        &rows,
        &cols,
    );
    wavefront_case(
        "bsw_convex",
        || GendpPipeline::bsw_convex(&convex_scoring()),
        &rows,
        &cols,
    );
    wavefront_case(
        "pairhmm",
        || GendpPipeline::pairhmm(&PairHmmParams::gatk(), 30, 1024, rows.len()),
        &rows,
        &cols,
    );
    wavefront_case(
        "pairhmm_float",
        || GendpPipeline::pairhmm_float(&PairHmmParams::gatk(), 30, rows.len()),
        &rows,
        &cols,
    );
    wavefront_case("lcs", GendpPipeline::lcs, &rows, &cols);

    let xs: Vec<i32> = (0..15).map(|_| rng.gen_range(0..200)).collect();
    let ys: Vec<i32> = (0..12).map(|_| rng.gen_range(0..200)).collect();
    wavefront_case("dtw", GendpPipeline::dtw, &xs, &ys);
    let banded = WavefrontTask {
        rows: &ys,
        cols: &xs,
        n_pes: 4,
        band: Some(BandSpec {
            width: 5,
            sentinel: 1 << 20,
        }),
    };
    assert_tiers_agree(
        "dtw_banded",
        || GendpPipeline::dtw_banded(xs.len()),
        &banded,
        true,
    );

    let lanes: Vec<Vec<u8>> = (0..4)
        .map(|_| DnaSeq::random(16, &mut rng).codes())
        .collect();
    let rows8 = pack_lanes([&lanes[0], &lanes[1], &lanes[2], &lanes[3]]);
    let cols8 = pack_lanes([&lanes[1], &lanes[2], &lanes[3], &lanes[0]]);
    wavefront_case(
        "bsw_simd",
        || GendpPipeline::bsw_simd(&scoring),
        &rows8,
        &cols8,
    );
    let h0: Vec<i16> = lanes[0].iter().map(|&c| c as i16).collect();
    let h1: Vec<i16> = lanes[1].iter().map(|&c| c as i16).collect();
    let rows16 = pack_halves([&h0, &h1]);
    let cols16 = pack_halves([&h1, &h0]);
    wavefront_case(
        "bsw_simd16",
        || GendpPipeline::bsw_simd16(&scoring),
        &rows16,
        &cols16,
    );
}

/// Chain, POA and Bellman-Ford: decoded == interpreted on their own
/// drivers (FIFO broadcast, graph-structured flow, scratchpad
/// residency). These patterns have no functional lowering yet, so a
/// functional request falls back down the chain bit-identically.
#[test]
fn chain_poa_bellman_ford_tier_equivalent() {
    let mut rng = SmallRng::seed_from_u64(72);
    let n_pes = 8;
    let params = ChainParams {
        n_prev: n_pes,
        ..ChainParams::minimap2(15.0)
    };
    let anchors: Vec<gendp::seq::Anchor> = {
        // Sorted synthetic anchors, the shape `verify_sweep` sizes for.
        let mut pos = 0;
        (0..30)
            .map(|_| {
                pos += rng.gen_range(1..6);
                gendp::seq::Anchor {
                    qpos: pos,
                    rpos: pos + rng.gen_range(0..3),
                    span: 15,
                }
            })
            .collect()
    };
    let chain_task = ChainTask {
        anchors: &anchors,
        n_pes,
    };
    assert_tiers_agree("chain", || GendpPipeline::chain(params), &chain_task, false);

    let truth = DnaSeq::random(30, &mut rng);
    let mut poa = Poa::new();
    poa.add_sequence(&truth, &Scoring::racon());
    poa.add_sequence(
        &MutationProfile::nanopore().apply(&truth, &mut rng),
        &Scoring::racon(),
    );
    let probe = MutationProfile::nanopore().apply(&truth, &mut rng);
    let poa_task = PoaTask {
        graph: &poa,
        seq: &probe,
        n_pes: 4,
    };
    assert_tiers_agree(
        "poa",
        || GendpPipeline::poa(Scoring::racon()),
        &poa_task,
        false,
    );

    let g = random_roadmap(20, 2, 5, &mut rng);
    let bf_task = BellmanFordTask {
        graph: &g,
        source: 0,
        rounds: g.vertex_count() - 1,
    };
    assert_tiers_agree("bellman_ford", GendpPipeline::bellman_ford, &bf_task, false);
}

/// The redesigned selection API's resolution rules: fallback chains
/// resolve to the best available tier and stamp provenance; strict
/// policies fail loudly instead of falling back.
#[test]
fn tier_policy_resolution_and_provenance() {
    let scoring = Scoring::bwa_mem();
    let mut rng = SmallRng::seed_from_u64(73);
    let t = DnaSeq::random(16, &mut rng);
    let q = DnaSeq::random(12, &mut rng);
    let (rows, cols) = (codes(&t), codes(&q));
    let task = WavefrontTask {
        rows: &rows,
        cols: &cols,
        n_pes: 4,
        band: None,
    };

    // Functional requested with fallback on a wavefront kernel: engages,
    // and reports analytic (estimated) cycles because wavefront
    // certificates are never stall-free.
    let accel = with_tiers(GendpPipeline::bsw(&scoring), TierPolicy::functional());
    let mut prep = Accelerator::prepare(&accel, &task);
    let stats = prep.execute().expect("functional execution");
    assert_eq!(prep.resolved_tier(), Tier::Functional);
    assert_eq!(stats.tier, Tier::Functional);
    assert!(
        stats.cycles_estimated,
        "wavefront kernels stall, so functional cycles come from the bound"
    );
    assert!(stats.cycles > 0, "analytic cycle model must be populated");

    // The default policy resolves to the certified decoded tier.
    let mut prep = Accelerator::prepare(
        &with_tiers(GendpPipeline::bsw(&scoring), TierPolicy::default()),
        &task,
    );
    let stats = prep.execute().expect("certified decoded execution");
    assert_eq!(prep.resolved_tier(), Tier::DecodedCertified);
    assert_eq!(stats.tier, Tier::DecodedCertified);
    assert!(!stats.cycles_estimated, "simulated cycles are exact");

    // force_checked drops both the certified access path and the
    // functional plan: the run degrades to plain decoded simulation.
    let mut prep = Accelerator::prepare(
        &with_tiers(GendpPipeline::bsw(&scoring), TierPolicy::functional()),
        &task,
    );
    prep.force_checked();
    let stats = prep.execute().expect("checked decoded execution");
    assert_ne!(prep.resolved_tier(), Tier::Functional);
    assert_eq!(stats.tier, Tier::Decoded);

    // Strict functional on a driver with no functional lowering fails
    // with the tier-unavailability error instead of silently falling
    // back.
    let chain_params = ChainParams::minimap2(15.0);
    let anchors = [gendp::seq::Anchor {
        qpos: 5,
        rpos: 6,
        span: 15,
    }];
    let chain_task = ChainTask {
        anchors: &anchors,
        n_pes: 4,
    };
    let accel = with_tiers(
        GendpPipeline::chain(chain_params),
        TierPolicy::functional().strict(),
    );
    let mut prep = Accelerator::prepare(&accel, &chain_task);
    match prep.execute() {
        Err(SimError::TierUnavailable {
            requested,
            available,
        }) => {
            assert_eq!(requested, Tier::Functional);
            assert_ne!(available, Tier::Functional);
        }
        other => panic!("strict functional on chain should fail, got {other:?}"),
    }

    // Strict decoded on a wavefront kernel succeeds (the tier is
    // available) and stamps its provenance.
    let accel = with_tiers(GendpPipeline::bsw(&scoring), TierPolicy::decoded().strict());
    let mut prep = Accelerator::prepare(&accel, &task);
    let stats = prep.execute().expect("strict decoded");
    assert_eq!(stats.tier, Tier::Decoded);
}
