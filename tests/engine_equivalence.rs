//! Engine equivalence sweep: for every shipped kernel, the pre-decoded
//! execution engine and the instruction-level interpreter must be
//! **bit-identical** — same functional outputs *and* same
//! [`RunStats`](gendp::dpax::RunStats) (cycles, instruction counts,
//! port/FIFO/SPM traffic). The decoded engine is the default hot path;
//! this suite is what entitles it to claim the interpreter's semantics.
//!
//! Task shapes mirror `verify_sweep.rs` so the equivalence evidence
//! covers exactly the program set the verifier acceptance contract
//! covers.

use gendp::core::{pack_halves, pack_lanes, GendpPipeline, Wavefront2d};
use gendp::dpax::Engine;
use gendp::kernels::bellman_ford::random_roadmap;
use gendp::kernels::chain::ChainParams;
use gendp::kernels::pairhmm::PairHmmParams;
use gendp::kernels::poa::Poa;
use gendp::kernels::{GapModel, Scoring};
use gendp::seq::{DnaSeq, MutationProfile};
use gendp::{AccelConfig, Accelerator, TaskOutput};
use gendp_core::{BandSpec, BellmanFordTask, ChainTask, PoaTask, WavefrontTask};
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn codes(s: &DnaSeq) -> Vec<i32> {
    s.codes().iter().map(|&c| c as i32).collect()
}

fn convex_scoring() -> Scoring {
    Scoring {
        matches: 1,
        mismatch: 4,
        gap: GapModel::Convex {
            open1: 4,
            extend1: 2,
            open2: 14,
            extend2: 1,
        },
    }
}

/// Runs one task on both engines through the unified [`Accelerator`]
/// lifecycle and asserts bit-identical outputs and statistics.
fn assert_engines_agree<A, F>(name: &str, build: F, task: &A::Task<'_>)
where
    A: Accelerator,
    A::Output: std::fmt::Debug + PartialEq,
    F: Fn() -> A,
{
    let decoded = build()
        .configure(AccelConfig::new().engine(Engine::Decoded))
        .run_task(task)
        .unwrap_or_else(|e| panic!("{name} (decoded): {e}"));
    let interpreted = build()
        .configure(AccelConfig::new().engine(Engine::Interpreted))
        .run_task(task)
        .unwrap_or_else(|e| panic!("{name} (interpreted): {e}"));
    assert_eq!(decoded, interpreted, "{name}: functional outputs diverge");
    assert_eq!(
        decoded.stats(),
        interpreted.stats(),
        "{name}: statistics diverge"
    );
}

fn wavefront_case(name: &str, build: impl Fn() -> Wavefront2d, rows: &[i32], cols: &[i32]) {
    let task = WavefrontTask {
        rows,
        cols,
        n_pes: 4,
        band: None,
    };
    assert_engines_agree(name, build, &task);
}

/// Every wavefront kernel (BSW family, PairHMM, DTW, LCS): decoded ==
/// interpreted, outputs and stats.
#[test]
fn wavefront_kernels_decode_equivalent() {
    let mut rng = SmallRng::seed_from_u64(71);
    let scoring = Scoring::bwa_mem();
    let t = DnaSeq::random(24, &mut rng);
    let q = MutationProfile::illumina().apply(&t.window(2, 18), &mut rng);
    let (rows, cols) = (codes(&t), codes(&q));

    wavefront_case("bsw", || GendpPipeline::bsw(&scoring), &rows, &cols);
    wavefront_case(
        "bsw_global",
        || GendpPipeline::bsw_global(&scoring),
        &rows,
        &cols,
    );
    wavefront_case(
        "bsw_semiglobal",
        || GendpPipeline::bsw_semiglobal(&scoring, cols.len()),
        &rows,
        &cols,
    );
    wavefront_case(
        "bsw_convex",
        || GendpPipeline::bsw_convex(&convex_scoring()),
        &rows,
        &cols,
    );
    wavefront_case(
        "pairhmm",
        || GendpPipeline::pairhmm(&PairHmmParams::gatk(), 30, 1024, rows.len()),
        &rows,
        &cols,
    );
    wavefront_case(
        "pairhmm_float",
        || GendpPipeline::pairhmm_float(&PairHmmParams::gatk(), 30, rows.len()),
        &rows,
        &cols,
    );
    wavefront_case("lcs", GendpPipeline::lcs, &rows, &cols);

    let xs: Vec<i32> = (0..15).map(|_| rng.gen_range(0..200)).collect();
    let ys: Vec<i32> = (0..12).map(|_| rng.gen_range(0..200)).collect();
    wavefront_case("dtw", GendpPipeline::dtw, &xs, &ys);
    let banded = WavefrontTask {
        rows: &ys,
        cols: &xs,
        n_pes: 4,
        band: Some(BandSpec {
            width: 5,
            sentinel: 1 << 20,
        }),
    };
    assert_engines_agree(
        "dtw_banded",
        || GendpPipeline::dtw_banded(xs.len()),
        &banded,
    );

    let lanes: Vec<Vec<u8>> = (0..4)
        .map(|_| DnaSeq::random(16, &mut rng).codes())
        .collect();
    let rows8 = pack_lanes([&lanes[0], &lanes[1], &lanes[2], &lanes[3]]);
    let cols8 = pack_lanes([&lanes[1], &lanes[2], &lanes[3], &lanes[0]]);
    wavefront_case(
        "bsw_simd",
        || GendpPipeline::bsw_simd(&scoring),
        &rows8,
        &cols8,
    );
    let h0: Vec<i16> = lanes[0].iter().map(|&c| c as i16).collect();
    let h1: Vec<i16> = lanes[1].iter().map(|&c| c as i16).collect();
    let rows16 = pack_halves([&h0, &h1]);
    let cols16 = pack_halves([&h1, &h0]);
    wavefront_case(
        "bsw_simd16",
        || GendpPipeline::bsw_simd16(&scoring),
        &rows16,
        &cols16,
    );
}

/// Chain, POA and Bellman-Ford: decoded == interpreted on their own
/// drivers (FIFO broadcast, graph-structured flow, scratchpad
/// residency).
#[test]
fn chain_poa_bellman_ford_decode_equivalent() {
    let mut rng = SmallRng::seed_from_u64(72);
    let n_pes = 8;
    let params = ChainParams {
        n_prev: n_pes,
        ..ChainParams::minimap2(15.0)
    };
    let anchors: Vec<gendp::seq::Anchor> = {
        // Sorted synthetic anchors, the shape `verify_sweep` sizes for.
        let mut pos = 0;
        (0..30)
            .map(|_| {
                pos += rng.gen_range(1..6);
                gendp::seq::Anchor {
                    qpos: pos,
                    rpos: pos + rng.gen_range(0..3),
                    span: 15,
                }
            })
            .collect()
    };
    let chain_task = ChainTask {
        anchors: &anchors,
        n_pes,
    };
    assert_engines_agree("chain", || GendpPipeline::chain(params), &chain_task);

    let truth = DnaSeq::random(30, &mut rng);
    let mut poa = Poa::new();
    poa.add_sequence(&truth, &Scoring::racon());
    poa.add_sequence(
        &MutationProfile::nanopore().apply(&truth, &mut rng),
        &Scoring::racon(),
    );
    let probe = MutationProfile::nanopore().apply(&truth, &mut rng);
    let poa_task = PoaTask {
        graph: &poa,
        seq: &probe,
        n_pes: 4,
    };
    assert_engines_agree("poa", || GendpPipeline::poa(Scoring::racon()), &poa_task);

    let g = random_roadmap(20, 2, 5, &mut rng);
    let bf_task = BellmanFordTask {
        graph: &g,
        source: 0,
        rounds: g.vertex_count() - 1,
    };
    assert_engines_agree("bellman_ford", GendpPipeline::bellman_ford, &bf_task);
}
