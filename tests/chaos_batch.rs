//! Chaos stress tests: a 1000-task mixed batch with ~5% injected faults
//! of every kind (deadlocks, timeouts, bad accesses, worker panics) must
//! drain under every dispatch policy and worker count, produce values
//! byte-identical to the fault-free run for every task that completes,
//! and fingerprint identically across placements — fault decisions are a
//! pure function of `(seed, task, attempt)`, never of scheduling.

use gendp::kernels::Scoring;
use gendp::runtime::{
    silence_injected_panics, Device, DeviceConfig, DispatchPolicy, FaultConfig, RetryPolicy, Task,
    TaskValue,
};
use gendp::seq::DnaSeq;
use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Environment-tunable batch size so CI can crank the stress up; the
/// default keeps debug-mode test time reasonable.
fn stress_tasks() -> usize {
    std::env::var("GENDP_CHAOS_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

/// A deterministic mixed batch interleaving four integer-array kernels.
fn mixed_batch(n: usize, seed: u64) -> Vec<Task> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| match i % 4 {
            0 => Task::bsw_local(
                DnaSeq::random(8 + i % 6, &mut rng),
                DnaSeq::random(10 + i % 5, &mut rng),
                Scoring::bwa_mem(),
            ),
            1 => Task::dtw(
                (0..6 + i % 5).map(|_| rng.gen_range(0..400)).collect(),
                (0..7 + i % 4).map(|_| rng.gen_range(0..400)).collect(),
            ),
            2 => Task::bsw_global(
                DnaSeq::random(7 + i % 4, &mut rng),
                DnaSeq::random(7 + i % 4, &mut rng),
                Scoring::bwa_mem(),
            ),
            _ => Task::dtw(
                (0..5 + i % 3).map(|_| rng.gen_range(0..200)).collect(),
                (0..5 + i % 6).map(|_| rng.gen_range(0..200)).collect(),
            ),
        })
        .collect()
}

fn device(workers: usize, policy: DispatchPolicy, fault: Option<FaultConfig>) -> Device {
    Device::new(DeviceConfig {
        int_arrays: 8,
        float_arrays: 0,
        workers,
        policy,
        fault,
        ..DeviceConfig::default()
    })
}

#[test]
fn five_percent_chaos_drains_under_every_policy_and_worker_count() {
    silence_injected_panics();
    let n = stress_tasks();
    let fault = FaultConfig::uniform(2023, 50_000); // 5% of attempts
    let reference: Vec<TaskValue> = device(2, DispatchPolicy::RoundRobin, None)
        .run_batch(mixed_batch(n, 51))
        .expect("fault-free reference")
        .into_strict()
        .expect("fault-free runs never fail")
        .results
        .into_iter()
        .map(|r| r.value)
        .collect();

    let mut fingerprints = Vec::new();
    for policy in DispatchPolicy::ALL {
        for workers in [1, 2, 8] {
            let outcome = device(workers, policy, Some(fault))
                .run_batch(mixed_batch(n, 51))
                .expect("chaos batch");
            assert_eq!(outcome.results.len(), n, "{policy:?} x{workers}");
            let recovery = outcome.report.recovery;
            assert!(recovery.faults_injected > 0, "{policy:?} x{workers}");
            assert!(recovery.retries > 0, "{policy:?} x{workers}");
            assert!(recovery.panics_contained > 0, "{policy:?} x{workers}");
            // With 5% faults and 3 attempts the expected loss is
            // ~n * 0.05^3; the batch must overwhelmingly survive.
            assert!(
                outcome.completed() >= n - n / 100,
                "{policy:?} x{workers}: only {} of {n} completed",
                outcome.completed()
            );
            // A task that failed spent every allowed attempt doing so.
            let max_attempts = RetryPolicy::default().max_attempts;
            for (id, failure) in outcome.failures() {
                assert_eq!(failure.attempts(), max_attempts, "task {id}");
            }
            // Injection fakes errors, it never corrupts results: every
            // completed task equals the fault-free run byte-for-byte.
            for r in outcome.ok_results() {
                assert_eq!(r.value, reference[r.id], "task {} {policy:?}", r.id);
            }
            fingerprints.push((policy, workers, outcome.fingerprint()));
        }
    }
    // The same fault seed replays identically at any worker count and
    // under any dispatch policy.
    let (_, _, first) = &fingerprints[0];
    for (policy, workers, fp) in &fingerprints {
        assert_eq!(
            fp, first,
            "fingerprint diverged under {policy:?} x{workers}"
        );
    }
}

#[test]
fn quarantining_all_but_one_int_array_still_drains_the_batch() {
    let n = 200;
    // Slots 1..8 permanently broken; only slot 0 works.
    let fault = FaultConfig {
        broken_slots: 0b1111_1110,
        ..FaultConfig::disabled(77)
    };
    let reference: Vec<TaskValue> = device(2, DispatchPolicy::RoundRobin, None)
        .run_batch(mixed_batch(n, 52))
        .expect("reference")
        .into_strict()
        .expect("clean run")
        .results
        .into_iter()
        .map(|r| r.value)
        .collect();
    for policy in DispatchPolicy::ALL {
        let mut dev = Device::new(DeviceConfig {
            int_arrays: 8,
            float_arrays: 0,
            workers: 4,
            policy,
            retry: RetryPolicy {
                max_attempts: 10,
                quarantine_after: 2,
                ..RetryPolicy::default()
            },
            fault: Some(fault),
            ..DeviceConfig::default()
        });
        let outcome = dev.run_batch(mixed_batch(n, 52)).expect("chaos batch");
        assert!(
            outcome.is_complete(),
            "{policy:?}: {} of {n} tasks failed",
            outcome.failed()
        );
        for r in outcome.ok_results() {
            assert_eq!(r.value, reference[r.id], "task {} {policy:?}", r.id);
        }
        let report = &outcome.report;
        assert_eq!(
            report.arrays.iter().filter(|a| a.quarantined).count(),
            7,
            "{policy:?}: every broken slot must go offline"
        );
        assert!(!report.arrays[0].quarantined, "{policy:?}");
        assert_eq!(report.recovery.quarantined_arrays, 7, "{policy:?}");
        // Once quarantine converges, the whole batch drains through the
        // single healthy array.
        assert_eq!(report.arrays[0].tasks, n, "{policy:?}");
    }
}

#[test]
fn disabled_injection_is_byte_identical_to_no_injection() {
    let n = 150;
    let plain = device(3, DispatchPolicy::ShortestQueue, None)
        .run_batch(mixed_batch(n, 53))
        .expect("plain batch");
    let disabled = device(
        3,
        DispatchPolicy::ShortestQueue,
        Some(FaultConfig::disabled(99)),
    )
    .run_batch(mixed_batch(n, 53))
    .expect("disabled-injection batch");
    assert!(plain.report.recovery.is_clean());
    assert!(disabled.report.recovery.is_clean());
    assert_eq!(plain.fingerprint(), disabled.fingerprint());
    assert!(plain.is_complete() && disabled.is_complete());
    for r in plain.ok_results() {
        assert_eq!(r.attempts, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For arbitrary fault seeds, the same plan replays byte-identically
    /// across worker counts and policies on a smaller batch.
    #[test]
    fn fault_plans_replay_identically_across_placements(seed in 0u64..1_000_000) {
        silence_injected_panics();
        let fault = FaultConfig::uniform(seed, 120_000);
        let tasks = 48;
        let fingerprint = |workers: usize, policy: DispatchPolicy| {
            device(workers, policy, Some(fault))
                .run_batch(mixed_batch(tasks, seed ^ 0xABCD))
                .expect("batch")
                .fingerprint()
        };
        let base = fingerprint(1, DispatchPolicy::RoundRobin);
        prop_assert_eq!(&fingerprint(2, DispatchPolicy::ShortestQueue), &base);
        prop_assert_eq!(&fingerprint(8, DispatchPolicy::WorkStealing), &base);
    }
}
