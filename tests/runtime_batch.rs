//! Device-level batch execution equals sequential pipeline execution:
//! for a mixed batch of BSW and DTW tasks, every dispatch policy and
//! worker count must reproduce the sequential scores byte-for-byte and
//! spend the identical number of simulated cycles on each task
//! (placement changes wall-clock, never simulated results).

use gendp::core::{bsw_score, GendpPipeline};
use gendp::kernels::Scoring;
use gendp::runtime::{BatchAligner, Device, DeviceConfig, DispatchPolicy, Task, TaskValue};
use gendp::seq::{DnaSeq, Genome, ShortReadProfile};
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn codes(s: &DnaSeq) -> Vec<i32> {
    s.codes().iter().map(|&c| c as i32).collect()
}

/// A deterministic batch of 100 interleaved BSW and DTW tasks.
fn mixed_batch() -> Vec<Task> {
    let mut rng = SmallRng::seed_from_u64(41);
    (0..100)
        .map(|i| {
            if i % 2 == 0 {
                Task::bsw_local(
                    DnaSeq::random(8 + i % 6, &mut rng),
                    DnaSeq::random(10 + i % 5, &mut rng),
                    Scoring::bwa_mem(),
                )
            } else {
                Task::dtw(
                    (0..6 + i % 5).map(|_| rng.gen_range(0..400)).collect(),
                    (0..7 + i % 4).map(|_| rng.gen_range(0..400)).collect(),
                )
            }
        })
        .collect()
}

/// Runs the batch sequentially through `GendpPipeline`, one task at a
/// time on one array, and returns (value, simulated cycles) per task.
fn sequential_reference(tasks: &[Task]) -> Vec<(TaskValue, u64)> {
    tasks
        .iter()
        .map(|task| match task {
            Task::Bsw {
                query,
                target,
                scoring,
                ..
            } => {
                let out = GendpPipeline::bsw(scoring)
                    .run(&codes(target), &codes(query), 4)
                    .expect("sequential bsw");
                (TaskValue::Score(bsw_score(&out)), out.stats.cycles)
            }
            Task::Dtw { xs, ys } => {
                let out = GendpPipeline::dtw().run(xs, ys, 4).expect("sequential dtw");
                let d = *out.last_row["d"].last().expect("corner") as i64;
                (TaskValue::Distance(d), out.stats.cycles)
            }
            other => unreachable!("unexpected task in batch: {other:?}"),
        })
        .collect()
}

#[test]
fn batch_equals_sequential_under_every_policy_and_worker_count() {
    let reference = sequential_reference(&mixed_batch());
    for policy in DispatchPolicy::ALL {
        for workers in [1, 2, 8] {
            let mut device = Device::new(DeviceConfig {
                int_arrays: 8,
                float_arrays: 0,
                workers,
                policy,
                ..DeviceConfig::default()
            });
            let batch = device
                .run_batch(mixed_batch())
                .expect("batch run")
                .into_strict()
                .expect("no task failures");
            assert_eq!(batch.results.len(), reference.len());
            for (r, (value, cycles)) in batch.results.iter().zip(&reference) {
                assert_eq!(
                    &r.value, value,
                    "task {} value under {policy:?} x{workers}",
                    r.id
                );
                assert_eq!(
                    r.stats.cycles, *cycles,
                    "task {} cycles under {policy:?} x{workers}",
                    r.id
                );
            }
            // Total simulated work is placement-independent too.
            let total: u64 = batch.results.iter().map(|r| r.stats.cycles).sum();
            let expect: u64 = reference.iter().map(|(_, c)| c).sum();
            assert_eq!(total, expect, "{policy:?} x{workers}");
            assert_eq!(batch.report.tasks(), reference.len());
            // No fault injection, no failures: the zero-fault fast path
            // must report pristine recovery counters.
            assert!(
                batch.report.recovery.is_clean(),
                "{policy:?} x{workers}: {:?}",
                batch.report.recovery
            );
        }
    }
}

#[test]
fn preflight_rejects_invalid_tasks_and_the_rest_complete() {
    use gendp::dpax::SimError;
    use gendp::runtime::TaskFailure;

    let mut tasks = mixed_batch();
    tasks.truncate(6);
    // An empty DTW signal can never execute; preflight verification must
    // reject it before it reaches an array.
    tasks.insert(3, Task::dtw(vec![], (0..5).collect()));
    let mut device = Device::new(DeviceConfig {
        int_arrays: 2,
        float_arrays: 0,
        workers: 2,
        ..DeviceConfig::default()
    });
    let outcome = device.run_batch(tasks).expect("batch run");
    assert_eq!(outcome.completed(), 6);
    assert_eq!(outcome.failed(), 1);
    match &outcome.results[3] {
        Err(TaskFailure::Sim {
            error: SimError::Verify(report),
            attempts,
        }) => {
            // Rejected up front: zero execution attempts were spent.
            assert_eq!(*attempts, 0);
            assert!(report.has_errors());
        }
        other => panic!("expected a verify rejection, got {other:?}"),
    }
    // The rejection is counted, so the recovery report is not clean.
    assert_eq!(outcome.report.recovery.tasks_failed, 1);
}

#[test]
fn device_report_agrees_with_core_tile_scheduling() {
    let mut device = Device::new(DeviceConfig {
        int_arrays: 4,
        float_arrays: 0,
        workers: 2,
        policy: DispatchPolicy::ShortestQueue,
        ..DeviceConfig::default()
    });
    let batch = device
        .run_batch(mixed_batch())
        .expect("batch run")
        .into_strict()
        .expect("no task failures");
    let tile = batch.report.tile_report();
    // The runtime's tile view is built by the same constructor
    // `schedule_tile` uses, so the derived metrics are consistent.
    assert_eq!(tile.tasks, 100);
    assert_eq!(tile.makespan_cycles, batch.report.makespan_cycles());
    assert_eq!(tile.total_cells, batch.report.total_cells());
    assert!(tile.balance() > 0.0 && tile.balance() <= 1.0);
    assert!(batch.report.gcups() > 0.0);
    // Every array was busy at some point under shortest-queue on 100 tasks.
    assert!(batch.report.arrays.iter().all(|a| a.tasks > 0));
}

#[test]
fn batch_aligner_matches_per_read_pipeline() {
    let mut rng = SmallRng::seed_from_u64(43);
    let genome = Genome::random(600, &mut rng);
    let profile = ShortReadProfile {
        len: 20,
        ..ShortReadProfile::illumina()
    };
    let reads = profile.sample(&genome, 16, &mut rng);
    let aligner = BatchAligner::new(
        genome.clone(),
        Scoring::bwa_mem(),
        DeviceConfig {
            int_arrays: 4,
            float_arrays: 0,
            workers: 4,
            policy: DispatchPolicy::WorkStealing,
            ..DeviceConfig::default()
        },
    );
    let aligned = aligner.align(&reads).expect("batch alignment");
    let scoring = Scoring::bwa_mem();
    for (read, got) in reads.iter().zip(&aligned.scores) {
        let want = read.seq.len() + 8;
        let start = read.true_pos.min(genome.len().saturating_sub(want));
        let window = genome.window(start, want.min(genome.len() - start));
        let out = GendpPipeline::bsw(&scoring)
            .run(&codes(&window), &codes(&read.seq), 4)
            .expect("sequential");
        assert_eq!(*got, bsw_score(&out));
    }
}
