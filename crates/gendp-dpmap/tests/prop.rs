//! Property tests: DPMap invariants on randomly generated data-flow graphs.
//!
//! The central property is *semantic equivalence*: for any valid DFG and any
//! inputs, the VLIW program DPMap generates computes exactly what the DFG
//! reference evaluator computes.

use gendp_dfg::{Dfg, Input};
use gendp_dpmap::{analyze_tree_depth, map_dfg, SubgraphShape};
use gendp_isa::{ComputeOp, Luts, Mode};
use proptest::prelude::*;

/// Recipe for one random node: (op selector, operand selectors).
#[derive(Debug, Clone)]
struct NodeRecipe {
    op_sel: u8,
    in_sel: [u16; 4],
}

#[derive(Debug, Clone)]
struct GraphRecipe {
    n_ext: usize,
    nodes: Vec<NodeRecipe>,
    ext_vals: Vec<i32>,
}

fn recipe_strategy() -> impl Strategy<Value = GraphRecipe> {
    (2usize..5)
        .prop_flat_map(|n_ext| {
            (
                Just(n_ext),
                prop::collection::vec((0u8..13, prop::array::uniform4(0u16..1000)), 1..24),
                prop::collection::vec(-1000i32..1000, n_ext),
            )
        })
        .prop_map(|(n_ext, raw, ext_vals)| GraphRecipe {
            n_ext,
            nodes: raw
                .into_iter()
                .map(|(op_sel, in_sel)| NodeRecipe { op_sel, in_sel })
                .collect(),
            ext_vals,
        })
}

/// Ops safe under arbitrary inputs (no shifts that could overflow UB — all
/// our semantics wrap, so everything is actually safe; Mul kept, LUTs kept).
const OPS: [ComputeOp; 13] = [
    ComputeOp::Add,
    ComputeOp::Sub,
    ComputeOp::Mul,
    ComputeOp::Max,
    ComputeOp::Min,
    ComputeOp::Borrow,
    ComputeOp::Copy,
    ComputeOp::MatchScore,
    ComputeOp::Log2Lut,
    ComputeOp::LogSumLut,
    ComputeOp::SelectGt,
    ComputeOp::SelectEq,
    ComputeOp::Shr16,
];

fn build(recipe: &GraphRecipe) -> Dfg {
    let mut g = Dfg::new("random");
    let exts: Vec<Input> = (0..recipe.n_ext).map(|i| g.ext(&format!("x{i}"))).collect();
    let mut pool: Vec<Input> = exts;
    for r in &recipe.nodes {
        let op = OPS[r.op_sel as usize % OPS.len()];
        let ins: Vec<Input> = (0..op.arity())
            .map(|k| {
                let sel = r.in_sel[k] as usize % (pool.len() + 1);
                if sel == pool.len() {
                    g.imm((r.in_sel[k] as i32) - 500)
                } else {
                    pool[sel]
                }
            })
            .collect();
        let out = g.node(op, &ins);
        pool.push(out);
    }
    // The most recent nodes become outputs (up to three).
    let node_inputs: Vec<Input> = pool
        .iter()
        .rev()
        .filter(|i| matches!(i, Input::Node(_)))
        .take(3)
        .copied()
        .collect();
    for (k, n) in node_inputs.iter().enumerate() {
        g.set_output(&format!("o{k}"), *n);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The generated VLIW program is semantically identical to the DFG.
    #[test]
    fn mapping_matches_reference_evaluation(recipe in recipe_strategy()) {
        let g = build(&recipe);
        prop_assume!(g.outputs().count() > 0);
        let luts = Luts::with_scores(2, -3);
        let inputs: Vec<(String, i32)> = recipe
            .ext_vals
            .iter()
            .enumerate()
            .map(|(i, v)| (format!("x{i}"), *v))
            .collect();
        let named: Vec<(&str, i32)> =
            inputs.iter().map(|(n, v)| (n.as_str(), *v)).collect();
        let expect = g.eval_i32(&named, Mode::Int32, &luts).unwrap();
        let mapping = map_dfg(&g);
        let got = mapping.run_i32(&named, Mode::Int32, &luts);
        prop_assert_eq!(got, expect);
    }

    /// Structural invariants of the partition: every subgraph fits a CU.
    #[test]
    fn subgraphs_fit_compute_units(recipe in recipe_strategy()) {
        let g = build(&recipe);
        prop_assume!(g.outputs().count() > 0);
        let mapping = map_dfg(&g);
        for sg in &mapping.subgraphs {
            match sg.shape {
                SubgraphShape::Mul => {
                    prop_assert!(sg.narrow.is_none() && sg.root.is_none());
                }
                SubgraphShape::Single => {
                    prop_assert!(sg.narrow.is_none() && sg.root.is_none());
                }
                SubgraphShape::Pair => {
                    prop_assert!(sg.narrow.is_none() && sg.root.is_some());
                }
                SubgraphShape::Triple => {
                    prop_assert!(sg.narrow.is_some() && sg.root.is_some());
                }
            }
            prop_assert!(sg.op_count() <= 3);
        }
    }

    /// Scheduling never uses more cycles than subgraphs and never fewer
    /// than `ceil(subgraphs / 2)`.
    #[test]
    fn schedule_bounds(recipe in recipe_strategy()) {
        let g = build(&recipe);
        prop_assume!(g.outputs().count() > 0);
        let m = map_dfg(&g);
        let n = m.subgraphs.len();
        prop_assert!(m.program.len() >= n.div_ceil(2));
        prop_assert!(m.program.len() <= n.max(1));
    }

    /// The tree-depth ablation is monotone: deeper trees never increase the
    /// number of register-file writes.
    #[test]
    fn tree_depth_monotone_rf_writes(recipe in recipe_strategy()) {
        let g = build(&recipe);
        prop_assume!(g.outputs().count() > 0);
        let l1 = analyze_tree_depth(&g, 1);
        let l3 = analyze_tree_depth(&g, 3);
        prop_assert!(l1.rf_writes >= l3.rf_writes);
        prop_assert!(l1.rf_writes == l1.work_nodes);
    }
}

#[test]
fn mapping_display_is_complete() {
    let mut g = Dfg::new("disp");
    let a = g.ext("alpha");
    let b = g.ext("beta");
    let s = g.add(a, b);
    let t = g.max(s, a);
    g.set_output("omega", t);
    let m = map_dfg(&g);
    let text = m.to_string();
    assert!(text.contains("alpha"));
    assert!(text.contains("omega"));
    assert!(text.contains("VLIW cycles"));
    assert!(text.contains("add"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Float-mode equivalence: mapped programs reproduce the DFG bit for
    /// bit in f32 too (the FP PE array path). Dataflow order is preserved
    /// by the scheduler, so results are exactly equal despite f32
    /// non-associativity.
    #[test]
    fn mapping_matches_reference_in_f32(
        raw in prop::collection::vec((0u8..5, prop::array::uniform2(0u16..100)), 1..16),
        vals in prop::collection::vec(-100i32..100, 3),
    ) {
        use gendp_isa::Word;
        const FOPS: [ComputeOp; 5] = [
            ComputeOp::Add,
            ComputeOp::Sub,
            ComputeOp::Mul,
            ComputeOp::Max,
            ComputeOp::Min,
        ];
        let mut g = Dfg::new("random-f32");
        let mut pool: Vec<Input> = (0..3).map(|i| g.ext(&format!("x{i}"))).collect();
        for (sel, ins) in raw {
            let op = FOPS[sel as usize % FOPS.len()];
            let operands: Vec<Input> = (0..2)
                .map(|k| pool[ins[k] as usize % pool.len()])
                .collect();
            pool.push(g.node(op, &operands));
        }
        let last = *pool.iter().rev().find(|i| matches!(i, Input::Node(_)))
            .unwrap_or(&pool[0]);
        prop_assume!(matches!(last, Input::Node(_)));
        g.set_output("o", last);

        let luts = Luts::default();
        let inputs: Vec<(String, Word)> = vals
            .iter()
            .enumerate()
            .map(|(i, v)| (format!("x{i}"), Word::from_f32(*v as f32 * 0.37)))
            .collect();
        let named: Vec<(&str, Word)> =
            inputs.iter().map(|(n, w)| (n.as_str(), *w)).collect();
        let expect = g.eval(&named, Mode::Float32, &luts).unwrap();
        let mapping = map_dfg(&g);
        let got = mapping.run(&named, Mode::Float32, &luts);
        prop_assert_eq!(got, expect);
    }
}
