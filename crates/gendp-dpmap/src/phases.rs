//! The three DPMap phases (paper Algorithms 1–3).

use gendp_isa::ComputeOp;

use crate::work::WorkGraph;

/// **Partitioning** (Algorithm 1): extracts nodes destined for the 4-input
/// ALU and the multiplier.
///
/// * Multiplication nodes lose both input and output edges — the multiplier
///   is a whole compute unit by itself.
/// * Wide operations (conditional selects and lookup tables) lose their
///   input edges. A wide node with several children keeps its edge to a
///   subtracting child (non-commutative) but is *replicated* for children
///   with commutative operations, trading one extra ALU slot for a
///   register-file round trip.
pub fn partitioning(wg: &mut WorkGraph) {
    // Snapshot the node count: replicas appended during the loop are copies
    // of already-processed wide nodes and need no re-processing (their
    // inputs are already cut and they have exactly one child).
    let n = wg.len();
    for v in 0..n {
        let op = wg.op(v);
        if op.is_mul() {
            wg.cut_inputs(v);
            wg.cut_outputs(v);
        } else if op.is_wide() {
            wg.cut_inputs(v);
            let children = wg.intact_children(v);
            if children.len() > 1 {
                // The first commutative child keeps the original node; each
                // further one gets a replica (Fig. 9(b): one comp node
                // becomes two, one per child).
                let mut original_kept = false;
                for c in children {
                    if wg.op(c) == ComputeOp::Sub {
                        wg.cut_edge(v, c);
                    } else if original_kept {
                        wg.replicate_for(v, c);
                    } else {
                        original_kept = true;
                    }
                }
            }
        }
    }
}

/// **Seeding** (Algorithm 2): finds roots for the 2-level reduction tree.
///
/// A node with two intact parents becomes a *seed*: its output edges are
/// cut (the root ALU writes the register file) and its parents' inputs are
/// cut (first-level ALUs read the register file). Independently, every node
/// with more than one intact child is detached from its children because
/// its value must be stored to the register file anyway.
pub fn seeding(wg: &mut WorkGraph) {
    for v in 0..wg.len() {
        let parents = wg.intact_parents(v);
        if parents.len() == 2 {
            wg.cut_outputs(v);
            for p in parents {
                wg.cut_inputs(p);
            }
        }
        if wg.intact_children(v).len() > 1 {
            wg.cut_outputs(v);
        }
    }
    legalize(wg);
}

/// **Refinement** (Algorithm 3): traverses the graph in reverse order and
/// pairs the remaining single-parent/single-child chains two nodes at a
/// time by cutting the grandparent edge.
pub fn refinement(wg: &mut WorkGraph) {
    for v in (0..wg.len()).rev() {
        for p in wg.intact_parents(v) {
            if !wg.intact_parents(p).is_empty() {
                wg.cut_inputs(p);
            }
        }
    }
    legalize(wg);
}

/// Hardware legality fix-up, iterated to a fixed point.
///
/// The paper's algorithms leave a few compute-unit constraints implicit; we
/// resolve each violation by cutting an edge (one extra register-file round
/// trip):
///
/// 1. duplicate intact edges from one parent cannot both stay inside the
///    tree (the root's two inputs are wired to the two first-level ALUs);
/// 2. only one first-level ALU is 4-input, so at most one wide parent stays;
/// 3. for a non-commutative root the wide parent must be the *first*
///    operand (the wide ALU feeds the root's `in[0]`);
/// 4. a first-level ALU output cannot reach the register file, so a node
///    whose value is also consumed through a cut edge (or is a named DFG
///    output) must be the root of its own subgraph.
fn legalize(wg: &mut WorkGraph) {
    loop {
        let mut changed = false;
        for v in 0..wg.len() {
            // Rule 1: duplicate edges from the same parent.
            let parents = wg.intact_parents(v);
            for p in &parents {
                let dup = wg
                    .ins(v)
                    .iter()
                    .filter(|w| **w == crate::work::WorkIn::Edge(*p))
                    .count();
                if dup > 1 {
                    wg.cut_edge(*p, v);
                    changed = true;
                }
            }
            // Rules 2 and 3 in operand order.
            let prods = wg.intact_edge_producers(v);
            match prods.len() {
                2 => {
                    let (p0, p1) = (prods[0], prods[1]);
                    // Two wide leaves, or a wide leaf stuck in the second
                    // operand of a non-commutative root: cut the second.
                    let both_wide = wg.op(p0).is_wide() && wg.op(p1).is_wide();
                    let misplaced_wide = wg.op(p1).is_wide() && !wg.op(v).is_commutative();
                    if both_wide || misplaced_wide {
                        wg.cut_edge(p1, v);
                        changed = true;
                    }
                }
                1 => {
                    // A pair whose leaf sits in the root's second operand:
                    // fine if the root is commutative (swap) or the leaf can
                    // use the narrow slot; a wide leaf cannot.
                    let p = prods[0];
                    let pos = wg
                        .ins(v)
                        .iter()
                        .position(|w| *w == crate::work::WorkIn::Edge(p))
                        .expect("edge exists");
                    if pos == 1 && !wg.op(v).is_commutative() && wg.op(p).is_wide() {
                        wg.cut_edge(p, v);
                        changed = true;
                    }
                }
                _ => {}
            }
            // Rule 4: leaves must not need a register-file write.
            if !wg.intact_children(v).is_empty() && (wg.has_cut_consumer(v) || wg.is_output(v)) {
                wg.cut_outputs(v);
                changed = true;
            }
        }
        if !changed {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::{WorkGraph, WorkIn};
    use gendp_dfg::Dfg;

    /// The BSW-like example of paper Fig. 9: a comparison feeding two
    /// commutative children is replicated.
    #[test]
    fn partitioning_replicates_wide_nodes_with_commutative_children() {
        let mut g = Dfg::new("fig9");
        let a = g.ext("a");
        let b = g.ext("b");
        let cmp = g.select_gt(a, b, a, b); // v0, wide
        let m1 = g.max(cmp, a); // v1
        let m2 = g.max(cmp, b); // v2
        g.set_output("m1", m1);
        g.set_output("m2", m2);
        let mut wg = WorkGraph::from_dfg(&g);
        partitioning(&mut wg);
        // v0 replicated: 4 nodes now; each max keeps one intact wide parent.
        assert_eq!(wg.len(), 4);
        assert_eq!(wg.intact_parents(1).len(), 1);
        assert_eq!(wg.intact_parents(2).len(), 1);
        assert_ne!(wg.intact_parents(1), wg.intact_parents(2));
    }

    #[test]
    fn partitioning_keeps_edge_to_subtraction_child() {
        let mut g = Dfg::new("sub-child");
        let a = g.ext("a");
        let b = g.ext("b");
        let cmp = g.select_gt(a, b, a, b); // v0
        let s = g.sub(cmp, a); // v1 (non-commutative)
        let m = g.max(cmp, b); // v2 (commutative)
        g.set_output("s", s);
        g.set_output("m", m);
        let mut wg = WorkGraph::from_dfg(&g);
        partitioning(&mut wg);
        // Subtraction child loses the edge; max child gets a replica.
        assert!(wg.intact_parents(1).is_empty());
        assert_eq!(wg.intact_parents(2).len(), 1);
    }

    #[test]
    fn partitioning_isolates_multiplication() {
        let mut g = Dfg::new("mul");
        let a = g.ext("a");
        let b = g.ext("b");
        let p = g.mul(a, b); // v0
        let q = g.add(p, a); // v1
        g.set_output("q", q);
        let mut wg = WorkGraph::from_dfg(&g);
        partitioning(&mut wg);
        assert_eq!(wg.intact_edge_count(), 0);
        assert!(wg.has_cut_consumer(0));
    }

    #[test]
    fn seeding_groups_two_parent_nodes() {
        // d = (a+b) max (b+c): the max is a seed, the adds its first level.
        let mut g = Dfg::new("seed");
        let a = g.ext("a");
        let b = g.ext("b");
        let c = g.ext("c");
        let s1 = g.add(a, b); // v0
        let s2 = g.add(b, c); // v1
        let m = g.max(s1, s2); // v2 (seed)
        let out = g.add(m, a); // v3: consumer of the seed
        g.set_output("o", out);
        let mut wg = WorkGraph::from_dfg(&g);
        partitioning(&mut wg);
        seeding(&mut wg);
        // Seed keeps both parent edges; its own output edge is cut.
        assert_eq!(wg.intact_parents(2).len(), 2);
        assert!(matches!(wg.ins(3)[0], WorkIn::Cut(2)));
    }

    #[test]
    fn seeding_detaches_multi_child_nodes() {
        let mut g = Dfg::new("fanout");
        let a = g.ext("a");
        let b = g.ext("b");
        let s = g.add(a, b); // v0 feeds two children
        let x = g.add(s, a); // v1
        let y = g.add(s, b); // v2
        g.set_output("x", x);
        g.set_output("y", y);
        let mut wg = WorkGraph::from_dfg(&g);
        partitioning(&mut wg);
        seeding(&mut wg);
        assert!(wg.intact_children(0).is_empty());
    }

    #[test]
    fn refinement_pairs_chains_from_the_end() {
        let mut g = Dfg::new("chain4");
        let x = g.ext("x");
        let one = g.imm(1);
        let a = g.add(x, one); // v0
        let b = g.add(a, one); // v1
        let c = g.add(b, one); // v2
        let d = g.add(c, one); // v3
        g.set_output("o", d);
        let mut wg = WorkGraph::from_dfg(&g);
        partitioning(&mut wg);
        seeding(&mut wg);
        refinement(&mut wg);
        // Pairs {v0,v1} and {v2,v3}: edge v1->v2 cut, others intact.
        assert_eq!(wg.intact_parents(1), vec![0]);
        assert!(wg.intact_parents(2).is_empty());
        assert_eq!(wg.intact_parents(3), vec![2]);
    }

    #[test]
    fn all_phases_leave_components_of_at_most_three() {
        // A denser graph mixing op classes.
        let mut g = Dfg::new("dense");
        let a = g.ext("a");
        let b = g.ext("b");
        let c = g.ext("c");
        let s = g.match_score(a, b);
        let t = g.add(s, c);
        let u = g.sub(t, a);
        let v = g.max(u, b);
        let w = g.mul(v, c);
        let x = g.add(w, t);
        let y = g.min(x, v);
        let z = g.max(y, a);
        g.set_output("z", z);
        let mut wg = WorkGraph::from_dfg(&g);
        partitioning(&mut wg);
        seeding(&mut wg);
        refinement(&mut wg);
        // Every node has at most one intact parent or one intact child, and
        // intact in-degree + chain depth fits the 2-level tree.
        for v in 0..wg.len() {
            let parents = wg.intact_parents(v);
            assert!(parents.len() <= 2, "node {v} has {} parents", parents.len());
            if parents.len() == 2 {
                for p in parents {
                    assert!(
                        wg.intact_parents(p).is_empty(),
                        "seed parent {p} must be a leaf"
                    );
                }
            }
            assert!(wg.intact_children(v).len() <= 1);
        }
    }
}
