use gendp_dfg::{Dfg, Input, NodeId};
use gendp_isa::{ComputeOp, Word};

/// An operand of a [`WorkGraph`] node.
///
/// DPMap turns intact operator-to-operator edges ([`WorkIn::Edge`]) into cut
/// edges ([`WorkIn::Cut`]); a cut edge means the value travels through the
/// register file instead of staying inside a compute unit.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum WorkIn {
    /// Intact edge from another work node (value stays inside the CU).
    Edge(usize),
    /// Cut edge: the producer's result is written to, and read back from,
    /// the register file.
    Cut(usize),
    /// Named external input (register-file read).
    Ext(usize),
    /// Immediate constant.
    Const(Word),
}

impl WorkIn {
    /// The producing work node for edge-like operands.
    pub fn producer(self) -> Option<usize> {
        match self {
            WorkIn::Edge(p) | WorkIn::Cut(p) => Some(p),
            _ => None,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct WorkNode {
    pub op: ComputeOp,
    pub ins: Vec<WorkIn>,
    /// The original DFG node this (possibly replicated) node computes.
    pub orig: NodeId,
}

/// The mutable graph DPMap's phases operate on.
///
/// Starts as a copy of the [`Dfg`] with every operator-to-operator edge
/// intact; the phases cut edges and replicate nodes. Node indices stay
/// topologically ordered (replicas are appended but only ever feed existing
/// consumers, so traversals use explicit orderings).
#[derive(Debug, Clone)]
pub struct WorkGraph {
    pub(crate) nodes: Vec<WorkNode>,
    /// Primary work nodes whose value is a named DFG output (their results
    /// must reach the register file).
    pub(crate) output_nodes: Vec<usize>,
}

impl WorkGraph {
    /// Copies a DFG into working form with all edges intact.
    pub fn from_dfg(dfg: &Dfg) -> Self {
        let nodes = dfg
            .node_ids()
            .map(|id| WorkNode {
                op: dfg.op(id),
                ins: dfg
                    .inputs(id)
                    .iter()
                    .map(|inp| match *inp {
                        Input::Node(p) => WorkIn::Edge(p.0),
                        Input::Ext(e) => WorkIn::Ext(e),
                        Input::Const(w) => WorkIn::Const(w),
                    })
                    .collect(),
                orig: id,
            })
            .collect();
        let mut output_nodes: Vec<usize> = dfg.outputs().map(|(_, id)| id.0).collect();
        output_nodes.sort_unstable();
        output_nodes.dedup();
        WorkGraph {
            nodes,
            output_nodes,
        }
    }

    /// True if node `i` is the primary node of a named DFG output.
    pub fn is_output(&self, i: usize) -> bool {
        self.output_nodes.contains(&i)
    }

    /// Number of work nodes (grows when partitioning replicates nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The operator of work node `i`.
    pub fn op(&self, i: usize) -> ComputeOp {
        self.nodes[i].op
    }

    /// The original DFG node computed by work node `i`.
    pub fn orig(&self, i: usize) -> NodeId {
        self.nodes[i].orig
    }

    /// The operands of work node `i`.
    pub fn ins(&self, i: usize) -> &[WorkIn] {
        &self.nodes[i].ins
    }

    /// Distinct intact parents of node `i`.
    pub fn intact_parents(&self, i: usize) -> Vec<usize> {
        let mut out: Vec<usize> = self.nodes[i]
            .ins
            .iter()
            .filter_map(|w| match w {
                WorkIn::Edge(p) => Some(*p),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Producers of node `i`'s intact edges in operand order (with
    /// multiplicity), used for operand wiring inside a compute unit.
    pub fn intact_edge_producers(&self, i: usize) -> Vec<usize> {
        self.nodes[i]
            .ins
            .iter()
            .filter_map(|w| match w {
                WorkIn::Edge(p) => Some(*p),
                _ => None,
            })
            .collect()
    }

    /// Distinct intact children of node `i`.
    pub fn intact_children(&self, i: usize) -> Vec<usize> {
        let mut out = Vec::new();
        for (c, n) in self.nodes.iter().enumerate() {
            if n.ins.contains(&WorkIn::Edge(i)) {
                out.push(c);
            }
        }
        out
    }

    /// Cuts every intact input edge of node `i`.
    pub fn cut_inputs(&mut self, i: usize) {
        for w in &mut self.nodes[i].ins {
            if let WorkIn::Edge(p) = *w {
                *w = WorkIn::Cut(p);
            }
        }
    }

    /// Cuts every intact output edge of node `i`.
    pub fn cut_outputs(&mut self, i: usize) {
        for n in &mut self.nodes {
            for w in &mut n.ins {
                if *w == WorkIn::Edge(i) {
                    *w = WorkIn::Cut(i);
                }
            }
        }
    }

    /// Cuts the specific edges from `parent` feeding `child`.
    pub fn cut_edge(&mut self, parent: usize, child: usize) {
        for w in &mut self.nodes[child].ins {
            if *w == WorkIn::Edge(parent) {
                *w = WorkIn::Cut(parent);
            }
        }
    }

    /// Replicates node `i` for the exclusive use of `child`: a fresh copy of
    /// `i` (same op and operands) is appended and `child`'s edges from `i`
    /// are redirected to it (paper Algorithm 1, lines 8–14).
    ///
    /// Returns the replica's index.
    pub fn replicate_for(&mut self, i: usize, child: usize) -> usize {
        let replica = WorkNode {
            op: self.nodes[i].op,
            ins: self.nodes[i].ins.clone(),
            orig: self.nodes[i].orig,
        };
        self.nodes.push(replica);
        let r = self.nodes.len() - 1;
        for w in &mut self.nodes[child].ins {
            if *w == WorkIn::Edge(i) {
                *w = WorkIn::Edge(r);
            }
        }
        r
    }

    /// True if any node consumes `i` through a cut edge (so `i`'s value must
    /// be written to the register file).
    pub fn has_cut_consumer(&self, i: usize) -> bool {
        self.nodes.iter().any(|n| n.ins.contains(&WorkIn::Cut(i)))
    }

    /// Total intact edges remaining (counting multiplicity).
    pub fn intact_edge_count(&self) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| n.ins.iter())
            .filter(|w| matches!(w, WorkIn::Edge(_)))
            .count()
    }

    /// Work-node indices that compute each original node, in index order.
    /// The first entry for an original id is the primary node; later entries
    /// are replicas.
    pub fn nodes_for(&self, orig: NodeId) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].orig == orig)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendp_dfg::Dfg;

    fn chain3() -> (Dfg, WorkGraph) {
        let mut g = Dfg::new("chain");
        let x = g.ext("x");
        let one = g.imm(1);
        let a = g.add(x, one); // v0
        let b = g.add(a, one); // v1
        let c = g.add(b, one); // v2
        g.set_output("o", c);
        let wg = WorkGraph::from_dfg(&g);
        (g, wg)
    }

    #[test]
    fn from_dfg_preserves_structure() {
        let (_, wg) = chain3();
        assert_eq!(wg.len(), 3);
        assert_eq!(wg.intact_edge_count(), 2);
        assert_eq!(wg.intact_parents(1), vec![0]);
        assert_eq!(wg.intact_children(1), vec![2]);
        assert!(wg.intact_parents(0).is_empty());
    }

    #[test]
    fn cut_inputs_and_outputs() {
        let (_, mut wg) = chain3();
        wg.cut_inputs(1);
        assert_eq!(wg.intact_edge_count(), 1);
        assert!(wg.has_cut_consumer(0));
        wg.cut_outputs(1);
        assert_eq!(wg.intact_edge_count(), 0);
        assert!(wg.has_cut_consumer(1));
    }

    #[test]
    fn cut_edge_is_targeted() {
        let mut g = Dfg::new("fan");
        let x = g.ext("x");
        let a = g.add(x, x); // v0
        let b = g.add(a, x); // v1
        let c = g.add(a, x); // v2
        g.set_output("b", b);
        g.set_output("c", c);
        let mut wg = WorkGraph::from_dfg(&g);
        wg.cut_edge(0, 1);
        assert_eq!(wg.intact_children(0), vec![2]);
    }

    #[test]
    fn replicate_redirects_child() {
        let mut g = Dfg::new("fan");
        let x = g.ext("x");
        let a = g.match_score(x, x); // v0
        let b = g.add(a, x); // v1
        let c = g.add(a, x); // v2
        g.set_output("b", b);
        g.set_output("c", c);
        let mut wg = WorkGraph::from_dfg(&g);
        let r = wg.replicate_for(0, 2);
        assert_eq!(r, 3);
        assert_eq!(wg.intact_children(0), vec![1]);
        assert_eq!(wg.intact_children(r), vec![2]);
        assert_eq!(wg.orig(r), wg.orig(0));
        assert_eq!(wg.nodes_for(gendp_dfg::NodeId(0)), vec![0, 3]);
    }
}
