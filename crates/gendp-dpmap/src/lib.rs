//! # gendp-dpmap
//!
//! The **DPMap** graph-partitioning algorithm of the GenDP framework
//! (paper §5): maps the data-flow graph of a DP objective function onto the
//! compute units of a DPAx processing element.
//!
//! DPMap removes edges from the DFG in three phases until every connected
//! component fits one compute unit (a 2-level ALU reduction tree or the
//! dedicated multiplier):
//!
//! 1. **Partitioning** (Algorithm 1) isolates multiplications and 4-input /
//!    lookup operations, replicating multi-consumer lookup nodes whose
//!    children are commutative.
//! 2. **Seeding** (Algorithm 2) selects nodes with two parents as roots of
//!    the 2-level tree and detaches multi-consumer nodes.
//! 3. **Refinement** (Algorithm 3) pairs the remaining chains two by two.
//!
//! The resulting subgraphs are scheduled into 2-way VLIW compute
//! instructions ([`Mapping::program`]) with an automatic register-file
//! layout ([`Mapping::layout`]), and mapping statistics matching the
//! paper's Table 2 / Table 11 metrics ([`MapStats`]).
//!
//! ```
//! use gendp_dfg::Dfg;
//! use gendp_dpmap::map_dfg;
//!
//! let mut g = Dfg::new("toy");
//! let x = g.ext("x");
//! let y = g.ext("y");
//! let s = g.match_score(x, y);
//! let d = g.ext("diag");
//! let sum = g.add(d, s);
//! let zero = g.imm(0);
//! let h = g.max(sum, zero);
//! g.set_output("h", h);
//!
//! let mapping = map_dfg(&g);
//! assert!(mapping.program.len() >= 1);
//! assert!(mapping.layout.output_slot("h").is_some());
//! ```

mod codegen;
mod phases;
mod stats;
mod subgraph;
mod work;

pub use codegen::{Mapping, RfLayout};
pub use phases::{partitioning, refinement, seeding};
pub use stats::{analyze_tree_depth, MapStats};
pub use subgraph::{extract, Subgraph, SubgraphShape};
pub use work::{WorkGraph, WorkIn};

use gendp_dfg::Dfg;

/// Runs the full DPMap pipeline on a DFG: the three partitioning phases,
/// subgraph extraction, register allocation and VLIW scheduling.
///
/// # Panics
///
/// Panics if the DFG fails [`Dfg::validate`] (graphs built through the
/// `gendp-dfg` builder API always pass) or has no named outputs.
pub fn map_dfg(dfg: &Dfg) -> Mapping {
    let errs = dfg.validate();
    assert!(errs.is_empty(), "invalid DFG: {errs:?}");
    assert!(dfg.outputs().count() > 0, "DFG has no outputs");
    let mut wg = WorkGraph::from_dfg(dfg);
    partitioning(&mut wg);
    seeding(&mut wg);
    refinement(&mut wg);
    let subgraphs = subgraph::extract(&mut wg);
    codegen::generate(dfg, &wg, &subgraphs)
}
