//! # gendp-dpmap
//!
//! The **DPMap** graph-partitioning algorithm of the GenDP framework
//! (paper §5): maps the data-flow graph of a DP objective function onto the
//! compute units of a DPAx processing element.
//!
//! DPMap removes edges from the DFG in three phases until every connected
//! component fits one compute unit (a 2-level ALU reduction tree or the
//! dedicated multiplier):
//!
//! 1. **Partitioning** (Algorithm 1) isolates multiplications and 4-input /
//!    lookup operations, replicating multi-consumer lookup nodes whose
//!    children are commutative.
//! 2. **Seeding** (Algorithm 2) selects nodes with two parents as roots of
//!    the 2-level tree and detaches multi-consumer nodes.
//! 3. **Refinement** (Algorithm 3) pairs the remaining chains two by two.
//!
//! The resulting subgraphs are scheduled into 2-way VLIW compute
//! instructions ([`Mapping::program`]) with an automatic register-file
//! layout ([`Mapping::layout`]), and mapping statistics matching the
//! paper's Table 2 / Table 11 metrics ([`MapStats`]).
//!
//! ```
//! use gendp_dfg::Dfg;
//! use gendp_dpmap::map_dfg;
//!
//! let mut g = Dfg::new("toy");
//! let x = g.ext("x");
//! let y = g.ext("y");
//! let s = g.match_score(x, y);
//! let d = g.ext("diag");
//! let sum = g.add(d, s);
//! let zero = g.imm(0);
//! let h = g.max(sum, zero);
//! g.set_output("h", h);
//!
//! let mapping = map_dfg(&g);
//! assert!(mapping.program.len() >= 1);
//! assert!(mapping.layout.output_slot("h").is_some());
//! ```

mod codegen;
mod phases;
mod stats;
mod subgraph;
mod work;

pub use codegen::{Mapping, RfLayout};
pub use phases::{partitioning, refinement, seeding};
pub use stats::{analyze_tree_depth, MapStats};
pub use subgraph::{extract, Subgraph, SubgraphShape};
pub use work::{WorkGraph, WorkIn};

use gendp_dfg::Dfg;
use gendp_verify::{Report, Verifier};

/// Runs the full DPMap pipeline on a DFG: the three partitioning phases,
/// subgraph extraction, register allocation and VLIW scheduling.
///
/// The DFG is linted with [`gendp_verify::Verifier::verify_dfg`] first;
/// error diagnostics (arity mismatches, ordering violations, missing
/// outputs) are returned as the full typed [`Report`]. Graphs built
/// through the `gendp-dfg` builder API always pass.
///
/// # Panics
///
/// Panics if the *emitted* compute program fails static verification
/// against the PE contract — that is a code-generation bug, not a
/// property of the input graph.
pub fn try_map_dfg(dfg: &Dfg) -> Result<Mapping, Report> {
    let report = Verifier::default().verify_dfg(dfg);
    if report.has_errors() {
        return Err(report);
    }
    let mut wg = WorkGraph::from_dfg(dfg);
    partitioning(&mut wg);
    seeding(&mut wg);
    refinement(&mut wg);
    let subgraphs = subgraph::extract(&mut wg);
    let mapping = codegen::generate(dfg, &wg, &subgraphs);
    let self_check = Verifier::default().verify_compute(&mapping.program);
    assert!(
        !self_check.has_errors(),
        "codegen emitted a program that fails verification (this is a \
         gendp-dpmap bug):\n{self_check}"
    );
    Ok(mapping)
}

/// Like [`try_map_dfg`], panicking with the rendered diagnostics instead
/// of returning them.
///
/// # Panics
///
/// Panics if the DFG has error-severity lints (see
/// [`gendp_verify::Verifier::verify_dfg`]) or codegen emits a program
/// that fails verification.
pub fn map_dfg(dfg: &Dfg) -> Mapping {
    match try_map_dfg(dfg) {
        Ok(mapping) => mapping,
        Err(report) => panic!("invalid DFG:\n{report}"),
    }
}
