//! Mapping statistics (paper Table 2 and Table 11) and the reduction-tree
//! depth ablation.

use std::collections::BTreeMap;

use gendp_dfg::Dfg;
use gendp_isa::{ComputeProgram, CU_PER_PE};

use crate::phases::partitioning;
use crate::subgraph::Subgraph;
use crate::work::{WorkGraph, WorkIn};

/// Statistics of mapping one objective function onto compute units with an
/// ALU reduction tree of a given depth.
///
/// The paper's Table 2 reports "RF accesses" (register-file writes per DP
/// cell — one per subgraph, since only subgraph roots leave the compute
/// unit) and "CU utilization" (fraction of ALU slots doing useful work per
/// cycle). Table 11's VLIW utilization is the 2-level CU utilization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MapStats {
    /// Operator nodes in the original DFG.
    pub dfg_nodes: usize,
    /// Work nodes after replication.
    pub work_nodes: usize,
    /// Compute-unit subgraphs after partitioning.
    pub subgraphs: usize,
    /// VLIW cycles per cell.
    pub cycles: usize,
    /// Real ALU operations executed per cell (excludes wiring copies).
    pub alu_ops: usize,
    /// Register-file writes per cell (the paper's "RF accesses").
    pub rf_writes: usize,
    /// Register-file reads per cell.
    pub rf_reads: usize,
    /// Depth of the ALU reduction tree (1, 2 or 3).
    pub tree_levels: u8,
}

impl MapStats {
    /// ALUs per compute unit at a given tree depth (1, 3 or 7; paper §4.3).
    pub fn alus_per_cu(levels: u8) -> usize {
        (1usize << levels) - 1
    }

    /// CU utilization: ALU operations over available ALU slots
    /// (`ALUs/CU × 2 CUs × cycles`).
    pub fn cu_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.alu_ops as f64 / (Self::alus_per_cu(self.tree_levels) * CU_PER_PE * self.cycles) as f64
    }

    /// VLIW slot utilization: issued compute units over available slots.
    pub fn vliw_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.subgraphs as f64 / (CU_PER_PE * self.cycles) as f64
    }

    /// The paper's "RF accesses" metric (writes per cell).
    pub fn rf_accesses(&self) -> usize {
        self.rf_writes
    }

    /// Total register-file traffic (reads plus writes).
    pub fn rf_total_accesses(&self) -> usize {
        self.rf_reads + self.rf_writes
    }

    pub(crate) fn from_program(
        dfg: &Dfg,
        wg: &WorkGraph,
        subgraphs: &[Subgraph],
        program: &ComputeProgram,
        tree_levels: u8,
    ) -> Self {
        let rf_reads = program
            .iter()
            .flat_map(|v| v.slots.iter())
            .map(|s| s.rf_reads())
            .sum();
        let rf_writes = program
            .iter()
            .flat_map(|v| v.slots.iter())
            .map(|s| s.rf_writes())
            .sum();
        MapStats {
            dfg_nodes: dfg.len(),
            work_nodes: wg.len(),
            subgraphs: subgraphs.len(),
            cycles: program.len(),
            alu_ops: subgraphs.iter().map(Subgraph::op_count).sum(),
            rf_writes,
            rf_reads,
            tree_levels,
        }
    }
}

/// Analyzes mapping a DFG onto compute units whose reduction tree has the
/// given depth (paper Table 2 ablation: 1, 2 or 3 levels).
///
/// Depth 2 runs the real DPMap pipeline; depths 1 and 3 use an equivalent
/// greedy tree packer under the same hardware constraints (isolated
/// multiplier, single 4-input leaf ALU, only roots reach the register
/// file).
///
/// # Panics
///
/// Panics if `levels` is not 1, 2 or 3.
pub fn analyze_tree_depth(dfg: &Dfg, levels: u8) -> MapStats {
    assert!((1..=3).contains(&levels), "tree depth must be 1, 2 or 3");
    if levels == 2 {
        return crate::map_dfg(dfg).stats;
    }
    let mut wg = WorkGraph::from_dfg(dfg);
    partitioning(&mut wg);
    let n = wg.len();

    // Greedy bottom-up grouping into depth-`levels` trees.
    let mut group = vec![usize::MAX; n];
    let mut n_groups = 0usize;
    for v in (0..n).rev() {
        if group[v] != usize::MAX {
            continue;
        }
        let gid = n_groups;
        n_groups += 1;
        let mut wide_used = wg.op(v).is_wide();
        let mut stack = vec![(v, 1u8)];
        group[v] = gid;
        while let Some((cur, depth)) = stack.pop() {
            if depth >= levels || wg.op(cur).is_mul() || wg.op(cur).is_wide() {
                continue;
            }
            for p in wg.intact_parents(cur) {
                if group[p] != usize::MAX
                    || wg.op(p).is_mul()
                    || wg.intact_children(p) != vec![cur]
                    || wg.has_cut_consumer(p)
                    || wg.is_output(p)
                {
                    continue;
                }
                if wg.op(p).is_wide() {
                    if wide_used {
                        continue;
                    }
                    wide_used = true;
                }
                group[p] = gid;
                stack.push((p, depth + 1));
            }
        }
    }

    // Count register-file traffic: every group writes once; reads are the
    // external inputs and cross-group values each node consumes.
    let mut rf_reads = 0usize;
    for v in 0..n {
        for w in wg.ins(v) {
            match w {
                WorkIn::Ext(_) => rf_reads += 1,
                WorkIn::Cut(_) => rf_reads += 1,
                WorkIn::Edge(p) => {
                    if group[*p] != group[v] {
                        rf_reads += 1;
                    }
                }
                WorkIn::Const(_) => {}
            }
        }
    }

    // Schedule groups two per cycle, honoring cross-group dependencies.
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); n_groups];
    for v in 0..n {
        for w in wg.ins(v) {
            let p = match w {
                WorkIn::Cut(p) => *p,
                WorkIn::Edge(p) if group[*p] != group[v] => *p,
                _ => continue,
            };
            if group[p] != group[v] {
                deps[group[v]].push(group[p]);
            }
        }
    }
    for d in &mut deps {
        d.sort_unstable();
        d.dedup();
    }
    let mut finish: Vec<Option<usize>> = vec![None; n_groups];
    let mut cycle = 0usize;
    let mut remaining = n_groups;
    while remaining > 0 {
        let mut issued = 0;
        for g in 0..n_groups {
            if issued == CU_PER_PE || finish[g].is_some() {
                continue;
            }
            if deps[g]
                .iter()
                .all(|&d| matches!(finish[d], Some(c) if c < cycle))
            {
                finish[g] = Some(cycle);
                issued += 1;
                remaining -= 1;
            }
        }
        assert!(issued > 0 || remaining == 0, "group scheduler stuck");
        cycle += 1;
    }

    let group_sizes: BTreeMap<usize, usize> = group.iter().fold(BTreeMap::new(), |mut m, &g| {
        *m.entry(g).or_insert(0) += 1;
        m
    });
    debug_assert!(group_sizes.values().all(|&s| s < (1usize << levels)));

    MapStats {
        dfg_nodes: dfg.len(),
        work_nodes: n,
        subgraphs: n_groups,
        cycles: cycle.max(1),
        alu_ops: n,
        rf_writes: n_groups,
        rf_reads,
        tree_levels: levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendp_dfg::Dfg;

    fn bsw_like() -> Dfg {
        let mut g = Dfg::new("bsw-cell");
        let x = g.ext("x");
        let y = g.ext("y");
        let h_diag = g.ext("h_diag");
        let h_up = g.ext("h_up");
        let e_up = g.ext("e_up");
        let h_left = g.ext("h_left");
        let f_left = g.ext("f_left");
        let gapo = g.imm(6);
        let gape = g.imm(1);
        let s = g.match_score(x, y);
        let diag = g.add(h_diag, s);
        let eo = g.sub(h_up, gapo);
        let ee = g.sub(e_up, gape);
        let e = g.max(eo, ee);
        let fo = g.sub(h_left, gapo);
        let fe = g.sub(f_left, gape);
        let f = g.max(fo, fe);
        let zero = g.imm(0);
        let m0 = g.max(diag, zero);
        let ef = g.max(e, f);
        let h = g.max(m0, ef);
        g.set_output("e", e);
        g.set_output("f", f);
        g.set_output("h", h);
        g
    }

    #[test]
    fn deeper_trees_reduce_rf_writes() {
        let g = bsw_like();
        let l1 = analyze_tree_depth(&g, 1);
        let l2 = analyze_tree_depth(&g, 2);
        let l3 = analyze_tree_depth(&g, 3);
        assert!(l1.rf_accesses() >= l2.rf_accesses(), "{l1:?} vs {l2:?}");
        assert!(l2.rf_accesses() >= l3.rf_accesses(), "{l2:?} vs {l3:?}");
        // Level 1 writes once per node.
        assert_eq!(l1.rf_writes, l1.work_nodes);
    }

    #[test]
    fn deeper_trees_reduce_utilization() {
        let g = bsw_like();
        let l1 = analyze_tree_depth(&g, 1);
        let l2 = analyze_tree_depth(&g, 2);
        let l3 = analyze_tree_depth(&g, 3);
        assert!(l1.cu_utilization() >= l2.cu_utilization());
        assert!(l2.cu_utilization() > l3.cu_utilization());
        assert!(l1.cu_utilization() <= 1.0);
    }

    #[test]
    fn alus_per_cu_matches_paper() {
        assert_eq!(MapStats::alus_per_cu(1), 1);
        assert_eq!(MapStats::alus_per_cu(2), 3);
        assert_eq!(MapStats::alus_per_cu(3), 7);
    }

    #[test]
    #[should_panic(expected = "tree depth")]
    fn invalid_depth_panics() {
        analyze_tree_depth(&bsw_like(), 4);
    }

    #[test]
    fn stats_are_consistent_for_level2() {
        let g = bsw_like();
        let s = analyze_tree_depth(&g, 2);
        assert_eq!(s.dfg_nodes, g.len());
        assert!(s.subgraphs <= s.work_nodes);
        assert!(s.cycles >= s.subgraphs.div_ceil(2));
        assert!(s.vliw_utilization() <= 1.0);
        assert!(s.rf_total_accesses() > s.rf_accesses());
    }
}
