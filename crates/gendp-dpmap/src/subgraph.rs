//! Extraction of compute-unit subgraphs after the DPMap phases.

use crate::work::WorkGraph;

/// The shape of one subgraph, dictating its placement in a compute unit.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum SubgraphShape {
    /// A lone multiplication on the dedicated multiplier module.
    Mul,
    /// A single ALU operation (wide slot, root copies it out).
    Single,
    /// A two-node chain: leaf on a first-level ALU, child on the root.
    Pair,
    /// A full 2-level tree: two first-level leaves and a root.
    Triple,
}

/// One connected component of the partitioned graph, ready to be mapped to
/// a compute unit (paper Fig. 9 dashed blocks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subgraph {
    /// Work-node index placed on the 4-input first-level ALU (or the
    /// multiplier / the single node).
    pub wide: usize,
    /// Work-node index placed on the 2-input first-level ALU, if any.
    pub narrow: Option<usize>,
    /// Work-node index placed on the root ALU, if any.
    pub root: Option<usize>,
    /// Shape classification.
    pub shape: SubgraphShape,
}

impl Subgraph {
    /// The node whose value leaves this compute unit (the root if present).
    pub fn result_node(&self) -> usize {
        self.root.unwrap_or(self.wide)
    }

    /// All work nodes of the subgraph.
    pub fn nodes(&self) -> Vec<usize> {
        let mut v = vec![self.wide];
        v.extend(self.narrow);
        v.extend(self.root);
        v
    }

    /// Number of ALU operations in the subgraph (the root `Copy` emitted
    /// for single-node subgraphs is wiring, not a DFG operation).
    pub fn op_count(&self) -> usize {
        self.nodes().len()
    }
}

/// Groups the intact components of a partitioned work graph into
/// [`Subgraph`]s, ordered so that producers precede consumers.
///
/// # Panics
///
/// Panics if a component does not fit a compute unit; the DPMap phases (with
/// their legalization pass) guarantee this never happens for valid inputs.
pub fn extract(wg: &mut WorkGraph) -> Vec<Subgraph> {
    let n = wg.len();
    let mut assigned = vec![false; n];
    let mut subgraphs = Vec::new();

    // Identify roots: nodes with no intact children. Each root plus its
    // intact ancestors (depth <= 2 guaranteed) forms one subgraph.
    for v in 0..n {
        if assigned[v] || !wg.intact_children(v).is_empty() {
            continue;
        }
        let parents = wg.intact_parents(v);
        let sg = match parents.len() {
            0 => {
                if wg.op(v).is_mul() {
                    Subgraph {
                        wide: v,
                        narrow: None,
                        root: None,
                        shape: SubgraphShape::Mul,
                    }
                } else {
                    Subgraph {
                        wide: v,
                        narrow: None,
                        root: None,
                        shape: SubgraphShape::Single,
                    }
                }
            }
            1 => {
                let leaf = parents[0];
                assert!(
                    wg.intact_parents(leaf).is_empty(),
                    "leaf {leaf} of pair rooted at {v} still has intact parents"
                );
                Subgraph {
                    wide: leaf,
                    narrow: None,
                    root: Some(v),
                    shape: SubgraphShape::Pair,
                }
            }
            2 => {
                // Wire leaves by operand position: the wide ALU feeds the
                // root's in[0], the narrow ALU its in[1]. Legalization
                // guarantees a wide-class leaf in position 1 only under a
                // commutative root, where swapping is sound.
                let prods = wg.intact_edge_producers(v);
                assert_eq!(prods.len(), 2, "triple root {v} operand wiring");
                let (mut wide, mut narrow) = (prods[0], prods[1]);
                if wg.op(narrow).is_wide() {
                    assert!(
                        wg.op(v).is_commutative(),
                        "wide leaf in second operand of non-commutative root {v}"
                    );
                    std::mem::swap(&mut wide, &mut narrow);
                }
                for p in [wide, narrow] {
                    assert!(
                        wg.intact_parents(p).is_empty(),
                        "leaf {p} of triple rooted at {v} still has intact parents"
                    );
                }
                assert!(
                    !wg.op(narrow).is_wide(),
                    "two wide leaves under root {v} survived legalization"
                );
                Subgraph {
                    wide,
                    narrow: Some(narrow),
                    root: Some(v),
                    shape: SubgraphShape::Triple,
                }
            }
            k => panic!("root {v} has {k} intact parents, exceeding the 2-level tree"),
        };
        for &node in &sg.nodes() {
            assert!(!assigned[node], "node {node} assigned to two subgraphs");
            assigned[node] = true;
        }
        subgraphs.push(sg);
    }

    assert!(
        assigned.iter().all(|&a| a),
        "some work nodes were not covered by any subgraph"
    );
    subgraphs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::{partitioning, refinement, seeding};
    use crate::work::WorkGraph;
    use gendp_dfg::Dfg;

    fn run_phases(g: &Dfg) -> (WorkGraph, Vec<Subgraph>) {
        let mut wg = WorkGraph::from_dfg(g);
        partitioning(&mut wg);
        seeding(&mut wg);
        refinement(&mut wg);
        let sgs = extract(&mut wg);
        (wg, sgs)
    }

    #[test]
    fn single_node_graph() {
        let mut g = Dfg::new("one");
        let a = g.ext("a");
        let b = g.ext("b");
        let s = g.add(a, b);
        g.set_output("s", s);
        let (_, sgs) = run_phases(&g);
        assert_eq!(sgs.len(), 1);
        assert_eq!(sgs[0].shape, SubgraphShape::Single);
        assert_eq!(sgs[0].result_node(), 0);
    }

    #[test]
    fn lone_multiplication() {
        let mut g = Dfg::new("mul");
        let a = g.ext("a");
        let b = g.ext("b");
        let p = g.mul(a, b);
        let q = g.add(p, a);
        g.set_output("q", q);
        let (_, sgs) = run_phases(&g);
        let shapes: Vec<_> = sgs.iter().map(|s| s.shape).collect();
        assert!(shapes.contains(&SubgraphShape::Mul));
    }

    #[test]
    fn seed_forms_triple() {
        let mut g = Dfg::new("tri");
        let a = g.ext("a");
        let b = g.ext("b");
        let c = g.ext("c");
        let s1 = g.add(a, b);
        let s2 = g.add(b, c);
        let m = g.max(s1, s2);
        g.set_output("m", m);
        let (_, sgs) = run_phases(&g);
        assert_eq!(sgs.len(), 1);
        assert_eq!(sgs[0].shape, SubgraphShape::Triple);
        assert_eq!(sgs[0].op_count(), 3);
        assert_eq!(sgs[0].result_node(), 2);
    }

    #[test]
    fn wide_leaf_takes_wide_slot() {
        let mut g = Dfg::new("wide");
        let a = g.ext("a");
        let b = g.ext("b");
        let s = g.match_score(a, b); // wide leaf
        let t = g.add(a, b); // narrow leaf
        let m = g.max(s, t);
        g.set_output("m", m);
        let (wg, sgs) = run_phases(&g);
        assert_eq!(sgs.len(), 1);
        let sg = &sgs[0];
        assert_eq!(sg.shape, SubgraphShape::Triple);
        assert!(wg.op(sg.wide).is_wide());
        assert!(!wg.op(sg.narrow.unwrap()).is_wide());
    }

    #[test]
    fn every_node_covered_exactly_once() {
        let mut g = Dfg::new("cover");
        let a = g.ext("a");
        let b = g.ext("b");
        let c = g.ext("c");
        let s = g.match_score(a, b);
        let t = g.add(s, c);
        let u = g.sub(t, a);
        let v = g.max(u, b);
        let w = g.mul(v, c);
        let x = g.add(w, t);
        g.set_output("x", x);
        let (wg, sgs) = run_phases(&g);
        let mut seen = vec![0usize; wg.len()];
        for sg in &sgs {
            for n in sg.nodes() {
                seen[n] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "coverage: {seen:?}");
    }
}
