//! Compute-instruction generation: register allocation, compute-unit
//! emission and 2-way VLIW scheduling.

use std::collections::BTreeMap;

use gendp_dfg::Dfg;
use gendp_isa::{ComputeOp, ComputeProgram, CuInst, Operand, TreeSlots, VliwInst};

use crate::stats::MapStats;
use crate::subgraph::{Subgraph, SubgraphShape};
use crate::work::{WorkGraph, WorkIn};

/// Register-file layout of a mapped objective function.
///
/// The control thread uses this layout to place per-cell inputs before
/// issuing `set cu` and to collect outputs afterwards: external inputs get
/// the low slots (in declaration order), every subgraph result gets a
/// private slot above them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RfLayout {
    ext: Vec<(String, u16)>,
    outputs: Vec<(String, u16)>,
    n_slots: u16,
}

impl RfLayout {
    /// Register-file slot holding the named external input.
    pub fn ext_slot(&self, name: &str) -> Option<u16> {
        self.ext.iter().find(|(n, _)| n == name).map(|(_, s)| *s)
    }

    /// Register-file slot where the named output lands.
    pub fn output_slot(&self, name: &str) -> Option<u16> {
        self.outputs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
    }

    /// External inputs and their slots, in declaration order.
    pub fn ext_slots(&self) -> &[(String, u16)] {
        &self.ext
    }

    /// Named outputs and their slots, in name order.
    pub fn output_slots(&self) -> &[(String, u16)] {
        &self.outputs
    }

    /// Total register-file slots used by the mapping.
    pub fn slot_count(&self) -> u16 {
        self.n_slots
    }
}

/// Result of mapping one DFG onto the compute units of a PE.
#[derive(Debug, Clone)]
pub struct Mapping {
    /// The per-cell VLIW compute program (run once per DP cell).
    pub program: ComputeProgram,
    /// Where inputs must be placed and outputs appear in the register file.
    pub layout: RfLayout,
    /// The compute-unit subgraphs, in schedule order.
    pub subgraphs: Vec<Subgraph>,
    /// Mapping statistics (paper Tables 2 and 11 metrics).
    pub stats: MapStats,
}

impl Mapping {
    /// Executes the compute program on a software model of the register
    /// file and the two compute units, exactly as one DPAx PE runs it for a
    /// single DP cell. Returns the named outputs.
    ///
    /// This is the quickest way to check a mapping without instantiating
    /// the full `gendp-dpax` simulator.
    ///
    /// # Panics
    ///
    /// Panics if an input name is unknown to the layout.
    pub fn run(
        &self,
        inputs: &[(&str, gendp_isa::Word)],
        mode: gendp_isa::Mode,
        luts: &gendp_isa::Luts,
    ) -> BTreeMap<String, gendp_isa::Word> {
        use gendp_isa::{apply, Word};
        let mut rf = vec![Word::ZERO; self.layout.slot_count() as usize];
        for (name, v) in inputs {
            let slot = self
                .layout
                .ext_slot(name)
                .unwrap_or_else(|| panic!("unknown input `{name}`"));
            rf[slot as usize] = *v;
        }
        for inst in self.program.iter() {
            // Reads happen before writes within a cycle.
            let mut writes: Vec<(u16, Word)> = Vec::new();
            for slot in &inst.slots {
                let read = |o: &Operand| -> Word {
                    match o {
                        Operand::Reg(r) => rf[*r as usize],
                        Operand::Imm(v) => Word::from_i32(*v),
                    }
                };
                match slot {
                    CuInst::Nop => {}
                    CuInst::Mul { a, b, dest } => {
                        let r = apply(ComputeOp::Mul, mode, &[read(a), read(b)], luts);
                        writes.push((*dest, r));
                    }
                    CuInst::Tree(t) => {
                        let wide_ins: Vec<Word> =
                            t.wide_ins[..t.wide_op.arity()].iter().map(read).collect();
                        let a_out = if t.wide_op == ComputeOp::Nop {
                            Word::ZERO
                        } else {
                            apply(t.wide_op, mode, &wide_ins, luts)
                        };
                        let narrow_ins: Vec<Word> = t.narrow_ins[..t.narrow_op.arity()]
                            .iter()
                            .map(read)
                            .collect();
                        let b_out = if t.narrow_op == ComputeOp::Nop {
                            Word::ZERO
                        } else {
                            apply(t.narrow_op, mode, &narrow_ins, luts)
                        };
                        let r = apply(t.root_op, mode, &[a_out, b_out], luts);
                        writes.push((t.dest, r));
                    }
                }
            }
            for (d, w) in writes {
                rf[d as usize] = w;
            }
        }
        self.layout
            .output_slots()
            .iter()
            .map(|(n, s)| (n.clone(), rf[*s as usize]))
            .collect()
    }

    /// Convenience wrapper over [`run`](Self::run) for integer data.
    ///
    /// # Panics
    ///
    /// Panics if an input name is unknown to the layout.
    pub fn run_i32(
        &self,
        inputs: &[(&str, i32)],
        mode: gendp_isa::Mode,
        luts: &gendp_isa::Luts,
    ) -> BTreeMap<String, i32> {
        let words: Vec<(&str, gendp_isa::Word)> = inputs
            .iter()
            .map(|(n, v)| (*n, gendp_isa::Word::from_i32(*v)))
            .collect();
        self.run(&words, mode, luts)
            .into_iter()
            .map(|(n, w)| (n, w.as_i32()))
            .collect()
    }
}

impl std::fmt::Display for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "mapping: {} subgraphs in {} VLIW cycles, {} RF slots",
            self.subgraphs.len(),
            self.program.len(),
            self.layout.slot_count()
        )?;
        writeln!(f, "inputs:")?;
        for (name, slot) in self.layout.ext_slots() {
            writeln!(f, "  r{slot:<3} <- {name}")?;
        }
        writeln!(f, "outputs:")?;
        for (name, slot) in self.layout.output_slots() {
            writeln!(f, "  r{slot:<3} -> {name}")?;
        }
        write!(f, "{}", self.program)
    }
}

pub(crate) fn generate(dfg: &Dfg, wg: &WorkGraph, subgraphs: &[Subgraph]) -> Mapping {
    // --- Register allocation -------------------------------------------
    let ext: Vec<(String, u16)> = dfg
        .ext_names()
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), i as u16))
        .collect();
    let mut next = ext.len() as u16;
    // Every subgraph result gets one slot.
    let mut value_slot: BTreeMap<usize, u16> = BTreeMap::new();
    for sg in subgraphs {
        value_slot.insert(sg.result_node(), next);
        next += 1;
    }
    let outputs: Vec<(String, u16)> = dfg
        .outputs()
        .map(|(name, id)| {
            let primary = *wg
                .nodes_for(id)
                .first()
                .expect("output node exists in work graph");
            let slot = *value_slot
                .get(&primary)
                .unwrap_or_else(|| panic!("output `{name}` node {primary} is not a result node"));
            (name.to_string(), slot)
        })
        .collect();
    let layout = RfLayout {
        ext,
        outputs,
        n_slots: next,
    };

    // --- Compute-unit emission -----------------------------------------
    let operand = |w: &WorkIn| -> Operand {
        match *w {
            WorkIn::Cut(p) => Operand::Reg(
                *value_slot
                    .get(&p)
                    .unwrap_or_else(|| panic!("cut producer {p} has no register slot")),
            ),
            WorkIn::Ext(e) => Operand::Reg(e as u16),
            WorkIn::Const(c) => Operand::Imm(c.as_i32()),
            WorkIn::Edge(_) => panic!("intact edge used as register operand"),
        }
    };
    let pad4 = |ops: Vec<Operand>| -> [Operand; 4] {
        let mut a = [Operand::Imm(0); 4];
        for (i, o) in ops.into_iter().enumerate() {
            a[i] = o;
        }
        a
    };
    let pad2 = |ops: Vec<Operand>| -> [Operand; 2] {
        let mut a = [Operand::Imm(0); 2];
        for (i, o) in ops.into_iter().enumerate() {
            a[i] = o;
        }
        a
    };
    let leaf_operands = |n: usize| -> Vec<Operand> { wg.ins(n).iter().map(operand).collect() };

    let emit = |sg: &Subgraph| -> CuInst {
        let dest = value_slot[&sg.result_node()];
        match sg.shape {
            SubgraphShape::Mul => {
                let ops = leaf_operands(sg.wide);
                CuInst::Mul {
                    a: ops[0],
                    b: ops[1],
                    dest,
                }
            }
            SubgraphShape::Single => CuInst::Tree(TreeSlots {
                wide_op: wg.op(sg.wide),
                wide_ins: pad4(leaf_operands(sg.wide)),
                narrow_op: ComputeOp::Nop,
                narrow_ins: [Operand::Imm(0); 2],
                root_op: ComputeOp::Copy,
                dest,
            }),
            SubgraphShape::Pair => {
                let root = sg.root.expect("pair has a root");
                let leaf = sg.wide;
                let root_op = wg.op(root);
                let root_ins = wg.ins(root);
                let edge_pos = root_ins
                    .iter()
                    .position(|w| *w == WorkIn::Edge(leaf))
                    .expect("pair root reads its leaf");
                if root_op.arity() == 1 {
                    CuInst::Tree(TreeSlots {
                        wide_op: wg.op(leaf),
                        wide_ins: pad4(leaf_operands(leaf)),
                        narrow_op: ComputeOp::Nop,
                        narrow_ins: [Operand::Imm(0); 2],
                        root_op,
                        dest,
                    })
                } else if edge_pos == 0 || root_op.is_commutative() {
                    let other = operand(&root_ins[1 - edge_pos]);
                    CuInst::Tree(TreeSlots {
                        wide_op: wg.op(leaf),
                        wide_ins: pad4(leaf_operands(leaf)),
                        narrow_op: ComputeOp::Copy,
                        narrow_ins: [other, Operand::Imm(0)],
                        root_op,
                        dest,
                    })
                } else {
                    // Non-commutative root with its leaf as second operand:
                    // the leaf runs on the narrow ALU (legalization ensured
                    // it is not wide-class) and the first operand passes
                    // through the wide ALU.
                    let other = operand(&root_ins[0]);
                    CuInst::Tree(TreeSlots {
                        wide_op: ComputeOp::Copy,
                        wide_ins: pad4(vec![other]),
                        narrow_op: wg.op(leaf),
                        narrow_ins: pad2(leaf_operands(leaf)),
                        root_op,
                        dest,
                    })
                }
            }
            SubgraphShape::Triple => {
                let root = sg.root.expect("triple has a root");
                let narrow = sg.narrow.expect("triple has a narrow leaf");
                CuInst::Tree(TreeSlots {
                    wide_op: wg.op(sg.wide),
                    wide_ins: pad4(leaf_operands(sg.wide)),
                    narrow_op: wg.op(narrow),
                    narrow_ins: pad2(leaf_operands(narrow)),
                    root_op: wg.op(root),
                    dest,
                })
            }
        }
    };

    // --- VLIW scheduling -------------------------------------------------
    // Subgraph B depends on A if any of B's nodes reads A's result through a
    // cut edge; dependents must issue in a strictly later cycle.
    let owner: BTreeMap<usize, usize> = subgraphs
        .iter()
        .enumerate()
        .flat_map(|(si, sg)| sg.nodes().into_iter().map(move |n| (n, si)))
        .collect();
    let deps: Vec<Vec<usize>> = subgraphs
        .iter()
        .map(|sg| {
            let mut d: Vec<usize> = sg
                .nodes()
                .iter()
                .flat_map(|&n| wg.ins(n).iter())
                .filter_map(|w| match w {
                    WorkIn::Cut(p) => owner.get(p).copied(),
                    _ => None,
                })
                .collect();
            d.sort_unstable();
            d.dedup();
            d
        })
        .collect();

    let n = subgraphs.len();
    let mut finish_cycle: Vec<Option<usize>> = vec![None; n];
    let mut scheduled: Vec<(usize, usize)> = Vec::new(); // (cycle, subgraph)
    let mut cycle = 0usize;
    let mut remaining = n;
    while remaining > 0 {
        let mut issued = 0;
        for si in 0..n {
            if issued == gendp_isa::CU_PER_PE {
                break;
            }
            if finish_cycle[si].is_some() {
                continue;
            }
            let ready = deps[si]
                .iter()
                .all(|&d| matches!(finish_cycle[d], Some(c) if c < cycle));
            if ready {
                finish_cycle[si] = Some(cycle);
                scheduled.push((cycle, si));
                issued += 1;
                remaining -= 1;
            }
        }
        assert!(
            issued > 0 || remaining == 0,
            "VLIW scheduler made no progress (dependency cycle?)"
        );
        cycle += 1;
    }

    let total_cycles = cycle.max(1);
    let mut program = ComputeProgram::new();
    let mut ordered_subgraphs = Vec::with_capacity(n);
    for c in 0..total_cycles {
        let in_cycle: Vec<usize> = scheduled
            .iter()
            .filter(|(cc, _)| *cc == c)
            .map(|(_, si)| *si)
            .collect();
        if in_cycle.is_empty() {
            continue;
        }
        let mut slots = [CuInst::Nop, CuInst::Nop];
        for (k, &si) in in_cycle.iter().enumerate() {
            slots[k] = emit(&subgraphs[si]);
            ordered_subgraphs.push(subgraphs[si].clone());
        }
        program.push(VliwInst::pair(slots[0], slots[1]));
    }
    program.finish();

    let stats = MapStats::from_program(dfg, wg, subgraphs, &program, 2);

    Mapping {
        program,
        layout,
        subgraphs: ordered_subgraphs,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use crate::map_dfg;
    use gendp_dfg::{Dfg, Input};
    use gendp_isa::{Luts, Mode};

    fn check_equivalence(g: &Dfg, inputs: &[(&str, i32)], luts: &Luts) {
        let expect = g.eval_i32(inputs, Mode::Int32, luts).unwrap();
        let mapping = map_dfg(g);
        let got = mapping.run_i32(inputs, Mode::Int32, luts);
        assert_eq!(got, expect, "mapping diverges from DFG semantics\n{g}");
    }

    #[test]
    fn simple_chain_is_equivalent() {
        let mut g = Dfg::new("chain");
        let x = g.ext("x");
        let one = g.imm(1);
        let a = g.add(x, one);
        let b = g.add(a, one);
        let c = g.add(b, one);
        g.set_output("o", c);
        check_equivalence(&g, &[("x", 10)], &Luts::default());
    }

    #[test]
    fn bsw_like_cell_is_equivalent() {
        let mut g = Dfg::new("bsw-cell");
        let x = g.ext("x");
        let y = g.ext("y");
        let h_diag = g.ext("h_diag");
        let h_up = g.ext("h_up");
        let e_up = g.ext("e_up");
        let h_left = g.ext("h_left");
        let f_left = g.ext("f_left");
        let gapo = g.imm(6);
        let gape = g.imm(1);
        let s = g.match_score(x, y);
        let diag = g.add(h_diag, s);
        let eo = g.sub(h_up, gapo);
        let ee = g.sub(e_up, gape);
        let e = g.max(eo, ee);
        let fo = g.sub(h_left, gapo);
        let fe = g.sub(f_left, gape);
        let f = g.max(fo, fe);
        let zero = g.imm(0);
        let m0 = g.max(diag, zero);
        let ef = g.max(e, f);
        let h = g.max(m0, ef);
        g.set_output("e", e);
        g.set_output("f", f);
        g.set_output("h", h);
        for vals in [
            [1, 1, 10, 9, 3, 4, 8],
            [1, 2, 0, 0, 0, 0, 0],
            [3, 3, -5, 2, 7, 1, -2],
        ] {
            check_equivalence(
                &g,
                &[
                    ("x", vals[0]),
                    ("y", vals[1]),
                    ("h_diag", vals[2]),
                    ("h_up", vals[3]),
                    ("e_up", vals[4]),
                    ("h_left", vals[5]),
                    ("f_left", vals[6]),
                ],
                &Luts::with_scores(2, -4),
            );
        }
    }

    #[test]
    fn multiplication_and_lut_mix_is_equivalent() {
        let mut g = Dfg::new("chain-weight");
        let dq = g.ext("dq");
        let dr = g.ext("dr");
        let span = g.ext("span");
        let fprev = g.ext("fprev");
        let fcur = g.ext("fcur");
        let d = g.sub(dq, dr);
        let zero = g.imm(0);
        let neg = g.sub(zero, d);
        let dd = g.max(d, neg); // |dq - dr|
        let minp = g.min(dq, dr);
        let mind = g.min(minp, span);
        let scale = g.imm(13); // fixed-point 0.01 * avg_qspan
        let lin = g.mul(dd, scale);
        let lin16 = g.node(gendp_isa::ComputeOp::Shr16, &[lin]);
        let log = g.log2_half(dd);
        let gap = g.add(lin16, log);
        let sc0 = g.sub(mind, gap);
        let sc = g.add(fprev, sc0);
        let best = g.max(fcur, sc);
        g.set_output("f", best);
        for vals in [[30, 28, 15, 40, 40], [5, 50, 15, 20, 90], [7, 7, 15, 0, 0]] {
            check_equivalence(
                &g,
                &[
                    ("dq", vals[0]),
                    ("dr", vals[1]),
                    ("span", vals[2]),
                    ("fprev", vals[3]),
                    ("fcur", vals[4]),
                ],
                &Luts::default(),
            );
        }
    }

    #[test]
    fn non_commutative_root_with_leaf_in_second_operand() {
        // o = x - (a + b): the add feeds the subtraction's second input.
        let mut g = Dfg::new("sub-order");
        let x = g.ext("x");
        let a = g.ext("a");
        let b = g.ext("b");
        let s = g.add(a, b);
        let o = g.sub(x, s);
        g.set_output("o", o);
        check_equivalence(&g, &[("x", 100), ("a", 3), ("b", 4)], &Luts::default());
    }

    #[test]
    fn wide_leaf_under_non_commutative_root_second_operand() {
        // o = x - mscore(a, b): wide leaf in second operand forces a cut.
        let mut g = Dfg::new("sub-wide");
        let x = g.ext("x");
        let a = g.ext("a");
        let b = g.ext("b");
        let s = g.match_score(a, b);
        let o = g.sub(x, s);
        g.set_output("o", o);
        check_equivalence(
            &g,
            &[("x", 100), ("a", 1), ("b", 1)],
            &Luts::with_scores(5, -5),
        );
        check_equivalence(
            &g,
            &[("x", 100), ("a", 1), ("b", 2)],
            &Luts::with_scores(5, -5),
        );
    }

    #[test]
    fn duplicated_operand_edges() {
        // o = t + t where t = a + b.
        let mut g = Dfg::new("dup");
        let a = g.ext("a");
        let b = g.ext("b");
        let t = g.add(a, b);
        let o = g.add(t, t);
        g.set_output("o", o);
        check_equivalence(&g, &[("a", 2), ("b", 3)], &Luts::default());
    }

    #[test]
    fn output_also_consumed_internally() {
        // e is both a named output and an operand of h.
        let mut g = Dfg::new("shared-out");
        let a = g.ext("a");
        let b = g.ext("b");
        let e = g.add(a, b);
        let h = g.max(e, a);
        g.set_output("e", e);
        g.set_output("h", h);
        check_equivalence(&g, &[("a", 4), ("b", -2)], &Luts::default());
    }

    #[test]
    fn layout_is_complete() {
        let mut g = Dfg::new("layout");
        let a = g.ext("a");
        let b = g.ext("b");
        let s = g.add(a, b);
        g.set_output("s", s);
        let m = map_dfg(&g);
        assert_eq!(m.layout.ext_slot("a"), Some(0));
        assert_eq!(m.layout.ext_slot("b"), Some(1));
        assert_eq!(m.layout.ext_slot("zap"), None);
        assert!(m.layout.output_slot("s").unwrap() >= 2);
        assert_eq!(m.layout.slot_count(), 3);
        assert_eq!(m.layout.ext_slots().len(), 2);
        assert_eq!(m.layout.output_slots().len(), 1);
    }

    #[test]
    fn scheduler_respects_dependencies() {
        // A long chain cannot be packed into fewer cycles than its depth.
        let mut g = Dfg::new("deps");
        let x = g.ext("x");
        let one = g.imm(1);
        let mut cur: Input = x;
        for _ in 0..6 {
            cur = g.add(cur, one);
        }
        g.set_output("o", cur);
        let m = map_dfg(&g);
        // Six adds pair into three subgraphs, all serially dependent.
        assert_eq!(m.subgraphs.len(), 3);
        assert_eq!(m.program.len(), 3);
    }
}
