//! One intentionally broken fixture per rule, each asserting that exactly
//! that rule fires exactly once — the acceptance contract of the
//! verifier's rule registry.

use gendp_isa::{
    ComputeOp, ComputeProgram, ControlProgram, CuInst, Mode, Operand, TreeSlots, VliwInst,
};
use gendp_verify::{PeContract, Report, Rule, Severity, Verifier};

fn ctrl(text: &str) -> ControlProgram {
    text.parse().expect("fixture parses")
}

fn assert_fires_once(report: &Report, rule: Rule) {
    assert_eq!(
        report.of_rule(rule).count(),
        1,
        "expected {rule} exactly once, got: {report}"
    );
}

/// A clean loop program: everything initialized, in bounds, terminating.
#[test]
fn clean_program_has_no_diagnostics() {
    let p = ctrl(
        "li a[0] 0\nli a[1] 3\nmv rf[0] in\nmv spm[a0+0] rf[0]\nmv out rf[0]\n\
         addi a0 a0 1\nblt a0 a1 -4\nhalt",
    );
    let report = Verifier::default().verify_control(&p);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn def_before_use_fires_once() {
    // a1 is read (branch + addi) without ever being written; a0 is fine.
    let p = ctrl("li a[0] 0\naddi a0 a1 1\nhalt");
    let report = Verifier::default().verify_control(&p);
    assert_fires_once(&report, Rule::DefBeforeUse);
    assert_eq!(report.diagnostics().len(), 1);
}

#[test]
fn scratchpad_oob_fires_once_direct() {
    let p = ctrl("mv rf[0] spm[5000]\nhalt");
    let report = Verifier::default().verify_control(&p);
    assert_fires_once(&report, Rule::AddrBounds);
    assert!(report.has_errors());
}

#[test]
fn scratchpad_oob_fires_once_symbolic() {
    // a0 walks 0..=4 with stride 1000: definitely exceeds 1024 words on
    // some iteration, and the interval analysis must see it through the
    // loop join.
    let p = ctrl("li a[0] 2000\nli a[1] 5\nli a[2] 0\nmv rf[0] spm[a0+0]\nhalt");
    let report = Verifier::default().verify_control(&p);
    assert_fires_once(&report, Rule::AddrBounds);
    assert_eq!(
        report.of_rule(Rule::AddrBounds).next().unwrap().severity,
        Severity::Error
    );
}

#[test]
fn possible_oob_is_a_warning() {
    // a0 ∈ {0, 1020} depending on a data-driven branch; +8 may or may
    // not exceed 1024.
    let p = ctrl(
        "li a[0] 0\nmv a[1] in\nli a[2] 1\nbeq a1 a2 2\nli a[0] 1020\nmv rf[0] spm[a0+8]\nhalt",
    );
    let report = Verifier::default().verify_control(&p);
    let diag = report.of_rule(Rule::AddrBounds).next().expect("fires");
    assert_eq!(diag.severity, Severity::Warning);
}

#[test]
fn fifo_imbalance_fires_once() {
    // Two pushes, one pop, in one self-looping program.
    let p = ctrl("li a[0] 7\nmv fifo a[0]\nmv fifo a[0]\nmv rf[0] fifo\nhalt");
    let report = Verifier::default().verify_control(&p);
    assert_fires_once(&report, Rule::FifoBalance);
}

#[test]
fn array_level_fifo_imbalance_fires_once() {
    // pe1 (last of two) pushes twice; pe0 pops once.
    let last = ctrl("li a[0] 1\nmv fifo a[0]\nmv fifo a[0]\nhalt");
    let first = ctrl("mv rf[0] fifo\nhalt");
    let empty = ComputeProgram::new();
    let report = Verifier::default().verify_array(&[(&first, &empty), (&last, &empty)]);
    assert_fires_once(&report, Rule::FifoBalance);
}

#[test]
fn fifo_discipline_fires_once() {
    // pe0 of a 2-PE chain pushes: only the last PE may push.
    let first = ctrl("li a[0] 1\nmv fifo a[0]\nmv rf[0] fifo\nhalt");
    let last = ctrl("halt");
    let empty = ComputeProgram::new();
    let report = Verifier::default().verify_array(&[(&first, &empty), (&last, &empty)]);
    assert_fires_once(&report, Rule::FifoDiscipline);
}

#[test]
fn invalid_branch_target_fires_once() {
    let p = ctrl("li a[0] 0\nli a[1] 1\nblt a0 a1 -5\nhalt");
    let report = Verifier::default().verify_control(&p);
    assert_fires_once(&report, Rule::BranchTarget);
    assert!(report.has_errors());
}

#[test]
fn branch_past_end_is_a_warning() {
    let p = ctrl("li a[0] 0\nli a[1] 1\nblt a0 a1 9\nhalt");
    let report = Verifier::default().verify_control(&p);
    let diag = report.of_rule(Rule::BranchTarget).next().expect("fires");
    assert_eq!(diag.severity, Severity::Warning);
}

#[test]
fn loop_without_counter_update_fires_once() {
    let p = ctrl("li a[0] 0\nli a[1] 3\nnop\nblt a0 a1 -1\nhalt");
    let report = Verifier::default().verify_control(&p);
    assert_fires_once(&report, Rule::LoopTermination);
}

#[test]
fn space_legality_fires_for_each_illegal_direction() {
    let read_out = ctrl("mv rf[0] out\nhalt");
    assert_fires_once(
        &Verifier::default().verify_control(&read_out),
        Rule::SpaceLegality,
    );
    let write_in = ctrl("mv in rf[0]\nhalt");
    assert_fires_once(
        &Verifier::default().verify_control(&write_in),
        Rule::SpaceLegality,
    );
    let set_pe = ctrl("set pe1 0\nhalt");
    assert_fires_once(
        &Verifier::default().verify_control(&set_pe),
        Rule::SpaceLegality,
    );
}

#[test]
fn set_cu_past_compute_end_fires_once() {
    let control = ctrl("set cu 9\nhalt");
    let mut compute = ComputeProgram::new();
    compute.push(VliwInst::NOP);
    compute.finish();
    let report = Verifier::default().verify_pe(0, &control, &compute);
    assert_fires_once(&report, Rule::BranchTarget);
}

fn tree(wide_op: ComputeOp, wide: [Operand; 4], dest: u16) -> CuInst {
    CuInst::Tree(TreeSlots {
        wide_op,
        wide_ins: wide,
        narrow_op: ComputeOp::Nop,
        narrow_ins: [Operand::Imm(0); 2],
        root_op: ComputeOp::Copy,
        dest,
    })
}

#[test]
fn vliw_slot_conflict_fires_once() {
    let mut p = ComputeProgram::new();
    p.push(VliwInst::pair(
        CuInst::Mul {
            a: Operand::Reg(0),
            b: Operand::Reg(1),
            dest: 7,
        },
        tree(
            ComputeOp::Add,
            [
                Operand::Reg(2),
                Operand::Reg(3),
                Operand::Imm(0),
                Operand::Imm(0),
            ],
            7,
        ),
    ));
    p.finish();
    let report = Verifier::default().verify_compute(&p);
    assert_fires_once(&report, Rule::SlotConflict);
}

#[test]
fn wide_op_in_narrow_slot_is_a_slot_conflict() {
    let mut p = ComputeProgram::new();
    p.push(VliwInst::single(CuInst::Tree(TreeSlots {
        wide_op: ComputeOp::Add,
        wide_ins: [
            Operand::Reg(0),
            Operand::Reg(1),
            Operand::Imm(0),
            Operand::Imm(0),
        ],
        narrow_op: ComputeOp::MatchScore,
        narrow_ins: [Operand::Reg(2), Operand::Reg(3)],
        root_op: ComputeOp::Add,
        dest: 4,
    })));
    p.finish();
    let report = Verifier::default().verify_compute(&p);
    assert_fires_once(&report, Rule::SlotConflict);
}

#[test]
fn simd_width_mismatch_fires_once() {
    // An 8-bit SIMD array cannot encode the immediate 300 in one lane.
    let mut p = ComputeProgram::new();
    p.push(VliwInst::single(tree(
        ComputeOp::Add,
        [
            Operand::Reg(0),
            Operand::Imm(300),
            Operand::Imm(0),
            Operand::Imm(0),
        ],
        1,
    )));
    p.finish();
    let verifier = Verifier::new(PeContract::new().mode(Mode::Int8x4));
    let report = verifier.verify_compute(&p);
    assert_fires_once(&report, Rule::SimdWidth);
    // The same program is fine on a 32-bit array.
    assert!(Verifier::default().verify_compute(&p).is_clean());
}

#[test]
fn rf_bounds_fires_once() {
    let mut p = ComputeProgram::new();
    p.push(VliwInst::single(CuInst::Mul {
        a: Operand::Reg(999),
        b: Operand::Imm(2),
        dest: 1,
    }));
    p.finish();
    let report = Verifier::default().verify_compute(&p);
    assert_fires_once(&report, Rule::RfBounds);
}

#[test]
fn joint_rf_def_before_use_fires_once() {
    // Control loads rf[0]; compute reads rf[0] (ok) and rf[5] (never
    // written by anything).
    let control = ctrl("mv rf[0] in\nset cu 0\nmv out rf[1]\nhalt");
    let mut compute = ComputeProgram::new();
    compute.push(VliwInst::single(tree(
        ComputeOp::Add,
        [
            Operand::Reg(0),
            Operand::Reg(5),
            Operand::Imm(0),
            Operand::Imm(0),
        ],
        1,
    )));
    compute.finish();
    let report = Verifier::default().verify_pe(0, &control, &compute);
    assert_fires_once(&report, Rule::DefBeforeUse);
}

#[test]
fn allow_suppresses_a_rule() {
    let p = ctrl("mv rf[0] spm[5000]\nhalt");
    let verifier = Verifier::default().allow(Rule::AddrBounds);
    assert!(verifier.verify_control(&p).is_clean());
}

#[test]
fn dfg_lints_fire() {
    use gendp_dfg::Dfg;

    // No outputs.
    let mut g = Dfg::new("no-out");
    let a = g.ext("a");
    let b = g.ext("b");
    g.add(a, b);
    let report = Verifier::default().verify_dfg(&g);
    assert_fires_once(&report, Rule::DfgOutput);
    // The added node is also unreachable-from-outputs only when outputs
    // exist, so no DfgUnreachable here.
    assert_eq!(report.of_rule(Rule::DfgUnreachable).count(), 0);

    // Unreachable node.
    let mut g = Dfg::new("dead");
    let a = g.ext("a");
    let b = g.ext("b");
    let live = g.add(a, b);
    g.sub(a, b); // dead
    g.set_output("h", live);
    let report = Verifier::default().verify_dfg(&g);
    assert_fires_once(&report, Rule::DfgUnreachable);

    // Multiplier pressure.
    let mut g = Dfg::new("muls");
    let a = g.ext("a");
    let mut acc = g.mul(a, a);
    for _ in 0..3 {
        acc = g.mul(acc, acc);
    }
    g.set_output("m", acc);
    let report = Verifier::default().verify_dfg(&g);
    assert_fires_once(&report, Rule::DfgMulPressure);

    // A well-formed graph is clean.
    let mut g = Dfg::new("clean");
    let a = g.ext("a");
    let b = g.ext("b");
    let s = g.add(a, b);
    g.set_output("h", s);
    assert!(Verifier::default().verify_dfg(&g).is_clean());
}

#[test]
fn empty_control_program_warns_once() {
    let report = Verifier::default().verify_control(&ControlProgram::new());
    assert_fires_once(&report, Rule::EmptyInput);
    assert!(!report.has_errors(), "an empty program runs, it just idles");
}

#[test]
fn dfg_arity_fires_once() {
    use gendp_dfg::Dfg;
    // `push_raw` bypasses the builder asserts, standing in for a graph
    // source (deserializer, generator) that the lints must backstop.
    let mut g = Dfg::new("bad-arity");
    let a = g.ext("a");
    let lone = g.push_raw(gendp_isa::ComputeOp::Add, &[a]);
    g.set_output("h", lone);
    let report = Verifier::default().verify_dfg(&g);
    assert_fires_once(&report, Rule::DfgArity);
}

#[test]
fn dfg_order_fires_once() {
    use gendp_dfg::{Dfg, Input, NodeId};
    // Node v0 reads v1: a forward reference the checked builders refuse.
    let mut g = Dfg::new("bad-order");
    let a = g.ext("a");
    let fwd = g.push_raw(gendp_isa::ComputeOp::Add, &[Input::Node(NodeId(1)), a]);
    g.add(a, a); // v1, so the forward reference resolves and reachability walks it
    g.set_output("h", fwd);
    let report = Verifier::default().verify_dfg(&g);
    assert_fires_once(&report, Rule::DfgOrder);
}

/// The registry meta-test: one broken fixture per rule, so a new rule
/// cannot land without a regression fixture that triggers it. Each arm
/// returns a report in which exactly that rule must appear.
#[test]
fn every_rule_has_a_triggering_fixture() {
    use gendp_dfg::{Dfg, Input, NodeId};

    for rule in Rule::ALL {
        let v = Verifier::default();
        let report = match rule {
            Rule::BranchTarget => {
                v.verify_control(&ctrl("li a[0] 0\nli a[1] 1\nblt a0 a1 -5\nhalt"))
            }
            Rule::DefBeforeUse => v.verify_control(&ctrl("li a[0] 0\naddi a0 a1 1\nhalt")),
            Rule::AddrBounds => v.verify_control(&ctrl("mv rf[0] spm[5000]\nhalt")),
            Rule::FifoDiscipline => {
                let first = ctrl("li a[0] 1\nmv fifo a[0]\nmv rf[0] fifo\nhalt");
                let last = ctrl("halt");
                let empty = ComputeProgram::new();
                v.verify_array(&[(&first, &empty), (&last, &empty)])
            }
            Rule::FifoBalance => v.verify_control(&ctrl(
                "li a[0] 7\nmv fifo a[0]\nmv fifo a[0]\nmv rf[0] fifo\nhalt",
            )),
            Rule::LoopTermination => {
                v.verify_control(&ctrl("li a[0] 0\nli a[1] 3\nnop\nblt a0 a1 -1\nhalt"))
            }
            Rule::SlotConflict => {
                let mut p = ComputeProgram::new();
                p.push(VliwInst::pair(
                    CuInst::Mul {
                        a: Operand::Reg(0),
                        b: Operand::Reg(1),
                        dest: 7,
                    },
                    tree(
                        ComputeOp::Add,
                        [
                            Operand::Reg(2),
                            Operand::Reg(3),
                            Operand::Imm(0),
                            Operand::Imm(0),
                        ],
                        7,
                    ),
                ));
                p.finish();
                v.verify_compute(&p)
            }
            Rule::SpaceLegality => v.verify_control(&ctrl("mv rf[0] out\nhalt")),
            Rule::SimdWidth => {
                let mut p = ComputeProgram::new();
                p.push(VliwInst::single(tree(
                    ComputeOp::Add,
                    [
                        Operand::Reg(0),
                        Operand::Imm(300),
                        Operand::Imm(0),
                        Operand::Imm(0),
                    ],
                    1,
                )));
                p.finish();
                Verifier::new(PeContract::new().mode(Mode::Int8x4)).verify_compute(&p)
            }
            Rule::RfBounds => {
                let mut p = ComputeProgram::new();
                p.push(VliwInst::single(CuInst::Mul {
                    a: Operand::Reg(999),
                    b: Operand::Imm(2),
                    dest: 1,
                }));
                p.finish();
                v.verify_compute(&p)
            }
            Rule::EmptyInput => v.verify_control(&ControlProgram::new()),
            Rule::DfgArity => {
                let mut g = Dfg::new("bad-arity");
                let a = g.ext("a");
                let lone = g.push_raw(gendp_isa::ComputeOp::Add, &[a]);
                g.set_output("h", lone);
                v.verify_dfg(&g)
            }
            Rule::DfgOrder => {
                let mut g = Dfg::new("bad-order");
                let a = g.ext("a");
                let fwd = g.push_raw(gendp_isa::ComputeOp::Add, &[Input::Node(NodeId(1)), a]);
                g.add(a, a);
                g.set_output("h", fwd);
                v.verify_dfg(&g)
            }
            Rule::DfgOutput => {
                let mut g = Dfg::new("no-out");
                let a = g.ext("a");
                let b = g.ext("b");
                g.add(a, b);
                v.verify_dfg(&g)
            }
            Rule::DfgUnreachable => {
                let mut g = Dfg::new("dead");
                let a = g.ext("a");
                let b = g.ext("b");
                let live = g.add(a, b);
                g.sub(a, b);
                g.set_output("h", live);
                v.verify_dfg(&g)
            }
            Rule::DfgMulPressure => {
                let mut g = Dfg::new("muls");
                let a = g.ext("a");
                let mut acc = g.mul(a, a);
                for _ in 0..3 {
                    acc = g.mul(acc, acc);
                }
                g.set_output("m", acc);
                v.verify_dfg(&g)
            }
        };
        assert!(
            report.of_rule(rule).count() >= 1,
            "rule {rule} has no fixture that triggers it; report: {report}"
        );
    }
}

#[test]
fn reports_are_deterministic() {
    let p =
        ctrl("addi a0 a1 1\nmv rf[0] spm[5000]\nmv fifo a[0]\nmv fifo a[0]\nmv rf[1] fifo\nhalt");
    let r1 = Verifier::default().verify_control(&p);
    let r2 = Verifier::default().verify_control(&p);
    assert_eq!(r1, r2);
    assert!(r1.diagnostics().len() >= 3);
}
