//! Property tests: the verifier is *total* (it never panics, whatever
//! garbage it is fed) and *deterministic* (the same program always gets
//! the byte-identical report). Programs are grown from random recipes and
//! by mutating a known-good kernel loop — the adversarial inputs a
//! compiler bug or a hand-written kernel typo would produce.

use gendp_isa::{
    AddrReg, BranchCond, ComputeOp, ComputeProgram, ControlInst, ControlProgram, CuInst, Loc, Mode,
    Operand, SetTarget, Space, TreeSlots, VliwInst,
};
use gendp_verify::{PeContract, Rule, Verifier};
use proptest::prelude::*;

const SPACES: [Space; 8] = [
    Space::Rf,
    Space::Spm,
    Space::In,
    Space::Out,
    Space::Fifo,
    Space::InBuf,
    Space::OutBuf,
    Space::Areg,
];

const CONDS: [BranchCond; 4] = [
    BranchCond::Eq,
    BranchCond::Ne,
    BranchCond::Ge,
    BranchCond::Lt,
];

/// Selector bundle for one random control instruction.
type InstSel = (u8, u8, u8, i32, i16, u8, u8, u16, u16);

fn loc_from(space_sel: u8, shape: u8, addr: u16, off: i16) -> Loc {
    let space = SPACES[space_sel as usize % SPACES.len()];
    if !space.is_addressed() {
        Loc::port(space)
    } else if shape.is_multiple_of(2) {
        Loc::direct(space, addr % 4096)
    } else {
        Loc::indirect(space, (addr % 24) as u8, off % 64)
    }
}

fn inst_from(sel: InstSel) -> ControlInst {
    let (op, a, b, imm32, off, s1, s2, ad1, ad2) = sel;
    let (ra, rb) = (AddrReg(a % 24), AddrReg(b % 24));
    match op % 8 {
        0 => ControlInst::Add {
            rd: ra,
            rs1: rb,
            rs2: AddrReg((a ^ b) % 24),
        },
        1 => ControlInst::Addi {
            rd: ra,
            rs1: rb,
            imm: imm32,
        },
        2 => ControlInst::Li {
            dest: loc_from(s1, a, ad1, off),
            imm: imm32,
        },
        3 => ControlInst::Mv {
            dest: loc_from(s1, a, ad1, off),
            src: loc_from(s2, b, ad2, off.wrapping_add(1)),
        },
        4 => ControlInst::Branch {
            cond: CONDS[a as usize % CONDS.len()],
            rs1: ra,
            rs2: rb,
            offset: off % 64,
        },
        5 => ControlInst::Set {
            target: if a % 2 == 0 {
                SetTarget::Compute
            } else {
                SetTarget::Pe(b % 8)
            },
            pc: ad1 % 64,
        },
        6 => ControlInst::Nop,
        _ => ControlInst::Halt,
    }
}

fn program_from(sels: &[InstSel]) -> ControlProgram {
    sels.iter().copied().map(inst_from).collect()
}

fn inst_sel() -> impl Strategy<Value = InstSel> {
    (
        (any::<u8>(), any::<u8>(), any::<u8>()),
        (-10_000i32..10_000, any::<i16>()),
        (any::<u8>(), any::<u8>(), any::<u16>(), any::<u16>()),
    )
        .prop_map(|((op, a, b), (imm, off), (s1, s2, ad1, ad2))| {
            (op, a, b, imm, off, s1, s2, ad1, ad2)
        })
}

/// The clean seed loop every mutation starts from (same shape as the
/// generated kernel programs: init, stream, store, loop).
fn seed_program() -> Vec<ControlInst> {
    let text = "li a[0] 0\nli a[1] 8\nmv rf[0] in\nmv spm[a0+0] rf[0]\nmv out rf[0]\n\
                addi a0 a0 1\nblt a0 a1 -4\nhalt";
    let p: ControlProgram = text.parse().expect("seed parses");
    p.iter().copied().collect()
}

fn compute_from(raw: &[(u8, u16, u16, i32, u16)]) -> ComputeProgram {
    const OPS: [ComputeOp; 6] = [
        ComputeOp::Add,
        ComputeOp::Sub,
        ComputeOp::Mul,
        ComputeOp::Max,
        ComputeOp::MatchScore,
        ComputeOp::Nop,
    ];
    let mut p = ComputeProgram::new();
    for &(sel, a, b, imm, dest) in raw {
        let op = OPS[sel as usize % OPS.len()];
        let slot = if sel % 3 == 0 {
            CuInst::Mul {
                a: Operand::Reg(a % 512),
                b: Operand::Imm(imm),
                dest: dest % 512,
            }
        } else {
            CuInst::Tree(TreeSlots {
                wide_op: op,
                wide_ins: [
                    Operand::Reg(a % 512),
                    Operand::Imm(imm),
                    Operand::Reg(b % 512),
                    Operand::Imm(0),
                ],
                narrow_op: if sel % 2 == 0 {
                    ComputeOp::Nop
                } else {
                    ComputeOp::Max
                },
                narrow_ins: [Operand::Reg(b % 512), Operand::Imm(imm)],
                root_op: ComputeOp::Add,
                dest: dest % 512,
            })
        };
        if sel % 4 == 0 {
            p.push(VliwInst::pair(slot, CuInst::Nop));
        } else {
            p.push(VliwInst::single(slot));
        }
    }
    p.finish();
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary instruction soup: the verifier terminates without
    /// panicking and two runs agree exactly.
    #[test]
    fn random_control_programs_never_panic(sels in prop::collection::vec(inst_sel(), 0..40)) {
        let p = program_from(&sels);
        let r1 = Verifier::default().verify_control(&p);
        let r2 = Verifier::default().verify_control(&p);
        prop_assert_eq!(r1, r2);
    }

    /// Single-point mutations of a known-good kernel loop: still total,
    /// still deterministic, and never *more* broken than one mutation can
    /// explain (the clean seed itself stays clean).
    #[test]
    fn mutated_seed_programs_never_panic(
        idx in 0usize..8,
        sel in inst_sel(),
        swap in any::<bool>(),
    ) {
        let mut insts = seed_program();
        if swap {
            let j = (idx + 1) % insts.len();
            insts.swap(idx, j);
        } else {
            let k = idx % insts.len();
            insts[k] = inst_from(sel);
        }
        let p: ControlProgram = insts.into_iter().collect();
        let r1 = Verifier::default().verify_control(&p);
        let r2 = Verifier::default().verify_control(&p);
        prop_assert_eq!(r1, r2);
    }

    /// Random VLIW programs under every SIMD mode: total and
    /// deterministic.
    #[test]
    fn random_compute_programs_never_panic(
        raw in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u16>(), any::<i32>(), any::<u16>()), 0..24),
        mode_sel in 0u8..4,
    ) {
        let mode = [Mode::Int32, Mode::Int16x2, Mode::Int8x4, Mode::Float32][mode_sel as usize];
        let p = compute_from(&raw);
        let v = Verifier::new(PeContract::new().mode(mode));
        let r1 = v.verify_compute(&p);
        let r2 = v.verify_compute(&p);
        prop_assert_eq!(r1, r2);
    }

    /// Suppressing a rule removes exactly that rule's diagnostics and
    /// nothing else.
    #[test]
    fn allow_removes_exactly_that_rule(
        sels in prop::collection::vec(inst_sel(), 0..30),
        rule_sel in 0usize..Rule::ALL.len(),
    ) {
        let p = program_from(&sels);
        let rule = Rule::ALL[rule_sel];
        let full = Verifier::default().verify_control(&p);
        let filtered = Verifier::default().allow(rule).verify_control(&p);
        prop_assert_eq!(filtered.of_rule(rule).count(), 0);
        prop_assert_eq!(
            filtered.diagnostics().len(),
            full.diagnostics().len() - full.of_rule(rule).count()
        );
    }

    /// Joint PE verification (control + compute sharing one RF) is total
    /// and deterministic too.
    #[test]
    fn random_pe_pairs_never_panic(
        sels in prop::collection::vec(inst_sel(), 0..20),
        raw in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u16>(), any::<i32>(), any::<u16>()), 0..12),
    ) {
        let control = program_from(&sels);
        let compute = compute_from(&raw);
        let r1 = Verifier::default().verify_pe(0, &control, &compute);
        let r2 = Verifier::default().verify_pe(0, &control, &compute);
        prop_assert_eq!(r1, r2);
    }
}

#[test]
fn seed_program_is_clean() {
    let p: ControlProgram = seed_program().into_iter().collect();
    assert!(Verifier::default().verify_control(&p).is_clean());
}
