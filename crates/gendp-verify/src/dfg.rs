//! Lints over data-flow graphs, replacing the stringly
//! `Dfg::validate`.

use std::collections::BTreeSet;

use gendp_dfg::{Dfg, Input, NodeId};

use crate::diag::{DiagLoc, Diagnostic, Report, Rule};

pub(crate) fn check_dfg(dfg: &Dfg) -> Report {
    let mut report = Report::new();
    let len = dfg.len();

    for id in dfg.node_ids() {
        let op = dfg.op(id);
        let inputs = dfg.inputs(id);
        if inputs.len() != op.arity() {
            report.push(Diagnostic::new(
                Rule::DfgArity,
                DiagLoc::Dfg { node: id.0 },
                format!(
                    "{op} takes {} operands, node v{} has {}",
                    op.arity(),
                    id.0,
                    inputs.len()
                ),
            ));
        }
        for input in inputs {
            if let Input::Node(NodeId(p)) = input {
                if *p >= id.0 {
                    report.push(
                        Diagnostic::new(
                            Rule::DfgOrder,
                            DiagLoc::Dfg { node: id.0 },
                            format!(
                                "node v{} reads v{p}, which is not strictly earlier \
                                 (cycle or broken topological order)",
                                id.0
                            ),
                        )
                        .suggest("re-emit nodes in dependency order"),
                    );
                }
            }
        }
    }

    if dfg.outputs().count() == 0 {
        report.push(
            Diagnostic::new(
                Rule::DfgOutput,
                DiagLoc::Program,
                "the graph declares no outputs, so DPMap has nothing to schedule",
            )
            .suggest("name at least one node with set_output"),
        );
    }
    for (name, NodeId(id)) in dfg.outputs() {
        if id >= len {
            report.push(Diagnostic::new(
                Rule::DfgOutput,
                DiagLoc::Program,
                format!("output `{name}` points at missing node v{id}"),
            ));
        }
    }

    // Reachability: walk parents from every (existing) output node; any
    // node outside the reached set is dead work DPMap would still map.
    let mut reached: BTreeSet<usize> = BTreeSet::new();
    let mut stack: Vec<NodeId> = dfg
        .outputs()
        .map(|(_, id)| id)
        .filter(|id| id.0 < len)
        .collect();
    while let Some(id) = stack.pop() {
        if reached.insert(id.0) {
            stack.extend(dfg.parents(id));
        }
    }
    if dfg.outputs().count() > 0 {
        for id in dfg.node_ids() {
            if !reached.contains(&id.0) {
                report.push(
                    Diagnostic::new(
                        Rule::DfgUnreachable,
                        DiagLoc::Dfg { node: id.0 },
                        format!("no output depends on node v{} ({})", id.0, dfg.op(id)),
                    )
                    .suggest("drop the node or connect it to an output"),
                );
            }
        }
    }

    // Multiplier feasibility: each PE has two multipliers (one per CU), so
    // a cell routine with more multiplies than other work serializes on
    // them (paper §7.4: Mul maps only to the dedicated multiplier).
    let muls = dfg.node_ids().filter(|&id| dfg.op(id).is_mul()).count();
    let others = len - muls;
    if muls > others && muls > 2 {
        report.push(
            Diagnostic::new(
                Rule::DfgMulPressure,
                DiagLoc::Program,
                format!(
                    "{muls} of {len} nodes are multiplies; the two per-PE multipliers \
                     bound the schedule to at least {} cycles",
                    muls.div_ceil(2)
                ),
            )
            .suggest("strength-reduce multiplies or accept the longer cell routine"),
        );
    }

    report
}
