//! # gendp-verify
//!
//! A static verifier for GenDP ISA programs and data-flow graphs.
//!
//! GenDP's programmability (paper §4.4: decoupled control ISA plus 2-way
//! VLIW compute ISA) means DPMap-generated and hand-written PE programs
//! can read registers nothing wrote, overrun the scratchpad, unbalance the
//! inter-PE FIFO, or double-write a VLIW slot — and without this crate the
//! only way to find out was to run the cycle-level simulator and watch it
//! fault. `gendp-verify` proves a program respects the PE contract
//! *before* any cycle is simulated:
//!
//! * a typed [`Diagnostic`] model — [`Rule`] registry, [`Severity`],
//!   instruction-level [`DiagLoc`]s, suggested fixes, and `allow`-style
//!   per-rule suppression on the [`Verifier`];
//! * dataflow analyses over [`ControlProgram`]s built on an
//!   abstract-interpretation fixpoint across the control-flow graph:
//!   def-before-use on address registers, symbolic interval bounds for
//!   indirect scratchpad / register-file addresses, FIFO push/pop balance
//!   along all control paths, branch-target validity, and a
//!   decreasing-counter loop-termination lint;
//! * structural VLIW checks over [`ComputeProgram`]s: slot write
//!   conflicts, tree-slot operator legality, register-file bounds, and
//!   SIMD lane-width consistency with the array [`Mode`](gendp_isa::Mode);
//! * DFG lints replacing the stringly `Dfg::validate`: arity and
//!   topological-order violations, missing or absent outputs, unreachable
//!   nodes, and multiplier-pressure feasibility for DPMap.
//!
//! The verifier is wired end-to-end: `gendp-dpmap` refuses invalid DFGs
//! with a typed [`Report`] and hard-errors if its own codegen emits a
//! program that fails verification; `gendp-dpax` gates every simulation
//! behind a pre-run verify pass (opt out with `PeArrayConfig::verify =
//! false`); `gendp-runtime` rejects failing tasks before they consume
//! queue slots; and the `gendp-verify` CLI lints program files with
//! rustc-style rendered diagnostics.
//!
//! ```
//! use gendp_isa::ControlProgram;
//! use gendp_verify::{Rule, Verifier};
//!
//! let program: ControlProgram = "
//!     li a[0] 0
//!     li a[1] 3
//!     mv rf[0] in
//!     mv out rf[0]
//!     addi a0 a0 1
//!     blt a0 a1 -3
//!     halt
//! ".parse().unwrap();
//! assert!(Verifier::default().verify_control(&program).is_clean());
//!
//! let broken: ControlProgram = "mv rf[9999] in\nhalt".parse().unwrap();
//! let report = Verifier::default().verify_control(&broken);
//! assert_eq!(report.of_rule(Rule::AddrBounds).count(), 1);
//! ```

mod certificate;
mod compute;
mod contract;
mod control;
mod dfg;
mod diag;
mod interval;
mod render;

pub use certificate::{Certificate, PeCertificate};
pub use contract::PeContract;
pub use diag::{DiagLoc, Diagnostic, Report, Rule, Severity};
pub use interval::{BoundsVerdict, Interval};
pub use render::render_source_diagnostics;

use std::collections::BTreeSet;

use gendp_isa::{Addr, ComputeProgram, ControlInst, ControlProgram, CuInst, Space};

use crate::control::ControlAnalysis;

/// The static analyzer: a [`PeContract`] plus suppressed rules.
///
/// All `verify_*` methods are pure and deterministic: the same input
/// yields the same [`Report`], in the same order.
#[derive(Debug, Clone, Default)]
pub struct Verifier {
    contract: PeContract,
    allowed: BTreeSet<Rule>,
}

impl Verifier {
    /// A verifier for the given hardware contract.
    pub fn new(contract: PeContract) -> Self {
        Verifier {
            contract,
            allowed: BTreeSet::new(),
        }
    }

    /// Suppresses one rule (`#[allow]`-style), returning `self`.
    pub fn allow(mut self, rule: Rule) -> Self {
        self.allowed.insert(rule);
        self
    }

    /// The contract programs are checked against.
    pub fn contract(&self) -> &PeContract {
        &self.contract
    }

    fn filtered(&self, report: Report) -> Report {
        if self.allowed.is_empty() {
            return report;
        }
        let mut out = Report::new();
        for diag in report.diagnostics() {
            if !self.allowed.contains(&diag.rule) {
                out.push(diag.clone());
            }
        }
        out
    }

    /// Verifies one control program with unknown array position: all
    /// dataflow rules, minus position-dependent FIFO discipline. A
    /// program that both pushes and pops the FIFO is assumed to loop onto
    /// itself and must balance.
    pub fn verify_control(&self, program: &ControlProgram) -> Report {
        let analysis = ControlAnalysis::new(&self.contract, None, self.contract.n_pes, None);
        let outcome = analysis.run(program);
        let mut report = outcome.report;
        if program.is_empty() {
            report.push(
                Diagnostic::new(
                    Rule::EmptyInput,
                    DiagLoc::Program,
                    "the control program has no instructions; the PE halts immediately",
                )
                .warning()
                .suggest("write at least one instruction, or drop the program"),
            );
        }
        if let Some(fifo) = outcome.fifo {
            if let (Some(pushes), Some(pops)) = (fifo.exact_pushes(), fifo.exact_pops()) {
                if pushes > 0 && pops > 0 && pushes != pops {
                    report.push(
                        Diagnostic::new(
                            Rule::FifoBalance,
                            DiagLoc::Program,
                            format!(
                                "program pushes {pushes} FIFO words but pops {pops}; \
                                 leftovers deadlock the next consumer"
                            ),
                        )
                        .suggest("make every pushed word get popped exactly once"),
                    );
                }
            }
        }
        self.filtered(report)
    }

    /// Verifies one compute program structurally against the contract.
    pub fn verify_compute(&self, program: &ComputeProgram) -> Report {
        self.filtered(compute::check_compute(&self.contract, program))
    }

    /// Verifies the control and compute programs of the PE at position
    /// `pe` in a chain of [`PeContract::n_pes`]: everything
    /// [`verify_control`](Self::verify_control) checks plus FIFO position
    /// discipline, `set cu` target validity, and a joint register-file
    /// def-before-use check across both threads.
    pub fn verify_pe(
        &self,
        pe: usize,
        control: &ControlProgram,
        compute: &ComputeProgram,
    ) -> Report {
        let analysis = ControlAnalysis::new(
            &self.contract,
            Some(pe),
            self.contract.n_pes,
            Some(compute.len()),
        );
        let mut report = analysis.run(control).report;
        report.merge(compute::check_compute(&self.contract, compute));
        report.merge(joint_rf_check(control, compute));
        self.filtered(report)
    }

    /// Verifies a whole array: each `(control, compute)` pair at its
    /// position (`units.len()` is the chain length, overriding the
    /// contract's `n_pes` for position checks), shared compute programs
    /// only once, plus array-wide FIFO push/pop balance.
    pub fn verify_array(&self, units: &[(&ControlProgram, &ComputeProgram)]) -> Report {
        self.certify_array(units).0
    }

    /// Like [`verify_array`](Self::verify_array), but keeps the proofs:
    /// returns the report together with a [`Certificate`] carrying
    /// per-space bounds proofs and footprints, a static cycle model
    /// (floor, upper bound, and exact count where the model permits),
    /// certified DP-cell cost, and FIFO traffic bounds.
    ///
    /// The certificate's [`safe`](Certificate::safe) flag is computed
    /// from the *unfiltered* report — `allow`-suppressed errors never
    /// certify a program as safe.
    pub fn certify_array(
        &self,
        units: &[(&ControlProgram, &ComputeProgram)],
    ) -> (Report, Certificate) {
        let n = units.len();
        let mut positional = Verifier {
            contract: self.contract.clone(),
            allowed: self.allowed.clone(),
        };
        positional.contract.n_pes = n;

        let mut report = Report::new();
        let mut total_pushes = Some(0i64);
        let mut total_pops = Some(0i64);
        let mut per_pe_pops: Vec<Option<i64>> = Vec::with_capacity(n);
        let mut computes_seen: Vec<&ComputeProgram> = Vec::new();
        let mut per_pe_cert: Vec<PeCertificate> = Vec::with_capacity(n);

        for (pe, (control, compute)) in units.iter().enumerate() {
            let analysis =
                ControlAnalysis::new(&positional.contract, Some(pe), n, Some(compute.len()));
            let outcome = analysis.run(control);
            report.merge(outcome.report);
            match outcome.fifo {
                Some(fifo) => {
                    total_pushes = total_pushes.zip(fifo.exact_pushes()).map(|(a, b)| a + b);
                    total_pops = total_pops.zip(fifo.exact_pops()).map(|(a, b)| a + b);
                    per_pe_pops.push(fifo.exact_pops());
                }
                None => {
                    total_pushes = None;
                    total_pops = None;
                    per_pe_pops.push(None);
                }
            }
            if !computes_seen.contains(compute) {
                computes_seen.push(compute);
                report.merge(compute::check_compute(&positional.contract, compute));
            }
            report.merge(joint_rf_check(control, compute));

            let rf_footprint = match (outcome.scan.rf, certificate::compute_rf_hull(compute)) {
                (Some(a), Some(b)) => Some(a.join(b)),
                (a, b) => a.or(b),
            };
            per_pe_cert.push(PeCertificate {
                issue: outcome.exit.map_or(Interval::TOP, |e| e.issue),
                compute: outcome.exit.map_or(Interval::TOP, |e| e.compute),
                cu_sets: outcome.exit.map_or(Interval::TOP, |e| e.cu_sets),
                pushes: outcome.fifo.map_or(Interval::TOP, |f| f.pushes),
                pops: outcome.fifo.map_or(Interval::TOP, |f| f.pops),
                rf_footprint,
                spm_footprint: outcome.scan.spm,
                bounds_proven: outcome.scan.all_in_bounds,
                terminates: outcome.exit.is_some(),
                stall_free: certificate::is_stall_free(control),
            });
        }

        if self.contract.fifo_broadcast {
            // Broadcast mode: every push is delivered to every PE's skid
            // queue, so pops do not drain a shared count. Each PE may pop
            // each pushed word at most once; popping more than was ever
            // pushed is a guaranteed deadlock.
            if let Some(pushes) = total_pushes {
                for (pe, pops) in per_pe_pops.iter().enumerate() {
                    if let Some(pops) = pops {
                        if *pops > pushes {
                            report.push(
                                Diagnostic::new(
                                    Rule::FifoBalance,
                                    DiagLoc::Program,
                                    format!(
                                        "pe{pe} pops {pops} FIFO words but only {pushes} \
                                         are ever pushed (broadcast mode); the extra pops \
                                         deadlock"
                                    ),
                                )
                                .suggest("pop at most once per broadcast word"),
                            );
                        }
                    }
                }
            }
        } else if let (Some(pushes), Some(pops)) = (total_pushes, total_pops) {
            if pushes != pops {
                report.push(
                    Diagnostic::new(
                        Rule::FifoBalance,
                        DiagLoc::Program,
                        format!(
                            "the array pushes {pushes} FIFO words but pops {pops} across \
                             all PEs; the mismatch deadlocks or leaks words"
                        ),
                    )
                    .suggest("balance pushes by the last PE against pops by the first"),
                );
            }
        }
        // Safety is judged on the unfiltered report: `allow` hides
        // diagnostics from the caller, never from the certificate.
        let cert = Certificate::assemble(per_pe_cert, !report.has_errors());
        (self.filtered(report), cert)
    }

    /// Lints a data-flow graph (the typed replacement of
    /// `Dfg::validate`).
    pub fn verify_dfg(&self, dfg: &gendp_dfg::Dfg) -> Report {
        self.filtered(dfg::check_dfg(dfg))
    }
}

/// Register-file def-before-use across both threads of one PE: a compute
/// read of a slot that neither the control program (direct writes) nor
/// the compute program itself ever writes can only observe the reset
/// value. Skipped entirely when the control program writes the register
/// file through an address register, since any slot might be the target.
fn joint_rf_check(control: &ControlProgram, compute: &ComputeProgram) -> Report {
    let mut report = Report::new();
    let mut ctrl_written: BTreeSet<u16> = BTreeSet::new();
    for inst in control.iter() {
        let dest = match inst {
            ControlInst::Li { dest, .. } | ControlInst::Mv { dest, .. } => dest,
            _ => continue,
        };
        if dest.space() == Space::Rf {
            match dest.addr() {
                Addr::Direct(d) => {
                    ctrl_written.insert(d);
                }
                Addr::Indirect { .. } => return report, // any slot may be written
                Addr::None => {}
            }
        }
    }
    let mut compute_written: BTreeSet<u16> = BTreeSet::new();
    for inst in compute.iter() {
        for slot in &inst.slots {
            match slot {
                CuInst::Mul { dest, .. } => {
                    compute_written.insert(*dest);
                }
                CuInst::Tree(tree) => {
                    compute_written.insert(tree.dest);
                }
                CuInst::Nop => {}
            }
        }
    }
    let mut flagged: BTreeSet<u16> = BTreeSet::new();
    for (pc, inst) in compute.iter().enumerate() {
        for (slot_idx, slot) in inst.slots.iter().enumerate() {
            let reads: Vec<u16> = match slot {
                CuInst::Nop => Vec::new(),
                CuInst::Mul { a, b, .. } => [a, b]
                    .iter()
                    .filter_map(|o| match o {
                        gendp_isa::Operand::Reg(r) => Some(*r),
                        _ => None,
                    })
                    .collect(),
                CuInst::Tree(tree) => tree.reg_reads().collect(),
            };
            for r in reads {
                if !ctrl_written.contains(&r) && !compute_written.contains(&r) && flagged.insert(r)
                {
                    report.push(
                        Diagnostic::new(
                            Rule::DefBeforeUse,
                            DiagLoc::Compute {
                                pc,
                                slot: Some(slot_idx),
                            },
                            format!(
                                "r{r} is read but never written by this PE's control or \
                                 compute program"
                            ),
                        )
                        .suggest("load the slot from the control thread or a prior cycle"),
                    );
                }
            }
        }
    }
    report
}
