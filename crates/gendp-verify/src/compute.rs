//! Structural checks of 2-way VLIW compute programs.

use gendp_isa::{ComputeOp, ComputeProgram, CuInst, Mode, Operand, TreeSlots};

use crate::contract::PeContract;
use crate::diag::{DiagLoc, Diagnostic, Report, Rule};

/// Inclusive immediate range of one SIMD lane, `None` when any `i32`
/// fits (scalar modes).
fn lane_range(mode: Mode) -> Option<(i32, i32)> {
    match mode {
        Mode::Int8x4 => Some((i8::MIN as i32, i8::MAX as i32)),
        Mode::Int16x2 => Some((i16::MIN as i32, i16::MAX as i32)),
        Mode::Int32 | Mode::Float32 => None,
    }
}

/// True if `v`, decoded as packed SIMD lanes of this mode, holds the
/// same value in every lane — the idiomatic broadcast encoding of a
/// per-lane constant (e.g. `0x0006_0006` is `6` in both i16x2 lanes).
fn is_equal_lane_pack(mode: Mode, v: i32) -> bool {
    let bits = v as u32;
    match mode {
        Mode::Int16x2 => (bits >> 16) as u16 == bits as u16,
        Mode::Int8x4 => {
            let b = bits.to_le_bytes();
            b.iter().all(|&x| x == b[0])
        }
        Mode::Int32 | Mode::Float32 => true,
    }
}

/// The register a slot writes, if any.
fn slot_dest(slot: &CuInst) -> Option<u16> {
    match slot {
        CuInst::Nop => None,
        CuInst::Mul { dest, .. } | CuInst::Tree(TreeSlots { dest, .. }) => Some(*dest),
    }
}

pub(crate) fn check_compute(contract: &PeContract, program: &ComputeProgram) -> Report {
    let mut report = Report::new();
    for (pc, inst) in program.iter().enumerate() {
        // Slot write conflict: both compute units writing one register in
        // the same cycle leaves its value machine-dependent.
        if let (Some(a), Some(b)) = (slot_dest(&inst.slots[0]), slot_dest(&inst.slots[1])) {
            if a == b {
                report.push(
                    Diagnostic::new(
                        Rule::SlotConflict,
                        DiagLoc::Compute { pc, slot: None },
                        format!("both VLIW slots write r{a} in the same cycle"),
                    )
                    .suggest("give one slot a distinct destination register"),
                );
            }
        }
        for (slot_idx, slot) in inst.slots.iter().enumerate() {
            check_slot(contract, pc, slot_idx, slot, &mut report);
        }
    }
    report
}

fn check_slot(
    contract: &PeContract,
    pc: usize,
    slot_idx: usize,
    slot: &CuInst,
    report: &mut Report,
) {
    let loc = || DiagLoc::Compute {
        pc,
        slot: Some(slot_idx),
    };
    match slot {
        CuInst::Nop => {}
        CuInst::Mul { a, b, dest } => {
            for operand in [a, b] {
                check_operand(contract, loc(), operand, report);
            }
            check_dest(contract, loc(), *dest, report);
        }
        CuInst::Tree(tree) => {
            check_tree_ops(contract, loc(), tree, report);
            for operand in tree.wide_ins[..tree.wide_op.arity().min(4)]
                .iter()
                .chain(tree.narrow_ins[..tree.narrow_op.arity().min(2)].iter())
            {
                check_operand(contract, loc(), operand, report);
            }
            check_dest(contract, loc(), tree.dest, report);
        }
    }
}

/// The tree is a 4-input ALU, a 2-input ALU and a 2-input root: operators
/// must fit their slot, wide-only operators must sit on the wide ALU, and
/// the multiplier is not part of the tree at all.
fn check_tree_ops(contract: &PeContract, loc: DiagLoc, tree: &TreeSlots, report: &mut Report) {
    if tree.narrow_op.arity() > 2 {
        report.push(Diagnostic::new(
            Rule::SlotConflict,
            loc.clone(),
            format!(
                "{} needs {} inputs but the narrow ALU has 2",
                tree.narrow_op,
                tree.narrow_op.arity()
            ),
        ));
    }
    if tree.root_op.arity() > 2 {
        report.push(Diagnostic::new(
            Rule::SlotConflict,
            loc.clone(),
            format!(
                "{} needs {} inputs but the root ALU has 2",
                tree.root_op,
                tree.root_op.arity()
            ),
        ));
    }
    for (op, where_) in [(tree.narrow_op, "narrow"), (tree.root_op, "root")] {
        if op.is_wide() {
            report.push(
                Diagnostic::new(
                    Rule::SlotConflict,
                    loc.clone(),
                    format!("{op} only runs on the 4-input ALU, not the {where_} slot"),
                )
                .suggest("move the operation to the wide slot"),
            );
        }
    }
    for op in [tree.wide_op, tree.narrow_op, tree.root_op] {
        if op.is_mul() {
            report.push(Diagnostic::new(
                Rule::SlotConflict,
                loc.clone(),
                "mul executes on the dedicated multiplier, not the ALU tree",
            ));
        }
    }
    // 16-bit shifts cross lane boundaries in 8-bit SIMD mode.
    if contract.mode == Mode::Int8x4 {
        for op in [tree.wide_op, tree.narrow_op, tree.root_op] {
            if matches!(op, ComputeOp::Shl16 | ComputeOp::Shr16) {
                report.push(Diagnostic::new(
                    Rule::SimdWidth,
                    loc.clone(),
                    format!("{op} shifts by 16 bits, crossing i8x4 lanes"),
                ));
            }
        }
    }
}

fn check_operand(contract: &PeContract, loc: DiagLoc, operand: &Operand, report: &mut Report) {
    match operand {
        Operand::Reg(r) => {
            if *r as usize >= contract.rf_slots {
                report.push(Diagnostic::new(
                    Rule::RfBounds,
                    loc,
                    format!(
                        "operand r{r} is out of bounds for {} register-file slots",
                        contract.rf_slots
                    ),
                ));
            }
        }
        Operand::Imm(v) => {
            // A single-lane value is fine; so is an immediate that is the
            // same constant broadcast into every lane (the idiomatic
            // packed encoding). What remains is a constant that fits
            // neither reading — almost certainly a scalar emitted for the
            // wrong mode.
            if let Some((lo, hi)) = lane_range(contract.mode) {
                if (*v < lo || *v > hi) && !is_equal_lane_pack(contract.mode, *v) {
                    report.push(
                        Diagnostic::new(
                            Rule::SimdWidth,
                            loc,
                            format!(
                                "immediate {v} is neither a single {} lane value \
                                 ([{lo}, {hi}]) nor an equal-lane packed constant",
                                contract.mode
                            ),
                        )
                        .suggest("pack the constant per lane or switch the array mode"),
                    );
                }
            }
        }
    }
}

fn check_dest(contract: &PeContract, loc: DiagLoc, dest: u16, report: &mut Report) {
    if dest as usize >= contract.rf_slots {
        report.push(Diagnostic::new(
            Rule::RfBounds,
            loc,
            format!(
                "destination r{dest} is out of bounds for {} register-file slots",
                contract.rf_slots
            ),
        ));
    }
}
