//! The typed diagnostic model: rules, severities, locations, and reports.

use std::fmt;

/// How serious a diagnostic is.
///
/// Errors describe programs the DPAx simulator would reject (or that are
/// certainly wrong); warnings describe programs that run but are very
/// likely not what the author meant.
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but executable.
    Warning,
    /// Certainly wrong: the simulator would fault, or the result cannot be
    /// what the program intends.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Every check the verifier knows, each with a stable kebab-case id used
/// in rendered diagnostics and `allow(...)` suppressions.
#[derive(Debug, Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// A branch resolves to a program counter outside the program.
    BranchTarget,
    /// A register is read on a path where nothing has written it.
    DefBeforeUse,
    /// A direct or indirect address falls outside its memory space.
    AddrBounds,
    /// A FIFO pop from a PE other than the first, or a push from a PE
    /// other than the last (non-broadcast arrays).
    FifoDiscipline,
    /// Statically countable FIFO pushes and pops do not balance.
    FifoBalance,
    /// A loop's branch operands are never modified inside the loop body.
    LoopTermination,
    /// Both VLIW slots write the same register in one cycle, or an
    /// operator does not fit its tree slot.
    SlotConflict,
    /// A space is used in a direction the PE contract forbids (reading
    /// `out`, writing `in`, touching array-level buffers, `set pe`).
    SpaceLegality,
    /// An immediate does not fit the lane width of the configured SIMD
    /// mode.
    SimdWidth,
    /// A compute operand or destination addresses past the register file.
    RfBounds,
    /// A task or program describes no work (empty sequence, zero-width
    /// band).
    EmptyInput,
    /// A DFG node has the wrong number of inputs for its operator.
    DfgArity,
    /// A DFG node input references a node at or after itself (broken
    /// topological order / cycle).
    DfgOrder,
    /// A DFG output maps to a missing node, or the graph has no outputs.
    DfgOutput,
    /// A DFG node no output depends on.
    DfgUnreachable,
    /// More multiply nodes than the two per-PE multipliers can sustain
    /// without dominating the schedule.
    DfgMulPressure,
}

impl Rule {
    /// Every rule, in registry order.
    pub const ALL: [Rule; 16] = [
        Rule::BranchTarget,
        Rule::DefBeforeUse,
        Rule::AddrBounds,
        Rule::FifoDiscipline,
        Rule::FifoBalance,
        Rule::LoopTermination,
        Rule::SlotConflict,
        Rule::SpaceLegality,
        Rule::SimdWidth,
        Rule::RfBounds,
        Rule::EmptyInput,
        Rule::DfgArity,
        Rule::DfgOrder,
        Rule::DfgOutput,
        Rule::DfgUnreachable,
        Rule::DfgMulPressure,
    ];

    /// Stable kebab-case identifier, e.g. `def-before-use`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::BranchTarget => "branch-target",
            Rule::DefBeforeUse => "def-before-use",
            Rule::AddrBounds => "addr-bounds",
            Rule::FifoDiscipline => "fifo-discipline",
            Rule::FifoBalance => "fifo-balance",
            Rule::LoopTermination => "loop-termination",
            Rule::SlotConflict => "slot-conflict",
            Rule::SpaceLegality => "space-legality",
            Rule::SimdWidth => "simd-width",
            Rule::RfBounds => "rf-bounds",
            Rule::EmptyInput => "empty-input",
            Rule::DfgArity => "dfg-arity",
            Rule::DfgOrder => "dfg-order",
            Rule::DfgOutput => "dfg-output",
            Rule::DfgUnreachable => "dfg-unreachable",
            Rule::DfgMulPressure => "dfg-mul-pressure",
        }
    }

    /// One-line description shown by the CLI's rule listing.
    pub fn description(self) -> &'static str {
        match self {
            Rule::BranchTarget => "branch target must land inside the program",
            Rule::DefBeforeUse => "registers must be written before they are read",
            Rule::AddrBounds => "addresses must stay inside their memory space",
            Rule::FifoDiscipline => "only the first PE pops and the last PE pushes the FIFO",
            Rule::FifoBalance => "FIFO pushes and pops must balance across the array",
            Rule::LoopTermination => "loop branch operands must change inside the loop",
            Rule::SlotConflict => "VLIW slots must not write the same register in one cycle",
            Rule::SpaceLegality => "spaces must be used in directions the PE allows",
            Rule::SimdWidth => "immediates must fit the SIMD lane width",
            Rule::RfBounds => "compute operands must address inside the register file",
            Rule::EmptyInput => "tasks and programs must describe non-empty work",
            Rule::DfgArity => "DFG nodes must have exactly arity() inputs",
            Rule::DfgOrder => "DFG inputs must reference strictly earlier nodes",
            Rule::DfgOutput => "DFG outputs must name existing nodes, and at least one",
            Rule::DfgUnreachable => "every DFG node should feed some output",
            Rule::DfgMulPressure => "multiply nodes should not dominate the schedule",
        }
    }

    /// The severity diagnostics of this rule carry by default.
    pub fn default_severity(self) -> Severity {
        match self {
            Rule::DefBeforeUse
            | Rule::LoopTermination
            | Rule::DfgUnreachable
            | Rule::DfgMulPressure => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Looks a rule up by its [`id`](Rule::id).
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id())
    }
}

/// Where a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DiagLoc {
    /// A control-program instruction, optionally attributed to a PE.
    Ctrl {
        /// PE position in the array, when known.
        pe: Option<usize>,
        /// Instruction index in the control program.
        pc: usize,
    },
    /// A compute-program VLIW word, optionally a specific slot.
    Compute {
        /// VLIW instruction index.
        pc: usize,
        /// Compute-unit slot (0 or 1), when the diagnostic is slot-local.
        slot: Option<usize>,
    },
    /// A data-flow-graph node.
    Dfg {
        /// Node index.
        node: usize,
    },
    /// The program or graph as a whole.
    Program,
}

impl fmt::Display for DiagLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiagLoc::Ctrl { pe: Some(pe), pc } => write!(f, "pe{pe}:ctrl:{pc}"),
            DiagLoc::Ctrl { pe: None, pc } => write!(f, "ctrl:{pc}"),
            DiagLoc::Compute {
                pc,
                slot: Some(slot),
            } => write!(f, "cu:{pc}.{slot}"),
            DiagLoc::Compute { pc, slot: None } => write!(f, "cu:{pc}"),
            DiagLoc::Dfg { node } => write!(f, "node:{node}"),
            DiagLoc::Program => write!(f, "program"),
        }
    }
}

/// One finding: a rule violation at a location, with an optional
/// suggested fix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// Error or warning.
    pub severity: Severity,
    /// Where it fired.
    pub loc: DiagLoc,
    /// What is wrong, in one sentence.
    pub message: String,
    /// How to fix it, when the verifier can tell.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// A diagnostic at its rule's default severity.
    pub fn new(rule: Rule, loc: DiagLoc, message: impl Into<String>) -> Self {
        Diagnostic {
            rule,
            severity: rule.default_severity(),
            loc,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Downgrades this diagnostic to a warning.
    pub fn warning(mut self) -> Self {
        self.severity = Severity::Warning;
        self
    }

    /// Attaches a suggested fix.
    pub fn suggest(mut self, fix: impl Into<String>) -> Self {
        self.suggestion = Some(fix.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.rule, self.loc, self.message
        )?;
        if let Some(fix) = &self.suggestion {
            write!(f, "\n  = help: {fix}")?;
        }
        Ok(())
    }
}

/// The outcome of one verification pass: every diagnostic, in program
/// order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty (clean) report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one diagnostic.
    pub fn push(&mut self, diag: Diagnostic) {
        self.diags.push(diag);
    }

    /// Appends every diagnostic of another report.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// All diagnostics, in the order they were found.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Diagnostics of one rule.
    pub fn of_rule(&self, rule: Rule) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(move |d| d.rule == rule)
    }

    /// Error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diags.len() - self.error_count()
    }

    /// True if at least one error-severity diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// True if nothing at all was found — not even warnings.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diags {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_round_trip_and_are_unique() {
        for rule in Rule::ALL {
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
            assert!(!rule.description().is_empty());
        }
        let mut ids: Vec<_> = Rule::ALL.iter().map(|r| r.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), Rule::ALL.len());
        assert_eq!(Rule::from_id("no-such-rule"), None);
    }

    #[test]
    fn report_counts_and_rendering() {
        let mut report = Report::new();
        assert!(report.is_clean());
        report.push(
            Diagnostic::new(
                Rule::AddrBounds,
                DiagLoc::Ctrl { pe: Some(1), pc: 3 },
                "spm index 2048 out of bounds for 1024 words",
            )
            .suggest("shrink the stride or grow spm_words"),
        );
        report.push(Diagnostic::new(
            Rule::DefBeforeUse,
            DiagLoc::Compute {
                pc: 0,
                slot: Some(1),
            },
            "r9 read but never written",
        ));
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 1);
        assert!(report.has_errors());
        assert!(!report.is_clean());
        assert_eq!(report.of_rule(Rule::AddrBounds).count(), 1);
        let text = report.to_string();
        assert!(text.contains("error[addr-bounds] at pe1:ctrl:3"));
        assert!(text.contains("= help:"));
        assert!(text.contains("warning[def-before-use] at cu:0.1"));
    }
}
