//! Safety and cost certificates produced by the array verifier.
//!
//! [`Verifier::certify_array`](crate::Verifier::certify_array) runs the
//! same abstract-interpretation fixpoint as
//! [`verify_array`](crate::Verifier::verify_array) but keeps the proofs
//! instead of throwing them away:
//!
//! * **bounds proofs** — every register-file / scratchpad / address-register
//!   access resolved to an interval definitely inside its space, per PE,
//!   with the accessed footprint recorded;
//! * **a static cycle model** — per-PE active-cycle intervals from the
//!   fixpoint (one cycle per retired control instruction, plus the compute
//!   steps each `set cu` triggers), aggregated into a whole-array floor,
//!   upper bound, and — for stall-free programs — an exact count;
//! * **FIFO traffic bounds** — per-PE push/pop intervals, aggregated into
//!   a peak-occupancy bound.
//!
//! Consumers: `gendp-dpax` runs certified-safe programs through an
//! unchecked decoded access path (debug-assert only), and `gendp-serve`
//! costs and admits requests by certified DP-cell counts and cycle bounds
//! instead of a heuristic estimate.
//!
//! # Soundness of the cycle model
//!
//! The simulator counts one array cycle per iteration of its step loop and
//! errors with a deadlock unless every counted cycle — except possibly the
//! final all-halt cycle — sees at least one progress event (a control
//! instruction advancing or a compute step). A PE contributes at most
//! `issue` control retirements and `compute` compute steps, so for any
//! successful run
//!
//! ```text
//! cycles  <=  1 + sum over PEs of (issue.hi + compute.hi)
//! ```
//!
//! and, since a PE retires at most one control instruction per cycle while
//! it is live,
//!
//! ```text
//! cycles  >=  max over PEs of issue.lo
//! ```
//!
//! When every PE is *stall-free* — no port, FIFO, or `set cu` instruction,
//! so nothing can ever block and the compute unit never runs — each PE
//! retires exactly one instruction per cycle and the array runs for
//! exactly `max over PEs of issue` cycles, which the certificate reports
//! as [`Certificate::cycle_exact`]. Loops survived only by widening leave
//! `issue.hi` at infinity and the upper bound becomes `None`.

use gendp_isa::{ComputeProgram, ControlInst, ControlProgram, CuInst, Loc, Operand, Space};

use crate::interval::Interval;

/// The per-PE slice of a [`Certificate`]: what the fixpoint proved about
/// one control/compute program pair at its chain position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeCertificate {
    /// Active control-thread cycles: one per retired instruction
    /// (including `halt`), plus one for the silent-halt discovery cycle
    /// when the pc runs off the program end. `Interval::TOP` when no exit
    /// is reachable.
    pub issue: Interval,
    /// Compute-unit steps triggered along any exiting path (each
    /// `set cu t` contributes `compute_len - t` steps).
    pub compute: Interval,
    /// `set cu` executions along any exiting path — one DP cell each.
    pub cu_sets: Interval,
    /// FIFO words pushed over all exits.
    pub pushes: Interval,
    /// FIFO words popped over all exits.
    pub pops: Interval,
    /// Hull of register-file addresses the PE accesses (control thread
    /// plus compute operands); `None` when the RF is never touched.
    pub rf_footprint: Option<Interval>,
    /// Hull of scratchpad addresses the PE accesses.
    pub spm_footprint: Option<Interval>,
    /// Every control-thread address (direct and indirect, all spaces)
    /// resolved to an interval provably inside its space.
    pub bounds_proven: bool,
    /// Some exit (halt or running off the end) is reachable; `false`
    /// means every path loops forever.
    pub terminates: bool,
    /// The program contains no port, FIFO, or `set cu` instruction, so no
    /// cycle can stall and the per-PE cycle count is exact.
    pub stall_free: bool,
}

/// A machine-checkable summary of what static analysis proved about a
/// loaded PE array: address-safety, cycle bounds, DP-cell cost, and FIFO
/// traffic. Produced by
/// [`Verifier::certify_array`](crate::Verifier::certify_array).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    per_pe: Vec<PeCertificate>,
    cycle_floor: u64,
    cycle_bound: Option<u64>,
    cycle_exact: Option<u64>,
    cost_cells: Option<u64>,
    cells_exact: bool,
    fifo_peak: Option<u64>,
    safe: bool,
}

impl Certificate {
    /// Aggregates per-PE proofs into the whole-array certificate.
    /// `clean` is whether the *unfiltered* report was error-free —
    /// `allow`-suppressed errors must not launder a program into safety.
    pub(crate) fn assemble(per_pe: Vec<PeCertificate>, clean: bool) -> Certificate {
        let safe = clean && per_pe.iter().all(|p| p.bounds_proven);
        let all_terminate = per_pe.iter().all(|p| p.terminates);

        let cycle_floor = per_pe
            .iter()
            .map(|p| p.issue.lo.max(0) as u64)
            .max()
            .unwrap_or(0);

        let cycle_exact = (all_terminate
            && per_pe
                .iter()
                .all(|p| p.stall_free && p.issue.lo == p.issue.hi))
        .then(|| {
            per_pe
                .iter()
                .map(|p| p.issue.lo.max(0) as u64)
                .max()
                .unwrap_or(0)
        });

        let cycle_bound = match cycle_exact {
            Some(exact) => Some(exact),
            None if all_terminate
                && per_pe
                    .iter()
                    .all(|p| p.issue.hi < i64::MAX && p.compute.hi < i64::MAX) =>
            {
                Some(per_pe.iter().fold(1u64, |acc, p| {
                    acc.saturating_add(p.issue.hi.max(0) as u64)
                        .saturating_add(p.compute.hi.max(0) as u64)
                }))
            }
            None => None,
        };

        let cost_cells =
            (all_terminate && per_pe.iter().all(|p| p.cu_sets.hi < i64::MAX)).then(|| {
                per_pe.iter().fold(0u64, |acc, p| {
                    acc.saturating_add(p.cu_sets.hi.max(0) as u64)
                })
            });
        let cells_exact =
            cost_cells.is_some() && per_pe.iter().all(|p| p.cu_sets.lo == p.cu_sets.hi);

        let fifo_peak =
            (all_terminate && per_pe.iter().all(|p| p.pushes.hi < i64::MAX)).then(|| {
                per_pe
                    .iter()
                    .fold(0u64, |acc, p| acc.saturating_add(p.pushes.hi.max(0) as u64))
            });

        Certificate {
            per_pe,
            cycle_floor,
            cycle_bound,
            cycle_exact,
            cost_cells,
            cells_exact,
            fifo_peak,
            safe,
        }
    }

    /// The per-PE proofs, in chain order.
    pub fn per_pe(&self) -> &[PeCertificate] {
        &self.per_pe
    }

    /// Proven lower bound on whole-array cycles: no successful run
    /// finishes in fewer. The scheduler's deadline-infeasibility gate.
    pub fn cycle_floor(&self) -> u64 {
        self.cycle_floor
    }

    /// Proven upper bound on whole-array cycles of any successful run, or
    /// `None` when widening (a loop) or an unreachable exit left a bound
    /// at infinity.
    pub fn cycle_bound(&self) -> Option<u64> {
        self.cycle_bound
    }

    /// The exact whole-array cycle count, when every PE is stall-free and
    /// its issue count is a single value. `None` does not mean the bounds
    /// are wrong — only that the model cannot promise exactness.
    pub fn cycle_exact(&self) -> Option<u64> {
        self.cycle_exact
    }

    /// Certified DP-cell count (total `set cu` executions across the
    /// array): the upper bound, or `None` when unbounded. This is the
    /// cost the serve scheduler charges instead of its heuristic
    /// estimate.
    pub fn cost_cells(&self) -> Option<u64> {
        self.cost_cells
    }

    /// True when [`cost_cells`](Self::cost_cells) is exact on every path.
    pub fn cells_exact(&self) -> bool {
        self.cells_exact
    }

    /// Upper bound on FIFO words ever resident (total pushes), or `None`
    /// when unbounded.
    pub fn fifo_peak(&self) -> Option<u64> {
        self.fifo_peak
    }

    /// True when every access of every PE is proven in bounds and the
    /// unfiltered report had no errors: the unchecked decoded access path
    /// is legal for this array.
    pub fn safe(&self) -> bool {
        self.safe
    }
}

/// True when no instruction can ever stall or start the compute unit: no
/// port or FIFO access and no `set cu`. Such a program retires exactly
/// one instruction per cycle.
pub(crate) fn is_stall_free(program: &ControlProgram) -> bool {
    fn loc_free(loc: &Loc) -> bool {
        matches!(loc.space(), Space::Rf | Space::Spm | Space::Areg)
    }
    program.iter().all(|inst| match inst {
        ControlInst::Nop
        | ControlInst::Halt
        | ControlInst::Add { .. }
        | ControlInst::Addi { .. }
        | ControlInst::Branch { .. } => true,
        ControlInst::Set { .. } => false,
        ControlInst::Li { dest, .. } => loc_free(dest),
        ControlInst::Mv { dest, src } => loc_free(dest) && loc_free(src),
    })
}

/// Hull of register-file slots the compute program reads or writes.
pub(crate) fn compute_rf_hull(program: &ComputeProgram) -> Option<Interval> {
    let mut hull: Option<Interval> = None;
    let mut touch = |r: u16| {
        let iv = Interval::exact(r as i64);
        hull = Some(match hull {
            Some(prev) => prev.join(iv),
            None => iv,
        });
    };
    for inst in program.iter() {
        for slot in &inst.slots {
            match slot {
                CuInst::Nop => {}
                CuInst::Mul { a, b, dest } => {
                    for op in [a, b] {
                        if let Operand::Reg(r) = op {
                            touch(*r);
                        }
                    }
                    touch(*dest);
                }
                CuInst::Tree(tree) => {
                    for r in tree.reg_reads() {
                        touch(r);
                    }
                    touch(tree.dest);
                }
            }
        }
    }
    hull
}
