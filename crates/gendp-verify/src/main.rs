//! `gendp-verify` — lint GenDP control-program files.
//!
//! ```text
//! gendp-verify [--rules] <file.gdp>...
//! ```
//!
//! Each file is parsed as a control program (the `ControlProgram` textual
//! assembly; `;` starts a comment) and verified against the default PE
//! contract. A comment of the form `; allow(rule-id)` anywhere in the
//! file suppresses that rule for the whole file. Exits non-zero if any
//! file has error-severity diagnostics (warnings do not fail the run).

use std::io::Write;
use std::process::ExitCode;

use gendp_isa::{ControlInst, ControlProgram};
use gendp_verify::{render_source_diagnostics, Rule, Verifier};

/// Writes to stdout, ignoring a closed pipe (`gendp-verify ... | head`
/// must not panic when the reader goes away).
fn emit(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        eprintln!("usage: gendp-verify [--rules] <file.gdp>...");
        eprintln!("lints GenDP control-program files against the PE contract");
        return if args.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    if args.iter().any(|a| a == "--rules") {
        for rule in Rule::ALL {
            emit(&format!(
                "{:18} {:7}  {}\n",
                rule.id(),
                rule.default_severity().to_string(),
                rule.description()
            ));
        }
        return ExitCode::SUCCESS;
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for path in &args {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                errors += 1;
                continue;
            }
        };
        match lint_file(path, &source) {
            Ok((e, w)) => {
                errors += e;
                warnings += w;
            }
            Err(message) => {
                eprintln!("{message}");
                errors += 1;
            }
        }
    }
    if errors > 0 || warnings > 0 {
        eprintln!(
            "{} error{}, {} warning{}",
            errors,
            if errors == 1 { "" } else { "s" },
            warnings,
            if warnings == 1 { "" } else { "s" }
        );
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Lints one file; returns (errors, warnings) or a parse-failure message.
fn lint_file(path: &str, source: &str) -> Result<(usize, usize), String> {
    // Parse line by line (mirroring `ControlProgram::FromStr`'s comment
    // and blank filtering) so each instruction keeps its source line, and
    // collect `; allow(rule)` suppression directives on the way.
    let mut insts: Vec<ControlInst> = Vec::new();
    let mut line_of_pc: Vec<usize> = Vec::new();
    let mut verifier = Verifier::default();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let (code, comment) = match raw.find(';') {
            Some(i) => (&raw[..i], Some(raw[i + 1..].trim())),
            None => (raw, None),
        };
        if let Some(directive) = comment.and_then(parse_allow) {
            match Rule::from_id(directive) {
                Some(rule) => verifier = verifier.allow(rule),
                None => {
                    return Err(format!(
                        "error: {path}:{line_no}: unknown rule `{directive}` in allow(...)"
                    ))
                }
            }
        }
        let code = code.trim();
        if code.is_empty() {
            continue;
        }
        let inst: ControlInst = code
            .parse()
            .map_err(|e| format!("error: {path}:{line_no}: {e}"))?;
        insts.push(inst);
        line_of_pc.push(line_no);
    }

    let program: ControlProgram = insts.into_iter().collect();
    let report = verifier.verify_control(&program);
    if !report.is_clean() {
        emit(&render_source_diagnostics(
            path,
            source,
            &report,
            &line_of_pc,
        ));
    }
    Ok((report.error_count(), report.warning_count()))
}

/// Extracts `rule-id` from a comment of the form `allow(rule-id)`.
fn parse_allow(comment: &str) -> Option<&str> {
    comment
        .strip_prefix("allow(")?
        .strip_suffix(')')
        .map(str::trim)
}
