//! `gendp-verify` — lint GenDP control-program files.
//!
//! ```text
//! gendp-verify [--rules] [--format text|json] [--deny warning|error] <file.gdp>...
//! ```
//!
//! Each file is parsed as a control program (the `ControlProgram` textual
//! assembly; `;` starts a comment) and verified against the default PE
//! contract. A comment of the form `; allow(rule-id)` anywhere in the
//! file suppresses that rule for the whole file.
//!
//! `--format json` emits one machine-readable document on stdout instead
//! of the rustc-style rendering (parse failures become `rule: "parse"`
//! diagnostics). `--deny <severity>` sets the exit-code threshold:
//! `--deny error` (the default) fails only on errors, `--deny warning`
//! fails on warnings too.

use std::io::Write;
use std::process::ExitCode;

use gendp_isa::{ControlInst, ControlProgram};
use gendp_verify::{render_source_diagnostics, Report, Rule, Severity, Verifier};

/// Writes to stdout, ignoring a closed pipe (`gendp-verify ... | head`
/// must not panic when the reader goes away).
fn emit(text: &str) {
    let _ = std::io::stdout().write_all(text.as_bytes());
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn usage() {
    eprintln!(
        "usage: gendp-verify [--rules] [--format text|json] [--deny warning|error] <file.gdp>..."
    );
    eprintln!("lints GenDP control-program files against the PE contract");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "-h" || a == "--help") {
        usage();
        return if args.is_empty() {
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }
    if args.iter().any(|a| a == "--rules") {
        for rule in Rule::ALL {
            emit(&format!(
                "{:18} {:7}  {}\n",
                rule.id(),
                rule.default_severity().to_string(),
                rule.description()
            ));
        }
        return ExitCode::SUCCESS;
    }

    let mut format = Format::Text;
    let mut deny = Severity::Error;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "error: --format expects `text` or `json`, got {}",
                        other.map_or_else(|| "nothing".into(), |o| format!("`{o}`"))
                    );
                    return ExitCode::from(2);
                }
            },
            "--deny" => match it.next().as_deref() {
                Some("warning") => deny = Severity::Warning,
                Some("error") => deny = Severity::Error,
                other => {
                    eprintln!(
                        "error: --deny expects `warning` or `error`, got {}",
                        other.map_or_else(|| "nothing".into(), |o| format!("`{o}`"))
                    );
                    return ExitCode::from(2);
                }
            },
            _ if arg.starts_with("--") => {
                eprintln!("error: unknown flag {arg}");
                usage();
                return ExitCode::from(2);
            }
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        usage();
        return ExitCode::from(2);
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut json_diags: Vec<String> = Vec::new();
    for path in &files {
        let outcome = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {path}: {e}"))
            .and_then(|source| lint_file(path, &source, format));
        match outcome {
            Ok(lint) => {
                errors += lint.report.error_count();
                warnings += lint.report.warning_count();
                if format == Format::Json {
                    for diag in lint.report.diagnostics() {
                        let line = match diag.loc {
                            gendp_verify::DiagLoc::Ctrl { pc, .. } => {
                                lint.line_of_pc.get(pc).copied()
                            }
                            _ => None,
                        };
                        json_diags.push(json_diag(
                            path,
                            line,
                            diag.rule.id(),
                            &diag.severity.to_string(),
                            &diag.loc.to_string(),
                            &diag.message,
                            diag.suggestion.as_deref(),
                        ));
                    }
                }
            }
            Err(message) => {
                errors += 1;
                if format == Format::Json {
                    json_diags.push(json_diag(
                        path, None, "parse", "error", "program", &message, None,
                    ));
                } else {
                    eprintln!("error: {message}");
                }
            }
        }
    }

    if format == Format::Json {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"gendp-verify/v1\",\n");
        out.push_str(&format!("  \"errors\": {errors},\n"));
        out.push_str(&format!("  \"warnings\": {warnings},\n"));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in json_diags.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            out.push_str(d);
        }
        if !json_diags.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        emit(&out);
    } else if errors > 0 || warnings > 0 {
        eprintln!(
            "{} error{}, {} warning{}",
            errors,
            if errors == 1 { "" } else { "s" },
            warnings,
            if warnings == 1 { "" } else { "s" }
        );
    }

    let denied = errors > 0 || (deny == Severity::Warning && warnings > 0);
    if denied {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// One JSON diagnostic object (hand-rolled; the workspace has no serde).
fn json_diag(
    file: &str,
    line: Option<usize>,
    rule: &str,
    severity: &str,
    loc: &str,
    message: &str,
    suggestion: Option<&str>,
) -> String {
    let mut obj = String::from("{");
    obj.push_str(&format!("\"file\": {}", json_str(file)));
    match line {
        Some(line) => obj.push_str(&format!(", \"line\": {line}")),
        None => obj.push_str(", \"line\": null"),
    }
    obj.push_str(&format!(", \"rule\": {}", json_str(rule)));
    obj.push_str(&format!(", \"severity\": {}", json_str(severity)));
    obj.push_str(&format!(", \"loc\": {}", json_str(loc)));
    obj.push_str(&format!(", \"message\": {}", json_str(message)));
    match suggestion {
        Some(s) => obj.push_str(&format!(", \"suggestion\": {}", json_str(s))),
        None => obj.push_str(", \"suggestion\": null"),
    }
    obj.push('}');
    obj
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One linted file: its report plus the pc → source-line map.
struct FileLint {
    report: Report,
    line_of_pc: Vec<usize>,
}

/// Lints one file; returns the report or a parse-failure message. In
/// text mode the rustc-style rendering is emitted here.
fn lint_file(path: &str, source: &str, format: Format) -> Result<FileLint, String> {
    // Parse line by line (mirroring `ControlProgram::FromStr`'s comment
    // and blank filtering) so each instruction keeps its source line, and
    // collect `; allow(rule)` suppression directives on the way.
    let mut insts: Vec<ControlInst> = Vec::new();
    let mut line_of_pc: Vec<usize> = Vec::new();
    let mut verifier = Verifier::default();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let (code, comment) = match raw.find(';') {
            Some(i) => (&raw[..i], Some(raw[i + 1..].trim())),
            None => (raw, None),
        };
        if let Some(directive) = comment.and_then(parse_allow) {
            match Rule::from_id(directive) {
                Some(rule) => verifier = verifier.allow(rule),
                None => {
                    return Err(format!(
                        "{path}:{line_no}: unknown rule `{directive}` in allow(...)"
                    ))
                }
            }
        }
        let code = code.trim();
        if code.is_empty() {
            continue;
        }
        let inst: ControlInst = code.parse().map_err(|e| format!("{path}:{line_no}: {e}"))?;
        insts.push(inst);
        line_of_pc.push(line_no);
    }

    let program: ControlProgram = insts.into_iter().collect();
    let report = verifier.verify_control(&program);
    if format == Format::Text && !report.is_clean() {
        emit(&render_source_diagnostics(
            path,
            source,
            &report,
            &line_of_pc,
        ));
    }
    Ok(FileLint { report, line_of_pc })
}

/// Extracts `rule-id` from a comment of the form `allow(rule-id)`.
fn parse_allow(comment: &str) -> Option<&str> {
    comment
        .strip_prefix("allow(")?
        .strip_suffix(')')
        .map(str::trim)
}
