//! A tiny signed-interval abstract domain for address-register values.
//!
//! Control-thread address registers drive indirect scratchpad and
//! register-file accesses; the verifier tracks each register as an
//! interval `[lo, hi]` (in `i64`, so `i32` arithmetic can never overflow
//! the bound computation) and classifies each indirect access as
//! definitely in bounds, definitely out of bounds, or possibly out.

/// A signed interval `[lo, hi]`; `TOP` means "any value".
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Interval {
    /// The unconstrained interval.
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// The interval holding exactly `v`.
    pub fn exact(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// True if nothing is known about the value.
    pub fn is_top(self) -> bool {
        self == Interval::TOP
    }

    /// Adds a constant.
    pub fn add_const(self, c: i64) -> Interval {
        self + Interval::exact(c)
    }

    /// Least upper bound: the hull of both intervals.
    pub fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Standard widening: bounds that moved since `self` jump to infinity,
    /// guaranteeing fixpoint termination on loops.
    pub fn widen(self, newer: Interval) -> Interval {
        Interval {
            lo: if newer.lo < self.lo {
                i64::MIN
            } else {
                self.lo
            },
            hi: if newer.hi > self.hi {
                i64::MAX
            } else {
                self.hi
            },
        }
    }

    /// How this interval relates to the valid address range `[0, size)`.
    pub fn bounds_check(self, size: usize) -> BoundsVerdict {
        let size = size as i64;
        if self.is_top() {
            BoundsVerdict::Unknown
        } else if self.hi < 0 || self.lo >= size {
            BoundsVerdict::AlwaysOut
        } else if self.lo < 0 || self.hi >= size {
            if self.lo == i64::MIN || self.hi == i64::MAX {
                // The offending bound is an infinity produced by widening,
                // not evidence of a real overrun: stay silent.
                BoundsVerdict::Unknown
            } else {
                BoundsVerdict::MayBeOut
            }
        } else {
            BoundsVerdict::In
        }
    }
}

impl std::ops::Add for Interval {
    type Output = Interval;

    /// Interval sum. `i64::MIN`/`i64::MAX` bounds are infinities and
    /// absorb addition, so `TOP` stays `TOP`.
    fn add(self, other: Interval) -> Interval {
        let lo = if self.lo == i64::MIN || other.lo == i64::MIN {
            i64::MIN
        } else {
            self.lo.saturating_add(other.lo)
        };
        let hi = if self.hi == i64::MAX || other.hi == i64::MAX {
            i64::MAX
        } else {
            self.hi.saturating_add(other.hi)
        };
        Interval { lo, hi }
    }
}

/// Result of checking an interval against an address range.
#[derive(Debug, Copy, Clone, PartialEq, Eq)]
pub enum BoundsVerdict {
    /// Every possible value is in range.
    In,
    /// Every possible value is out of range.
    AlwaysOut,
    /// Some values are in range and some are not.
    MayBeOut,
    /// The interval is `TOP`: no claim either way.
    Unknown,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_join() {
        let a = Interval::exact(3);
        let b = Interval { lo: -1, hi: 2 };
        assert_eq!(a + b, Interval { lo: 2, hi: 5 });
        assert_eq!(a.add_const(-3), Interval::exact(0));
        assert_eq!(a.join(b), Interval { lo: -1, hi: 3 });
        assert!((Interval::TOP + a).is_top());
    }

    #[test]
    fn widening_reaches_top() {
        let a = Interval::exact(0);
        let grown = a.join(Interval::exact(5));
        let widened = a.widen(grown);
        assert_eq!(widened.hi, i64::MAX);
        assert_eq!(widened.lo, 0);
        assert_eq!(widened.widen(widened), widened);
    }

    #[test]
    fn bounds_verdicts() {
        assert_eq!(Interval::exact(5).bounds_check(10), BoundsVerdict::In);
        assert_eq!(
            Interval::exact(10).bounds_check(10),
            BoundsVerdict::AlwaysOut
        );
        assert_eq!(
            Interval::exact(-1).bounds_check(10),
            BoundsVerdict::AlwaysOut
        );
        assert_eq!(
            Interval { lo: 5, hi: 15 }.bounds_check(10),
            BoundsVerdict::MayBeOut
        );
        assert_eq!(Interval::TOP.bounds_check(10), BoundsVerdict::Unknown);
        // Half-infinite intervals come from widening; they are not
        // evidence of a real overrun.
        assert_eq!(
            Interval {
                lo: 0,
                hi: i64::MAX
            }
            .bounds_check(10),
            BoundsVerdict::Unknown
        );
    }
}
