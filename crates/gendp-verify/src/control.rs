//! Dataflow analysis of control-thread programs.
//!
//! The analysis is an abstract-interpretation fixpoint over the program's
//! control-flow graph (each instruction is a node; branches fork). The
//! abstract state tracks, per path:
//!
//! * which address registers **must** have been written (intersection at
//!   joins — a read outside this set is a use-before-def on some path),
//! * an [`Interval`] per address register, so indirect scratchpad /
//!   register-file accesses can be bounds-checked symbolically,
//! * interval counts of FIFO pushes and pops, for balance checking.
//!
//! Loops terminate the fixpoint through standard widening. After the
//! fixpoint, one reporting pass re-runs the transfer function against the
//! converged entry states and emits diagnostics.

use gendp_isa::{Addr, AddrReg, BranchCond, ControlInst, ControlProgram, Loc, SetTarget, Space};

use crate::contract::PeContract;
use crate::diag::{DiagLoc, Diagnostic, Report, Rule};
use crate::interval::{BoundsVerdict, Interval};

/// How many joins a program point absorbs before widening kicks in.
const WIDEN_AFTER: u32 = 8;

/// The abstract state at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AState {
    /// Must-init bitmask over address registers.
    init: u128,
    /// Value interval per address register.
    vals: Vec<Interval>,
    /// FIFO words pushed so far along this path.
    pushes: Interval,
    /// FIFO words popped so far along this path.
    pops: Interval,
    /// Active control-thread cycles along this path: one per retired
    /// instruction (including `halt`), plus one for the silent-halt
    /// discovery cycle when the pc runs off the program end.
    cycles: Interval,
    /// Compute-unit steps triggered along this path (each `set cu t`
    /// contributes `compute_len - t` steps, when the length is known).
    compute: Interval,
    /// `set cu` executions along this path — one DP cell each.
    cu_sets: Interval,
}

impl AState {
    fn entry(aregs: usize) -> Self {
        AState {
            init: 0,
            vals: vec![Interval::TOP; aregs.min(128)],
            pushes: Interval::exact(0),
            pops: Interval::exact(0),
            cycles: Interval::exact(0),
            compute: Interval::exact(0),
            cu_sets: Interval::exact(0),
        }
    }

    fn join(&self, other: &AState) -> AState {
        AState {
            init: self.init & other.init,
            vals: self
                .vals
                .iter()
                .zip(&other.vals)
                .map(|(a, b)| a.join(*b))
                .collect(),
            pushes: self.pushes.join(other.pushes),
            pops: self.pops.join(other.pops),
            cycles: self.cycles.join(other.cycles),
            compute: self.compute.join(other.compute),
            cu_sets: self.cu_sets.join(other.cu_sets),
        }
    }

    fn widen(&self, newer: &AState) -> AState {
        AState {
            init: newer.init,
            vals: self
                .vals
                .iter()
                .zip(&newer.vals)
                .map(|(old, new)| old.widen(*new))
                .collect(),
            pushes: self.pushes.widen(newer.pushes),
            pops: self.pops.widen(newer.pops),
            cycles: self.cycles.widen(newer.cycles),
            compute: self.compute.widen(newer.compute),
            cu_sets: self.cu_sets.widen(newer.cu_sets),
        }
    }
}

/// Statically counted FIFO traffic of one program, when every path agrees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FifoTraffic {
    /// Pushes over all exits (exact iff `lo == hi`).
    pub pushes: Interval,
    /// Pops over all exits.
    pub pops: Interval,
}

impl FifoTraffic {
    /// Exact push count, when all paths push the same number of words.
    pub fn exact_pushes(&self) -> Option<i64> {
        (self.pushes.lo == self.pushes.hi).then_some(self.pushes.lo)
    }

    /// Exact pop count.
    pub fn exact_pops(&self) -> Option<i64> {
        (self.pops.lo == self.pops.hi).then_some(self.pops.lo)
    }
}

/// The analyzer for one control program under one contract.
pub(crate) struct ControlAnalysis<'a> {
    contract: &'a PeContract,
    /// PE position in the chain, when known (fifo discipline needs it).
    pe: Option<usize>,
    /// PEs in the array the program will be loaded into.
    n_pes: usize,
    /// Length of the compute program `set cu` targets, when known.
    compute_len: Option<usize>,
}

/// Cycle-model summary over all reachable exits of one program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ExitSummary {
    /// Active control-thread cycles (retired instructions plus the
    /// silent-halt discovery cycle on fall-off-the-end paths).
    pub issue: Interval,
    /// Compute-unit steps triggered (`set cu` targets to program end).
    pub compute: Interval,
    /// `set cu` executions — one DP cell each.
    pub cu_sets: Interval,
}

/// Bounds proofs and address footprints collected during the reporting
/// pass, the raw material of a [`crate::Certificate`].
#[derive(Debug, Clone)]
pub(crate) struct CertScan {
    /// Every checked address (direct and indirect, all sized spaces)
    /// resolved to an interval provably inside its space.
    pub all_in_bounds: bool,
    /// Hull of register-file addresses accessed by the control thread.
    pub rf: Option<Interval>,
    /// Hull of scratchpad addresses accessed by the control thread.
    pub spm: Option<Interval>,
}

impl Default for CertScan {
    fn default() -> Self {
        CertScan {
            all_in_bounds: true,
            rf: None,
            spm: None,
        }
    }
}

impl CertScan {
    fn record(&mut self, space: Space, addr: Interval, in_bounds: bool) {
        if !in_bounds {
            self.all_in_bounds = false;
        }
        let slot = match space {
            Space::Rf => &mut self.rf,
            Space::Spm => &mut self.spm,
            _ => return,
        };
        *slot = Some(match *slot {
            Some(prev) => prev.join(addr),
            None => addr,
        });
    }
}

/// Result of analyzing one program.
pub(crate) struct ControlOutcome {
    pub report: Report,
    /// FIFO traffic over all reachable exits; `None` when no exit is
    /// reachable (the program can only loop forever).
    pub fifo: Option<FifoTraffic>,
    /// Cycle-model summary over all reachable exits; `None` like `fifo`.
    pub exit: Option<ExitSummary>,
    /// Bounds proofs and footprints from the reporting pass.
    pub scan: CertScan,
}

struct Successors {
    next: Vec<Edge>,
    exits: bool,
}

/// One CFG edge, with interval refinements the branch condition implies
/// on that edge (e.g. on the taken edge of `blt a0 a1`, `a0 < a1`).
struct Edge {
    target: usize,
    refine: Vec<(usize, Interval)>,
}

impl Edge {
    fn plain(target: usize) -> Self {
        Edge {
            target,
            refine: Vec::new(),
        }
    }
}

impl<'a> ControlAnalysis<'a> {
    pub fn new(
        contract: &'a PeContract,
        pe: Option<usize>,
        n_pes: usize,
        compute_len: Option<usize>,
    ) -> Self {
        ControlAnalysis {
            contract,
            pe,
            n_pes,
            compute_len,
        }
    }

    /// Runs the fixpoint and the reporting pass.
    pub fn run(&self, program: &ControlProgram) -> ControlOutcome {
        let len = program.len();
        if len == 0 {
            // An empty program is a PE that starts halted — legal (idle
            // PEs in a short chain are loaded with nothing). It costs
            // zero cycles: the array sees it halted before the first step.
            return ControlOutcome {
                report: Report::new(),
                fifo: Some(FifoTraffic {
                    pushes: Interval::exact(0),
                    pops: Interval::exact(0),
                }),
                exit: Some(ExitSummary {
                    issue: Interval::exact(0),
                    compute: Interval::exact(0),
                    cu_sets: Interval::exact(0),
                }),
                scan: CertScan::default(),
            };
        }

        let mut entry: Vec<Option<AState>> = vec![None; len];
        let mut joins = vec![0u32; len];
        let mut work = vec![0usize];
        entry[0] = Some(AState::entry(self.contract.aregs));
        let mut exit_state: Option<AState> = None;

        while let Some(pc) = work.pop() {
            let mut st = entry[pc].clone().expect("worklist entries have states");
            let succs = self.transfer(
                pc,
                len,
                program.get(pc).expect("pc in range"),
                &mut st,
                None,
                None,
            );
            if succs.exits {
                exit_state = Some(match exit_state {
                    Some(prev) => prev.join(&st),
                    None => st.clone(),
                });
            }
            for edge in succs.next {
                let s = edge.target;
                if s >= len {
                    // Running past the end halts the thread silently; the
                    // discovery cycle still counts in the simulator.
                    let mut fallen = st.clone();
                    fallen.cycles = fallen.cycles.add_const(1);
                    exit_state = Some(match exit_state.take() {
                        Some(prev) => prev.join(&fallen),
                        None => fallen,
                    });
                    continue;
                }
                let mut flow = st.clone();
                for (idx, iv) in &edge.refine {
                    if let Some(slot) = flow.vals.get_mut(*idx) {
                        *slot = *iv;
                    }
                }
                match &entry[s] {
                    None => {
                        entry[s] = Some(flow);
                        work.push(s);
                    }
                    Some(old) => {
                        let mut joined = old.join(&flow);
                        if joins[s] >= WIDEN_AFTER {
                            joined = old.widen(&joined);
                        }
                        if joined != *old {
                            joins[s] += 1;
                            entry[s] = Some(joined);
                            work.push(s);
                        }
                    }
                }
            }
        }

        // Reporting pass over the converged entry states, which doubles
        // as the certificate scan (footprints, bounds proofs).
        let mut report = Report::new();
        let mut scan = CertScan::default();
        for (pc, state) in entry.iter().enumerate() {
            if let Some(state) = state {
                let mut st = state.clone();
                let inst = program.get(pc).expect("pc in range");
                self.transfer(pc, len, inst, &mut st, Some(&mut report), Some(&mut scan));
                self.check_loop_termination(pc, inst, program, &mut report);
            }
        }

        let (fifo, exit) = match exit_state {
            Some(st) => (
                Some(FifoTraffic {
                    pushes: st.pushes,
                    pops: st.pops,
                }),
                Some(ExitSummary {
                    issue: st.cycles,
                    compute: st.compute,
                    cu_sets: st.cu_sets,
                }),
            ),
            None => (None, None),
        };
        ControlOutcome {
            report,
            fifo,
            exit,
            scan,
        }
    }

    fn loc(&self, pc: usize) -> DiagLoc {
        DiagLoc::Ctrl { pe: self.pe, pc }
    }

    /// Space size for address bounds, `None` for spaces whose use is
    /// already illegal at PE level (checked separately).
    fn space_size(&self, space: Space) -> Option<usize> {
        match space {
            Space::Rf => Some(self.contract.rf_slots),
            Space::Spm => Some(self.contract.spm_words),
            Space::Areg => Some(self.contract.aregs),
            _ => None,
        }
    }

    fn read_areg(
        &self,
        reg: AddrReg,
        state: &AState,
        pc: usize,
        sink: &mut Option<&mut Report>,
    ) -> Interval {
        let i = reg.0 as usize;
        if i >= self.contract.aregs {
            if let Some(report) = sink {
                report.push(Diagnostic::new(
                    Rule::AddrBounds,
                    self.loc(pc),
                    format!(
                        "a{i} is out of bounds for {} address registers",
                        self.contract.aregs
                    ),
                ));
            }
            return Interval::TOP;
        }
        if state.init & (1 << i) == 0 {
            if let Some(report) = sink {
                report.push(
                    Diagnostic::new(
                        Rule::DefBeforeUse,
                        self.loc(pc),
                        format!("a{i} is read before any write reaches this instruction"),
                    )
                    .suggest(format!("initialize it first, e.g. `li a[{i}] 0`")),
                );
            }
        }
        state.vals.get(i).copied().unwrap_or(Interval::TOP)
    }

    fn write_areg(&self, idx: usize, value: Interval, state: &mut AState) {
        if idx < self.contract.aregs && idx < 128 {
            state.init |= 1 << idx;
            if let Some(slot) = state.vals.get_mut(idx) {
                *slot = value;
            }
        }
    }

    /// Checks the destination register of `add`/`addi`, which writes the
    /// areg file directly rather than through a `Loc`.
    fn check_areg_dest(&self, reg: AddrReg, pc: usize, sink: &mut Option<&mut Report>) {
        let i = reg.0 as usize;
        if i >= self.contract.aregs {
            if let Some(report) = sink {
                report.push(Diagnostic::new(
                    Rule::AddrBounds,
                    self.loc(pc),
                    format!(
                        "a{i} is out of bounds for {} address registers",
                        self.contract.aregs
                    ),
                ));
            }
        }
    }

    /// Checks a direct or indirect address against its space, emitting
    /// addr-bounds diagnostics; reads the base register of indirect forms.
    /// With a `cert` scan, also records the access footprint and whether
    /// the address is provably in bounds.
    fn check_addr(
        &self,
        loc: &Loc,
        state: &AState,
        pc: usize,
        sink: &mut Option<&mut Report>,
        cert: &mut Option<&mut CertScan>,
    ) {
        let Some(size) = self.space_size(loc.space()) else {
            return;
        };
        match loc.addr() {
            Addr::Direct(d) => {
                let in_bounds = (d as usize) < size;
                if let Some(scan) = cert.as_deref_mut() {
                    scan.record(loc.space(), Interval::exact(d as i64), in_bounds);
                }
                if !in_bounds {
                    if let Some(report) = sink {
                        report.push(Diagnostic::new(
                            Rule::AddrBounds,
                            self.loc(pc),
                            format!(
                                "{} index {d} is out of bounds for {size} words",
                                loc.space()
                            ),
                        ));
                    }
                }
            }
            Addr::Indirect { areg, offset } => {
                let base = self.read_areg(AddrReg(areg), state, pc, sink);
                let addr = base.add_const(offset as i64);
                let verdict = addr.bounds_check(size);
                if let Some(scan) = cert.as_deref_mut() {
                    scan.record(loc.space(), addr, verdict == BoundsVerdict::In);
                }
                if let Some(report) = sink {
                    match verdict {
                        BoundsVerdict::AlwaysOut => report.push(Diagnostic::new(
                            Rule::AddrBounds,
                            self.loc(pc),
                            format!(
                                "{}[a{areg}{offset:+}] resolves to [{}, {}], always outside \
                                 the {size}-word space",
                                loc.space(),
                                addr.lo,
                                addr.hi
                            ),
                        )),
                        BoundsVerdict::MayBeOut => report.push(
                            Diagnostic::new(
                                Rule::AddrBounds,
                                self.loc(pc),
                                format!(
                                    "{}[a{areg}{offset:+}] may resolve outside the \
                                     {size}-word space (range [{}, {}])",
                                    loc.space(),
                                    addr.lo,
                                    addr.hi
                                ),
                            )
                            .warning(),
                        ),
                        BoundsVerdict::In | BoundsVerdict::Unknown => {}
                    }
                }
            }
            Addr::None => {}
        }
    }

    /// Models reading `loc`: legality, addressing, FIFO pops. Returns the
    /// value interval when it is statically known (areg sources).
    fn read_loc(
        &self,
        loc: &Loc,
        state: &mut AState,
        pc: usize,
        sink: &mut Option<&mut Report>,
        cert: &mut Option<&mut CertScan>,
    ) -> Interval {
        match loc.space() {
            Space::Rf | Space::Spm => {
                self.check_addr(loc, state, pc, sink, cert);
                Interval::TOP
            }
            Space::Areg => {
                self.check_addr(loc, state, pc, sink, cert);
                match loc.addr() {
                    Addr::Direct(d) => self.read_areg(AddrReg(d as u8), state, pc, sink),
                    _ => Interval::TOP,
                }
            }
            Space::In => Interval::TOP,
            Space::Out => {
                if let Some(report) = sink {
                    report.push(Diagnostic::new(
                        Rule::SpaceLegality,
                        self.loc(pc),
                        "the out port is write-only from a PE",
                    ));
                }
                Interval::TOP
            }
            Space::Fifo => {
                state.pops = state.pops.add_const(1);
                if let (Some(pe), Some(report)) = (self.pe, sink.as_deref_mut()) {
                    if !self.contract.fifo_broadcast && pe != 0 {
                        report.push(
                            Diagnostic::new(
                                Rule::FifoDiscipline,
                                self.loc(pc),
                                format!("pe{pe} pops the FIFO, but only pe0 may (no broadcast)"),
                            )
                            .suggest("enable fifo_broadcast or move the pop to pe0"),
                        );
                    }
                }
                Interval::TOP
            }
            Space::InBuf | Space::OutBuf => {
                if let Some(report) = sink {
                    report.push(Diagnostic::new(
                        Rule::SpaceLegality,
                        self.loc(pc),
                        format!(
                            "{} is an array-level buffer, not PE-accessible",
                            loc.space()
                        ),
                    ));
                }
                Interval::TOP
            }
        }
    }

    /// Models writing `loc`: legality, addressing, FIFO pushes. Returns
    /// the destination areg index when `loc` names one directly.
    fn write_loc(
        &self,
        loc: &Loc,
        state: &mut AState,
        pc: usize,
        sink: &mut Option<&mut Report>,
        cert: &mut Option<&mut CertScan>,
    ) -> Option<usize> {
        match loc.space() {
            Space::Rf | Space::Spm => {
                self.check_addr(loc, state, pc, sink, cert);
                None
            }
            Space::Areg => {
                self.check_addr(loc, state, pc, sink, cert);
                match loc.addr() {
                    Addr::Direct(d) => Some(d as usize),
                    Addr::Indirect { .. } => {
                        // Writing through an unknown areg index clobbers
                        // any tracked value.
                        for v in &mut state.vals {
                            *v = Interval::TOP;
                        }
                        None
                    }
                    Addr::None => None,
                }
            }
            Space::In => {
                if let Some(report) = sink {
                    report.push(Diagnostic::new(
                        Rule::SpaceLegality,
                        self.loc(pc),
                        "the in port is read-only from a PE",
                    ));
                }
                None
            }
            Space::Out => None,
            Space::Fifo => {
                state.pushes = state.pushes.add_const(1);
                if let (Some(pe), Some(report)) = (self.pe, sink.as_deref_mut()) {
                    if pe + 1 != self.n_pes {
                        report.push(
                            Diagnostic::new(
                                Rule::FifoDiscipline,
                                self.loc(pc),
                                format!(
                                    "pe{pe} pushes the FIFO, but only the last PE (pe{}) may",
                                    self.n_pes.saturating_sub(1)
                                ),
                            )
                            .suggest("route intermediate values through the out port instead"),
                        );
                    }
                }
                None
            }
            Space::InBuf | Space::OutBuf => {
                if let Some(report) = sink {
                    report.push(Diagnostic::new(
                        Rule::SpaceLegality,
                        self.loc(pc),
                        format!(
                            "{} is an array-level buffer, not PE-accessible",
                            loc.space()
                        ),
                    ));
                }
                None
            }
        }
    }

    /// The transfer function: mutates `state` across `inst` and returns
    /// the successor program counters. With a `sink`, also emits the
    /// instruction's diagnostics (the reporting pass).
    fn transfer(
        &self,
        pc: usize,
        len: usize,
        inst: &ControlInst,
        state: &mut AState,
        mut sink: Option<&mut Report>,
        mut cert: Option<&mut CertScan>,
    ) -> Successors {
        // Every retired instruction (including `halt`) occupies one
        // issue cycle.
        state.cycles = state.cycles.add_const(1);
        let cert = &mut cert;
        let fallthrough = Successors {
            next: vec![Edge::plain(pc + 1)],
            exits: false,
        };
        match inst {
            ControlInst::Nop => fallthrough,
            ControlInst::Halt => Successors {
                next: Vec::new(),
                exits: true,
            },
            ControlInst::Add { rd, rs1, rs2 } => {
                let a = self.read_areg(*rs1, state, pc, &mut sink);
                let b = self.read_areg(*rs2, state, pc, &mut sink);
                self.check_areg_dest(*rd, pc, &mut sink);
                self.write_areg(rd.0 as usize, a + b, state);
                fallthrough
            }
            ControlInst::Addi { rd, rs1, imm } => {
                let a = self.read_areg(*rs1, state, pc, &mut sink);
                self.check_areg_dest(*rd, pc, &mut sink);
                self.write_areg(rd.0 as usize, a.add_const(*imm as i64), state);
                fallthrough
            }
            ControlInst::Li { dest, imm } => {
                if let Some(idx) = self.write_loc(dest, state, pc, &mut sink, cert) {
                    self.write_areg(idx, Interval::exact(*imm as i64), state);
                }
                fallthrough
            }
            ControlInst::Mv { dest, src } => {
                let value = self.read_loc(src, state, pc, &mut sink, cert);
                if let Some(idx) = self.write_loc(dest, state, pc, &mut sink, cert) {
                    self.write_areg(idx, value, state);
                }
                fallthrough
            }
            ControlInst::Branch {
                cond,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.read_areg(*rs1, state, pc, &mut sink);
                let b = self.read_areg(*rs2, state, pc, &mut sink);
                let target = pc as i64 + *offset as i64;
                // Fall through (branch not taken), plus the taken edge,
                // each refined by what the condition implies on it; an
                // edge whose refinement is empty cannot be taken and is
                // pruned. Successors past the program end become exits in
                // `run` (the control thread halts silently when the pc
                // runs off the program), matching the simulator.
                let mut next = Vec::new();
                if let Some(refine) = self.refine_edge(negate(*cond), *rs1, *rs2, a, b) {
                    next.push(Edge {
                        target: pc + 1,
                        refine,
                    });
                }
                if target < 0 {
                    if let Some(report) = sink.as_deref_mut() {
                        report.push(Diagnostic::new(
                            Rule::BranchTarget,
                            self.loc(pc),
                            format!("branch target {target} is before the program start"),
                        ));
                    }
                } else {
                    if target > len as i64 {
                        if let Some(report) = sink.as_deref_mut() {
                            report.push(
                                Diagnostic::new(
                                    Rule::BranchTarget,
                                    self.loc(pc),
                                    format!(
                                        "branch target {target} is past the program end \
                                         (length {len}); the thread would halt silently"
                                    ),
                                )
                                .warning(),
                            );
                        }
                    }
                    if let Some(refine) = self.refine_edge(*cond, *rs1, *rs2, a, b) {
                        next.push(Edge {
                            target: target as usize,
                            refine,
                        });
                    }
                }
                Successors { next, exits: false }
            }
            ControlInst::Set { target, pc: tpc } => {
                if let SetTarget::Compute = target {
                    // One DP cell; the compute unit then steps from the
                    // target to the program end.
                    state.cu_sets = state.cu_sets.add_const(1);
                    if let Some(clen) = self.compute_len {
                        let steps = clen.saturating_sub(*tpc as usize) as i64;
                        state.compute = state.compute.add_const(steps);
                    }
                }
                if let Some(report) = sink {
                    match target {
                        SetTarget::Compute => {
                            if let Some(clen) = self.compute_len {
                                if clen == 0 {
                                    report.push(Diagnostic::new(
                                        Rule::BranchTarget,
                                        self.loc(pc),
                                        "set cu issued but the compute program is empty",
                                    ));
                                } else if *tpc as usize >= clen {
                                    report.push(Diagnostic::new(
                                        Rule::BranchTarget,
                                        self.loc(pc),
                                        format!(
                                            "set cu {tpc} targets past the compute program \
                                             (length {clen})"
                                        ),
                                    ));
                                }
                            }
                        }
                        SetTarget::Pe(i) => {
                            report.push(Diagnostic::new(
                                Rule::SpaceLegality,
                                self.loc(pc),
                                format!("set pe{i} is only legal at array level, not in a PE"),
                            ));
                        }
                    }
                }
                fallthrough
            }
        }
    }

    /// What a branch condition holding between `rs1` and `rs2` implies
    /// about their intervals. Returns the refinements to apply on that
    /// edge, or `None` if the condition cannot hold (the edge is dead).
    fn refine_edge(
        &self,
        cond: BranchCond,
        rs1: AddrReg,
        rs2: AddrReg,
        a: Interval,
        b: Interval,
    ) -> Option<Vec<(usize, Interval)>> {
        let (r1, r2) = (rs1.0 as usize, rs2.0 as usize);
        if r1 == r2 {
            // A register always equals itself: `lt`/`ne` edges are dead,
            // `eq`/`ge` edges always taken but learn nothing.
            return match cond {
                BranchCond::Lt | BranchCond::Ne => None,
                BranchCond::Eq | BranchCond::Ge => Some(Vec::new()),
            };
        }
        let (a2, b2) = match cond {
            BranchCond::Ne => return Some(Vec::new()),
            BranchCond::Eq => {
                let m = Interval {
                    lo: a.lo.max(b.lo),
                    hi: a.hi.min(b.hi),
                };
                (m, m)
            }
            BranchCond::Lt => (
                // a < b: cap a below b's max, raise b above a's min
                // (infinite bounds constrain nothing).
                Interval {
                    lo: a.lo,
                    hi: if b.hi == i64::MAX {
                        a.hi
                    } else {
                        a.hi.min(b.hi - 1)
                    },
                },
                Interval {
                    lo: if a.lo == i64::MIN {
                        b.lo
                    } else {
                        b.lo.max(a.lo + 1)
                    },
                    hi: b.hi,
                },
            ),
            BranchCond::Ge => (
                Interval {
                    lo: if b.lo == i64::MIN {
                        a.lo
                    } else {
                        a.lo.max(b.lo)
                    },
                    hi: a.hi,
                },
                Interval {
                    lo: b.lo,
                    hi: if a.hi == i64::MAX {
                        b.hi
                    } else {
                        b.hi.min(a.hi)
                    },
                },
            ),
        };
        if a2.lo > a2.hi || b2.lo > b2.hi {
            return None;
        }
        let mut refine = Vec::new();
        if r1 < self.contract.aregs {
            refine.push((r1, a2));
        }
        if r2 < self.contract.aregs {
            refine.push((r2, b2));
        }
        Some(refine)
    }

    /// Backward branches whose operand registers are never written inside
    /// the loop body cannot make progress toward termination.
    fn check_loop_termination(
        &self,
        pc: usize,
        inst: &ControlInst,
        program: &ControlProgram,
        report: &mut Report,
    ) {
        let ControlInst::Branch {
            rs1, rs2, offset, ..
        } = inst
        else {
            return;
        };
        if *offset >= 0 {
            return;
        }
        let target = pc as i64 + *offset as i64;
        if target < 0 {
            return; // branch-target already fired
        }
        let body = target as usize..=pc;
        let counter_written = body.clone().any(|i| {
            program
                .get(i)
                .is_some_and(|b| writes_areg(b, rs1.0) || writes_areg(b, rs2.0))
        });
        if !counter_written {
            report.push(
                Diagnostic::new(
                    Rule::LoopTermination,
                    self.loc(pc),
                    format!(
                        "loop over [{}, {pc}] branches on a{} and a{}, but neither changes \
                         in the body",
                        target, rs1.0, rs2.0
                    ),
                )
                .suggest("step the loop counter inside the body, e.g. `addi`"),
            );
        }
    }
}

/// The condition that holds on the fall-through edge of a branch.
fn negate(cond: BranchCond) -> BranchCond {
    match cond {
        BranchCond::Eq => BranchCond::Ne,
        BranchCond::Ne => BranchCond::Eq,
        BranchCond::Ge => BranchCond::Lt,
        BranchCond::Lt => BranchCond::Ge,
    }
}

/// True if `inst` may write address register `reg`.
fn writes_areg(inst: &ControlInst, reg: u8) -> bool {
    match inst {
        ControlInst::Add { rd, .. } | ControlInst::Addi { rd, .. } => rd.0 == reg,
        ControlInst::Li { dest, .. } | ControlInst::Mv { dest, .. } => {
            dest.space() == Space::Areg
                && match dest.addr() {
                    Addr::Direct(d) => d as u8 == reg,
                    // An indirect areg write could hit any register.
                    Addr::Indirect { .. } => true,
                    Addr::None => false,
                }
        }
        _ => false,
    }
}
