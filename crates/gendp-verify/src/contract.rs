//! The hardware contract programs are verified against.

use gendp_isa::Mode;

/// Static description of the PE array a program must respect: the sizes
/// and modes a [`Verifier`](crate::Verifier) checks addresses, operands
/// and FIFO use against.
///
/// The default mirrors the paper's DPAx design point (and
/// `gendp_dpax::PeArrayConfig::default()`): 4 PEs, 256 register-file
/// words, 1024 scratchpad words, 16 address registers, a 4096-word FIFO,
/// 32-bit integer mode, no FIFO broadcast.
#[derive(Debug, Clone, PartialEq)]
pub struct PeContract {
    /// PEs in the systolic chain.
    pub n_pes: usize,
    /// Register-file words per PE.
    pub rf_slots: usize,
    /// Scratchpad words per PE.
    pub spm_words: usize,
    /// Address registers per decoder.
    pub aregs: usize,
    /// FIFO capacity in words.
    pub fifo_capacity: usize,
    /// Whether any PE may pop the FIFO (broadcast mode); pushes remain
    /// last-PE-only either way.
    pub fifo_broadcast: bool,
    /// Arithmetic mode of the compute units.
    pub mode: Mode,
}

impl PeContract {
    /// The paper's default integer PE array.
    pub fn new() -> Self {
        PeContract {
            n_pes: 4,
            rf_slots: 256,
            spm_words: 1024,
            aregs: 16,
            fifo_capacity: 4096,
            fifo_broadcast: false,
            mode: Mode::Int32,
        }
    }

    /// Sets the PE count, returning `self` for chaining.
    pub fn pes(mut self, n_pes: usize) -> Self {
        self.n_pes = n_pes;
        self
    }

    /// Sets the register-file size, returning `self` for chaining.
    pub fn rf(mut self, rf_slots: usize) -> Self {
        self.rf_slots = rf_slots;
        self
    }

    /// Sets the arithmetic mode, returning `self` for chaining.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }
}

impl Default for PeContract {
    fn default() -> Self {
        Self::new()
    }
}
