//! Rustc-style rendering of diagnostics against program source text.

use std::fmt::Write;

use crate::diag::{DiagLoc, Report};

/// Renders a report against the source text it was produced from.
///
/// `line_of_pc[pc]` is the 1-based source line of control instruction
/// `pc` (comment and blank lines make the two numberings differ).
/// Diagnostics without a control location are rendered without an
/// excerpt.
pub fn render_source_diagnostics(
    path: &str,
    source: &str,
    report: &Report,
    line_of_pc: &[usize],
) -> String {
    let lines: Vec<&str> = source.lines().collect();
    let mut out = String::new();
    for diag in report.diagnostics() {
        let _ = writeln!(out, "{}[{}]: {}", diag.severity, diag.rule, diag.message);
        let line = match diag.loc {
            DiagLoc::Ctrl { pc, .. } => line_of_pc.get(pc).copied(),
            _ => None,
        };
        match line {
            Some(n) if n >= 1 && n <= lines.len() => {
                let text = lines[n - 1];
                let gutter = n.to_string().len().max(2);
                let _ = writeln!(out, "{:>gutter$}--> {path}:{n}", "");
                let _ = writeln!(out, "{:>gutter$} |", "");
                let _ = writeln!(out, "{n:>gutter$} | {text}");
                let _ = writeln!(
                    out,
                    "{:>gutter$} | {}",
                    "",
                    "^".repeat(text.trim_end().len().max(1))
                );
            }
            _ => {
                let _ = writeln!(out, "  --> {path}");
            }
        }
        if let Some(fix) = &diag.suggestion {
            let _ = writeln!(out, "   = help: {fix}");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{DiagLoc, Diagnostic, Rule};

    #[test]
    fn excerpt_points_at_the_source_line() {
        let source = "; setup\nmv rf[9999] in\nhalt\n";
        let mut report = Report::new();
        report.push(
            Diagnostic::new(
                Rule::AddrBounds,
                DiagLoc::Ctrl { pe: None, pc: 0 },
                "rf index 9999 is out of bounds for 256 words",
            )
            .suggest("use a slot below 256"),
        );
        let text = render_source_diagnostics("prog.gdp", source, &report, &[2, 3]);
        assert!(text.contains("error[addr-bounds]"), "{text}");
        assert!(text.contains("--> prog.gdp:2"), "{text}");
        assert!(text.contains("mv rf[9999] in"), "{text}");
        assert!(text.contains("^^^^"), "{text}");
        assert!(text.contains("= help:"), "{text}");
    }

    #[test]
    fn program_level_diagnostics_render_without_excerpt() {
        let mut report = Report::new();
        report.push(Diagnostic::new(
            Rule::FifoBalance,
            DiagLoc::Program,
            "program pushes 2 FIFO words but pops 1",
        ));
        let text = render_source_diagnostics("p.gdp", "halt\n", &report, &[1]);
        assert!(text.contains("error[fifo-balance]"), "{text}");
        assert!(text.contains("--> p.gdp"), "{text}");
    }
}
