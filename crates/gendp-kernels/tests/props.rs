//! Property tests on kernel invariants.

use gendp_kernels::chain::{chain_original, chain_reordered, ChainParams};
use gendp_kernels::pairhmm::{forward_f64, PairHmmParams};
use gendp_kernels::poa::Poa;
use gendp_kernels::{align, align_traceback, bsw_i32, AlignMode, Scoring};
use gendp_seq::{Anchor, Base, DnaSeq};
use proptest::prelude::*;

fn dna(len: std::ops::Range<usize>) -> impl Strategy<Value = DnaSeq> {
    prop::collection::vec(0u8..4, len)
        .prop_map(|codes| codes.into_iter().map(Base::from_code).collect())
}

proptest! {
    /// Local scores are non-negative, bounded by the perfect-match score,
    /// and symmetric under argument swap.
    #[test]
    fn local_score_bounds_and_symmetry(q in dna(1..40), t in dna(1..40)) {
        let s = Scoring::bwa_mem();
        let a = bsw_i32(&q, &t, &s, 1000, AlignMode::Local);
        prop_assert!(a.score >= 0);
        prop_assert!(a.score <= (q.len().min(t.len()) as i32) * s.matches);
        let b = bsw_i32(&t, &q, &s, 1000, AlignMode::Local);
        prop_assert_eq!(a.score, b.score);
    }

    /// Narrowing the band never increases the local score.
    #[test]
    fn band_monotonicity(q in dna(4..40), t in dna(4..40), w1 in 1i32..8, w2 in 8i32..40) {
        let s = Scoring::bwa_mem();
        let narrow = bsw_i32(&q, &t, &s, w1, AlignMode::Local);
        let wide = bsw_i32(&q, &t, &s, w2, AlignMode::Local);
        prop_assert!(narrow.score <= wide.score);
        prop_assert!(narrow.cells <= wide.cells);
    }

    /// Global alignment of a sequence with itself scores the full match,
    /// and any other target scores no higher.
    #[test]
    fn global_self_is_optimal(q in dna(1..30), t in dna(1..30)) {
        let s = Scoring::bwa_mem();
        let self_score = align(&q, &q, &s, AlignMode::Global).score;
        prop_assert_eq!(self_score, q.len() as i32 * s.matches);
        prop_assert!(align(&q, &t, &s, AlignMode::Global).score <= self_score);
    }

    /// Traceback CIGARs price back to their reported score and consume the
    /// reported ranges, in both modes.
    #[test]
    fn traceback_consistency(q in dna(1..30), t in dna(1..30)) {
        let s = Scoring::bwa_mem();
        for mode in [AlignMode::Local, AlignMode::Global] {
            let a = align_traceback(&q, &t, &s, mode);
            prop_assert_eq!(a.cigar.score(&s), a.score);
            prop_assert_eq!(a.cigar.query_len(), a.query_range.1 - a.query_range.0);
            prop_assert_eq!(a.cigar.target_len(), a.target_range.1 - a.target_range.0);
            prop_assert_eq!(a.score, bsw_i32(&q, &t, &s, 1000, mode).score);
        }
    }

    /// Chain: both orders agree for any window; scores never fall below
    /// the anchor's own span.
    #[test]
    fn chain_order_equivalence(
        raw in prop::collection::vec((0i32..500, 0i32..500), 1..30),
        window in 1usize..20,
    ) {
        let mut anchors: Vec<Anchor> = raw
            .into_iter()
            .map(|(r, q)| Anchor { rpos: r, qpos: q, span: 11 })
            .collect();
        anchors.sort_unstable();
        anchors.dedup();
        let p = ChainParams { n_prev: window, ..ChainParams::minimap2(11.0) };
        let a = chain_original(&anchors, &p);
        let b = chain_reordered(&anchors, &p);
        prop_assert_eq!(&a.scores, &b.scores);
        prop_assert!(a.scores.iter().all(|&s| s >= 11));
        // Every traced chain is strictly increasing in both coordinates.
        let best = a.best().unwrap();
        let chain = a.trace(best);
        for w in chain.windows(2) {
            prop_assert!(anchors[w[0]].qpos < anchors[w[1]].qpos);
            prop_assert!(anchors[w[0]].rpos < anchors[w[1]].rpos);
        }
    }

    /// PairHMM: the likelihood of a read against its own sequence is at
    /// least as high as against any other haplotype of the same length.
    #[test]
    fn pairhmm_self_is_best(read in dna(2..12), other in dna(2..12)) {
        let p = PairHmmParams::gatk();
        let quals = vec![30u8; read.len()];
        let self_ll = forward_f64(&read, &quals, &read, &p);
        prop_assert!(self_ll.is_finite());
        if other.len() == read.len() {
            let other_ll = forward_f64(&read, &quals, &other, &p);
            prop_assert!(self_ll >= other_ll - 1e-9);
        }
    }

    /// POA consensus over identical reads reproduces the read, for any
    /// read and count.
    #[test]
    fn poa_consensus_of_identical_reads(seq in dna(1..40), copies in 1usize..5) {
        let mut poa = Poa::new();
        for _ in 0..copies {
            poa.add_sequence(&seq, &Scoring::racon());
        }
        prop_assert_eq!(poa.consensus(), seq.clone());
        prop_assert_eq!(poa.node_count(), seq.len());
    }
}
