//! Generic full-table pairwise alignment: the reference aligner covering
//! every mode × gap-model combination of paper §1 / §7.6.3.
//!
//! This is the unbanded oracle the banded kernel ([`crate::bsw`]) is
//! validated against.

use gendp_seq::DnaSeq;

use crate::scoring::{AlignMode, GapModel, Scoring};

/// Result of a pairwise alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlignResult {
    /// The optimal alignment score under the given mode.
    pub score: i32,
    /// DP cells computed (the throughput unit of the paper's evaluation).
    pub cells: u64,
}

const NEG: i32 = i32::MIN / 4;

/// Aligns `query` against `target` with a full DP table.
///
/// Row `i` corresponds to `target[i-1]`, column `j` to `query[j-1]`.
/// In [`AlignMode::SemiGlobal`] (overlap) mode, leading and trailing gaps
/// on either sequence are free: the score is the best over the last row and
/// last column with zero-initialized borders.
pub fn align(query: &DnaSeq, target: &DnaSeq, scoring: &Scoring, mode: AlignMode) -> AlignResult {
    let q = query.codes();
    let t = target.codes();
    let n = q.len();
    let m = t.len();

    // Model every gap model as one or two affine pieces: linear is affine
    // with zero open; convex is the min of two pieces.
    let pieces: Vec<(i32, i32)> = match scoring.gap {
        GapModel::Linear { extend } => vec![(0, extend)],
        GapModel::Affine { open, extend } => vec![(open, extend)],
        GapModel::Convex {
            open1,
            extend1,
            open2,
            extend2,
        } => vec![(open1, extend1), (open2, extend2)],
    };
    let np = pieces.len();

    // h[j], e[p][j] for the previous row; f[p] per piece within a row.
    let mut h_prev = vec![0i32; n + 1];
    let mut e = vec![vec![NEG; n + 1]; np];
    let border = |k: usize, piece_open: i32, piece_ext: i32| -> i32 {
        if k == 0 {
            0
        } else {
            -(piece_open + piece_ext * k as i32)
        }
    };
    if mode == AlignMode::Global {
        for (j, slot) in h_prev.iter_mut().enumerate().skip(1) {
            *slot = pieces
                .iter()
                .map(|&(o, x)| border(j, o, x))
                .max()
                .expect("at least one gap piece");
        }
    }

    let mut best = if mode == AlignMode::Local { 0 } else { NEG };
    let mut h_curr = vec![0i32; n + 1];
    for i in 1..=m {
        h_curr[0] = match mode {
            AlignMode::Global => pieces
                .iter()
                .map(|&(o, x)| border(i, o, x))
                .max()
                .expect("at least one gap piece"),
            _ => 0,
        };
        let mut f = vec![NEG; np];
        for j in 1..=n {
            let sub = scoring.substitution(t[i - 1], q[j - 1]);
            let mut h = h_prev[j - 1].saturating_add(sub);
            for (p, &(open, extend)) in pieces.iter().enumerate() {
                e[p][j] = (e[p][j].max(h_prev[j].saturating_sub(open))).saturating_sub(extend);
                f[p] = (f[p].max(h_curr[j - 1].saturating_sub(open))).saturating_sub(extend);
                h = h.max(e[p][j]).max(f[p]);
            }
            if mode == AlignMode::Local {
                h = h.max(0);
                best = best.max(h);
            }
            h_curr[j] = h;
        }
        if mode == AlignMode::SemiGlobal {
            best = best.max(h_curr[n]); // free trailing query gap
        }
        std::mem::swap(&mut h_prev, &mut h_curr);
    }
    match mode {
        AlignMode::Global => best = h_prev[n],
        AlignMode::SemiGlobal => {
            // Free trailing target gap: best over the last row too.
            for &v in h_prev.iter().take(n + 1) {
                best = best.max(v);
            }
        }
        AlignMode::Local => {}
    }
    AlignResult {
        score: best,
        cells: (m as u64) * (n as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(text: &str) -> DnaSeq {
        text.parse().unwrap()
    }

    fn affine() -> Scoring {
        Scoring::bwa_mem() // 1 / -4 / 6+1
    }

    #[test]
    fn identical_sequences_score_full_match() {
        let r = align(&s("ACGTACGT"), &s("ACGTACGT"), &affine(), AlignMode::Global);
        assert_eq!(r.score, 8);
        assert_eq!(r.cells, 64);
    }

    #[test]
    fn local_alignment_finds_embedded_match() {
        // Query is a perfect substring of the target.
        let r = align(&s("CCCC"), &s("ATATCCCCATAT"), &affine(), AlignMode::Local);
        assert_eq!(r.score, 4);
    }

    #[test]
    fn local_never_negative() {
        let r = align(&s("AAAA"), &s("TTTT"), &affine(), AlignMode::Local);
        assert_eq!(r.score, 0);
    }

    #[test]
    fn global_penalizes_length_difference() {
        // One extra base in the target: one gap of length 1.
        let r = align(&s("ACGT"), &s("ACGGT"), &affine(), AlignMode::Global);
        assert_eq!(r.score, 4 - (6 + 1));
    }

    #[test]
    fn semi_global_free_end_gaps() {
        // Query matches a prefix of the target; the dangling target suffix
        // is free in overlap mode but costly in global mode.
        let q = s("ACGT");
        let t = s("ACGTTTTTTTTT");
        let semi = align(&q, &t, &affine(), AlignMode::SemiGlobal);
        let global = align(&q, &t, &affine(), AlignMode::Global);
        assert_eq!(semi.score, 4);
        assert!(global.score < semi.score);
    }

    #[test]
    fn linear_gap_model() {
        let sc = Scoring {
            matches: 1,
            mismatch: 1,
            gap: GapModel::Linear { extend: 2 },
        };
        // deletion of length 1 costs 2.
        let r = align(&s("ACGT"), &s("ACGGT"), &sc, AlignMode::Global);
        assert_eq!(r.score, 4 - 2);
    }

    #[test]
    fn convex_prefers_cheaper_piece_for_long_gaps() {
        let convex = Scoring {
            matches: 1,
            mismatch: 4,
            gap: GapModel::Convex {
                open1: 4,
                extend1: 2,
                open2: 14,
                extend2: 1,
            },
        };
        let affine_like = Scoring {
            matches: 1,
            mismatch: 4,
            gap: GapModel::Affine { open: 4, extend: 2 },
        };
        // A 20-base deletion: convex caps the cost via the second piece.
        let q = s("ACGTACGTAC");
        let mut t_text = String::from("ACGTA");
        t_text.push_str(&"G".repeat(20));
        t_text.push_str("CGTAC");
        let t = s(&t_text);
        let rc = align(&q, &t, &convex, AlignMode::Global);
        let ra = align(&q, &t, &affine_like, AlignMode::Global);
        assert!(
            rc.score > ra.score,
            "convex {} vs affine {}",
            rc.score,
            ra.score
        );
    }

    #[test]
    fn symmetry_of_global_alignment() {
        let a = s("ACGTTACG");
        let b = s("AGGTTACG");
        let r1 = align(&a, &b, &affine(), AlignMode::Global);
        let r2 = align(&b, &a, &affine(), AlignMode::Global);
        assert_eq!(r1.score, r2.score);
    }

    #[test]
    fn empty_query_scores_zero_cells() {
        let r = align(&DnaSeq::new(), &s("ACGT"), &affine(), AlignMode::Local);
        assert_eq!(r.cells, 0);
        assert_eq!(r.score, 0);
    }
}
