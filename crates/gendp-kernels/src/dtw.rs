//! Dynamic Time Warping (paper §7.6.5): similarity of two temporal
//! sequences, used for nanopore squiggle matching and speech detection.
//! Near-range dependency pattern identical to Smith-Waterman.

/// Result of a DTW computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DtwResult {
    /// Total warped distance (lower is more similar).
    pub distance: i64,
    /// DP cells computed.
    pub cells: u64,
}

const INF: i64 = i64::MAX / 4;

/// Classic O(m·n) DTW with absolute-difference local cost.
///
/// # Panics
///
/// Panics if either signal is empty.
pub fn dtw(x: &[i32], y: &[i32]) -> DtwResult {
    dtw_banded(x, y, i64::MAX)
}

/// Banded DTW: cells with `|i - j| > band` are skipped (Sakoe-Chiba band),
/// matching the static active-region support of GenDP (§7.6.2).
///
/// # Panics
///
/// Panics if either signal is empty or `band` is negative.
pub fn dtw_banded(x: &[i32], y: &[i32], band: i64) -> DtwResult {
    dtw_band_asymmetric(x, y, -band, band)
}

/// DTW over the asymmetric diagonal band `lo_off <= j - i <= hi_off`
/// (the accelerator's static band is the `(0, width-1)` instance; the
/// Sakoe-Chiba band is `(-b, b)`).
///
/// # Panics
///
/// Panics if either signal is empty or the band is inverted.
pub fn dtw_band_asymmetric(x: &[i32], y: &[i32], lo_off: i64, hi_off: i64) -> DtwResult {
    assert!(!x.is_empty() && !y.is_empty(), "empty signal");
    assert!(lo_off <= hi_off, "inverted band");
    let m = x.len();
    let n = y.len();
    let mut prev = vec![INF; n + 1];
    let mut curr = vec![INF; n + 1];
    prev[0] = 0;
    let mut cells = 0u64;
    for i in 1..=m {
        curr[0] = INF;
        let lo = 1.max(i as i64 + lo_off).min(n as i64 + 1) as usize;
        let hi = n.min((i as i64).saturating_add(hi_off).clamp(0, n as i64) as usize);
        if lo > hi {
            curr[..=n].fill(INF);
            std::mem::swap(&mut prev, &mut curr);
            prev[0] = INF;
            continue;
        }
        curr[..lo].fill(INF);
        for j in lo..=hi {
            let cost = (x[i - 1] as i64 - y[j - 1] as i64).abs();
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = if best >= INF { INF } else { cost + best };
            cells += 1;
        }
        curr[hi + 1..=n].fill(INF);
        std::mem::swap(&mut prev, &mut curr);
        prev[0] = INF; // only (0,0) starts at zero
    }
    DtwResult {
        distance: prev[n],
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_signals_have_zero_distance() {
        let x = [1, 5, 3, 9, 7];
        let r = dtw(&x, &x);
        assert_eq!(r.distance, 0);
        assert_eq!(r.cells, 25);
    }

    #[test]
    fn time_shifted_signal_warps_cheaply() {
        // The same shape delayed by repeating the first sample: DTW absorbs
        // the shift, Euclidean-style pairing would not.
        let x = [0, 0, 10, 20, 10, 0];
        let y = [0, 10, 20, 10, 0, 0];
        let r = dtw(&x, &y);
        assert_eq!(r.distance, 0);
    }

    #[test]
    fn distance_is_symmetric() {
        let x = [3, 1, 4, 1, 5, 9, 2, 6];
        let y = [2, 7, 1, 8, 2, 8];
        assert_eq!(dtw(&x, &y).distance, dtw(&y, &x).distance);
    }

    #[test]
    fn different_signals_have_positive_distance() {
        let x = [0, 0, 0, 0];
        let y = [5, 5, 5, 5];
        assert_eq!(dtw(&x, &y).distance, 20);
    }

    #[test]
    fn wide_band_matches_full_dtw() {
        let x: Vec<i32> = (0..50).map(|i| (i * 7) % 23).collect();
        let y: Vec<i32> = (0..60).map(|i| (i * 5) % 19).collect();
        let full = dtw(&x, &y);
        let banded = dtw_banded(&x, &y, 100);
        assert_eq!(full.distance, banded.distance);
    }

    #[test]
    fn narrow_band_computes_fewer_cells() {
        let x: Vec<i32> = (0..100).collect();
        let y: Vec<i32> = (0..100).collect();
        let full = dtw(&x, &y);
        let banded = dtw_banded(&x, &y, 5);
        assert!(banded.cells < full.cells);
        // The diagonal path is inside the band, so the distance agrees.
        assert_eq!(banded.distance, full.distance);
    }

    #[test]
    #[should_panic(expected = "empty signal")]
    fn empty_signal_panics() {
        dtw(&[], &[1]);
    }
}
