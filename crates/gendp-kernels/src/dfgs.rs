//! Objective-function data-flow graphs: one per kernel, consumed by DPMap
//! (paper Fig. 3: "the intra-cell data-flow graph for the objective
//! function is mapped to compute units").
//!
//! Each builder returns a [`gendp_dfg::Dfg`] whose external inputs are the
//! per-cell values the control thread stages into the register file, and
//! whose named outputs are the new cell values. Unit tests pin every DFG's
//! semantics to the corresponding scalar kernel's inner loop, and
//! `gendp-core` relies on that equivalence when it runs the mapped
//! programs on the DPAx simulator.

use gendp_dfg::Dfg;
use gendp_isa::{ComputeOp, Luts};

use crate::chain::ChainParams;
use crate::pairhmm::{PairHmmParams, LOG_NEG_INF};
use crate::scoring::{GapModel, Scoring};

/// The BSW cell (paper Fig. 2a): affine-gap banded Smith-Waterman with the
/// packed running-maximum trick (`(score << 16) | column`) that the ISA's
/// 16-bit shifts exist for.
///
/// External inputs: `x`, `y` (base codes), `h_diag`, `h_up`, `e_up`,
/// `h_left`, `f_left`, `j` (column index), `best` (running packed max).
/// Outputs: `e`, `f`, `h`, `best`.
///
/// # Panics
///
/// Panics if the gap model is not affine.
pub fn bsw_dfg(scoring: &Scoring) -> Dfg {
    let (open, extend) = match scoring.gap {
        GapModel::Affine { open, extend } => (open, extend),
        _ => panic!("BSW uses the affine gap model"),
    };
    let mut g = Dfg::new("bsw");
    let x = g.ext("x");
    let y = g.ext("y");
    let h_diag = g.ext("h_diag");
    let h_up = g.ext("h_up");
    let e_up = g.ext("e_up");
    let h_left = g.ext("h_left");
    let f_left = g.ext("f_left");
    let j = g.ext("j");
    let best = g.ext("best");
    let gapo = g.imm(open);
    let gape = g.imm(extend);
    let zero = g.imm(0);

    let s = g.match_score(x, y);
    let diag = g.add(h_diag, s);
    let eo = g.sub(h_up, gapo);
    let e1 = g.max(e_up, eo);
    let e = g.sub(e1, gape);
    let fo = g.sub(h_left, gapo);
    let f1 = g.max(f_left, fo);
    let f = g.sub(f1, gape);
    let m0 = g.max(diag, zero);
    let ef = g.max(e, f);
    let h = g.max(m0, ef);
    // Packed running maximum: (h << 16) + j, then max against the carry.
    let hs = g.node(ComputeOp::Shl16, &[h]);
    let hp = g.add(hs, j);
    let best_new = g.max(best, hp);
    g.set_output("e", e);
    g.set_output("f", f);
    g.set_output("h", h);
    g.set_output("best", best_new);
    g
}

/// The lookup tables the BSW DFG expects (its match-score table).
pub fn bsw_luts(scoring: &Scoring) -> Luts {
    Luts::with_scores(scoring.matches, -scoring.mismatch)
}

/// The SIMD (4 x 8-bit) BSW cell: four independent alignments occupy the
/// four lanes (paper §4.2: "four DP tables are mapped to four SIMD
/// lanes"). The packed-argmax trick is replaced by a per-lane running
/// score maximum, matching [`crate::bsw_i8`].
///
/// External inputs and outputs as [`bsw_dfg`] minus `j`; `best` carries the
/// per-lane maximum score.
///
/// # Panics
///
/// Panics if the gap model is not affine.
pub fn bsw_simd_dfg(scoring: &Scoring) -> Dfg {
    let (open, extend) = match scoring.gap {
        GapModel::Affine { open, extend } => (open, extend),
        _ => panic!("BSW uses the affine gap model"),
    };
    // Immediates must carry the value in every 8-bit lane.
    let lanes = |v: i32| -> i32 {
        assert!((0..=127).contains(&v), "SIMD immediate out of lane range");
        i32::from_le_bytes([v as u8; 4])
    };
    let mut g = Dfg::new("bsw-simd");
    let x = g.ext("x");
    let y = g.ext("y");
    let h_diag = g.ext("h_diag");
    let h_up = g.ext("h_up");
    let e_up = g.ext("e_up");
    let h_left = g.ext("h_left");
    let f_left = g.ext("f_left");
    let best = g.ext("best");
    let gapo = g.imm(lanes(open));
    let gape = g.imm(lanes(extend));
    let zero = g.imm(0);

    let s = g.match_score(x, y);
    let diag = g.add(h_diag, s);
    let eo = g.sub(h_up, gapo);
    let e1 = g.max(e_up, eo);
    let e = g.sub(e1, gape);
    let fo = g.sub(h_left, gapo);
    let f1 = g.max(f_left, fo);
    let f = g.sub(f1, gape);
    let m0 = g.max(diag, zero);
    let ef = g.max(e, f);
    let h = g.max(m0, ef);
    let best_new = g.max(best, h);
    g.set_output("e", e);
    g.set_output("f", f);
    g.set_output("h", h);
    g.set_output("best", best_new);
    g
}

/// The 16-bit 2-lane SIMD BSW cell (paper §7.6.4): two alignments share
/// the word's halves, for sequences whose scores exceed the 8-bit range.
///
/// External inputs and outputs as [`bsw_simd_dfg`].
///
/// # Panics
///
/// Panics if the gap model is not affine.
pub fn bsw_simd16_dfg(scoring: &Scoring) -> Dfg {
    let (open, extend) = match scoring.gap {
        GapModel::Affine { open, extend } => (open, extend),
        _ => panic!("BSW uses the affine gap model"),
    };
    // Immediates carry the value in both 16-bit halves.
    let halves = |v: i32| -> i32 {
        assert!((0..=32767).contains(&v), "SIMD16 immediate out of range");
        gendp_isa::Word::from_halves([v as i16; 2]).as_i32()
    };
    let mut g = Dfg::new("bsw-simd16");
    let x = g.ext("x");
    let y = g.ext("y");
    let h_diag = g.ext("h_diag");
    let h_up = g.ext("h_up");
    let e_up = g.ext("e_up");
    let h_left = g.ext("h_left");
    let f_left = g.ext("f_left");
    let best = g.ext("best");
    let gapo = g.imm(halves(open));
    let gape = g.imm(halves(extend));
    let zero = g.imm(0);

    let s = g.match_score(x, y);
    let diag = g.add(h_diag, s);
    let eo = g.sub(h_up, gapo);
    let e1 = g.max(e_up, eo);
    let e = g.sub(e1, gape);
    let fo = g.sub(h_left, gapo);
    let f1 = g.max(f_left, fo);
    let f = g.sub(f1, gape);
    let m0 = g.max(diag, zero);
    let ef = g.max(e, f);
    let h = g.max(m0, ef);
    let best_new = g.max(best, h);
    g.set_output("e", e);
    g.set_output("f", f);
    g.set_output("h", h);
    g.set_output("best", best_new);
    g
}

/// The global (Needleman-Wunsch) BSW cell: as [`bsw_dfg`] without the
/// local clamp and argmax tracking — the score is read from the table
/// corner (paper §7.6.3: global alignment support).
///
/// External inputs: `x`, `y`, `h_diag`, `h_up`, `e_up`, `h_left`,
/// `f_left`. Outputs: `e`, `f`, `h`.
///
/// # Panics
///
/// Panics if the gap model is not affine.
pub fn bsw_global_dfg(scoring: &Scoring) -> Dfg {
    let (open, extend) = match scoring.gap {
        GapModel::Affine { open, extend } => (open, extend),
        _ => panic!("BSW uses the affine gap model"),
    };
    let mut g = Dfg::new("bsw-global");
    let x = g.ext("x");
    let y = g.ext("y");
    let h_diag = g.ext("h_diag");
    let h_up = g.ext("h_up");
    let e_up = g.ext("e_up");
    let h_left = g.ext("h_left");
    let f_left = g.ext("f_left");
    let gapo = g.imm(open);
    let gape = g.imm(extend);

    let s = g.match_score(x, y);
    let diag = g.add(h_diag, s);
    let eo = g.sub(h_up, gapo);
    let e1 = g.max(e_up, eo);
    let e = g.sub(e1, gape);
    let fo = g.sub(h_left, gapo);
    let f1 = g.max(f_left, fo);
    let f = g.sub(f1, gape);
    let ef = g.max(e, f);
    let h = g.max(diag, ef);
    g.set_output("e", e);
    g.set_output("f", f);
    g.set_output("h", h);
    g
}

/// The semi-global (overlap) BSW cell for a query of length `n`: free
/// leading/trailing gaps, with a running maximum updated only in the last
/// column (tracked with a conditional select on the column index).
///
/// External inputs as [`bsw_global_dfg`] plus `j` (1-based column) and
/// `best`. Outputs: `e`, `f`, `h`, `best`.
///
/// # Panics
///
/// Panics if the gap model is not affine or `n` is zero.
pub fn bsw_semiglobal_dfg(scoring: &Scoring, n: usize) -> Dfg {
    assert!(n > 0, "query length must be positive");
    let (open, extend) = match scoring.gap {
        GapModel::Affine { open, extend } => (open, extend),
        _ => panic!("BSW uses the affine gap model"),
    };
    let mut g = Dfg::new("bsw-semiglobal");
    let x = g.ext("x");
    let y = g.ext("y");
    let h_diag = g.ext("h_diag");
    let h_up = g.ext("h_up");
    let e_up = g.ext("e_up");
    let h_left = g.ext("h_left");
    let f_left = g.ext("f_left");
    let j = g.ext("j");
    let best = g.ext("best");
    let gapo = g.imm(open);
    let gape = g.imm(extend);
    let last_col = g.imm(n as i32);

    let s = g.match_score(x, y);
    let diag = g.add(h_diag, s);
    let eo = g.sub(h_up, gapo);
    let e1 = g.max(e_up, eo);
    let e = g.sub(e1, gape);
    let fo = g.sub(h_left, gapo);
    let f1 = g.max(f_left, fo);
    let f = g.sub(f1, gape);
    let ef = g.max(e, f);
    let h = g.max(diag, ef);
    // best' = (j == n) ? max(best, h) : best
    let cand = g.max(best, h);
    let best_new = g.select_eq(j, last_col, cand, best);
    g.set_output("e", e);
    g.set_output("f", f);
    g.set_output("h", h);
    g.set_output("best", best_new);
    g
}

/// The convex-gap (dual-affine) BSW cell (paper §7.6.3: "linear, affine,
/// and convex scoring modes"): two E/F matrix pairs, one per affine piece,
/// local mode with argmax tracking as [`bsw_dfg`].
///
/// External inputs: `x`, `y`, `h_diag`, `h_up`, `e1_up`, `e2_up`,
/// `h_left`, `f1_left`, `f2_left`, `j`, `best`. Outputs: `e1`, `e2`,
/// `f1`, `f2`, `h`, `best`.
///
/// # Panics
///
/// Panics if the gap model is not convex.
pub fn bsw_convex_dfg(scoring: &Scoring) -> Dfg {
    let (o1, x1, o2, x2) = match scoring.gap {
        GapModel::Convex {
            open1,
            extend1,
            open2,
            extend2,
        } => (open1, extend1, open2, extend2),
        _ => panic!("convex cell needs the convex gap model"),
    };
    let mut g = Dfg::new("bsw-convex");
    let x = g.ext("x");
    let y = g.ext("y");
    let h_diag = g.ext("h_diag");
    let h_up = g.ext("h_up");
    let e1_up = g.ext("e1_up");
    let e2_up = g.ext("e2_up");
    let h_left = g.ext("h_left");
    let f1_left = g.ext("f1_left");
    let f2_left = g.ext("f2_left");
    let j = g.ext("j");
    let best = g.ext("best");
    let zero = g.imm(0);

    let s = g.match_score(x, y);
    let diag = g.add(h_diag, s);
    let piece = |g: &mut Dfg, up_or_left, h_src, o: i32, e: i32| {
        let go = g.imm(o);
        let ge = g.imm(e);
        let opened = g.sub(h_src, go);
        let m = g.max(up_or_left, opened);
        g.sub(m, ge)
    };
    let e1 = piece(&mut g, e1_up, h_up, o1, x1);
    let e2 = piece(&mut g, e2_up, h_up, o2, x2);
    let f1 = piece(&mut g, f1_left, h_left, o1, x1);
    let f2 = piece(&mut g, f2_left, h_left, o2, x2);
    let e = g.max(e1, e2);
    let f = g.max(f1, f2);
    let ef = g.max(e, f);
    let m0 = g.max(diag, zero);
    let h = g.max(m0, ef);
    let hs = g.node(ComputeOp::Shl16, &[h]);
    let hp = g.add(hs, j);
    let best_new = g.max(best, hp);
    g.set_output("e1", e1);
    g.set_output("e2", e2);
    g.set_output("f1", f1);
    g.set_output("f2", f2);
    g.set_output("h", h);
    g.set_output("best", best_new);
    g
}

/// The log-domain PairHMM cell (paper Fig. 2b, executed in scaled
/// fixed-point on the integer PE arrays; §7.2).
///
/// External inputs: `x`, `y`, `m_diag`, `i_diag`, `d_diag`, `m_up`, `i_up`,
/// `m_left`, `d_left`. Outputs: `m`, `i`, `d`. Transition log-probabilities
/// are immediates; the emission prior is the score table.
///
/// # Panics
///
/// Panics if `scale` is not positive.
pub fn pairhmm_log_dfg(params: &PairHmmParams, scale: i32) -> Dfg {
    assert!(scale > 0, "scale must be positive");
    let l = |p: f64| -> i32 {
        if p <= 0.0 {
            LOG_NEG_INF
        } else {
            (p.ln() * scale as f64).round() as i32
        }
    };
    let d = params.gap_open;
    let e = params.gap_ext;
    let mut g = Dfg::new("pairhmm-log");
    let x = g.ext("x");
    let y = g.ext("y");
    let m_diag = g.ext("m_diag");
    let i_diag = g.ext("i_diag");
    let d_diag = g.ext("d_diag");
    let m_up = g.ext("m_up");
    let i_up = g.ext("i_up");
    let m_left = g.ext("m_left");
    let d_left = g.ext("d_left");
    let tmm = g.imm(l(1.0 - 2.0 * d));
    let tmi = g.imm(l(d));
    let tmd = g.imm(l(d));
    let tii = g.imm(l(e));
    let tim = g.imm(l(1.0 - e));
    let tdd = g.imm(l(e));
    let tdm = g.imm(l(1.0 - e));

    // logsum2(a, b) = max(a,b) + lut(|a-b|), matching pairhmm::logsum2.
    let logsum = |g: &mut Dfg, a, b| {
        let diff = g.sub(a, b);
        let zero = g.imm(0);
        let nd = g.sub(zero, diff);
        let dd = g.max(diff, nd);
        let hi = g.max(a, b);
        let corr = g.log_sum(dd);
        g.add(hi, corr)
    };

    let prior = g.match_score(x, y);
    let am = g.add(tmm, m_diag);
    let bm = g.add(tim, i_diag);
    let cm = g.add(tdm, d_diag);
    let ab = logsum(&mut g, am, bm);
    let abc = logsum(&mut g, ab, cm);
    let m = g.add(prior, abc);

    let ai = g.add(tmi, m_up);
    let bi = g.add(tii, i_up);
    let i = logsum(&mut g, ai, bi);

    let ad = g.add(tmd, m_left);
    let bd = g.add(tdd, d_left);
    let dout = logsum(&mut g, ad, bd);

    g.set_output("m", m);
    g.set_output("i", i);
    g.set_output("d", dout);
    g
}

/// The lookup tables the log-domain PairHMM DFG expects: scaled log
/// emission priors in the score table and the log-sum scale.
pub fn pairhmm_luts(qual: u8, scale: i32) -> Luts {
    let eps = 10f64.powf(-(qual as f64) / 10.0);
    let l = |p: f64| (p.ln() * scale as f64).round() as i32;
    Luts {
        score_eq: gendp_isa::Word::from_i32(l(1.0 - eps)),
        score_ne: gendp_isa::Word::from_i32(l(eps / 3.0)),
        logsum_scale: scale,
    }
}

/// The probability-domain PairHMM cell for the floating-point PE array
/// (paper Fig. 4's FP array; §7.6.4: "DPAx has both integer and
/// floating-point PEs"). Transition probabilities are `f32` immediates;
/// the emission prior is the score table in `f32`.
///
/// External inputs and outputs as [`pairhmm_log_dfg`]; all values are
/// IEEE-754 singles carried in raw words.
pub fn pairhmm_float_dfg(params: &PairHmmParams) -> Dfg {
    let d = params.gap_open;
    let e = params.gap_ext;
    let mut g = Dfg::new("pairhmm-float");
    let x = g.ext("x");
    let y = g.ext("y");
    let m_diag = g.ext("m_diag");
    let i_diag = g.ext("i_diag");
    let d_diag = g.ext("d_diag");
    let m_up = g.ext("m_up");
    let i_up = g.ext("i_up");
    let m_left = g.ext("m_left");
    let d_left = g.ext("d_left");
    let tmm = g.imm_f32((1.0 - 2.0 * d) as f32);
    let tmi = g.imm_f32(d as f32);
    let tmd = g.imm_f32(d as f32);
    let tii = g.imm_f32(e as f32);
    let tim = g.imm_f32((1.0 - e) as f32);
    let tdd = g.imm_f32(e as f32);
    let tdm = g.imm_f32((1.0 - e) as f32);

    let prior = g.match_score(x, y);
    let am = g.mul(tmm, m_diag);
    let bm = g.mul(tim, i_diag);
    let cm = g.mul(tdm, d_diag);
    let ab = g.add(am, bm);
    let abc = g.add(ab, cm);
    let m = g.mul(prior, abc);

    let ai = g.mul(tmi, m_up);
    let bi = g.mul(tii, i_up);
    let i = g.add(ai, bi);

    let ad = g.mul(tmd, m_left);
    let bd = g.mul(tdd, d_left);
    let dout = g.add(ad, bd);

    g.set_output("m", m);
    g.set_output("i", i);
    g.set_output("d", dout);
    g
}

/// The lookup tables the floating-point PairHMM DFG expects: `f32`
/// emission priors in the score table.
pub fn pairhmm_float_luts(qual: u8) -> Luts {
    let eps = 10f64.powf(-(qual as f64) / 10.0);
    Luts::with_scores_f32((1.0 - eps) as f32, (eps / 3.0) as f32)
}

/// The POA cell for a node with two predecessors (paper Fig. 2c), with the
/// traceback-direction output that makes POA's downstream move data so
/// costly (§7.2: "8-byte outputs ... for each cell").
///
/// External inputs: `vb` (node base), `y`, `h_p1_left`, `h_p1`,
/// `h_p2_left`, `h_p2`, `h_left`. Outputs: `h`, `dir`
/// (0 = diag pred 1, 1 = up pred 1, 2 = diag pred 2, 3 = up pred 2,
/// 4 = left).
///
/// # Panics
///
/// Panics if the gap model is not linear.
pub fn poa_dfg(scoring: &Scoring) -> Dfg {
    let gap = match scoring.gap {
        GapModel::Linear { extend } => extend,
        _ => panic!("POA uses the linear gap model"),
    };
    let mut g = Dfg::new("poa");
    let vb = g.ext("vb");
    let y = g.ext("y");
    let h_p1_left = g.ext("h_p1_left");
    let h_p1 = g.ext("h_p1");
    let h_p2_left = g.ext("h_p2_left");
    let h_p2 = g.ext("h_p2");
    let h_left = g.ext("h_left");
    let gp = g.imm(gap);

    let s = g.match_score(vb, y);
    let c1m = g.add(h_p1_left, s);
    let c1d = g.sub(h_p1, gp);
    let c2m = g.add(h_p2_left, s);
    let c2d = g.sub(h_p2, gp);
    let cl = g.sub(h_left, gp);

    let dir0 = g.imm(0);
    let m1 = g.max(c1m, c1d);
    let d1 = g.select_gt(c1d, c1m, g.imm(1), dir0);
    let m2 = g.max(m1, c2m);
    let d2 = g.select_gt(c2m, m1, g.imm(2), d1);
    let m3 = g.max(m2, c2d);
    let d3 = g.select_gt(c2d, m2, g.imm(3), d2);
    let h = g.max(m3, cl);
    let dir = g.select_gt(cl, m3, g.imm(4), d3);
    g.set_output("h", h);
    g.set_output("dir", dir);
    g
}

/// The Chain per-pair update (paper Fig. 2d): scores the link `i -> j`
/// with the minimap2 gap cost and folds it into anchor `j`'s running best.
///
/// External inputs: `qi`, `ri`, `qj`, `rj`, `spanj`, `fi`, `fj`, `idx_i`,
/// `pj`. Outputs: `fj` (updated score) and `pj` (updated parent index).
pub fn chain_dfg(params: &ChainParams) -> Dfg {
    let mut g = Dfg::new("chain");
    let qi = g.ext("qi");
    let ri = g.ext("ri");
    let qj = g.ext("qj");
    let rj = g.ext("rj");
    let spanj = g.ext("spanj");
    let fi = g.ext("fi");
    let fj = g.ext("fj");
    let idx_i = g.ext("idx_i");
    let pj = g.ext("pj");
    let zero = g.imm(0);
    let neg = g.imm(crate::chain::CHAIN_NEG);
    let maxd = g.imm(params.max_dist);
    let bw = g.imm(params.bandwidth);
    let scale = g.imm(params.gap_scale_q16());

    let dq = g.sub(qj, qi);
    let dr = g.sub(rj, ri);
    let d = g.sub(dq, dr);
    let nd = g.sub(zero, d);
    let dd = g.max(d, nd);
    let dg = g.min(dq, dr);
    let alpha = g.min(dg, spanj);
    let lin_raw = g.mul(dd, scale);
    let lin = g.node(ComputeOp::Shr16, &[lin_raw]);
    let log = g.log2_half(dd);
    let gap = g.add(lin, log);
    let a_minus_gap = g.sub(alpha, gap);
    let sc0 = g.add(fi, a_minus_gap);
    // Validity selects, in the same order as chain::link_score.
    let v1 = g.select_gt(dq, zero, sc0, neg);
    let v2 = g.select_gt(dr, zero, v1, neg);
    let v3 = g.select_gt(dq, maxd, neg, v2);
    let v4 = g.select_gt(dr, maxd, neg, v3);
    let sc = g.select_gt(dd, bw, neg, v4);
    let f_new = g.max(fj, sc);
    let p_new = g.select_gt(sc, fj, idx_i, pj);
    g.set_output("fj", f_new);
    g.set_output("pj", p_new);
    g
}

/// The DTW cell (paper §7.6.5): absolute difference plus the minimum of
/// the three neighbors.
///
/// External inputs: `x`, `y`, `d_up`, `d_left`, `d_diag`. Output: `d`.
pub fn dtw_dfg() -> Dfg {
    let mut g = Dfg::new("dtw");
    let x = g.ext("x");
    let y = g.ext("y");
    let d_up = g.ext("d_up");
    let d_left = g.ext("d_left");
    let d_diag = g.ext("d_diag");
    let zero = g.imm(0);
    let d = g.sub(x, y);
    let nd = g.sub(zero, d);
    let cost = g.max(d, nd);
    let m1 = g.min(d_up, d_left);
    let m2 = g.min(m1, d_diag);
    let out = g.add(cost, m2);
    g.set_output("d", out);
    g
}

/// The banded DTW cell (paper §7.6.2: static active regions): the DTW
/// update plus corner capture — `best` takes the cell value exactly at the
/// target corner column, so the result survives the band's diagonal sweep.
///
/// External inputs: the [`dtw_dfg`] set plus `j` (1-based column) and
/// `best`. Outputs: `d`, `best`. `n` is the corner column to capture.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn dtw_banded_dfg(n: usize) -> Dfg {
    assert!(n > 0, "corner column must be positive");
    let mut g = Dfg::new("dtw-banded");
    let x = g.ext("x");
    let y = g.ext("y");
    let d_up = g.ext("d_up");
    let d_left = g.ext("d_left");
    let d_diag = g.ext("d_diag");
    let j = g.ext("j");
    let best = g.ext("best");
    let zero = g.imm(0);
    let corner = g.imm(n as i32);
    let d = g.sub(x, y);
    let nd = g.sub(zero, d);
    let cost = g.max(d, nd);
    let m1 = g.min(d_up, d_left);
    let m2 = g.min(m1, d_diag);
    let out = g.add(cost, m2);
    let best_new = g.select_eq(j, corner, out, best);
    g.set_output("d", out);
    g.set_output("best", best_new);
    g
}

/// The Bellman-Ford edge relaxation (paper §7.6.5), with parent tracking.
///
/// External inputs: `d_u`, `w`, `d_v`, `u_idx`, `p_v`. Outputs: `d`
/// (relaxed distance), `p` (updated parent).
pub fn bellman_ford_dfg() -> Dfg {
    let mut g = Dfg::new("bellman-ford");
    let d_u = g.ext("d_u");
    let w = g.ext("w");
    let d_v = g.ext("d_v");
    let u_idx = g.ext("u_idx");
    let p_v = g.ext("p_v");
    let cand = g.add(d_u, w);
    let d = g.min(d_v, cand);
    let p = g.select_gt(d_v, cand, u_idx, p_v);
    g.set_output("d", d);
    g.set_output("p", p);
    g
}

/// The LCS cell (paper Eq. 1).
///
/// External inputs: `x`, `y`, `c_diag`, `c_up`, `c_left`. Output: `c`.
pub fn lcs_dfg() -> Dfg {
    let mut g = Dfg::new("lcs");
    let x = g.ext("x");
    let y = g.ext("y");
    let c_diag = g.ext("c_diag");
    let c_up = g.ext("c_up");
    let c_left = g.ext("c_left");
    let one = g.imm(1);
    let inc = g.add(c_diag, one);
    let m = g.max(c_up, c_left);
    let c = g.select_eq(x, y, inc, m);
    g.set_output("c", c);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendp_isa::Mode;
    use gendp_seq::Anchor;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn bsw_dfg_matches_kernel_cell() {
        let scoring = Scoring::bwa_mem();
        let g = bsw_dfg(&scoring);
        let luts = bsw_luts(&scoring);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let x = rng.gen_range(0..4);
            let y = rng.gen_range(0..4);
            let h_diag = rng.gen_range(-50..200);
            let h_up = rng.gen_range(-50..200);
            let e_up = rng.gen_range(-50..200);
            let h_left = rng.gen_range(-50..200);
            let f_left = rng.gen_range(-50..200);
            let j = rng.gen_range(0..60);
            let best = rng.gen_range(0..(100 << 16));
            let out = g
                .eval_i32(
                    &[
                        ("x", x),
                        ("y", y),
                        ("h_diag", h_diag),
                        ("h_up", h_up),
                        ("e_up", e_up),
                        ("h_left", h_left),
                        ("f_left", f_left),
                        ("j", j),
                        ("best", best),
                    ],
                    Mode::Int32,
                    &luts,
                )
                .unwrap();
            // Scalar reference: the bsw_i32 inner loop.
            let sub = scoring.substitution(x as u8, y as u8);
            let e = (e_up.max(h_up - 6)) - 1;
            let f = (f_left.max(h_left - 6)) - 1;
            let h = (h_diag + sub).max(e).max(f).max(0);
            assert_eq!(out["e"], e);
            assert_eq!(out["f"], f);
            assert_eq!(out["h"], h);
            assert_eq!(out["best"], best.max((h << 16) + j));
        }
    }

    #[test]
    fn pairhmm_dfg_matches_log_fixed_cell() {
        let params = PairHmmParams::gatk();
        let scale = 1024;
        let g = pairhmm_log_dfg(&params, scale);
        let luts = pairhmm_luts(30, scale);
        let l = |p: f64| (p.ln() * scale as f64).round() as i32;
        let d = params.gap_open;
        let e = params.gap_ext;
        let (tmm, tmi, tii, tim, tdd, tdm) =
            (l(1.0 - 2.0 * d), l(d), l(e), l(1.0 - e), l(e), l(1.0 - e));
        let tmd = tmi;
        let logsum = |a: i32, b: i32| -> i32 {
            let diff = a.wrapping_sub(b);
            let dd = diff.max(0i32.wrapping_sub(diff));
            a.max(b).wrapping_add(luts.logsum_correction(dd))
        };
        let eps = 10f64.powf(-3.0);
        let prior_eq = l(1.0 - eps);
        let prior_ne = l(eps / 3.0);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..200 {
            let x = rng.gen_range(0..4);
            let y = rng.gen_range(0..4);
            let vals: Vec<i32> = (0..7)
                .map(|_| {
                    if rng.gen_bool(0.2) {
                        LOG_NEG_INF
                    } else {
                        rng.gen_range(-80_000..0)
                    }
                })
                .collect();
            let out = g
                .eval_i32(
                    &[
                        ("x", x),
                        ("y", y),
                        ("m_diag", vals[0]),
                        ("i_diag", vals[1]),
                        ("d_diag", vals[2]),
                        ("m_up", vals[3]),
                        ("i_up", vals[4]),
                        ("m_left", vals[5]),
                        ("d_left", vals[6]),
                    ],
                    Mode::Int32,
                    &luts,
                )
                .unwrap();
            let prior = if x == y { prior_eq } else { prior_ne };
            let m = prior.wrapping_add(logsum(
                logsum(tmm.wrapping_add(vals[0]), tim.wrapping_add(vals[1])),
                tdm.wrapping_add(vals[2]),
            ));
            let i = logsum(tmi.wrapping_add(vals[3]), tii.wrapping_add(vals[4]));
            let dd = logsum(tmd.wrapping_add(vals[5]), tdd.wrapping_add(vals[6]));
            assert_eq!(out["m"], m);
            assert_eq!(out["i"], i);
            assert_eq!(out["d"], dd);
        }
    }

    #[test]
    fn poa_dfg_matches_two_pred_cell() {
        let scoring = Scoring::racon();
        let g = poa_dfg(&scoring);
        let luts = Luts::with_scores(scoring.matches, -scoring.mismatch);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let vb = rng.gen_range(0..4);
            let y = rng.gen_range(0..4);
            let vals: Vec<i32> = (0..5).map(|_| rng.gen_range(-500..500)).collect();
            let out = g
                .eval_i32(
                    &[
                        ("vb", vb),
                        ("y", y),
                        ("h_p1_left", vals[0]),
                        ("h_p1", vals[1]),
                        ("h_p2_left", vals[2]),
                        ("h_p2", vals[3]),
                        ("h_left", vals[4]),
                    ],
                    Mode::Int32,
                    &luts,
                )
                .unwrap();
            let s = scoring.substitution(vb as u8, y as u8);
            let gap = 4;
            let c1m = vals[0] + s;
            let c1d = vals[1] - gap;
            let c2m = vals[2] + s;
            let c2d = vals[3] - gap;
            let cl = vals[4] - gap;
            let h = c1m.max(c1d).max(c2m).max(c2d).max(cl);
            assert_eq!(out["h"], h);
            // The direction must point at a candidate achieving h.
            let cands = [c1m, c1d, c2m, c2d, cl];
            // dir encoding: 0=c1m,1=c1d,2=c2m,3=c2d,4=cl.
            assert_eq!(cands[out["dir"] as usize], h, "dir {}", out["dir"]);
        }
    }

    #[test]
    fn chain_dfg_matches_link_score() {
        let params = ChainParams::minimap2(13.0);
        let g = chain_dfg(&params);
        let luts = Luts::default();
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..300 {
            let ai = Anchor {
                rpos: rng.gen_range(0..10_000),
                qpos: rng.gen_range(0..10_000),
                span: 13,
            };
            let aj = Anchor {
                rpos: ai.rpos + rng.gen_range(-100..2_000),
                qpos: ai.qpos + rng.gen_range(-100..2_000),
                span: 13,
            };
            let fi = rng.gen_range(0..500);
            let fj = rng.gen_range(0..500);
            let (idx_i, pj) = (7, -1);
            let out = g
                .eval_i32(
                    &[
                        ("qi", ai.qpos),
                        ("ri", ai.rpos),
                        ("qj", aj.qpos),
                        ("rj", aj.rpos),
                        ("spanj", aj.span),
                        ("fi", fi),
                        ("fj", fj),
                        ("idx_i", idx_i),
                        ("pj", pj),
                    ],
                    Mode::Int32,
                    &luts,
                )
                .unwrap();
            let sc = crate::chain::link_score(&ai, fi, &aj, &params);
            assert_eq!(out["fj"], fj.max(sc));
            assert_eq!(out["pj"], if sc > fj { idx_i } else { pj });
        }
    }

    #[test]
    fn dtw_dfg_matches_cell() {
        let g = dtw_dfg();
        let luts = Luts::default();
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..200 {
            let x = rng.gen_range(-1000..1000);
            let y = rng.gen_range(-1000..1000);
            let up = rng.gen_range(0..100_000);
            let left = rng.gen_range(0..100_000);
            let diag = rng.gen_range(0..100_000);
            let out = g
                .eval_i32(
                    &[
                        ("x", x),
                        ("y", y),
                        ("d_up", up),
                        ("d_left", left),
                        ("d_diag", diag),
                    ],
                    Mode::Int32,
                    &luts,
                )
                .unwrap();
            assert_eq!(out["d"], (x - y).abs() + up.min(left).min(diag));
        }
    }

    #[test]
    fn bellman_ford_dfg_matches_relaxation() {
        let g = bellman_ford_dfg();
        let luts = Luts::default();
        let mut rng = SmallRng::seed_from_u64(6);
        for _ in 0..200 {
            let d_u = rng.gen_range(0..1_000_000);
            let w = rng.gen_range(1..100);
            let d_v = rng.gen_range(0..1_000_000);
            let out = g
                .eval_i32(
                    &[
                        ("d_u", d_u),
                        ("w", w),
                        ("d_v", d_v),
                        ("u_idx", 3),
                        ("p_v", 9),
                    ],
                    Mode::Int32,
                    &luts,
                )
                .unwrap();
            assert_eq!(out["d"], d_v.min(d_u + w));
            assert_eq!(out["p"], if d_v > d_u + w { 3 } else { 9 });
        }
    }

    #[test]
    fn lcs_dfg_matches_equation_1() {
        let g = lcs_dfg();
        let luts = Luts::default();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..200 {
            let x = rng.gen_range(0..4);
            let y = rng.gen_range(0..4);
            let c_diag = rng.gen_range(0..100);
            let c_up = rng.gen_range(0..100);
            let c_left = rng.gen_range(0..100);
            let out = g
                .eval_i32(
                    &[
                        ("x", x),
                        ("y", y),
                        ("c_diag", c_diag),
                        ("c_up", c_up),
                        ("c_left", c_left),
                    ],
                    Mode::Int32,
                    &luts,
                )
                .unwrap();
            let expect = if x == y { c_diag + 1 } else { c_up.max(c_left) };
            assert_eq!(out["c"], expect);
        }
    }

    #[test]
    fn all_dfgs_are_mappable() {
        // Every kernel DFG must survive the full DPMap pipeline — this is
        // checked end-to-end in gendp-core; here we pin validity and size.
        let dfgs = [
            bsw_dfg(&Scoring::bwa_mem()),
            pairhmm_log_dfg(&PairHmmParams::gatk(), 1024),
            poa_dfg(&Scoring::racon()),
            chain_dfg(&ChainParams::minimap2(13.0)),
            dtw_dfg(),
            bellman_ford_dfg(),
            lcs_dfg(),
        ];
        for g in &dfgs {
            let report = gendp_verify::Verifier::default().verify_dfg(g);
            assert!(report.is_clean(), "{}: {report:?}", g.name());
            assert!(g.len() >= 3, "{} suspiciously small", g.name());
            assert!(g.outputs().count() >= 1);
        }
    }
}
