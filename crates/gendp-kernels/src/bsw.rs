//! Banded Smith-Waterman (paper §2.3): the short-read seed-extension
//! kernel, with the 8-bit saturating variant that maps to DPAx's four
//! SIMD lanes.

use gendp_seq::DnaSeq;

use crate::scoring::{AlignMode, GapModel, Scoring};

/// Result of a banded alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BswResult {
    /// Optimal in-band alignment score.
    pub score: i32,
    /// DP cells actually computed (band only).
    pub cells: u64,
}

const NEG: i32 = i32::MIN / 4;

fn affine_params(scoring: &Scoring) -> (i32, i32) {
    match scoring.gap {
        GapModel::Affine { open, extend } => (open, extend),
        _ => panic!("BSW uses the affine gap model (paper §2.3)"),
    }
}

/// Banded affine-gap alignment with 32-bit arithmetic.
///
/// The band permits at most `band` insertions or deletions: cell `(i, j)`
/// is computed only when `|i - j| <= band` (paper Fig. 2a). With a band at
/// least `max(|query|, |target|)` the result equals the full-table
/// [`crate::align()`](crate::align()).
///
/// # Panics
///
/// Panics if the scoring's gap model is not affine or `band` is negative.
pub fn bsw_i32(
    query: &DnaSeq,
    target: &DnaSeq,
    scoring: &Scoring,
    band: i32,
    mode: AlignMode,
) -> BswResult {
    assert!(band >= 0, "band must be non-negative");
    let (open, extend) = affine_params(scoring);
    let q = query.codes();
    let t = target.codes();
    let n = q.len() as i64;
    let m = t.len() as i64;
    let w = band as i64;

    let mut h_prev = vec![NEG; (n + 1) as usize];
    let mut e = vec![NEG; (n + 1) as usize];
    match mode {
        AlignMode::Global => {
            for j in 0..=n.min(w) {
                h_prev[j as usize] = if j == 0 {
                    0
                } else {
                    -(open + extend * j as i32)
                };
            }
        }
        _ => {
            h_prev.fill(0);
        }
    }

    let mut best = if mode == AlignMode::Local { 0 } else { NEG };
    let mut cells = 0u64;
    let mut h_curr = vec![NEG; (n + 1) as usize];
    for i in 1..=m {
        let lo = 1.max(i - w);
        let hi = n.min(i + w);
        if lo > hi {
            std::mem::swap(&mut h_prev, &mut h_curr);
            continue;
        }
        h_curr[(lo - 1) as usize] = match mode {
            AlignMode::Global if lo == 1 && i <= w => -(open + extend * i as i32),
            AlignMode::Global => NEG,
            _ if lo == 1 => 0,
            _ => NEG,
        };
        let mut f = NEG;
        for j in lo..=hi {
            let ju = j as usize;
            let sub = scoring.substitution(t[(i - 1) as usize], q[(j - 1) as usize]);
            // E: gap in the query (vertical move); at the band's upper edge
            // the up-neighbor is out of band.
            let h_up = if j < i + w { h_prev[ju] } else { NEG };
            let e_up = if j < i + w { e[ju] } else { NEG };
            e[ju] = e_up.max(h_up.saturating_sub(open)).saturating_sub(extend);
            // F: gap in the target (horizontal move).
            f = f
                .max(h_curr[ju - 1].saturating_sub(open))
                .saturating_sub(extend);
            let diag = h_prev[ju - 1].saturating_add(sub);
            let mut h = diag.max(e[ju]).max(f);
            if mode == AlignMode::Local {
                h = h.max(0);
                best = best.max(h);
            }
            h_curr[ju] = h;
            cells += 1;
        }
        if mode == AlignMode::SemiGlobal && hi == n {
            best = best.max(h_curr[n as usize]);
        }
        std::mem::swap(&mut h_prev, &mut h_curr);
    }
    match mode {
        AlignMode::Global => best = h_prev[n as usize],
        AlignMode::SemiGlobal => {
            for &v in h_prev.iter().take(n as usize + 1) {
                best = best.max(v);
            }
        }
        AlignMode::Local => {}
    }
    BswResult { score: best, cells }
}

/// Banded local alignment with 8-bit saturating arithmetic — the scalar
/// model of one DPAx SIMD lane (paper §4.2: four concurrent 8-bit groups).
///
/// Scores clamp to `[0, 127]`; results agree with [`bsw_i32`] whenever the
/// true score stays below 128 (the paper's §2.3: "BSW can be computed using
/// 8-bit or 16-bit integer arithmetic depending on the sequence length").
///
/// # Panics
///
/// Panics if the scoring's gap model is not affine or `band` is negative.
pub fn bsw_i8(query: &DnaSeq, target: &DnaSeq, scoring: &Scoring, band: i32) -> BswResult {
    assert!(band >= 0, "band must be non-negative");
    let (open, extend) = affine_params(scoring);
    let sat = |v: i32| -> i8 { v.clamp(i8::MIN as i32, i8::MAX as i32) as i8 };
    let q = query.codes();
    let t = target.codes();
    let n = q.len() as i64;
    let m = t.len() as i64;
    let w = band as i64;

    const NEG8: i8 = -64;
    let mut h_prev = vec![0i8; (n + 1) as usize];
    let mut e = vec![NEG8; (n + 1) as usize];
    let mut best = 0i8;
    let mut cells = 0u64;
    let mut h_curr = vec![0i8; (n + 1) as usize];
    for i in 1..=m {
        let lo = 1.max(i - w);
        let hi = n.min(i + w);
        if lo > hi {
            std::mem::swap(&mut h_prev, &mut h_curr);
            continue;
        }
        h_curr[(lo - 1) as usize] = if lo == 1 { 0 } else { NEG8 };
        let mut f = NEG8;
        for j in lo..=hi {
            let ju = j as usize;
            let sub = sat(scoring.substitution(t[(i - 1) as usize], q[(j - 1) as usize]));
            let h_up = if j < i + w { h_prev[ju] } else { NEG8 };
            let e_up = if j < i + w { e[ju] } else { NEG8 };
            e[ju] = sat(e_up.max(sat(h_up as i32 - open)) as i32 - extend);
            f = sat(f.max(sat(h_curr[ju - 1] as i32 - open)) as i32 - extend);
            let diag = sat(h_prev[ju - 1] as i32 + sub as i32);
            let h = diag.max(e[ju]).max(f).max(0);
            best = best.max(h);
            h_curr[ju] = h;
            cells += 1;
        }
        std::mem::swap(&mut h_prev, &mut h_curr);
    }
    BswResult {
        score: best as i32,
        cells,
    }
}

/// Banded local alignment with 16-bit saturating arithmetic — the scalar
/// model of one DPAx 16-bit SIMD half (paper §2.3: "8-bit or 16-bit
/// integer arithmetic depending on the sequence length"; §7.6.4).
///
/// Scores clamp to `[0, 32767]`; results agree with [`bsw_i32`] whenever
/// the true score stays below 32768.
///
/// # Panics
///
/// Panics if the scoring's gap model is not affine or `band` is negative.
pub fn bsw_i16(query: &DnaSeq, target: &DnaSeq, scoring: &Scoring, band: i32) -> BswResult {
    assert!(band >= 0, "band must be non-negative");
    let (open, extend) = affine_params(scoring);
    let sat = |v: i32| -> i16 { v.clamp(i16::MIN as i32, i16::MAX as i32) as i16 };
    let q = query.codes();
    let t = target.codes();
    let n = q.len() as i64;
    let m = t.len() as i64;
    let w = band as i64;

    const NEG16: i16 = -16384;
    let mut h_prev = vec![0i16; (n + 1) as usize];
    let mut e = vec![NEG16; (n + 1) as usize];
    let mut best = 0i16;
    let mut cells = 0u64;
    let mut h_curr = vec![0i16; (n + 1) as usize];
    for i in 1..=m {
        let lo = 1.max(i - w);
        let hi = n.min(i + w);
        if lo > hi {
            std::mem::swap(&mut h_prev, &mut h_curr);
            continue;
        }
        h_curr[(lo - 1) as usize] = if lo == 1 { 0 } else { NEG16 };
        let mut f = NEG16;
        for j in lo..=hi {
            let ju = j as usize;
            let sub = sat(scoring.substitution(t[(i - 1) as usize], q[(j - 1) as usize]));
            let h_up = if j < i + w { h_prev[ju] } else { NEG16 };
            let e_up = if j < i + w { e[ju] } else { NEG16 };
            e[ju] = sat(e_up.max(sat(h_up as i32 - open)) as i32 - extend);
            f = sat(f.max(sat(h_curr[ju - 1] as i32 - open)) as i32 - extend);
            let diag = sat(h_prev[ju - 1] as i32 + sub as i32);
            let h = diag.max(e[ju]).max(f).max(0);
            best = best.max(h);
            h_curr[ju] = h;
            cells += 1;
        }
        std::mem::swap(&mut h_prev, &mut h_curr);
    }
    BswResult {
        score: best as i32,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::align::align;
    use gendp_seq::{Genome, MutationProfile};
    use rand::{rngs::SmallRng, SeedableRng};

    fn s(text: &str) -> DnaSeq {
        text.parse().unwrap()
    }

    #[test]
    fn wide_band_equals_full_table_local() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            let g = Genome::random(80, &mut rng);
            let q = MutationProfile::pacbio().apply(&g.window(10, 60), &mut rng);
            let t = g.window(0, 80);
            let full = align(&q, &t, &Scoring::bwa_mem(), AlignMode::Local);
            let banded = bsw_i32(&q, &t, &Scoring::bwa_mem(), 200, AlignMode::Local);
            assert_eq!(banded.score, full.score);
        }
    }

    #[test]
    fn wide_band_equals_full_table_global() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..20 {
            let g = Genome::random(60, &mut rng);
            let q = MutationProfile::illumina().apply(g.seq(), &mut rng);
            let full = align(&q, g.seq(), &Scoring::bwa_mem(), AlignMode::Global);
            let banded = bsw_i32(&q, g.seq(), &Scoring::bwa_mem(), 200, AlignMode::Global);
            assert_eq!(banded.score, full.score);
        }
    }

    #[test]
    fn wide_band_equals_full_table_semiglobal() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = Genome::random(70, &mut rng);
            let q = g.window(20, 40);
            let full = align(&q, g.seq(), &Scoring::bwa_mem(), AlignMode::SemiGlobal);
            let banded = bsw_i32(&q, g.seq(), &Scoring::bwa_mem(), 200, AlignMode::SemiGlobal);
            assert_eq!(banded.score, full.score);
        }
    }

    #[test]
    fn band_restricts_computed_cells() {
        let q = s(&"ACGT".repeat(25)); // 100 bases
        let t = s(&"ACGT".repeat(25));
        let narrow = bsw_i32(&q, &t, &Scoring::bwa_mem(), 5, AlignMode::Local);
        let wide = bsw_i32(&q, &t, &Scoring::bwa_mem(), 100, AlignMode::Local);
        assert!(narrow.cells < wide.cells);
        assert_eq!(wide.cells, 100 * 100);
        // Perfect diagonal match is inside any band.
        assert_eq!(narrow.score, wide.score);
        assert_eq!(narrow.score, 100);
    }

    #[test]
    fn narrow_band_misses_large_indels() {
        // Query = target with a 20-base insertion: a 5-wide band cannot
        // bridge it, a 40-wide band can.
        let mut t_text = String::new();
        t_text.push_str(&"ACGT".repeat(10));
        let mut q_text = t_text.clone();
        q_text.insert_str(20, &"TTTTT".repeat(4));
        let (q, t) = (s(&q_text), s(&t_text));
        let narrow = bsw_i32(&q, &t, &Scoring::bwa_mem(), 5, AlignMode::Local);
        let wide = bsw_i32(&q, &t, &Scoring::bwa_mem(), 40, AlignMode::Local);
        assert!(wide.score > narrow.score);
    }

    #[test]
    fn i8_matches_i32_for_small_scores() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..30 {
            let g = Genome::random(120, &mut rng);
            let q = MutationProfile::pacbio().apply(&g.window(20, 80), &mut rng);
            let t = g.window(0, 120);
            let r32 = bsw_i32(&q, &t, &Scoring::bwa_mem(), 16, AlignMode::Local);
            let r8 = bsw_i8(&q, &t, &Scoring::bwa_mem(), 16);
            if r32.score < 127 {
                assert_eq!(r8.score, r32.score, "q={q} t={t}");
            }
            assert_eq!(r8.cells, r32.cells);
        }
    }

    #[test]
    fn i16_matches_i32_where_i8_saturates() {
        let mut rng = SmallRng::seed_from_u64(5);
        // 400-base near-identical pair: score ~400 exceeds i8 but not i16.
        let g = Genome::random(400, &mut rng);
        let q = MutationProfile::illumina().apply(g.seq(), &mut rng);
        let r32 = bsw_i32(&q, g.seq(), &Scoring::bwa_mem(), 40, AlignMode::Local);
        let r16 = bsw_i16(&q, g.seq(), &Scoring::bwa_mem(), 40);
        let r8 = bsw_i8(&q, g.seq(), &Scoring::bwa_mem(), 40);
        assert!(r32.score > 127, "score {} should exceed 8-bit", r32.score);
        assert_eq!(r16.score, r32.score);
        assert_eq!(r8.score, 127, "8-bit saturates");
    }

    #[test]
    fn i8_saturates_at_127() {
        let q = s(&"A".repeat(300));
        let r = bsw_i8(&q, &q, &Scoring::bwa_mem(), 300);
        assert_eq!(r.score, 127);
    }

    #[test]
    #[should_panic(expected = "affine")]
    fn linear_gap_model_panics() {
        let sc = Scoring {
            matches: 1,
            mismatch: 1,
            gap: GapModel::Linear { extend: 1 },
        };
        bsw_i32(&s("ACGT"), &s("ACGT"), &sc, 4, AlignMode::Local);
    }
}
