//! # gendp-kernels
//!
//! Reference software implementations of the dynamic-programming kernels
//! the GenDP paper evaluates (§2.3), plus the two broader-field kernels of
//! §7.6.5, plus the objective-function data-flow graphs that GenDP maps
//! onto the DPAx accelerator.
//!
//! | Kernel | Pipeline role | Module |
//! |---|---|---|
//! | Banded Smith-Waterman (BSW) | short-read alignment | [`bsw`] |
//! | Pairwise Hidden Markov Model | variant calling | [`pairhmm`] |
//! | Partial Order Alignment (POA) | assembly polishing | [`poa`] |
//! | Chain | long-read overlap / mapping | [`chain`] |
//! | Dynamic Time Warping | speech/signal matching | [`dtw`] |
//! | Bellman-Ford | robotic motion planning | [`bellman_ford`] |
//! | Longest Common Subsequence | background example (§2.2) | [`lcs`] |
//!
//! The scalar implementations double as the *CPU baseline* algorithms in
//! the benchmark harness, and as ground truth for validating the DPAx
//! simulator (every kernel's accelerator run must reproduce these scores
//! exactly, or within fixed-point tolerance for the log-domain PairHMM).
//!
//! The [`dfgs`] module holds one DFG builder per kernel; unit tests pin the
//! DFG semantics to the scalar inner loops cell by cell.

pub mod align;
pub mod bellman_ford;
pub mod bsw;
pub mod chain;
pub mod cigar;
pub mod dfgs;
pub mod dtw;
pub mod info;
pub mod lcs;
pub mod pairhmm;
pub mod poa;
pub mod scoring;

pub use align::{align, AlignResult};
pub use bsw::{bsw_i16, bsw_i32, bsw_i8, BswResult};
pub use cigar::{align_traceback, Alignment, Cigar, CigarOp};
pub use info::{DependencyPattern, KernelInfo, Precision, KERNELS};
pub use scoring::{AlignMode, GapModel, Scoring};
