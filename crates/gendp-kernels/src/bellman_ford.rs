//! Bellman-Ford shortest paths (paper §7.6.5): the graph-structured DP
//! used in robotic motion planning, with long-range dependencies served
//! from the scratchpad (or DRAM when ultra-long, §7.6.1).

/// A directed graph with integer edge weights.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    n: usize,
    edges: Vec<(usize, usize, i64)>,
}

impl Graph {
    /// An empty graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds a directed edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, weight: i64) {
        assert!(from < self.n && to < self.n, "vertex out of range");
        self.edges.push((from, to, weight));
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Edges as `(from, to, weight)` triples.
    pub fn edges(&self) -> &[(usize, usize, i64)] {
        &self.edges
    }
}

/// Result of a shortest-path computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortestPaths {
    /// Distance from the source per vertex (`None` if unreachable).
    pub dist: Vec<Option<i64>>,
    /// Edge relaxations performed (the kernel's cell count).
    pub relaxations: u64,
    /// True if a negative cycle reachable from the source exists.
    pub negative_cycle: bool,
}

/// Bellman-Ford from `source`: |V|−1 relaxation rounds with early exit,
/// plus one detection round for negative cycles.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bellman_ford(graph: &Graph, source: usize) -> ShortestPaths {
    assert!(source < graph.n, "source out of range");
    const INF: i64 = i64::MAX / 4;
    let mut dist = vec![INF; graph.n];
    dist[source] = 0;
    let mut relaxations = 0u64;
    let mut changed = true;
    for _ in 1..graph.n.max(1) {
        if !changed {
            break;
        }
        changed = false;
        for &(u, v, w) in &graph.edges {
            relaxations += 1;
            if dist[u] < INF && dist[u] + w < dist[v] {
                dist[v] = dist[u] + w;
                changed = true;
            }
        }
    }
    let mut negative_cycle = false;
    if changed {
        for &(u, v, w) in &graph.edges {
            if dist[u] < INF && dist[u] + w < dist[v] {
                negative_cycle = true;
                break;
            }
        }
    }
    ShortestPaths {
        dist: dist
            .into_iter()
            .map(|d| if d >= INF { None } else { Some(d) })
            .collect(),
        relaxations,
        negative_cycle,
    }
}

/// Dijkstra's algorithm (binary heap) — the oracle Bellman-Ford is tested
/// against on non-negative graphs.
///
/// # Panics
///
/// Panics if `source` is out of range or any edge weight is negative.
pub fn dijkstra(graph: &Graph, source: usize) -> Vec<Option<i64>> {
    assert!(source < graph.n, "source out of range");
    assert!(
        graph.edges.iter().all(|&(_, _, w)| w >= 0),
        "dijkstra needs non-negative weights"
    );
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut adj: Vec<Vec<(usize, i64)>> = vec![Vec::new(); graph.n];
    for &(u, v, w) in &graph.edges {
        adj[u].push((v, w));
    }
    let mut dist: Vec<Option<i64>> = vec![None; graph.n];
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0i64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if let Some(prev) = dist[u] {
            if prev <= d {
                continue;
            }
        }
        dist[u] = Some(d);
        for &(v, w) in &adj[u] {
            let nd = d + w;
            if dist[v].is_none_or(|cur| nd < cur) {
                heap.push(Reverse((nd, v)));
            }
        }
    }
    dist
}

/// Generates a random motion-planning-like roadmap: `n` vertices, each
/// connected to ~`degree` nearby vertices with non-negative weights
/// (locality bounded by `max_span`, so most dependencies are
/// scratchpad-range).
pub fn random_roadmap(n: usize, degree: usize, max_span: usize, rng: &mut impl rand::Rng) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for _ in 0..degree {
            let span = rng.gen_range(1..=max_span.max(1));
            let v = (u + span) % n;
            if v != u {
                g.add_edge(u, v, rng.gen_range(1..100));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    fn diamond() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 4);
        g.add_edge(1, 2, 2);
        g.add_edge(1, 3, 6);
        g.add_edge(2, 3, 3);
        g
    }

    #[test]
    fn shortest_paths_on_diamond() {
        let r = bellman_ford(&diamond(), 0);
        assert_eq!(r.dist, vec![Some(0), Some(1), Some(3), Some(6)]);
        assert!(!r.negative_cycle);
        assert!(r.relaxations > 0);
    }

    #[test]
    fn unreachable_vertices_are_none() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 5);
        let r = bellman_ford(&g, 0);
        assert_eq!(r.dist[2], None);
    }

    #[test]
    fn handles_negative_edges_without_cycle() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 2, -3);
        g.add_edge(0, 2, 4);
        let r = bellman_ford(&g, 0);
        assert_eq!(r.dist[2], Some(2));
        assert!(!r.negative_cycle);
    }

    #[test]
    fn detects_negative_cycle() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, -5);
        g.add_edge(2, 1, 1);
        let r = bellman_ford(&g, 0);
        assert!(r.negative_cycle);
    }

    #[test]
    fn agrees_with_dijkstra_on_random_roadmaps() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            let g = random_roadmap(200, 4, 30, &mut rng);
            let bf = bellman_ford(&g, 0);
            let dj = dijkstra(&g, 0);
            assert_eq!(bf.dist, dj);
        }
    }

    #[test]
    fn roadmap_dependencies_are_local() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = random_roadmap(100, 3, 16, &mut rng);
        for &(u, v, _) in g.edges() {
            let span = (v + g.vertex_count() - u) % g.vertex_count();
            assert!(span <= 16);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        Graph::new(2).add_edge(0, 5, 1);
    }
}
