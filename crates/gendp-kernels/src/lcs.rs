//! Longest Common Subsequence — the paper's background example (§2.2,
//! Eq. 1 and Fig. 1), including the traceback.

/// Result of an LCS computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LcsResult<T> {
    /// Length of the longest common subsequence.
    pub length: usize,
    /// One longest common subsequence (recovered by traceback).
    pub subsequence: Vec<T>,
    /// DP cells computed.
    pub cells: u64,
}

/// Computes the LCS of two slices exactly as the paper's Equation 1
/// describes, with the traceback of Fig. 1.
pub fn lcs<T: PartialEq + Clone>(x: &[T], y: &[T]) -> LcsResult<T> {
    let m = x.len();
    let n = y.len();
    let mut c = vec![vec![0usize; n + 1]; m + 1];
    for i in 1..=m {
        for j in 1..=n {
            c[i][j] = if x[i - 1] == y[j - 1] {
                c[i - 1][j - 1] + 1
            } else {
                c[i][j - 1].max(c[i - 1][j])
            };
        }
    }
    // Traceback.
    let mut subsequence = Vec::new();
    let (mut i, mut j) = (m, n);
    while i > 0 && j > 0 {
        if x[i - 1] == y[j - 1] {
            subsequence.push(x[i - 1].clone());
            i -= 1;
            j -= 1;
        } else if c[i - 1][j] >= c[i][j - 1] {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    subsequence.reverse();
    LcsResult {
        length: c[m][n],
        subsequence,
        cells: (m as u64) * (n as u64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_example() {
        let x: Vec<char> = "ABCBDAB".chars().collect();
        let y: Vec<char> = "BDCABA".chars().collect();
        let r = lcs(&x, &y);
        assert_eq!(r.length, 4);
        assert_eq!(r.subsequence.len(), 4);
        assert_eq!(r.cells, 42);
    }

    #[test]
    fn identical_inputs() {
        let x = [1, 2, 3, 4];
        let r = lcs(&x, &x);
        assert_eq!(r.length, 4);
        assert_eq!(r.subsequence, vec![1, 2, 3, 4]);
    }

    #[test]
    fn disjoint_inputs() {
        let r = lcs(&[1, 2], &[3, 4]);
        assert_eq!(r.length, 0);
        assert!(r.subsequence.is_empty());
    }

    #[test]
    fn subsequence_is_valid() {
        let x = [5, 1, 8, 2, 9, 3];
        let y = [1, 9, 5, 2, 3, 8];
        let r = lcs(&x, &y);
        assert_eq!(r.subsequence.len(), r.length);
        // The reported subsequence is a subsequence of both inputs.
        for seq in [&x[..], &y[..]] {
            let mut it = seq.iter();
            for v in &r.subsequence {
                assert!(it.any(|s| s == v), "{v} missing in {seq:?}");
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let r = lcs::<i32>(&[], &[1, 2]);
        assert_eq!(r.length, 0);
        assert_eq!(r.cells, 0);
    }

    #[test]
    fn lcs_is_symmetric_in_length() {
        let x = [1, 4, 2, 8, 5, 7];
        let y = [4, 8, 1, 2, 7, 5, 3];
        assert_eq!(lcs(&x, &y).length, lcs(&y, &x).length);
    }
}
