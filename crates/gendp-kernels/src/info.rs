//! Kernel characteristics (paper Table 1).

use std::fmt;

/// Inter-cell dependency pattern of a DP kernel (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DependencyPattern {
    /// 2-D table, each cell depends on the last two wavefronts.
    Wavefront2D,
    /// 2-D table over a graph: long-range dependencies on earlier rows.
    Graph2D,
    /// 1-D table, each cell depends on the last `N` cells.
    Linear1D {
        /// The window size N.
        window: usize,
    },
}

impl fmt::Display for DependencyPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DependencyPattern::Wavefront2D => write!(f, "2D table, last 2 wavefronts"),
            DependencyPattern::Graph2D => write!(f, "2D table, graph long-range"),
            DependencyPattern::Linear1D { window } => {
                write!(f, "1D table, last {window} anchors")
            }
        }
    }
}

/// Arithmetic precision a kernel needs (paper Table 1, last column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 8- or 16-bit integers (BSW).
    Int8Or16,
    /// 32-bit integers (POA).
    Int32,
    /// Floating point (PairHMM baseline arithmetic).
    Float,
    /// Mixed 32-bit integer and floating point (Chain).
    Int32AndFloat,
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Int8Or16 => write!(f, "8-bit/16-bit integer"),
            Precision::Int32 => write!(f, "32-bit integer"),
            Precision::Float => write!(f, "floating-point"),
            Precision::Int32AndFloat => write!(f, "32-bit integer + floating-point"),
        }
    }
}

/// Static description of one evaluated kernel (one row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelInfo {
    /// Kernel name.
    pub name: &'static str,
    /// Typical DP-table shape `(rows, cols)`; cols 1 for 1-D kernels.
    pub typical_table: (usize, usize),
    /// Dependency pattern.
    pub dependency: DependencyPattern,
    /// Precision requirement.
    pub precision: Precision,
    /// Pipeline-stage time share the paper attributes to the kernel (§2.3).
    pub pipeline_share: f64,
}

/// The four evaluated kernels (paper Table 1).
pub const KERNELS: [KernelInfo; 4] = [
    KernelInfo {
        name: "BSW",
        typical_table: (100, 60),
        dependency: DependencyPattern::Wavefront2D,
        precision: Precision::Int8Or16,
        pipeline_share: 0.31,
    },
    KernelInfo {
        name: "PairHMM",
        typical_table: (100, 60),
        dependency: DependencyPattern::Wavefront2D,
        precision: Precision::Float,
        pipeline_share: 0.70,
    },
    KernelInfo {
        name: "POA",
        typical_table: (1000, 500),
        dependency: DependencyPattern::Graph2D,
        precision: Precision::Int32,
        pipeline_share: 0.47,
    },
    KernelInfo {
        name: "Chain",
        typical_table: (20000, 1),
        dependency: DependencyPattern::Linear1D { window: 25 },
        precision: Precision::Int32AndFloat,
        pipeline_share: 0.75,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        assert_eq!(KERNELS.len(), 4);
        assert_eq!(KERNELS[0].name, "BSW");
        assert_eq!(KERNELS[2].dependency, DependencyPattern::Graph2D);
        assert_eq!(
            KERNELS[3].dependency,
            DependencyPattern::Linear1D { window: 25 }
        );
    }

    #[test]
    fn display_forms() {
        assert!(
            DependencyPattern::Wavefront2D
                .to_string()
                .contains("wavefront")
                || DependencyPattern::Wavefront2D.to_string().contains("2D")
        );
        assert!(Precision::Int8Or16.to_string().contains("8-bit"));
        for k in KERNELS {
            assert!(!k.dependency.to_string().is_empty());
            assert!(!k.precision.to_string().is_empty());
            assert!(k.pipeline_share > 0.0 && k.pipeline_share < 1.0);
        }
    }
}
