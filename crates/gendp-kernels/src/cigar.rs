//! Alignment traceback: CIGAR strings and the full-matrix affine-gap
//! traceback aligner. The accelerator computes scores and argmax positions
//! (and POA's per-cell directions); the base-level alignment is the
//! downstream host step (paper §7.2 discusses POA's trace-back the same
//! way), and any real adopter of the library needs it.

use std::fmt;

use gendp_seq::DnaSeq;

use crate::scoring::{AlignMode, GapModel, Scoring};

/// One CIGAR operation (extended SAM alphabet).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum CigarOp {
    /// `=`: query and target bases are equal.
    Match,
    /// `X`: aligned but different bases.
    Mismatch,
    /// `I`: base present in the query only.
    Ins,
    /// `D`: base present in the target only.
    Del,
}

impl CigarOp {
    /// The SAM character.
    pub fn symbol(self) -> char {
        match self {
            CigarOp::Match => '=',
            CigarOp::Mismatch => 'X',
            CigarOp::Ins => 'I',
            CigarOp::Del => 'D',
        }
    }

    /// True if the op consumes a query base.
    pub fn consumes_query(self) -> bool {
        !matches!(self, CigarOp::Del)
    }

    /// True if the op consumes a target base.
    pub fn consumes_target(self) -> bool {
        !matches!(self, CigarOp::Ins)
    }
}

/// A run-length-encoded CIGAR string.
///
/// ```
/// use gendp_kernels::cigar::{Cigar, CigarOp};
///
/// let mut c = Cigar::new();
/// c.push(CigarOp::Match, 5);
/// c.push(CigarOp::Match, 2); // merges
/// c.push(CigarOp::Ins, 1);
/// assert_eq!(c.to_string(), "7=1I");
/// assert_eq!(c.query_len(), 8);
/// assert_eq!(c.target_len(), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cigar(Vec<(u32, CigarOp)>);

impl Cigar {
    /// An empty CIGAR.
    pub fn new() -> Self {
        Cigar::default()
    }

    /// Appends `count` repetitions of `op`, merging with the tail run.
    pub fn push(&mut self, op: CigarOp, count: u32) {
        if count == 0 {
            return;
        }
        if let Some(last) = self.0.last_mut() {
            if last.1 == op {
                last.0 += count;
                return;
            }
        }
        self.0.push((count, op));
    }

    /// The runs as `(count, op)` pairs.
    pub fn runs(&self) -> &[(u32, CigarOp)] {
        &self.0
    }

    /// Query bases consumed.
    pub fn query_len(&self) -> usize {
        self.0
            .iter()
            .filter(|(_, op)| op.consumes_query())
            .map(|(n, _)| *n as usize)
            .sum()
    }

    /// Target bases consumed.
    pub fn target_len(&self) -> usize {
        self.0
            .iter()
            .filter(|(_, op)| op.consumes_target())
            .map(|(n, _)| *n as usize)
            .sum()
    }

    /// Fraction of aligned columns that are exact matches.
    pub fn identity(&self) -> f64 {
        let aligned: u32 = self
            .0
            .iter()
            .filter(|(_, op)| matches!(op, CigarOp::Match | CigarOp::Mismatch))
            .map(|(n, _)| *n)
            .sum();
        if aligned == 0 {
            return 0.0;
        }
        let matches: u32 = self
            .0
            .iter()
            .filter(|(_, op)| matches!(op, CigarOp::Match))
            .map(|(n, _)| *n)
            .sum();
        matches as f64 / aligned as f64
    }

    /// Recomputes the alignment score the CIGAR implies under a scoring
    /// scheme (each gap run priced as one gap of its length) — the
    /// consistency oracle for traceback tests.
    pub fn score(&self, scoring: &Scoring) -> i32 {
        self.0
            .iter()
            .map(|&(n, op)| match op {
                CigarOp::Match => scoring.matches * n as i32,
                CigarOp::Mismatch => -scoring.mismatch * n as i32,
                CigarOp::Ins | CigarOp::Del => -scoring.gap.penalty(n),
            })
            .sum()
    }
}

impl fmt::Display for Cigar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "*");
        }
        for (n, op) in &self.0 {
            write!(f, "{n}{}", op.symbol())?;
        }
        Ok(())
    }
}

/// A base-level alignment with traceback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Alignment score.
    pub score: i32,
    /// CIGAR over the aligned region.
    pub cigar: Cigar,
    /// Aligned query interval `[start, end)`.
    pub query_range: (usize, usize),
    /// Aligned target interval `[start, end)`.
    pub target_range: (usize, usize),
}

const NEG: i32 = i32::MIN / 4;

#[derive(Debug, Copy, Clone, PartialEq, Eq)]
enum State {
    H,
    E,
    F,
}

/// Full-matrix affine-gap alignment with traceback, local or global mode.
///
/// The score equals [`crate::bsw_i32`] with an unbounded band; additionally
/// the base-level [`Alignment`] is recovered.
///
/// # Panics
///
/// Panics if the gap model is not affine, either sequence is empty, or
/// `mode` is [`AlignMode::SemiGlobal`] (use local mode with free flanks
/// instead; overlap tracebacks are not needed by the pipelines here).
pub fn align_traceback(
    query: &DnaSeq,
    target: &DnaSeq,
    scoring: &Scoring,
    mode: AlignMode,
) -> Alignment {
    let (open, extend) = match scoring.gap {
        GapModel::Affine { open, extend } => (open, extend),
        _ => panic!("traceback aligner uses the affine gap model"),
    };
    assert!(
        mode != AlignMode::SemiGlobal,
        "semi-global traceback is not supported"
    );
    assert!(!query.is_empty() && !target.is_empty(), "empty input");
    let q = query.codes();
    let t = target.codes();
    let n = q.len();
    let m = t.len();
    let local = mode == AlignMode::Local;

    let mut h = vec![vec![NEG; n + 1]; m + 1];
    let mut e = vec![vec![NEG; n + 1]; m + 1];
    let mut f = vec![vec![NEG; n + 1]; m + 1];
    // Traceback bits: where each state's optimum came from.
    let mut h_from = vec![vec![State::H; n + 1]; m + 1]; // H=diag, E, F (or stop)
    let mut e_open = vec![vec![false; n + 1]; m + 1]; // true: opened from H
    let mut f_open = vec![vec![false; n + 1]; m + 1];

    h[0][0] = 0;
    for (j, slot) in h[0].iter_mut().enumerate().skip(1) {
        *slot = if local {
            0
        } else {
            -(open + extend * j as i32)
        };
    }
    for (i, row) in h.iter_mut().enumerate().skip(1) {
        row[0] = if local {
            0
        } else {
            -(open + extend * i as i32)
        };
    }

    let mut best = (0i32, 0usize, 0usize);
    for i in 1..=m {
        for j in 1..=n {
            let eo = h[i - 1][j].saturating_sub(open);
            let ee = e[i - 1][j];
            e_open[i][j] = eo >= ee;
            e[i][j] = eo.max(ee).saturating_sub(extend);

            let fo = h[i][j - 1].saturating_sub(open);
            let fe = f[i][j - 1];
            f_open[i][j] = fo >= fe;
            f[i][j] = fo.max(fe).saturating_sub(extend);

            let sub = scoring.substitution(t[i - 1], q[j - 1]);
            let diag = h[i - 1][j - 1].saturating_add(sub);
            let mut hv = diag;
            let mut from = State::H;
            if e[i][j] > hv {
                hv = e[i][j];
                from = State::E;
            }
            if f[i][j] > hv {
                hv = f[i][j];
                from = State::F;
            }
            if local && hv < 0 {
                hv = 0;
            }
            h[i][j] = hv;
            h_from[i][j] = from;
            if local && hv > best.0 {
                best = (hv, i, j);
            }
        }
    }
    let (score, mut i, mut j) = if local { best } else { (h[m][n], m, n) };

    // Walk back, collecting ops in reverse.
    let mut ops: Vec<CigarOp> = Vec::new();
    let (end_i, end_j) = (i, j);
    let mut state = State::H;
    while i > 0 && j > 0 {
        if local && state == State::H && h[i][j] == 0 {
            break;
        }
        match state {
            State::H => match h_from[i][j] {
                State::H => {
                    ops.push(if t[i - 1] == q[j - 1] {
                        CigarOp::Match
                    } else {
                        CigarOp::Mismatch
                    });
                    i -= 1;
                    j -= 1;
                }
                s => state = s,
            },
            State::E => {
                ops.push(CigarOp::Del);
                let opened = e_open[i][j];
                i -= 1;
                if opened {
                    state = State::H;
                }
            }
            State::F => {
                ops.push(CigarOp::Ins);
                let opened = f_open[i][j];
                j -= 1;
                if opened {
                    state = State::H;
                }
            }
        }
    }
    if !local {
        // Finish the borders with leading gaps.
        while i > 0 {
            ops.push(CigarOp::Del);
            i -= 1;
        }
        while j > 0 {
            ops.push(CigarOp::Ins);
            j -= 1;
        }
    }
    let mut cigar = Cigar::new();
    for op in ops.into_iter().rev() {
        cigar.push(op, 1);
    }
    Alignment {
        score,
        cigar,
        query_range: (j, end_j),
        target_range: (i, end_i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsw::bsw_i32;
    use gendp_seq::{Genome, MutationProfile};
    use rand::{rngs::SmallRng, SeedableRng};

    fn s(text: &str) -> DnaSeq {
        text.parse().unwrap()
    }

    #[test]
    fn cigar_display_and_lengths() {
        let mut c = Cigar::new();
        c.push(CigarOp::Match, 10);
        c.push(CigarOp::Mismatch, 1);
        c.push(CigarOp::Del, 3);
        c.push(CigarOp::Match, 4);
        assert_eq!(c.to_string(), "10=1X3D4=");
        assert_eq!(c.query_len(), 15);
        assert_eq!(c.target_len(), 18);
        assert!((c.identity() - 14.0 / 15.0).abs() < 1e-12);
        assert_eq!(Cigar::new().to_string(), "*");
    }

    #[test]
    fn identical_sequences_trace_to_full_match() {
        let q = s("ACGTACGT");
        let a = align_traceback(&q, &q, &Scoring::bwa_mem(), AlignMode::Global);
        assert_eq!(a.cigar.to_string(), "8=");
        assert_eq!(a.score, 8);
        assert_eq!(a.query_range, (0, 8));
        assert_eq!(a.target_range, (0, 8));
    }

    #[test]
    fn single_deletion_is_recovered() {
        // Target has 3 extra bases.
        let q = s("ACGTACGT");
        let t = s("ACGTTTTACGT");
        let a = align_traceback(&q, &t, &Scoring::bwa_mem(), AlignMode::Global);
        // The deletion may sit anywhere inside the homopolymer run; check
        // the shape: 8 matches and one 3-base deletion.
        assert_eq!(a.score, 8 - (6 + 3));
        let dels: Vec<u32> = a
            .cigar
            .runs()
            .iter()
            .filter(|(_, op)| *op == CigarOp::Del)
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(dels, vec![3], "{}", a.cigar);
        assert_eq!(a.cigar.query_len(), 8);
        assert_eq!(a.cigar.target_len(), 11);
    }

    #[test]
    fn local_traceback_skips_poor_flanks() {
        let q = s("TTTTACGTACGTTTTT");
        let t = s("CCCCACGTACGTCCCC");
        let a = align_traceback(&q, &t, &Scoring::bwa_mem(), AlignMode::Local);
        assert_eq!(a.cigar.to_string(), "8=");
        assert_eq!(a.score, 8);
        assert_eq!(a.query_range, (4, 12));
        assert_eq!(a.target_range, (4, 12));
    }

    #[test]
    fn traceback_score_matches_banded_kernel() {
        let mut rng = SmallRng::seed_from_u64(61);
        for _ in 0..20 {
            let g = Genome::random(120, &mut rng);
            let t = g.window(0, 60);
            let q = MutationProfile::pacbio().apply(&g.window(5, 50), &mut rng);
            if q.is_empty() {
                continue;
            }
            for mode in [AlignMode::Local, AlignMode::Global] {
                let a = align_traceback(&q, &t, &Scoring::bwa_mem(), mode);
                let expect = bsw_i32(&q, &t, &Scoring::bwa_mem(), 1000, mode);
                assert_eq!(a.score, expect.score, "{mode:?} q={q} t={t}");
            }
        }
    }

    #[test]
    fn cigar_is_internally_consistent() {
        let mut rng = SmallRng::seed_from_u64(62);
        let scoring = Scoring::bwa_mem();
        for _ in 0..20 {
            let g = Genome::random(100, &mut rng);
            let t = g.window(0, 50);
            let q = MutationProfile::pacbio().apply(&g.window(0, 50), &mut rng);
            if q.is_empty() {
                continue;
            }
            for mode in [AlignMode::Local, AlignMode::Global] {
                let a = align_traceback(&q, &t, &scoring, mode);
                // Consumed lengths match the reported ranges.
                assert_eq!(a.cigar.query_len(), a.query_range.1 - a.query_range.0);
                assert_eq!(a.cigar.target_len(), a.target_range.1 - a.target_range.0);
                // The CIGAR prices back to the reported score.
                assert_eq!(a.cigar.score(&scoring), a.score, "{mode:?} {}", a.cigar);
                // Match/mismatch claims agree with the actual bases.
                let (mut qi, mut ti) = (a.query_range.0, a.target_range.0);
                for &(count, op) in a.cigar.runs() {
                    for _ in 0..count {
                        match op {
                            CigarOp::Match => {
                                assert_eq!(q[qi], t[ti]);
                                qi += 1;
                                ti += 1;
                            }
                            CigarOp::Mismatch => {
                                assert_ne!(q[qi], t[ti]);
                                qi += 1;
                                ti += 1;
                            }
                            CigarOp::Ins => qi += 1,
                            CigarOp::Del => ti += 1,
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "semi-global")]
    fn semiglobal_traceback_panics() {
        align_traceback(
            &s("ACGT"),
            &s("ACGT"),
            &Scoring::bwa_mem(),
            AlignMode::SemiGlobal,
        );
    }
}
