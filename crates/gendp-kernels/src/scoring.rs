//! Alignment scoring parameters: the three modes and three gap models of
//! approximate string matching the paper's §1 and §7.6.3 call out.

/// Alignment mode (paper §1: local, global and semi-global / overlap).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, Default)]
pub enum AlignMode {
    /// Smith-Waterman: best-scoring substring pair; scores clamp at zero.
    #[default]
    Local,
    /// Needleman-Wunsch: end-to-end alignment of both sequences.
    Global,
    /// Overlap alignment: free leading/trailing gaps on either sequence.
    SemiGlobal,
}

/// Insertion/deletion scoring model (paper §1: linear, affine, convex).
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum GapModel {
    /// Cost `e` per gapped base.
    Linear {
        /// Per-base gap penalty (positive).
        extend: i32,
    },
    /// Cost `o + e·len`.
    Affine {
        /// Gap-open penalty (positive).
        open: i32,
        /// Gap-extend penalty (positive).
        extend: i32,
    },
    /// Two affine pieces: `min(o1 + e1·len, o2 + e2·len)` — the dual-affine
    /// approximation of a convex gap cost used by modern aligners.
    Convex {
        /// First piece gap-open penalty.
        open1: i32,
        /// First piece gap-extend penalty.
        extend1: i32,
        /// Second piece gap-open penalty (larger open, smaller extend).
        open2: i32,
        /// Second piece gap-extend penalty.
        extend2: i32,
    },
}

impl GapModel {
    /// Total penalty of a gap of `len` bases (positive number).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero (a zero-length gap has no cost to ask for).
    pub fn penalty(&self, len: u32) -> i32 {
        assert!(len > 0, "gap length must be positive");
        let len = len as i32;
        match *self {
            GapModel::Linear { extend } => extend * len,
            GapModel::Affine { open, extend } => open + extend * len,
            GapModel::Convex {
                open1,
                extend1,
                open2,
                extend2,
            } => (open1 + extend1 * len).min(open2 + extend2 * len),
        }
    }
}

/// Full scoring scheme of a pairwise alignment kernel.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub struct Scoring {
    /// Score for a matching base pair (positive).
    pub matches: i32,
    /// Penalty for a mismatching pair (positive; subtracted).
    pub mismatch: i32,
    /// Gap model.
    pub gap: GapModel,
}

impl Scoring {
    /// BWA-MEM2's default short-read scoring (1 / 4 / 6+1 affine).
    pub fn bwa_mem() -> Self {
        Scoring {
            matches: 1,
            mismatch: 4,
            gap: GapModel::Affine { open: 6, extend: 1 },
        }
    }

    /// Racon-like polishing scores (3 / 5 / linear 4).
    pub fn racon() -> Self {
        Scoring {
            matches: 3,
            mismatch: 5,
            gap: GapModel::Linear { extend: 4 },
        }
    }

    /// The substitution score of two base codes.
    pub fn substitution(&self, a: u8, b: u8) -> i32 {
        if a == b {
            self.matches
        } else {
            -self.mismatch
        }
    }
}

impl Default for Scoring {
    fn default() -> Self {
        Scoring::bwa_mem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_penalties() {
        assert_eq!(GapModel::Linear { extend: 2 }.penalty(3), 6);
        assert_eq!(GapModel::Affine { open: 6, extend: 1 }.penalty(3), 9);
        let convex = GapModel::Convex {
            open1: 4,
            extend1: 2,
            open2: 24,
            extend2: 1,
        };
        assert_eq!(convex.penalty(1), 6); // 4+2 < 24+1
        assert_eq!(convex.penalty(50), 74); // 24+50 < 4+100
    }

    #[test]
    #[should_panic(expected = "gap length")]
    fn zero_length_gap_panics() {
        GapModel::Linear { extend: 1 }.penalty(0);
    }

    #[test]
    fn substitution_scores() {
        let s = Scoring::bwa_mem();
        assert_eq!(s.substitution(0, 0), 1);
        assert_eq!(s.substitution(0, 3), -4);
    }

    #[test]
    fn convex_penalty_is_min_of_pieces() {
        let convex = GapModel::Convex {
            open1: 2,
            extend1: 3,
            open2: 10,
            extend2: 1,
        };
        for len in 1..100 {
            let p1 = 2 + 3 * len;
            let p2 = 10 + len;
            assert_eq!(convex.penalty(len as u32), p1.min(p2));
        }
    }
}
