//! Anchor chaining (paper §2.3): the minimap2 kernel that groups collinear
//! seed matches into candidate mapping regions, in both the original
//! backward-looking order and the reordered forward-propagating order of
//! Guo et al. \[28\] that GenDP and the GPU baseline execute.

use gendp_isa::ilog2_half;
use gendp_seq::{Anchor, KmerIndex};

/// Chaining parameters (minimap2-style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChainParams {
    /// Window: each anchor is scored against this many neighbors (the
    /// paper's N; 25 in original minimap2, 64 reordered).
    pub n_prev: usize,
    /// Maximum reference/query distance bridged by one chain link.
    pub max_dist: i32,
    /// Maximum diagonal drift `|dq - dr|` per link.
    pub bandwidth: i32,
    /// Average seed span, used by the linear gap-cost term
    /// `0.01 · avg_qspan · |dq - dr|`.
    pub avg_qspan: f64,
}

impl ChainParams {
    /// Original minimap2 configuration (N = 25).
    pub fn minimap2(avg_qspan: f64) -> Self {
        ChainParams {
            n_prev: 25,
            max_dist: 5_000,
            bandwidth: 500,
            avg_qspan,
        }
    }

    /// The reordered configuration used by GenDP and the GPU baseline
    /// (N = 64, paper §6).
    pub fn reordered(avg_qspan: f64) -> Self {
        ChainParams {
            n_prev: 64,
            ..Self::minimap2(avg_qspan)
        }
    }

    /// The fixed-point Q16 multiplier for the linear gap-cost term, as the
    /// accelerator computes it (`mul` then `shr16`).
    pub fn gap_scale_q16(&self) -> i32 {
        (0.01 * self.avg_qspan * 65536.0).round() as i32
    }
}

/// Sentinel for an invalid (skipped) link score.
pub const CHAIN_NEG: i32 = i32::MIN / 4;

/// The chain scores and backtracking parents of one read's anchors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainResult {
    /// Best chain score ending at each anchor.
    pub scores: Vec<i32>,
    /// Parent anchor index of each anchor, or -1.
    pub parents: Vec<i32>,
    /// Pair evaluations performed (the kernel's DP-cell count).
    pub cells: u64,
}

impl ChainResult {
    /// Index of the best-scoring anchor, if any.
    pub fn best(&self) -> Option<usize> {
        (0..self.scores.len()).max_by_key(|&i| self.scores[i])
    }

    /// Walks parents from `end` back to the chain's first anchor.
    ///
    /// # Panics
    ///
    /// Panics if `end` is out of range.
    pub fn trace(&self, end: usize) -> Vec<usize> {
        let mut path = vec![end];
        let mut cur = end;
        while self.parents[cur] >= 0 {
            cur = self.parents[cur] as usize;
            path.push(cur);
        }
        path.reverse();
        path
    }
}

/// Scores the link `i -> j` (exactly the per-pair objective the DFG in
/// [`crate::dfgs::chain_dfg`] computes): `f[i] + alpha(i,j) - beta(i,j)`,
/// or [`CHAIN_NEG`] when the pair violates the distance/bandwidth
/// constraints. Arithmetic wraps like the accelerator datapath; wrapped
/// values only arise for pairs the select chain discards anyway.
pub fn link_score(a_i: &Anchor, f_i: i32, a_j: &Anchor, params: &ChainParams) -> i32 {
    let dq = a_j.qpos.wrapping_sub(a_i.qpos);
    let dr = a_j.rpos.wrapping_sub(a_i.rpos);
    let dd = (dq.wrapping_sub(dr)).wrapping_abs();
    let alpha = dq.min(dr).min(a_j.span);
    let lin = (dd.wrapping_mul(params.gap_scale_q16())) >> 16;
    let gap = lin.wrapping_add(ilog2_half(dd));
    let sc = f_i.wrapping_add(alpha.wrapping_sub(gap));
    // Validity selects, in the same order as the hardware DFG.
    let sc = if dq > 0 { sc } else { CHAIN_NEG };
    let sc = if dr > 0 { sc } else { CHAIN_NEG };
    let sc = if params.max_dist >= dq { sc } else { CHAIN_NEG };
    let sc = if params.max_dist >= dr { sc } else { CHAIN_NEG };
    if params.bandwidth >= dd {
        sc
    } else {
        CHAIN_NEG
    }
}

/// Original chaining order: each anchor looks back at its `n_prev`
/// predecessors (paper Fig. 2d(ii)).
///
/// # Panics
///
/// Panics if the anchors are not sorted by `(rpos, qpos)`.
pub fn chain_original(anchors: &[Anchor], params: &ChainParams) -> ChainResult {
    assert!(
        anchors.windows(2).all(|w| w[0] <= w[1]),
        "anchors must be sorted"
    );
    let n = anchors.len();
    let mut scores: Vec<i32> = anchors.iter().map(|a| a.span).collect();
    let mut parents = vec![-1i32; n];
    let mut cells = 0u64;
    for j in 0..n {
        let lo = j.saturating_sub(params.n_prev);
        for i in lo..j {
            let sc = link_score(&anchors[i], scores[i], &anchors[j], params);
            cells += 1;
            if sc > scores[j] {
                scores[j] = sc;
                parents[j] = i as i32;
            }
        }
    }
    ChainResult {
        scores,
        parents,
        cells,
    }
}

/// Reordered chaining (Guo et al. \[28\], paper Fig. 2d(iii)): each anchor
/// pushes score updates to its `n_prev` successors. `f[i]` is final when
/// anchor `i` is processed because all its potential parents precede it,
/// so the result is identical to [`chain_original`] with the same window.
///
/// # Panics
///
/// Panics if the anchors are not sorted by `(rpos, qpos)`.
pub fn chain_reordered(anchors: &[Anchor], params: &ChainParams) -> ChainResult {
    assert!(
        anchors.windows(2).all(|w| w[0] <= w[1]),
        "anchors must be sorted"
    );
    let n = anchors.len();
    let mut scores: Vec<i32> = anchors.iter().map(|a| a.span).collect();
    let mut parents = vec![-1i32; n];
    let mut cells = 0u64;
    for i in 0..n {
        for k in 1..=params.n_prev {
            let j = i + k;
            if j >= n {
                break;
            }
            let sc = link_score(&anchors[i], scores[i], &anchors[j], params);
            cells += 1;
            if sc > scores[j] {
                scores[j] = sc;
                parents[j] = i as i32;
            }
        }
    }
    ChainResult {
        scores,
        parents,
        cells,
    }
}

/// A read mapped to the reference through seeding + chaining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// Estimated reference start of the read.
    pub ref_start: i32,
    /// Best chain score.
    pub score: i32,
    /// Mapping quality (0–60, minimap2-style from the best/second-best
    /// score ratio).
    pub mapq: u8,
}

/// Maps a read: extract anchors, chain them, trace the best chain and
/// estimate the reference start. Returns `None` when the read produces no
/// anchors (mapping failure).
pub fn map_read(
    index: &KmerIndex,
    read: &gendp_seq::DnaSeq,
    params: &ChainParams,
    reordered: bool,
) -> Option<Mapping> {
    let anchors = gendp_seq::extract_anchors(index, read);
    if anchors.is_empty() {
        return None;
    }
    let result = if reordered {
        chain_reordered(&anchors, params)
    } else {
        chain_original(&anchors, params)
    };
    let best = result.best()?;
    let chain = result.trace(best);
    let first = anchors[chain[0]];
    let ref_start = first.rpos - first.qpos;
    let s1 = result.scores[best];
    // Second-best among anchors far from the best chain's diagonal.
    let best_diag = anchors[best].rpos - anchors[best].qpos;
    let s2 = (0..anchors.len())
        .filter(|&i| (anchors[i].rpos - anchors[i].qpos - best_diag).abs() > params.bandwidth)
        .map(|i| result.scores[i])
        .max()
        .unwrap_or(0);
    let mapq = if s1 <= 0 {
        0
    } else {
        (40.0 * (1.0 - s2 as f64 / s1 as f64)).clamp(0.0, 60.0) as u8
    };
    Some(Mapping {
        ref_start,
        score: s1,
        mapq,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendp_seq::{DnaSeq, Genome, MutationProfile};
    use rand::{rngs::SmallRng, SeedableRng};

    fn diagonal_anchors(n: usize, step: i32, span: i32) -> Vec<Anchor> {
        (0..n as i32)
            .map(|i| Anchor {
                rpos: 100 + i * step,
                qpos: 50 + i * step,
                span,
            })
            .collect()
    }

    #[test]
    fn collinear_anchors_chain_together() {
        let anchors = diagonal_anchors(20, 30, 15);
        let r = chain_original(&anchors, &ChainParams::minimap2(15.0));
        let best = r.best().unwrap();
        assert_eq!(best, 19);
        let chain = r.trace(best);
        assert_eq!(chain.len(), 20);
        assert_eq!(chain[0], 0);
        // Perfectly collinear anchors 30 apart with span 15: each link adds
        // min(30, 15) = 15 with zero gap cost.
        assert_eq!(r.scores[best], 15 + 19 * 15);
    }

    #[test]
    fn reordered_equals_original_for_same_window() {
        let mut rng = SmallRng::seed_from_u64(1);
        let g = Genome::random(30_000, &mut rng);
        let read = MutationProfile::pacbio().apply(&g.window(5_000, 3_000), &mut rng);
        let idx = KmerIndex::build(g.seq(), 13);
        let anchors = gendp_seq::extract_anchors(&idx, &read);
        assert!(anchors.len() > 100);
        for n in [8, 25, 64] {
            let p = ChainParams {
                n_prev: n,
                ..ChainParams::minimap2(13.0)
            };
            let a = chain_original(&anchors, &p);
            let b = chain_reordered(&anchors, &p);
            assert_eq!(a.scores, b.scores, "window {n}");
            assert_eq!(a.cells, b.cells);
        }
    }

    #[test]
    fn larger_window_computes_more_cells() {
        let anchors = diagonal_anchors(200, 20, 15);
        let small = chain_original(&anchors, &ChainParams::minimap2(15.0));
        let large = chain_original(&anchors, &ChainParams::reordered(15.0));
        assert!(large.cells > small.cells);
        let ratio = large.cells as f64 / small.cells as f64;
        assert!((2.0..3.0).contains(&ratio), "ratio {ratio}"); // ~64/25
    }

    #[test]
    fn gap_cost_penalizes_diagonal_drift() {
        let a = Anchor {
            rpos: 100,
            qpos: 100,
            span: 15,
        };
        let p = ChainParams::minimap2(15.0);
        let on_diag = Anchor {
            rpos: 200,
            qpos: 200,
            span: 15,
        };
        let off_diag = Anchor {
            rpos: 200,
            qpos: 260,
            span: 15,
        };
        let s_on = link_score(&a, 15, &on_diag, &p);
        let s_off = link_score(&a, 15, &off_diag, &p);
        assert!(s_on > s_off);
    }

    #[test]
    fn invalid_links_are_rejected() {
        let p = ChainParams::minimap2(15.0);
        let a = Anchor {
            rpos: 100,
            qpos: 100,
            span: 15,
        };
        // dq <= 0.
        let behind = Anchor {
            rpos: 150,
            qpos: 100,
            span: 15,
        };
        assert_eq!(link_score(&a, 15, &behind, &p), CHAIN_NEG);
        // Too far.
        let far = Anchor {
            rpos: 100_000,
            qpos: 100_040,
            span: 15,
        };
        assert_eq!(link_score(&a, 15, &far, &p), CHAIN_NEG);
        // Excessive drift.
        let drift = Anchor {
            rpos: 1_100,
            qpos: 2_500,
            span: 15,
        };
        assert_eq!(link_score(&a, 15, &drift, &p), CHAIN_NEG);
    }

    #[test]
    fn map_read_recovers_true_position() {
        let mut rng = SmallRng::seed_from_u64(2);
        let g = Genome::random(50_000, &mut rng);
        let idx = KmerIndex::build(g.seq(), 15);
        let mut correct = 0;
        let total = 20;
        for _ in 0..total {
            let pos = rng.gen_range(0..40_000usize);
            let read = MutationProfile::pacbio().apply(&g.window(pos, 2_000), &mut rng);
            if let Some(m) = map_read(&idx, &read, &ChainParams::reordered(15.0), true) {
                if (m.ref_start - pos as i32).abs() < 100 {
                    correct += 1;
                }
            }
        }
        assert!(correct >= 18, "only {correct}/{total} mapped correctly");
    }

    #[test]
    fn empty_anchor_list_maps_to_none() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = Genome::random(1_000, &mut rng);
        let idx = KmerIndex::build(g.seq(), 15);
        let junk = DnaSeq::random(10, &mut rng);
        assert!(map_read(&idx, &junk, &ChainParams::minimap2(15.0), false).is_none());
    }

    use rand::Rng;
}
