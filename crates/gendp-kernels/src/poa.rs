//! Partial Order Alignment (paper §2.3): the assembly-polishing kernel.
//!
//! A [`Poa`] accumulates read sequences into a weighted partial-order graph
//! (nodes are bases, edge weights count supporting reads) and extracts the
//! consensus as the heaviest path (Lee et al. 2002, as used by Racon \[72\]).
//!
//! The graph dependency structure — a cell depends on *all predecessor
//! rows* of its node, not just the previous row — is exactly the
//! long-range-dependency pattern DPAx serves from the per-PE scratchpad
//! (paper §3.1, Fig. 2c).

use gendp_seq::{Base, DnaSeq};

use crate::scoring::{GapModel, Scoring};

#[derive(Debug, Clone)]
struct Node {
    base: Base,
    /// Predecessor node ids with edge weights.
    preds: Vec<(usize, u32)>,
    /// Successor node ids.
    succs: Vec<usize>,
}

/// Result of aligning one sequence to the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoaAlign {
    /// Alignment score of the sequence against the graph.
    pub score: i32,
    /// DP cells computed (graph nodes × sequence length).
    pub cells: u64,
}

/// A weighted partial-order alignment graph.
///
/// ```
/// use gendp_kernels::poa::Poa;
/// use gendp_kernels::Scoring;
///
/// let mut poa = Poa::new();
/// let seq = "ACGTACGT".parse().unwrap();
/// poa.add_sequence(&seq, &Scoring::racon());
/// poa.add_sequence(&seq, &Scoring::racon());
/// assert_eq!(poa.consensus(), seq);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Poa {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mv {
    /// Match/mismatch against the node at this rank, coming from pred rank.
    Diag(usize),
    /// Graph node consumed without a sequence base (deletion), from pred
    /// rank.
    Up(usize),
    /// Sequence base consumed without a graph node (insertion).
    Left,
    /// Border start.
    Start,
}

const NEG: i32 = i32::MIN / 4;

impl Poa {
    /// An empty graph.
    pub fn new() -> Self {
        Poa::default()
    }

    /// Rebuilds a graph from its serialized parts: the per-node bases
    /// plus weighted `(from, to, weight)` edges — the inverse of walking
    /// [`base`](Self::base) and [`preds`](Self::preds) over every node.
    /// This is the constructor transport layers use to ship a POA graph
    /// across a wire without replaying the sequence insertions that
    /// built it.
    ///
    /// # Errors
    ///
    /// Rejects out-of-range endpoints, zero-weight edges, self-loops and
    /// duplicate edges (each `(from, to)` pair carries its multiplicity
    /// in `weight`). Cycles are *not* detected here — alignment entry
    /// points assert acyclicity when they first order the graph.
    pub fn from_parts(bases: Vec<Base>, edges: &[(usize, usize, u32)]) -> Result<Poa, String> {
        let n = bases.len();
        let mut poa = Poa {
            nodes: bases
                .into_iter()
                .map(|base| Node {
                    base,
                    preds: Vec::new(),
                    succs: Vec::new(),
                })
                .collect(),
        };
        for &(from, to, weight) in edges {
            if from >= n || to >= n {
                return Err(format!("edge ({from}, {to}) is outside the {n}-node graph"));
            }
            if from == to {
                return Err(format!("self-loop on node {from}"));
            }
            if weight == 0 {
                return Err(format!("edge ({from}, {to}) has zero weight"));
            }
            if poa.nodes[to].preds.iter().any(|(p, _)| *p == from) {
                return Err(format!("duplicate edge ({from}, {to})"));
            }
            poa.nodes[to].preds.push((from, weight));
            poa.nodes[from].succs.push(to);
        }
        Ok(poa)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.nodes.iter().map(|n| n.preds.len()).sum()
    }

    /// Node ids in topological order (what the accelerator mapping calls
    /// "rows").
    pub fn topological_order(&self) -> Vec<usize> {
        self.topo_order()
    }

    /// The base of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn base(&self, v: usize) -> Base {
        self.nodes[v].base
    }

    /// Predecessors of node `v` with edge weights.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn preds(&self, v: usize) -> &[(usize, u32)] {
        &self.nodes[v].preds
    }

    /// Successors of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn succs(&self, v: usize) -> &[usize] {
        &self.nodes[v].succs
    }

    /// Nodes in topological order (Kahn's algorithm).
    fn topo_order(&self) -> Vec<usize> {
        let n = self.nodes.len();
        let mut indeg: Vec<usize> = self.nodes.iter().map(|x| x.preds.len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for &s in &self.nodes[v].succs {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        assert_eq!(order.len(), n, "POA graph contains a cycle");
        order
    }

    fn linear_gap(scoring: &Scoring) -> i32 {
        match scoring.gap {
            GapModel::Linear { extend } => extend,
            _ => panic!("POA uses the linear gap model (Lee 2002 / Racon)"),
        }
    }

    fn add_edge(&mut self, from: usize, to: usize) {
        if let Some(e) = self.nodes[to].preds.iter_mut().find(|(p, _)| *p == from) {
            e.1 += 1;
            return;
        }
        self.nodes[to].preds.push((from, 1));
        self.nodes[from].succs.push(to);
    }

    fn add_node(&mut self, base: Base) -> usize {
        self.nodes.push(Node {
            base,
            preds: Vec::new(),
            succs: Vec::new(),
        });
        self.nodes.len() - 1
    }

    /// Aligns `seq` to the graph (global, linear gaps) without modifying
    /// it. Returns the score, the DP cell count and the traceback.
    fn align_internal(
        &self,
        seq: &DnaSeq,
        scoring: &Scoring,
    ) -> (PoaAlign, Vec<Vec<Mv>>, Vec<usize>) {
        let gap = Self::linear_gap(scoring);
        let order = self.topo_order();
        let rank_of: Vec<usize> = {
            let mut r = vec![0; self.nodes.len()];
            for (rank, &v) in order.iter().enumerate() {
                r[v] = rank + 1;
            }
            r
        };
        let rn = order.len();
        let n = seq.len();
        let mut h = vec![vec![NEG; n + 1]; rn + 1];
        let mut mv = vec![vec![Mv::Start; n + 1]; rn + 1];
        h[0][0] = 0;
        for j in 1..=n {
            h[0][j] = -gap * j as i32;
            mv[0][j] = Mv::Left;
        }
        for (rank0, &v) in order.iter().enumerate() {
            let r = rank0 + 1;
            let node = &self.nodes[v];
            let pred_ranks: Vec<usize> = if node.preds.is_empty() {
                vec![0]
            } else {
                node.preds.iter().map(|&(p, _)| rank_of[p]).collect()
            };
            // Border column: graph-only moves.
            for &pr in &pred_ranks {
                let cand = h[pr][0] - gap;
                if cand > h[r][0] {
                    h[r][0] = cand;
                    mv[r][0] = Mv::Up(pr);
                }
            }
            for j in 1..=n {
                let sub = scoring.substitution(node.base.code(), seq[j - 1].code());
                let (mut best, mut best_mv) = (h[r][j - 1] - gap, Mv::Left);
                for &pr in &pred_ranks {
                    let diag = h[pr][j - 1] + sub;
                    if diag > best {
                        best = diag;
                        best_mv = Mv::Diag(pr);
                    }
                    let up = h[pr][j] - gap;
                    if up > best {
                        best = up;
                        best_mv = Mv::Up(pr);
                    }
                }
                h[r][j] = best;
                mv[r][j] = best_mv;
            }
        }
        // Global end: best over ranks of end nodes (no successors).
        let mut best_rank = 0;
        let mut best = if rn == 0 { 0 } else { NEG };
        for (rank0, &v) in order.iter().enumerate() {
            if self.nodes[v].succs.is_empty() && h[rank0 + 1][n] > best {
                best = h[rank0 + 1][n];
                best_rank = rank0 + 1;
            }
        }
        if rn == 0 {
            best = -gap * n as i32;
        }
        (
            PoaAlign {
                score: best,
                cells: (rn as u64) * (n as u64),
            },
            mv,
            {
                let mut with_best = order;
                with_best.push(best_rank); // smuggle best end rank
                with_best
            },
        )
    }

    /// Aligns `seq` against the current graph without merging it.
    ///
    /// # Panics
    ///
    /// Panics if the scoring's gap model is not linear.
    pub fn align(&self, seq: &DnaSeq, scoring: &Scoring) -> PoaAlign {
        self.align_internal(seq, scoring).0
    }

    /// Aligns `seq` to the graph and fuses it in, updating edge weights.
    /// The first sequence simply becomes a chain.
    ///
    /// # Panics
    ///
    /// Panics if the scoring's gap model is not linear or `seq` is empty.
    pub fn add_sequence(&mut self, seq: &DnaSeq, scoring: &Scoring) -> PoaAlign {
        assert!(!seq.is_empty(), "cannot add an empty sequence");
        let _ = Self::linear_gap(scoring); // validate the gap model upfront
        if self.nodes.is_empty() {
            let mut prev: Option<usize> = None;
            for &b in seq.iter() {
                let v = self.add_node(b);
                if let Some(p) = prev {
                    self.add_edge(p, v);
                }
                prev = Some(v);
            }
            return PoaAlign { score: 0, cells: 0 };
        }

        let (result, mv, mut order) = self.align_internal(seq, scoring);
        let best_rank = order.pop().expect("end rank present");
        let node_at = |rank: usize| order[rank - 1];

        // Walk the traceback from (best_rank, n) back to the border,
        // collecting consuming operations in reverse.
        #[derive(Debug)]
        enum Op {
            Match { rank: usize, j: usize },
            Ins { j: usize },
        }
        let mut ops: Vec<Op> = Vec::new();
        let (mut r, mut j) = (best_rank, seq.len());
        loop {
            if r == 0 && j == 0 {
                break;
            }
            match mv[r][j] {
                Mv::Diag(pr) => {
                    ops.push(Op::Match { rank: r, j: j - 1 });
                    r = pr;
                    j -= 1;
                }
                Mv::Up(pr) => {
                    r = pr;
                }
                Mv::Left => {
                    ops.push(Op::Ins { j: j - 1 });
                    j -= 1;
                }
                Mv::Start => break,
            }
        }
        ops.reverse();

        // Fuse: reuse matched nodes with equal bases, create nodes for
        // mismatches and insertions, thread edges along the read path.
        let mut prev: Option<usize> = None;
        for op in ops {
            let target = match op {
                Op::Match { rank, j } => {
                    let v = node_at(rank);
                    if self.nodes[v].base == seq[j] {
                        v
                    } else {
                        self.add_node(seq[j])
                    }
                }
                Op::Ins { j } => self.add_node(seq[j]),
            };
            if let Some(p) = prev {
                if p != target {
                    self.add_edge(p, target);
                }
            }
            prev = Some(target);
        }
        result
    }

    /// The heaviest path through the graph: at each node take the
    /// best-scoring predecessor edge, then trace back from the best-scoring
    /// node (Racon's consensus step).
    pub fn consensus(&self) -> DnaSeq {
        if self.nodes.is_empty() {
            return DnaSeq::new();
        }
        let order = self.topo_order();
        let mut score = vec![0i64; self.nodes.len()];
        let mut back: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let (mut best_v, mut best_s) = (order[0], i64::MIN);
        for &v in &order {
            for &(p, w) in &self.nodes[v].preds {
                let cand = score[p] + w as i64;
                if cand > score[v] {
                    score[v] = cand;
                    back[v] = Some(p);
                }
            }
            if score[v] > best_s {
                best_s = score[v];
                best_v = v;
            }
        }
        let mut path = Vec::new();
        let mut cur = Some(best_v);
        while let Some(v) = cur {
            path.push(self.nodes[v].base);
            cur = back[v];
        }
        path.reverse();
        path.into_iter().collect()
    }
}

/// Convenience: builds a POA over all reads and returns the consensus plus
/// the total DP cells computed (the throughput unit for the POA kernel).
///
/// # Panics
///
/// Panics if `reads` is empty or the gap model is not linear.
pub fn consensus_of(reads: &[DnaSeq], scoring: &Scoring) -> (DnaSeq, u64) {
    assert!(!reads.is_empty(), "need at least one read");
    let mut poa = Poa::new();
    let mut cells = 0u64;
    for r in reads {
        cells += poa.add_sequence(r, scoring).cells;
    }
    (poa.consensus(), cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendp_seq::{Genome, MutationProfile, ReadGroupProfile};
    use rand::{rngs::SmallRng, SeedableRng};

    fn s(text: &str) -> DnaSeq {
        text.parse().unwrap()
    }

    #[test]
    fn from_parts_roundtrips_a_built_graph() {
        let mut rng = SmallRng::seed_from_u64(77);
        let truth = DnaSeq::random(24, &mut rng);
        let mut poa = Poa::new();
        poa.add_sequence(&truth, &Scoring::racon());
        poa.add_sequence(
            &MutationProfile::nanopore().apply(&truth, &mut rng),
            &Scoring::racon(),
        );
        // Serialize: bases per node, weighted edges per predecessor list.
        let bases: Vec<Base> = (0..poa.node_count()).map(|v| poa.base(v)).collect();
        let mut edges = Vec::new();
        for v in 0..poa.node_count() {
            for &(p, w) in poa.preds(v) {
                edges.push((p, v, w));
            }
        }
        let rebuilt = Poa::from_parts(bases, &edges).expect("valid parts");
        assert_eq!(rebuilt.node_count(), poa.node_count());
        assert_eq!(rebuilt.edge_count(), poa.edge_count());
        // Alignment behaviour is preserved exactly.
        let probe = MutationProfile::nanopore().apply(&truth, &mut rng);
        let a = poa.align(&probe, &Scoring::racon());
        let b = rebuilt.align(&probe, &Scoring::racon());
        assert_eq!(a.score, b.score);
        assert_eq!(a.cells, b.cells);
        assert_eq!(rebuilt.consensus(), poa.consensus());
    }

    #[test]
    fn from_parts_rejects_malformed_edges() {
        let bases = vec![Base::A, Base::C, Base::G];
        assert!(Poa::from_parts(bases.clone(), &[(0, 9, 1)]).is_err());
        assert!(Poa::from_parts(bases.clone(), &[(1, 1, 1)]).is_err());
        assert!(Poa::from_parts(bases.clone(), &[(0, 1, 0)]).is_err());
        assert!(Poa::from_parts(bases.clone(), &[(0, 1, 1), (0, 1, 2)]).is_err());
        assert!(Poa::from_parts(bases, &[(0, 1, 2), (1, 2, 1)]).is_ok());
    }

    #[test]
    fn single_sequence_consensus_is_identity() {
        let mut poa = Poa::new();
        let seq = s("ACGTTGCA");
        poa.add_sequence(&seq, &Scoring::racon());
        assert_eq!(poa.consensus(), seq);
        assert_eq!(poa.node_count(), 8);
        assert_eq!(poa.edge_count(), 7);
    }

    #[test]
    fn identical_sequences_reinforce_the_chain() {
        let mut poa = Poa::new();
        let seq = s("ACGTACGTAC");
        for _ in 0..5 {
            poa.add_sequence(&seq, &Scoring::racon());
        }
        assert_eq!(poa.consensus(), seq);
        // No new nodes were created.
        assert_eq!(poa.node_count(), 10);
    }

    #[test]
    fn align_score_of_perfect_match() {
        let mut poa = Poa::new();
        let seq = s("ACGTACGT");
        poa.add_sequence(&seq, &Scoring::racon());
        let r = poa.align(&seq, &Scoring::racon());
        assert_eq!(r.score, 8 * 3); // racon match = 3
        assert_eq!(r.cells, 64);
    }

    #[test]
    fn majority_vote_fixes_single_errors() {
        // Five reads, one carries a substitution: consensus = truth.
        let truth = s("ACGTACGTACGTACGTACGT");
        let mut bad = truth.bases().to_vec();
        bad[7] = bad[7].complement();
        let reads = vec![
            truth.clone(),
            truth.clone(),
            DnaSeq::from(bad),
            truth.clone(),
            truth.clone(),
        ];
        let (cons, cells) = consensus_of(&reads, &Scoring::racon());
        assert_eq!(cons, truth);
        assert!(cells > 0);
    }

    #[test]
    fn noisy_read_group_converges_to_truth() {
        let mut rng = SmallRng::seed_from_u64(5);
        let g = Genome::random(1_000, &mut rng);
        let profile = ReadGroupProfile {
            window_len: 200,
            min_reads: 15,
            max_reads: 15,
            errors: MutationProfile::nanopore(),
        };
        let group = profile.sample(&g, 1, &mut rng).remove(0);
        let (cons, _) = consensus_of(&group.reads, &Scoring::racon());
        // Consensus should be much closer to truth than any single read.
        let n = cons.len().min(group.truth.len());
        let cons_ident = cons.window(0, n).identity(&group.truth.window(0, n));
        assert!(cons_ident > 0.93, "consensus identity {cons_ident}");
        let read = &group.reads[0];
        let m = read.len().min(group.truth.len());
        let read_ident = read.window(0, m).identity(&group.truth.window(0, m));
        assert!(
            cons_ident > read_ident,
            "consensus {cons_ident} vs read {read_ident}"
        );
    }

    #[test]
    fn insertion_read_creates_branch() {
        let mut poa = Poa::new();
        poa.add_sequence(&s("ACGTACGT"), &Scoring::racon());
        let before = poa.node_count();
        poa.add_sequence(&s("ACGTTTACGT"), &Scoring::racon());
        assert!(poa.node_count() > before);
        // The original backbone still dominates after two more supporters.
        poa.add_sequence(&s("ACGTACGT"), &Scoring::racon());
        poa.add_sequence(&s("ACGTACGT"), &Scoring::racon());
        assert_eq!(poa.consensus(), s("ACGTACGT"));
    }

    #[test]
    fn empty_graph_consensus_is_empty() {
        assert!(Poa::new().consensus().is_empty());
    }

    #[test]
    #[should_panic(expected = "linear gap")]
    fn affine_scoring_panics() {
        let mut poa = Poa::new();
        poa.add_sequence(&s("ACGT"), &Scoring::bwa_mem());
    }
}
