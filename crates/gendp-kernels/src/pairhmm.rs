//! Pairwise Hidden Markov Model (paper §2.3): the GATK HaplotypeCaller
//! read-likelihood kernel, in three flavors:
//!
//! * [`forward_f64`] — the floating-point forward algorithm (the CPU/GPU
//!   baseline arithmetic);
//! * [`forward_log_fixed`] — the log-domain fixed-point approximation GenDP
//!   executes on the integer PE arrays (paper §7.2: "the pruned-based
//!   implementation using logarithm and fixed point numbers"), built on the
//!   same Log_sum LUT semantics as the accelerator
//!   ([`gendp_isa::Luts::logsum_correction`]);
//! * [`forward_pruned`] — the pruning-based scan of Wu et al. that skips
//!   cells far below the running maximum (97.7% of the workload runs in
//!   this scan phase, §6).

use gendp_isa::Luts;
use gendp_seq::DnaSeq;

/// HMM transition parameters (GATK-style, constant per read batch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairHmmParams {
    /// Gap-open probability δ (M→I and M→D).
    pub gap_open: f64,
    /// Gap-extension probability ε (I→I and D→D).
    pub gap_ext: f64,
}

impl PairHmmParams {
    /// GATK's default-ish transitions (δ = 10^-4.5, ε = 0.1).
    pub fn gatk() -> Self {
        PairHmmParams {
            gap_open: 10f64.powf(-4.5),
            gap_ext: 0.1,
        }
    }

    fn transitions(&self) -> Transitions {
        let d = self.gap_open;
        let e = self.gap_ext;
        Transitions {
            mm: 1.0 - 2.0 * d,
            mi: d,
            md: d,
            ii: e,
            im: 1.0 - e,
            dd: e,
            dm: 1.0 - e,
        }
    }
}

impl Default for PairHmmParams {
    fn default() -> Self {
        Self::gatk()
    }
}

#[derive(Debug, Clone, Copy)]
struct Transitions {
    mm: f64,
    mi: f64,
    md: f64,
    ii: f64,
    im: f64,
    dd: f64,
    dm: f64,
}

fn base_error(qual: u8) -> f64 {
    gendp_seq::phred::error_probability(qual)
}

/// Natural-log likelihood `ln P(read | haplotype)` via the full
/// floating-point forward algorithm.
///
/// # Panics
///
/// Panics if `quals.len() != read.len()` or either sequence is empty.
pub fn forward_f64(read: &DnaSeq, quals: &[u8], haplotype: &DnaSeq, params: &PairHmmParams) -> f64 {
    assert_eq!(read.len(), quals.len(), "one quality per read base");
    assert!(!read.is_empty() && !haplotype.is_empty(), "empty input");
    let t = params.transitions();
    let m = read.len();
    let n = haplotype.len();
    let mut fm = vec![vec![0f64; n + 1]; m + 1];
    let mut fi = vec![vec![0f64; n + 1]; m + 1];
    let mut fd = vec![vec![0f64; n + 1]; m + 1];
    // Free start anywhere along the haplotype (GATK convention).
    fd[0].fill(1.0 / n as f64);
    for i in 1..=m {
        let eps = base_error(quals[i - 1]);
        for j in 1..=n {
            let prior = if read[i - 1] == haplotype[j - 1] {
                1.0 - eps
            } else {
                eps / 3.0
            };
            fm[i][j] = prior
                * (t.mm * fm[i - 1][j - 1] + t.im * fi[i - 1][j - 1] + t.dm * fd[i - 1][j - 1]);
            fi[i][j] = t.mi * fm[i - 1][j] + t.ii * fi[i - 1][j];
            fd[i][j] = t.md * fm[i][j - 1] + t.dd * fd[i][j - 1];
        }
    }
    let total: f64 = (0..=n).map(|j| fm[m][j] + fi[m][j]).sum();
    total.ln()
}

/// Sentinel for `ln 0` in the scaled log domain. Chosen so that sums and
/// differences of two log-domain values never overflow `i32` (the
/// accelerator datapath has no sentinel handling — `ln 0` is just a very
/// negative number that log-sum corrections cannot lift).
pub const LOG_NEG_INF: i32 = -(1 << 28);

/// Log-domain "multiply": plain wrapping addition, exactly the
/// accelerator's `add` (values are bounded so it never actually wraps).
fn ladd(a: i32, b: i32) -> i32 {
    a.wrapping_add(b)
}

/// Log-domain "add": `max(a,b) + lut(|a-b|)`, built from the same five
/// operations (`sub`, `sub`, `max`, `max`, `logsum`, `add`) the DFG uses,
/// so the fixed-point kernel and the mapped compute program agree bit for
/// bit.
fn logsum2(a: i32, b: i32, luts: &Luts) -> i32 {
    let d = a.wrapping_sub(b);
    let nd = 0i32.wrapping_sub(d);
    let dd = d.max(nd);
    let hi = a.max(b);
    hi.wrapping_add(luts.logsum_correction(dd))
}

fn to_log(p: f64, scale: i32) -> i32 {
    if p <= 0.0 {
        LOG_NEG_INF
    } else {
        (p.ln() * scale as f64).round() as i32
    }
}

/// Natural-log likelihood computed entirely in scaled fixed-point log
/// space with the accelerator's Log_sum lookup table — the arithmetic the
/// integer PE arrays execute. Returns `scale * ln P`, comparable against
/// [`forward_f64`] after dividing by `scale`.
///
/// # Panics
///
/// Panics if `quals.len() != read.len()`, either sequence is empty, or
/// `scale` is not positive.
pub fn forward_log_fixed(
    read: &DnaSeq,
    quals: &[u8],
    haplotype: &DnaSeq,
    params: &PairHmmParams,
    scale: i32,
) -> i32 {
    assert_eq!(read.len(), quals.len(), "one quality per read base");
    assert!(!read.is_empty() && !haplotype.is_empty(), "empty input");
    assert!(scale > 0, "scale must be positive");
    let luts = Luts {
        logsum_scale: scale,
        ..Luts::default()
    };
    let t = params.transitions();
    let l = |p: f64| to_log(p, scale);
    let (tmm, tmi, tmd, tii, tim, tdd, tdm) = (
        l(t.mm),
        l(t.mi),
        l(t.md),
        l(t.ii),
        l(t.im),
        l(t.dd),
        l(t.dm),
    );
    let m = read.len();
    let n = haplotype.len();
    let mut fm = vec![vec![LOG_NEG_INF; n + 1]; m + 1];
    let mut fi = vec![vec![LOG_NEG_INF; n + 1]; m + 1];
    let mut fd = vec![vec![LOG_NEG_INF; n + 1]; m + 1];
    fd[0].fill(l(1.0 / n as f64));
    for i in 1..=m {
        let eps = base_error(quals[i - 1]);
        let prior_eq = l(1.0 - eps);
        let prior_ne = l(eps / 3.0);
        for j in 1..=n {
            let prior = if read[i - 1] == haplotype[j - 1] {
                prior_eq
            } else {
                prior_ne
            };
            let a = ladd(tmm, fm[i - 1][j - 1]);
            let b = ladd(tim, fi[i - 1][j - 1]);
            let c = ladd(tdm, fd[i - 1][j - 1]);
            fm[i][j] = ladd(prior, logsum2(logsum2(a, b, &luts), c, &luts));
            fi[i][j] = logsum2(ladd(tmi, fm[i - 1][j]), ladd(tii, fi[i - 1][j]), &luts);
            fd[i][j] = logsum2(ladd(tmd, fm[i][j - 1]), ladd(tdd, fd[i][j - 1]), &luts);
        }
    }
    let mut total = LOG_NEG_INF;
    for j in 0..=n {
        total = logsum2(total, logsum2(fm[m][j], fi[m][j], &luts), &luts);
    }
    total
}

/// Likelihood `P(read | haplotype)` via a single-precision forward pass
/// whose per-cell operation order mirrors the FP-array DFG
/// ([`crate::dfgs::pairhmm_float_dfg`]) exactly, so the accelerator's
/// floating-point results are bit-identical to this reference.
///
/// Single precision underflows for long reads (which is why production
/// PairHMM implementations scale or switch to f64); intended for the
/// FP-array validation path on small tables.
///
/// # Panics
///
/// Panics if `quals.len() != read.len()` or either sequence is empty.
pub fn forward_f32(read: &DnaSeq, quals: &[u8], haplotype: &DnaSeq, params: &PairHmmParams) -> f32 {
    assert_eq!(read.len(), quals.len(), "one quality per read base");
    assert!(!read.is_empty() && !haplotype.is_empty(), "empty input");
    let t = params.transitions();
    let (tmm, tmi, tmd, tii, tim, tdd, tdm) = (
        t.mm as f32,
        t.mi as f32,
        t.md as f32,
        t.ii as f32,
        t.im as f32,
        t.dd as f32,
        t.dm as f32,
    );
    let m = read.len();
    let n = haplotype.len();
    let mut fm = vec![vec![0f32; n + 1]; m + 1];
    let mut fi = vec![vec![0f32; n + 1]; m + 1];
    let mut fd = vec![vec![0f32; n + 1]; m + 1];
    fd[0].fill(1.0f32 / n as f32);
    for i in 1..=m {
        let eps = base_error(quals[i - 1]) as f32;
        let (prior_eq, prior_ne) = (1.0 - eps, eps / 3.0);
        for j in 1..=n {
            let prior = if read[i - 1] == haplotype[j - 1] {
                prior_eq
            } else {
                prior_ne
            };
            // Operation order mirrors the DFG: three products, left-to-
            // right sums, then the prior product.
            let am = tmm * fm[i - 1][j - 1];
            let bm = tim * fi[i - 1][j - 1];
            let cm = tdm * fd[i - 1][j - 1];
            fm[i][j] = prior * ((am + bm) + cm);
            fi[i][j] = tmi * fm[i - 1][j] + tii * fi[i - 1][j];
            fd[i][j] = tmd * fm[i][j - 1] + tdd * fd[i][j - 1];
        }
    }
    let mut total = 0f32;
    for j in 0..=n {
        total += fm[m][j] + fi[m][j];
    }
    total
}

/// Statistics of a pruned forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruneStats {
    /// All cells of the rectangular table.
    pub cells_total: u64,
    /// Cells actually evaluated by the scan.
    pub cells_active: u64,
}

impl PruneStats {
    /// Fraction of cells the scan evaluated.
    pub fn active_fraction(&self) -> f64 {
        if self.cells_total == 0 {
            return 0.0;
        }
        self.cells_active as f64 / self.cells_total as f64
    }
}

/// Pruning-based forward scan (Wu et al. \[77\]): per row, only the column
/// interval whose mass is within `threshold` (relative) of the running row
/// maximum is evaluated; everything outside is treated as zero.
///
/// Returns the (approximate) `ln P` and the pruning statistics. With the
/// default threshold the likelihood matches [`forward_f64`] to well under
/// 0.1%.
///
/// # Panics
///
/// Panics if `quals.len() != read.len()`, either sequence is empty, or
/// `threshold` is not in `(0, 1)`.
pub fn forward_pruned(
    read: &DnaSeq,
    quals: &[u8],
    haplotype: &DnaSeq,
    params: &PairHmmParams,
    threshold: f64,
) -> (f64, PruneStats) {
    assert_eq!(read.len(), quals.len(), "one quality per read base");
    assert!(!read.is_empty() && !haplotype.is_empty(), "empty input");
    assert!(threshold > 0.0 && threshold < 1.0, "threshold in (0,1)");
    let t = params.transitions();
    let m = read.len();
    let n = haplotype.len();
    let mut fm = vec![vec![0f64; n + 1]; m + 1];
    let mut fi = vec![vec![0f64; n + 1]; m + 1];
    let mut fd = vec![vec![0f64; n + 1]; m + 1];
    fd[0].fill(1.0 / n as f64);
    let (mut lo, mut hi) = (1usize, n);
    let mut active = 0u64;
    for i in 1..=m {
        let eps = base_error(quals[i - 1]);
        let mut row_max = 0f64;
        for j in lo..=hi {
            let prior = if read[i - 1] == haplotype[j - 1] {
                1.0 - eps
            } else {
                eps / 3.0
            };
            fm[i][j] = prior
                * (t.mm * fm[i - 1][j - 1] + t.im * fi[i - 1][j - 1] + t.dm * fd[i - 1][j - 1]);
            fi[i][j] = t.mi * fm[i - 1][j] + t.ii * fi[i - 1][j];
            fd[i][j] = t.md * fm[i][j - 1] + t.dd * fd[i][j - 1];
            row_max = row_max.max(fm[i][j]).max(fi[i][j]).max(fd[i][j]);
            active += 1;
        }
        // Shrink the active window for the next row: cells whose three
        // states all fall below threshold * row_max cannot recover.
        let cut = row_max * threshold;
        let mut new_lo = lo;
        while new_lo < hi && fm[i][new_lo] < cut && fi[i][new_lo] < cut && fd[i][new_lo] < cut {
            new_lo += 1;
        }
        let mut new_hi = hi;
        while new_hi > new_lo && fm[i][new_hi] < cut && fi[i][new_hi] < cut && fd[i][new_hi] < cut {
            new_hi -= 1;
        }
        lo = new_lo;
        hi = (new_hi + 1).min(n); // allow one column of growth rightwards
    }
    let total: f64 = (0..=n).map(|j| fm[m][j] + fi[m][j]).sum();
    (
        total.ln(),
        PruneStats {
            cells_total: (m as u64) * (n as u64),
            cells_active: active,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendp_seq::{Genome, HaplotypeProfile};
    use rand::{rngs::SmallRng, SeedableRng};

    fn sample_pair(seed: u64) -> (DnaSeq, Vec<u8>, DnaSeq) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Genome::random(2_000, &mut rng);
        let p = HaplotypeProfile::gatk_like()
            .sample(&g, 1, &mut rng)
            .remove(0);
        (p.read.seq.clone(), p.read.quals.clone(), p.haplotype)
    }

    #[test]
    fn likelihood_is_negative_and_finite() {
        let (r, q, h) = sample_pair(1);
        let ll = forward_f64(&r, &q, &h, &PairHmmParams::gatk());
        assert!(ll.is_finite());
        assert!(ll < 0.0);
    }

    #[test]
    fn matching_read_outscores_random_read() {
        let mut rng = SmallRng::seed_from_u64(2);
        let (r, q, h) = sample_pair(2);
        let random_read = DnaSeq::random(r.len(), &mut rng);
        let p = PairHmmParams::gatk();
        let ll_true = forward_f64(&r, &q, &h, &p);
        let ll_rand = forward_f64(&random_read, &q, &h, &p);
        assert!(
            ll_true > ll_rand + 10.0,
            "true {ll_true} vs random {ll_rand}"
        );
    }

    #[test]
    fn log_fixed_tracks_f64() {
        let p = PairHmmParams::gatk();
        for seed in 3..9 {
            let (r, q, h) = sample_pair(seed);
            let ll = forward_f64(&r, &q, &h, &p);
            let scale = 1024;
            let fx = forward_log_fixed(&r, &q, &h, &p, scale);
            let fx_ln = fx as f64 / scale as f64;
            let err = (fx_ln - ll).abs();
            assert!(
                err < 0.5,
                "seed {seed}: f64 {ll} vs fixed {fx_ln} (err {err})"
            );
        }
    }

    #[test]
    fn larger_scale_is_more_accurate() {
        let p = PairHmmParams::gatk();
        let (r, q, h) = sample_pair(10);
        let ll = forward_f64(&r, &q, &h, &p);
        let err_small = (forward_log_fixed(&r, &q, &h, &p, 64) as f64 / 64.0 - ll).abs();
        let err_large = (forward_log_fixed(&r, &q, &h, &p, 4096) as f64 / 4096.0 - ll).abs();
        assert!(err_large <= err_small + 0.05, "{err_small} -> {err_large}");
    }

    #[test]
    fn f32_forward_tracks_f64() {
        let p = PairHmmParams::gatk();
        for seed in 30..34 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let g = Genome::random(200, &mut rng);
            let hap = g.window(0, 20);
            let read = g.window(2, 12);
            let quals = vec![30u8; read.len()];
            let f64v = forward_f64(&read, &quals, &hap, &p);
            let f32v = forward_f32(&read, &quals, &hap, &p);
            assert!(f32v > 0.0, "underflow at this size would be a bug");
            let rel = ((f32v as f64).ln() - f64v).abs();
            assert!(rel < 1e-3, "seed {seed}: {rel}");
        }
    }

    #[test]
    fn pruning_preserves_likelihood_and_skips_cells() {
        let p = PairHmmParams::gatk();
        let mut skipped_any = false;
        for seed in 11..17 {
            let (r, q, h) = sample_pair(seed);
            let full = forward_f64(&r, &q, &h, &p);
            let (pruned, stats) = forward_pruned(&r, &q, &h, &p, 1e-12);
            let rel = ((pruned - full) / full).abs();
            assert!(rel < 1e-3, "seed {seed}: {full} vs {pruned}");
            assert!(stats.cells_active <= stats.cells_total);
            if stats.cells_active < stats.cells_total {
                skipped_any = true;
            }
        }
        assert!(skipped_any, "pruning never skipped a cell");
    }

    #[test]
    fn prune_stats_fraction() {
        let s = PruneStats {
            cells_total: 100,
            cells_active: 40,
        };
        assert_eq!(s.active_fraction(), 0.4);
        assert_eq!(
            PruneStats {
                cells_total: 0,
                cells_active: 0
            }
            .active_fraction(),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "one quality per read base")]
    fn mismatched_quals_panic() {
        let (r, _, h) = sample_pair(20);
        forward_f64(&r, &[30], &h, &PairHmmParams::gatk());
    }
}
