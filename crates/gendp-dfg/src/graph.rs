use std::collections::BTreeMap;
use std::fmt;

use gendp_isa::{ComputeOp, Word};

/// Identifier of an operator node inside a [`Dfg`].
///
/// Node ids are dense indices in topological (construction) order: every
/// node's operands refer only to lower-numbered nodes.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An operand of a DFG node.
#[derive(Debug, Copy, Clone, PartialEq, Eq, Hash)]
pub enum Input {
    /// Result of another operator node.
    Node(NodeId),
    /// A named external input (index into [`Dfg::ext_names`]).
    Ext(usize),
    /// An immediate constant (raw 32-bit word).
    Const(Word),
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Node {
    pub op: ComputeOp,
    pub inputs: Vec<Input>,
}

/// A data-flow graph of one DP objective function (one cell update).
///
/// See the [crate-level documentation](crate) for an example.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dfg {
    name: String,
    nodes: Vec<Node>,
    ext_names: Vec<String>,
    outputs: BTreeMap<String, NodeId>,
}

impl Dfg {
    /// Creates an empty graph with a human-readable name.
    pub fn new(name: impl Into<String>) -> Self {
        Dfg {
            name: name.into(),
            ..Dfg::default()
        }
    }

    /// The graph's name (e.g. the kernel it belongs to).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares (or reuses) a named external input.
    pub fn ext(&mut self, name: &str) -> Input {
        if let Some(i) = self.ext_names.iter().position(|n| n == name) {
            return Input::Ext(i);
        }
        self.ext_names.push(name.to_string());
        Input::Ext(self.ext_names.len() - 1)
    }

    /// An immediate integer constant.
    pub fn imm(&self, v: i32) -> Input {
        Input::Const(Word::from_i32(v))
    }

    /// An immediate floating-point constant (FP PE array kernels).
    pub fn imm_f32(&self, v: f32) -> Input {
        Input::Const(Word::from_f32(v))
    }

    /// Adds an operator node with explicit inputs and returns it as an
    /// [`Input`] for chaining.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs does not match [`ComputeOp::arity`],
    /// if `op` is `Nop`/`Halt`, or if an operand refers to a node not yet in
    /// the graph (which would break topological order).
    pub fn node(&mut self, op: ComputeOp, inputs: &[Input]) -> Input {
        assert!(
            !matches!(op, ComputeOp::Nop | ComputeOp::Halt),
            "{op} is not a DFG operator"
        );
        assert_eq!(
            inputs.len(),
            op.arity(),
            "{op} takes {} operands, got {}",
            op.arity(),
            inputs.len()
        );
        for input in inputs {
            match *input {
                Input::Node(NodeId(i)) => {
                    assert!(i < self.nodes.len(), "operand {input:?} not yet defined")
                }
                Input::Ext(i) => {
                    assert!(i < self.ext_names.len(), "external input {i} undeclared")
                }
                Input::Const(_) => {}
            }
        }
        self.nodes.push(Node {
            op,
            inputs: inputs.to_vec(),
        });
        Input::Node(NodeId(self.nodes.len() - 1))
    }

    /// Appends a node with **no** builder validation: wrong arities,
    /// forward or dangling node references, and any operator are
    /// accepted verbatim. For graph sources that bypass the checked
    /// builders (deserializers, generated code); `gendp-verify`'s DFG
    /// lints are the gate that reports what this method lets through.
    pub fn push_raw(&mut self, op: ComputeOp, inputs: &[Input]) -> Input {
        self.nodes.push(Node {
            op,
            inputs: inputs.to_vec(),
        });
        Input::Node(NodeId(self.nodes.len() - 1))
    }

    /// `a + b`
    pub fn add(&mut self, a: Input, b: Input) -> Input {
        self.node(ComputeOp::Add, &[a, b])
    }

    /// `a - b`
    pub fn sub(&mut self, a: Input, b: Input) -> Input {
        self.node(ComputeOp::Sub, &[a, b])
    }

    /// `a * b`
    pub fn mul(&mut self, a: Input, b: Input) -> Input {
        self.node(ComputeOp::Mul, &[a, b])
    }

    /// `max(a, b)`
    pub fn max(&mut self, a: Input, b: Input) -> Input {
        self.node(ComputeOp::Max, &[a, b])
    }

    /// `min(a, b)`
    pub fn min(&mut self, a: Input, b: Input) -> Input {
        self.node(ComputeOp::Min, &[a, b])
    }

    /// `scoretable(a, b)`
    pub fn match_score(&mut self, a: Input, b: Input) -> Input {
        self.node(ComputeOp::MatchScore, &[a, b])
    }

    /// `a > b ? c : d`
    pub fn select_gt(&mut self, a: Input, b: Input, c: Input, d: Input) -> Input {
        self.node(ComputeOp::SelectGt, &[a, b, c, d])
    }

    /// `a == b ? c : d`
    pub fn select_eq(&mut self, a: Input, b: Input, c: Input, d: Input) -> Input {
        self.node(ComputeOp::SelectEq, &[a, b, c, d])
    }

    /// `log2(a) >> 1` (the chaining gap-cost lookup)
    pub fn log2_half(&mut self, a: Input) -> Input {
        self.node(ComputeOp::Log2Lut, &[a])
    }

    /// `log_sum(a)` (the log-domain PairHMM correction lookup)
    pub fn log_sum(&mut self, a: Input) -> Input {
        self.node(ComputeOp::LogSumLut, &[a])
    }

    /// Names a node result as a cell output (e.g. the new `H`, `E`, `F`
    /// scores). Outputs are what the generated compute program writes to
    /// well-known register-file slots.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not a node result (plain inputs/constants cannot
    /// be outputs).
    pub fn set_output(&mut self, name: &str, value: Input) {
        match value {
            Input::Node(id) => {
                self.outputs.insert(name.to_string(), id);
            }
            other => panic!("output `{name}` must be a node result, got {other:?}"),
        }
    }

    /// Number of operator nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no operator nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The operator of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn op(&self, id: NodeId) -> ComputeOp {
        self.nodes[id.0].op
    }

    /// The operands of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn inputs(&self, id: NodeId) -> &[Input] {
        &self.nodes[id.0].inputs
    }

    /// Iterates over node ids in topological order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Declared external input names, in declaration order.
    pub fn ext_names(&self) -> &[String] {
        &self.ext_names
    }

    /// Named outputs in name order.
    pub fn outputs(&self) -> impl Iterator<Item = (&str, NodeId)> {
        self.outputs.iter().map(|(n, id)| (n.as_str(), *id))
    }

    /// The node producing a named output.
    pub fn output(&self, name: &str) -> Option<NodeId> {
        self.outputs.get(name).copied()
    }

    /// Distinct parent nodes of `id` (operator nodes feeding it).
    pub fn parents(&self, id: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.nodes[id.0]
            .inputs
            .iter()
            .filter_map(|i| match i {
                Input::Node(p) => Some(*p),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Distinct child nodes of `id` (operator nodes consuming its result).
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if n.inputs.contains(&Input::Node(id)) {
                out.push(NodeId(i));
            }
        }
        out
    }

    /// True if any output names node `id`.
    pub fn is_output_node(&self, id: NodeId) -> bool {
        self.outputs.values().any(|&o| o == id)
    }

    /// Total operator-to-operator edges (counting multiplicity).
    pub fn edge_count(&self) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| n.inputs.iter())
            .filter(|i| matches!(i, Input::Node(_)))
            .count()
    }
}

impl fmt::Display for Dfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dfg {} ({} nodes)", self.name, self.nodes.len())?;
        for (i, n) in self.nodes.iter().enumerate() {
            write!(f, "  v{i} = {}(", n.op)?;
            for (k, inp) in n.inputs.iter().enumerate() {
                if k > 0 {
                    write!(f, ", ")?;
                }
                match inp {
                    Input::Node(id) => write!(f, "{id}")?,
                    Input::Ext(e) => write!(f, "{}", self.ext_names[*e])?,
                    Input::Const(w) => write!(f, "#{}", w.as_i32())?,
                }
            }
            writeln!(f, ")")?;
        }
        for (name, id) in &self.outputs {
            writeln!(f, "  out {name} = {id}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    fn toy() -> Dfg {
        let mut g = Dfg::new("toy");
        let x = g.ext("x");
        let y = g.ext("y");
        let s = g.match_score(x, y);
        let d = g.ext("diag");
        let sum = g.add(d, s);
        let zero = g.imm(0);
        let h = g.max(sum, zero);
        g.set_output("h", h);
        g
    }

    /// The builder maintains the invariants the typed verifier
    /// (`gendp_verify::Verifier::verify_dfg`) checks for externally
    /// assembled graphs; asserted structurally here to avoid a
    /// dev-dependency cycle.
    pub(super) fn assert_well_formed(g: &Dfg) {
        for id in g.node_ids() {
            assert_eq!(g.inputs(id).len(), g.op(id).arity(), "arity of {id}");
            for p in g.parents(id) {
                assert!(p.0 < id.0, "{id} reads {p}, breaking topological order");
            }
        }
        for (name, NodeId(o)) in g.outputs() {
            assert!(o < g.len(), "output `{name}` points at missing node v{o}");
        }
    }

    #[test]
    fn builds_in_topological_order() {
        let g = toy();
        assert_eq!(g.len(), 3);
        assert_well_formed(&g);
        assert_eq!(g.op(NodeId(0)), ComputeOp::MatchScore);
        assert_eq!(g.op(NodeId(2)), ComputeOp::Max);
    }

    #[test]
    fn ext_is_deduplicated() {
        let mut g = Dfg::new("t");
        let a = g.ext("x");
        let b = g.ext("x");
        assert_eq!(a, b);
        assert_eq!(g.ext_names(), ["x"]);
    }

    #[test]
    fn parents_and_children() {
        let g = toy();
        assert_eq!(g.parents(NodeId(1)), vec![NodeId(0)]);
        assert_eq!(g.children(NodeId(0)), vec![NodeId(1)]);
        assert_eq!(g.children(NodeId(1)), vec![NodeId(2)]);
        assert!(g.children(NodeId(2)).is_empty());
        assert!(g.parents(NodeId(0)).is_empty());
    }

    #[test]
    fn outputs() {
        let g = toy();
        assert_eq!(g.output("h"), Some(NodeId(2)));
        assert_eq!(g.output("nope"), None);
        assert!(g.is_output_node(NodeId(2)));
        assert!(!g.is_output_node(NodeId(0)));
        assert_eq!(g.outputs().count(), 1);
    }

    #[test]
    fn edge_count_counts_multiplicity() {
        let mut g = Dfg::new("t");
        let x = g.ext("x");
        let a = g.add(x, x);
        let b = g.add(a, a); // two edges from a to b
        g.set_output("o", b);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "takes 2 operands")]
    fn wrong_arity_panics() {
        let mut g = Dfg::new("t");
        let x = g.ext("x");
        g.node(ComputeOp::Add, &[x]);
    }

    #[test]
    #[should_panic(expected = "not a DFG operator")]
    fn nop_node_panics() {
        let mut g = Dfg::new("t");
        g.node(ComputeOp::Nop, &[]);
    }

    #[test]
    #[should_panic(expected = "must be a node result")]
    fn const_output_panics() {
        let mut g = Dfg::new("t");
        let c = g.imm(1);
        g.set_output("o", c);
    }

    #[test]
    fn display_lists_everything() {
        let text = toy().to_string();
        assert!(text.contains("mscore"));
        assert!(text.contains("out h"));
        assert!(text.contains("diag"));
    }
}

#[cfg(test)]
mod more_tests {
    use super::tests::assert_well_formed;
    use super::*;
    use gendp_isa::{Luts, Mode};

    #[test]
    fn node_ids_are_topologically_ordered() {
        let mut g = Dfg::new("topo");
        let a = g.ext("a");
        let x = g.add(a, a);
        let y = g.max(x, a);
        let z = g.min(y, x);
        g.set_output("z", z);
        for id in g.node_ids() {
            for p in g.parents(id) {
                assert!(p < id);
            }
        }
    }

    #[test]
    fn f32_immediates_survive_evaluation() {
        let mut g = Dfg::new("fimm");
        let a = g.ext("a");
        let half = g.imm_f32(0.5);
        let p = g.mul(a, half);
        g.set_output("p", p);
        let out = g
            .eval(
                &[("a", gendp_isa::Word::from_f32(8.0))],
                Mode::Float32,
                &Luts::default(),
            )
            .unwrap();
        assert_eq!(out["p"].as_f32(), 4.0);
    }

    #[test]
    fn builder_graphs_stay_well_formed() {
        let mut g = Dfg::new("ok");
        let a = g.ext("a");
        let n = g.add(a, a);
        g.set_output("o", n);
        assert_well_formed(&g);
    }
}
