use std::fmt::Write as _;

use crate::graph::{Dfg, Input};

/// Renders the graph in Graphviz DOT format (for documentation and
/// debugging of DPMap partitions).
///
/// External inputs are boxes, operator nodes are ellipses, and named
/// outputs are double circles.
///
/// ```
/// use gendp_dfg::{to_dot, Dfg};
///
/// let mut g = Dfg::new("toy");
/// let x = g.ext("x");
/// let y = g.ext("y");
/// let s = g.add(x, y);
/// g.set_output("s", s);
/// let dot = to_dot(&g);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("add"));
/// ```
pub fn to_dot(g: &Dfg) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", g.name());
    let _ = writeln!(s, "  rankdir=TB;");
    for (i, name) in g.ext_names().iter().enumerate() {
        let _ = writeln!(s, "  e{i} [shape=box,label=\"{name}\"];");
    }
    for id in g.node_ids() {
        let shape = if g.is_output_node(id) {
            "doublecircle"
        } else {
            "ellipse"
        };
        let _ = writeln!(s, "  v{} [shape={shape},label=\"{}\"];", id.0, g.op(id));
    }
    for id in g.node_ids() {
        for inp in g.inputs(id) {
            match inp {
                Input::Node(p) => {
                    let _ = writeln!(s, "  v{} -> v{};", p.0, id.0);
                }
                Input::Ext(e) => {
                    let _ = writeln!(s, "  e{e} -> v{};", id.0);
                }
                Input::Const(w) => {
                    let _ = writeln!(
                        s,
                        "  c{}_{} [shape=plaintext,label=\"{}\"]; c{}_{} -> v{};",
                        id.0,
                        w.0,
                        w.as_i32(),
                        id.0,
                        w.0,
                        id.0
                    );
                }
            }
        }
    }
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_elements() {
        let mut g = Dfg::new("t");
        let x = g.ext("x");
        let one = g.imm(1);
        let a = g.add(x, one);
        let b = g.max(a, x);
        g.set_output("o", b);
        let dot = to_dot(&g);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("shape=box"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("v0 -> v1"));
        assert!(dot.ends_with("}\n"));
    }
}
