//! # gendp-dfg
//!
//! Data-flow graph (DFG) representation of dynamic-programming objective
//! functions for the GenDP framework (paper §5: "The DP objective function
//! is represented as a data-flow graph").
//!
//! A [`Dfg`] is a directed acyclic graph whose nodes are compute operators
//! ([`gendp_isa::ComputeOp`]) and whose operands are either results of other
//! nodes, named *external inputs* (values the control thread places in the
//! register file: neighbor cell results, sequence characters, constants kept
//! in registers), or immediate constants.
//!
//! The graph is built through a fluent API and is acyclic by construction;
//! nodes are stored in topological (construction) order.
//!
//! ```
//! use gendp_dfg::Dfg;
//! use gendp_isa::{Luts, Mode};
//!
//! // score = max(diag + match(x, y), 0)
//! let mut g = Dfg::new("toy");
//! let x = g.ext("x");
//! let y = g.ext("y");
//! let diag = g.ext("diag");
//! let s = g.match_score(x, y);
//! let sum = g.add(diag, s);
//! let zero = g.imm(0);
//! let h = g.max(sum, zero);
//! g.set_output("h", h);
//!
//! let out = g
//!     .eval_i32(&[("x", 1), ("y", 1), ("diag", 5)], Mode::Int32, &Luts::default())
//!     .unwrap();
//! assert_eq!(out["h"], 6);
//! ```

mod dot;
mod eval;
mod graph;

pub use dot::to_dot;
pub use eval::EvalError;
pub use graph::{Dfg, Input, NodeId};
