use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use gendp_isa::{apply, Luts, Mode, Word};

use crate::graph::{Dfg, Input};

/// Error returned by the DFG evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An external input required by the graph was not supplied.
    MissingInput(String),
    /// A supplied input does not correspond to any declared external.
    UnknownInput(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingInput(n) => write!(f, "missing external input `{n}`"),
            EvalError::UnknownInput(n) => write!(f, "unknown external input `{n}`"),
        }
    }
}

impl Error for EvalError {}

impl Dfg {
    /// Evaluates the graph with the given external input words, returning
    /// every named output.
    ///
    /// This is the *reference semantics* of the objective function; the
    /// DPAx simulator must produce identical results for the compute
    /// program DPMap generates from the same graph.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if an input is missing or unknown.
    pub fn eval(
        &self,
        inputs: &[(&str, Word)],
        mode: Mode,
        luts: &Luts,
    ) -> Result<BTreeMap<String, Word>, EvalError> {
        let mut ext_vals: Vec<Option<Word>> = vec![None; self.ext_names().len()];
        for (name, w) in inputs {
            let i = self
                .ext_names()
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| EvalError::UnknownInput(name.to_string()))?;
            ext_vals[i] = Some(*w);
        }
        for (i, v) in ext_vals.iter().enumerate() {
            if v.is_none() {
                return Err(EvalError::MissingInput(self.ext_names()[i].clone()));
            }
        }

        let mut vals: Vec<Word> = Vec::with_capacity(self.len());
        for id in self.node_ids() {
            let ins: Vec<Word> = self
                .inputs(id)
                .iter()
                .map(|inp| match inp {
                    Input::Node(p) => vals[p.0],
                    Input::Ext(e) => ext_vals[*e].expect("checked above"),
                    Input::Const(w) => *w,
                })
                .collect();
            vals.push(apply(self.op(id), mode, &ins, luts));
        }

        Ok(self
            .outputs()
            .map(|(name, id)| (name.to_string(), vals[id.0]))
            .collect())
    }

    /// Convenience wrapper over [`eval`](Self::eval) for integer inputs and
    /// outputs.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if an input is missing or unknown.
    pub fn eval_i32(
        &self,
        inputs: &[(&str, i32)],
        mode: Mode,
        luts: &Luts,
    ) -> Result<BTreeMap<String, i32>, EvalError> {
        let words: Vec<(&str, Word)> = inputs
            .iter()
            .map(|(n, v)| (*n, Word::from_i32(*v)))
            .collect();
        Ok(self
            .eval(&words, mode, luts)?
            .into_iter()
            .map(|(n, w)| (n, w.as_i32()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendp_isa::ComputeOp;

    fn affine_cell() -> Dfg {
        // A miniature affine-gap cell:
        //   e = max(h_up - gapo, e_up - gape)
        //   f = max(h_left - gapo, f_left - gape)
        //   h = max(max(h_diag + s(x,y), 0), max(e, f))
        let mut g = Dfg::new("affine");
        let x = g.ext("x");
        let y = g.ext("y");
        let h_diag = g.ext("h_diag");
        let h_up = g.ext("h_up");
        let e_up = g.ext("e_up");
        let h_left = g.ext("h_left");
        let f_left = g.ext("f_left");
        let gapo = g.imm(4);
        let gape = g.imm(1);

        let s = g.match_score(x, y);
        let diag = g.add(h_diag, s);
        let a = g.sub(h_up, gapo);
        let b = g.sub(e_up, gape);
        let e = g.max(a, b);
        let c = g.sub(h_left, gapo);
        let d = g.sub(f_left, gape);
        let f = g.max(c, d);
        let zero = g.imm(0);
        let m0 = g.max(diag, zero);
        let ef = g.max(e, f);
        let h = g.max(m0, ef);
        g.set_output("e", e);
        g.set_output("f", f);
        g.set_output("h", h);
        g
    }

    #[test]
    fn evaluates_affine_cell() {
        let g = affine_cell();
        let luts = Luts::with_scores(2, -2);
        let out = g
            .eval_i32(
                &[
                    ("x", 1),
                    ("y", 1),
                    ("h_diag", 10),
                    ("h_up", 9),
                    ("e_up", 3),
                    ("h_left", 4),
                    ("f_left", 8),
                ],
                Mode::Int32,
                &luts,
            )
            .unwrap();
        assert_eq!(out["e"], 5); // max(9-4, 3-1)
        assert_eq!(out["f"], 7); // max(4-4, 8-1)
        assert_eq!(out["h"], 12); // max(10+2, 0, 5, 7)
    }

    #[test]
    fn missing_input_is_reported() {
        let g = affine_cell();
        let err = g
            .eval_i32(&[("x", 1)], Mode::Int32, &Luts::default())
            .unwrap_err();
        assert!(matches!(err, EvalError::MissingInput(_)));
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn unknown_input_is_reported() {
        let mut g = Dfg::new("t");
        let x = g.ext("x");
        let x2 = g.node(ComputeOp::Copy, &[x]);
        g.set_output("o", x2);
        let err = g
            .eval_i32(&[("x", 1), ("zap", 2)], Mode::Int32, &Luts::default())
            .unwrap_err();
        assert_eq!(err, EvalError::UnknownInput("zap".into()));
    }

    #[test]
    fn float_mode_evaluation() {
        let mut g = Dfg::new("fp");
        let a = g.ext("a");
        let b = g.ext("b");
        let p = g.mul(a, b);
        g.set_output("p", p);
        let out = g
            .eval(
                &[("a", Word::from_f32(1.5)), ("b", Word::from_f32(2.0))],
                Mode::Float32,
                &Luts::default(),
            )
            .unwrap();
        assert_eq!(out["p"].as_f32(), 3.0);
    }
}
