//! # GenDP
//!
//! A from-scratch Rust reproduction of **GenDP: A Framework of Dynamic
//! Programming Acceleration for Genome Sequencing Analysis** (Gu et al.,
//! ISCA 2023): a programmable dynamic-programming accelerator (DPAx), the
//! DPMap compiler that maps DP objective functions onto it, cycle-level
//! simulation, the genomics DP kernels it is evaluated on, and the models
//! and baselines needed to regenerate every table and figure of the
//! paper's evaluation.
//!
//! ## Layers
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`isa`] | `gendp-isa` | control + VLIW compute instruction sets, ALU/LUT semantics |
//! | [`dfg`] | `gendp-dfg` | data-flow graphs of objective functions |
//! | [`dpmap`] | `gendp-dpmap` | the DPMap partitioning algorithm and code generator |
//! | [`dpax`] | `gendp-dpax` | the cycle-level DPAx simulator |
//! | [`kernels`] | `gendp-kernels` | reference software kernels (BSW, PairHMM, POA, Chain, DTW, Bellman-Ford, LCS) and their DFGs |
//! | [`verify`] | `gendp-verify` | static verifier: typed diagnostics over programs and DFGs |
//! | [`seq`] | `gendp-seq` | synthetic genomics workload generators |
//! | [`model`] | `gendp-model` | area/power/scaling models and the paper's recorded baselines |
//! | [`core`] | `gendp-core` | the assembled framework: per-pattern control codegen and the end-to-end pipeline |
//! | [`runtime`] | `gendp-runtime` | device-level batch execution: multi-array dispatch, worker threads, utilization reports |
//! | [`serve`] | `gendp-serve` | multi-tenant alignment service: QoS scheduling, admission control, device shards, framed wire protocol |
//!
//! ## Quick start
//!
//! Align a query to a target on the simulated accelerator and check the
//! score against the software kernel:
//!
//! ```
//! use gendp::core::{bsw_score, GendpPipeline};
//! use gendp::kernels::{bsw_i32, AlignMode, Scoring};
//! use gendp::seq::DnaSeq;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let query: DnaSeq = "ACGTACGTAC".parse()?;
//! let target: DnaSeq = "ACGTTCGTAC".parse()?;
//! let scoring = Scoring::bwa_mem();
//!
//! let accel = GendpPipeline::bsw(&scoring);
//! let rows: Vec<i32> = target.codes().iter().map(|&c| c as i32).collect();
//! let cols: Vec<i32> = query.codes().iter().map(|&c| c as i32).collect();
//! let out = accel.run(&rows, &cols, 4)?;
//!
//! let reference = bsw_i32(&query, &target, &scoring, 1000, AlignMode::Local);
//! assert_eq!(bsw_score(&out), reference.score);
//! # Ok(())
//! # }
//! ```

pub use gendp_core as core;
pub use gendp_core::{run_batch, AccelConfig, Accelerator, PreparedTask, TaskOutput};
pub use gendp_dfg as dfg;
pub use gendp_dpax as dpax;
pub use gendp_dpmap as dpmap;
pub use gendp_isa as isa;
pub use gendp_kernels as kernels;
pub use gendp_model as model;
pub use gendp_runtime as runtime;
pub use gendp_seq as seq;
pub use gendp_serve as serve;
pub use gendp_verify as verify;
