//! Criterion benchmarks for the reference software kernels — the
//! single-thread CPU-side throughput used by the comparison tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gendp::kernels::bellman_ford::{bellman_ford, random_roadmap};
use gendp::kernels::chain::{chain_original, chain_reordered, ChainParams};
use gendp::kernels::dtw::dtw;
use gendp::kernels::lcs::lcs;
use gendp::kernels::pairhmm::{forward_f64, forward_log_fixed, PairHmmParams};
use gendp::kernels::poa::Poa;
use gendp::kernels::{bsw_i32, bsw_i8, AlignMode, Scoring};
use gendp::seq::{extract_anchors, DnaSeq, Genome, KmerIndex, MutationProfile};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

fn bench_bsw(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let g = Genome::random(1_000, &mut rng);
    let t = g.window(0, 60);
    let q = MutationProfile::illumina().apply(&g.window(0, 100), &mut rng);
    let scoring = Scoring::bwa_mem();
    let mut group = c.benchmark_group("bsw");
    group.throughput(Throughput::Elements((t.len() * q.len()) as u64));
    group.bench_function("i32_100x60", |b| {
        b.iter(|| {
            bsw_i32(
                black_box(&q),
                black_box(&t),
                &scoring,
                1000,
                AlignMode::Local,
            )
        })
    });
    group.bench_function("i8_100x60", |b| {
        b.iter(|| bsw_i8(black_box(&q), black_box(&t), &scoring, 1000))
    });
    group.finish();
}

fn bench_pairhmm(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let g = Genome::random(1_000, &mut rng);
    let hap = g.window(0, 60);
    let read = MutationProfile::illumina().apply(&g.window(0, 100), &mut rng);
    let read = read.window(0, read.len().min(100));
    let quals = vec![30u8; read.len()];
    let params = PairHmmParams::gatk();
    let mut group = c.benchmark_group("pairhmm");
    group.throughput(Throughput::Elements((read.len() * hap.len()) as u64));
    group.bench_function("f64_100x60", |b| {
        b.iter(|| forward_f64(black_box(&read), &quals, black_box(&hap), &params))
    });
    group.bench_function("log_fixed_100x60", |b| {
        b.iter(|| forward_log_fixed(black_box(&read), &quals, black_box(&hap), &params, 1024))
    });
    group.finish();
}

fn bench_poa(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let truth = DnaSeq::random(200, &mut rng);
    let scoring = Scoring::racon();
    let mut poa = Poa::new();
    poa.add_sequence(&truth, &scoring);
    for _ in 0..6 {
        poa.add_sequence(
            &MutationProfile::nanopore().apply(&truth, &mut rng),
            &scoring,
        );
    }
    let probe = MutationProfile::nanopore().apply(&truth, &mut rng);
    let mut group = c.benchmark_group("poa");
    group.throughput(Throughput::Elements(
        (poa.node_count() * probe.len()) as u64,
    ));
    group.bench_function("align_200bp_graph", |b| {
        b.iter(|| poa.align(black_box(&probe), &scoring))
    });
    group.finish();
}

fn bench_chain(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(4);
    let g = Genome::random(50_000, &mut rng);
    let read = MutationProfile::pacbio().apply(&g.window(10_000, 3_000), &mut rng);
    let idx = KmerIndex::build(g.seq(), 15);
    let anchors = extract_anchors(&idx, &read);
    let mut group = c.benchmark_group("chain");
    for n in [25usize, 64] {
        let params = ChainParams {
            n_prev: n,
            ..ChainParams::minimap2(15.0)
        };
        group.throughput(Throughput::Elements((anchors.len() * n) as u64));
        group.bench_with_input(BenchmarkId::new("original", n), &params, |b, p| {
            b.iter(|| chain_original(black_box(&anchors), p))
        });
        group.bench_with_input(BenchmarkId::new("reordered", n), &params, |b, p| {
            b.iter(|| chain_reordered(black_box(&anchors), p))
        });
    }
    group.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(5);
    let xs: Vec<i32> = (0..500)
        .map(|_| rand::Rng::gen_range(&mut rng, 0..1000))
        .collect();
    let ys: Vec<i32> = (0..500)
        .map(|_| rand::Rng::gen_range(&mut rng, 0..1000))
        .collect();
    let mut group = c.benchmark_group("extensions");
    group.throughput(Throughput::Elements((xs.len() * ys.len()) as u64));
    group.bench_function("dtw_500x500", |b| {
        b.iter(|| dtw(black_box(&xs), black_box(&ys)))
    });
    let roadmap = random_roadmap(1_000, 4, 64, &mut rng);
    group.bench_function("bellman_ford_1k", |b| {
        b.iter(|| bellman_ford(black_box(&roadmap), 0))
    });
    let a: Vec<i32> = (0..300)
        .map(|_| rand::Rng::gen_range(&mut rng, 0..4))
        .collect();
    let bb: Vec<i32> = (0..300)
        .map(|_| rand::Rng::gen_range(&mut rng, 0..4))
        .collect();
    group.bench_function("lcs_300x300", |b| {
        b.iter(|| lcs(black_box(&a), black_box(&bb)))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bsw, bench_pairhmm, bench_poa, bench_chain, bench_extensions
);
criterion_main!(benches);
