//! Ablation benchmarks for the design choices DESIGN.md §6 calls out:
//! reduction-tree depth, chain lookahead, SIMD lanes, band width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gendp::dpmap::analyze_tree_depth;
use gendp::kernels::chain::{chain_original, ChainParams};
use gendp::kernels::dfgs;
use gendp::kernels::{bsw_i32, bsw_i8, AlignMode, Scoring};
use gendp::seq::{extract_anchors, Genome, KmerIndex, MutationProfile};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

/// Table 2 ablation: mapping cost of 1/2/3-level reduction trees.
fn ablation_tree(c: &mut Criterion) {
    let dfg = dfgs::bsw_dfg(&Scoring::bwa_mem());
    let mut group = c.benchmark_group("ablation_tree");
    for levels in 1u8..=3 {
        group.bench_with_input(BenchmarkId::from_parameter(levels), &levels, |b, &l| {
            b.iter(|| analyze_tree_depth(black_box(&dfg), l))
        });
    }
    group.finish();
}

/// Chain lookahead N trade-off: work grows with N (the 3.72x penalty of
/// §6 is this curve).
fn ablation_chain_n(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(21);
    let g = Genome::random(50_000, &mut rng);
    let read = MutationProfile::pacbio().apply(&g.window(10_000, 2_000), &mut rng);
    let idx = KmerIndex::build(g.seq(), 15);
    let anchors = extract_anchors(&idx, &read);
    let mut group = c.benchmark_group("ablation_chain_n");
    for n in [16usize, 25, 64] {
        let params = ChainParams {
            n_prev: n,
            ..ChainParams::minimap2(15.0)
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &params, |b, p| {
            b.iter(|| chain_original(black_box(&anchors), p))
        });
    }
    group.finish();
}

/// 8-bit vs 32-bit BSW arithmetic (the SIMD lane precision choice, §4.2).
fn ablation_precision(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(22);
    let g = Genome::random(1_000, &mut rng);
    let t = g.window(0, 60);
    let q = MutationProfile::illumina().apply(&g.window(0, 100), &mut rng);
    let scoring = Scoring::bwa_mem();
    let mut group = c.benchmark_group("ablation_precision");
    group.bench_function("bsw_i32", |b| {
        b.iter(|| {
            bsw_i32(
                black_box(&q),
                black_box(&t),
                &scoring,
                1000,
                AlignMode::Local,
            )
        })
    });
    group.bench_function("bsw_i8", |b| {
        b.iter(|| bsw_i8(black_box(&q), black_box(&t), &scoring, 1000))
    });
    group.finish();
}

/// Band width: the static active-region trade-off (§7.6.2).
fn ablation_band(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(23);
    let g = Genome::random(2_000, &mut rng);
    let t = g.window(0, 400);
    let q = MutationProfile::pacbio().apply(&t, &mut rng);
    let scoring = Scoring::bwa_mem();
    let mut group = c.benchmark_group("ablation_band");
    for band in [8i32, 32, 128, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(band), &band, |b, &w| {
            b.iter(|| bsw_i32(black_box(&q), black_box(&t), &scoring, w, AlignMode::Local))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = ablation_tree, ablation_chain_n, ablation_precision, ablation_band
);
criterion_main!(benches);
