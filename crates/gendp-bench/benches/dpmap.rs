//! Criterion benchmarks for the DPMap compiler: mapping each kernel's
//! objective function and the tree-depth analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gendp::dpmap::{analyze_tree_depth, map_dfg};
use gendp::kernels::chain::ChainParams;
use gendp::kernels::dfgs;
use gendp::kernels::pairhmm::PairHmmParams;
use gendp::kernels::Scoring;
use std::hint::black_box;

fn bench_map(c: &mut Criterion) {
    let cases = [
        ("bsw", dfgs::bsw_dfg(&Scoring::bwa_mem())),
        (
            "pairhmm",
            dfgs::pairhmm_log_dfg(&PairHmmParams::gatk(), 1024),
        ),
        ("poa", dfgs::poa_dfg(&Scoring::racon())),
        ("chain", dfgs::chain_dfg(&ChainParams::minimap2(15.0))),
    ];
    let mut group = c.benchmark_group("dpmap");
    for (name, dfg) in &cases {
        group.bench_with_input(BenchmarkId::new("map_dfg", name), dfg, |b, d| {
            b.iter(|| map_dfg(black_box(d)))
        });
    }
    for (name, dfg) in &cases {
        group.bench_with_input(BenchmarkId::new("tree_depth_3", name), dfg, |b, d| {
            b.iter(|| analyze_tree_depth(black_box(d), 3))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_map
);
criterion_main!(benches);
