//! Criterion benchmarks for the DPAx cycle-level simulator itself: how
//! fast the host simulates one accelerator task per kernel configuration.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gendp::core::{pack_lanes, GendpPipeline};
use gendp::kernels::chain::ChainParams;
use gendp::kernels::pairhmm::PairHmmParams;
use gendp::kernels::poa::Poa;
use gendp::kernels::Scoring;
use gendp::seq::{extract_anchors, DnaSeq, Genome, KmerIndex, MutationProfile};
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

fn codes(s: &DnaSeq) -> Vec<i32> {
    s.codes().iter().map(|&c| c as i32).collect()
}

fn bench_sim(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(9);
    let g = Genome::random(20_000, &mut rng);
    let mut group = c.benchmark_group("dpax_sim");
    group.sample_size(10);

    // BSW SIMD: one 60x40 four-lane batch.
    let scoring = Scoring::bwa_mem();
    let bsw = GendpPipeline::bsw_simd(&scoring);
    let qs: Vec<Vec<u8>> = (0..4)
        .map(|_| DnaSeq::random(40, &mut rng).codes())
        .collect();
    let ts: Vec<Vec<u8>> = (0..4)
        .map(|_| DnaSeq::random(60, &mut rng).codes())
        .collect();
    let cols = pack_lanes([&qs[0], &qs[1], &qs[2], &qs[3]]);
    let rows = pack_lanes([&ts[0], &ts[1], &ts[2], &ts[3]]);
    group.throughput(Throughput::Elements((40 * 60 * 4) as u64));
    group.bench_function("bsw_simd_60x40", |b| {
        b.iter(|| bsw.run(black_box(&rows), black_box(&cols), 4).unwrap())
    });

    // PairHMM: one 40x30 pair.
    let hap = g.window(0, 30);
    let read = DnaSeq::random(40, &mut rng);
    let phmm = GendpPipeline::pairhmm(&PairHmmParams::gatk(), 30, 1024, hap.len());
    let (r_codes, h_codes) = (codes(&read), codes(&hap));
    group.throughput(Throughput::Elements((read.len() * hap.len()) as u64));
    group.bench_function("pairhmm_40x30", |b| {
        b.iter(|| {
            phmm.run(black_box(&r_codes), black_box(&h_codes), 4)
                .unwrap()
        })
    });

    // POA: a small noisy graph.
    let truth = DnaSeq::random(50, &mut rng);
    let mut poa = Poa::new();
    poa.add_sequence(&truth, &Scoring::racon());
    for _ in 0..4 {
        poa.add_sequence(
            &MutationProfile::nanopore().apply(&truth, &mut rng),
            &Scoring::racon(),
        );
    }
    let probe = MutationProfile::nanopore().apply(&truth, &mut rng);
    let poa_acc = GendpPipeline::poa(Scoring::racon());
    group.throughput(Throughput::Elements(
        (poa.node_count() * probe.len()) as u64,
    ));
    group.bench_function("poa_50bp_graph", |b| {
        b.iter(|| poa_acc.run(black_box(&poa), black_box(&probe), 4).unwrap())
    });

    // Chain: 300 anchors on a 16-PE chain.
    let read = MutationProfile::pacbio().apply(&g.window(5_000, 600), &mut rng);
    let idx = KmerIndex::build(g.seq(), 15);
    let anchors = extract_anchors(&idx, &read);
    let n_pes = 16;
    let chain = GendpPipeline::chain(ChainParams {
        n_prev: n_pes,
        ..ChainParams::minimap2(15.0)
    });
    group.throughput(Throughput::Elements((anchors.len() * n_pes) as u64));
    group.bench_function("chain_16pe", |b| {
        b.iter(|| chain.run(black_box(&anchors), n_pes).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
