//! Criterion benchmarks for the `gendp-runtime` batch executor: host
//! tasks/second as the worker-thread count grows, per dispatch policy.
//! Simulated results stay identical across all of these configurations;
//! only wall-clock throughput changes.
//!
//! Worker scaling is bounded by the physical cores available to the
//! process: on a single-core host every worker count collapses to
//! roughly the same throughput, while on an N-core host the 1 -> 4
//! worker ratio should exceed 1.5x for this BSW batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gendp::kernels::Scoring;
use gendp::runtime::{Device, DeviceConfig, DispatchPolicy, Task};
use gendp::seq::DnaSeq;
use rand::{rngs::SmallRng, SeedableRng};
use std::hint::black_box;

/// A fixed BSW batch: the paper's dominant short-read workload.
fn bsw_batch(n: usize) -> Vec<Task> {
    let mut rng = SmallRng::seed_from_u64(71);
    (0..n)
        .map(|i| {
            Task::bsw_local(
                DnaSeq::random(16 + i % 8, &mut rng),
                DnaSeq::random(20 + i % 8, &mut rng),
                Scoring::bwa_mem(),
            )
        })
        .collect()
}

fn bench_worker_scaling(c: &mut Criterion) {
    let batch = 48;
    let mut group = c.benchmark_group("runtime_workers");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("bsw_batch48", workers),
            &workers,
            |b, &workers| {
                let mut device = Device::new(DeviceConfig {
                    int_arrays: 8,
                    float_arrays: 0,
                    workers,
                    policy: DispatchPolicy::RoundRobin,
                    ..DeviceConfig::default()
                });
                b.iter(|| device.run_batch(black_box(bsw_batch(batch))).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let batch = 48;
    let mut group = c.benchmark_group("runtime_policies");
    group.sample_size(10);
    group.throughput(Throughput::Elements(batch as u64));
    for policy in DispatchPolicy::ALL {
        group.bench_with_input(
            BenchmarkId::new("bsw_batch48_4workers", policy.name()),
            &policy,
            |b, &policy| {
                let mut device = Device::new(DeviceConfig {
                    int_arrays: 8,
                    float_arrays: 0,
                    workers: 4,
                    policy,
                    ..DeviceConfig::default()
                });
                b.iter(|| device.run_batch(black_box(bsw_batch(batch))).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_worker_scaling, bench_policies);
criterion_main!(benches);
