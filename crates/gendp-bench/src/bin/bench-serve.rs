//! Sustained-load benchmark for the `gendp-serve` multi-tenant
//! alignment service.
//!
//! Three tenants with distinct QoS contracts drive an open-loop arrival
//! process (exponential inter-arrival times; arrivals never wait for
//! completions, so queueing delay is visible in the latencies) against
//! a sharded server under 5% deterministic fault injection:
//!
//! * `interactive` — latency-sensitive mapping traffic
//!   ([`Priority::Interactive`], weight 2): local BSW, banded DTW,
//!   anchor chaining.
//! * `pipeline` — the default class: global/semi-global BSW, SIMD BSW,
//!   fixed-point PairHMM.
//! * `batch` — background polishing ([`Priority::Batch`]): POA,
//!   Bellman-Ford, FP PairHMM, full DTW.
//!
//! Together the mix covers all evaluated kernels and both array
//! classes. The report (`BENCH_serve.json`) carries per-tenant and
//! total reads/sec, p50/p99/p999 latency, rejection/failure/loss
//! counts, and the recovery counters aggregated across shards.
//!
//! Flags:
//! * `--quick` — smaller task count (CI smoke).
//! * `--out <path>` — where to write the JSON (default
//!   `BENCH_serve.json`).
//! * `--baseline <path>` — compare against a committed baseline: the
//!   run must lose zero tasks, terminally fail zero tasks, and sustain
//!   the baseline's mode-matched `reads_per_sec` floor.
//! * `--kill-shard-at <n>` — chaos mode: abruptly kill shard 0 once
//!   `n` tasks have been submitted, and report how long the pool takes
//!   to heal (time from the kill until a respawned shard has served
//!   work) as `recovery_ms` in the JSON. Informational — no floor
//!   check — but the zero-loss invariant still applies.
//!
//! The binary always hard-fails (exit 1) on lost tasks, baseline or
//! not — delivery is a correctness property, not a performance one.

use std::thread;
use std::time::Instant;

use gendp::kernels::bellman_ford::Graph;
use gendp::kernels::chain::ChainParams;
use gendp::kernels::pairhmm::PairHmmParams;
use gendp::kernels::poa::Poa;
use gendp::kernels::Scoring;
use gendp::runtime::{
    silence_injected_panics, DeviceConfig, DispatchPolicy, FaultConfig, RetryPolicy, Task,
};
use gendp::seq::{Anchor, DnaSeq};
use gendp::serve::{Priority, ServeConfig, Server, ServerStats, TenantConfig, Ticket};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Injected fault rate: 5% of execution attempts, split uniformly over
/// deadlock / timeout / bad-access / worker-panic.
const FAULT_PPM: u32 = 50_000;

/// Per-tenant open-loop arrival rate, requests/sec. Far above one
/// host core's service rate on the cycle-level simulator, so the run
/// measures the service under saturation, not the arrival process.
const ARRIVAL_RATE: f64 = 4000.0;

struct TenantPlan {
    name: &'static str,
    priority: Priority,
    weight: u32,
    /// Builds the i-th task of this tenant's stream.
    make: fn(&mut SmallRng, usize) -> Task,
}

fn seq(rng: &mut SmallRng, len: usize) -> DnaSeq {
    DnaSeq::random(len, rng)
}

/// Latency-sensitive read-mapping mix: local BSW, banded DTW, chaining.
fn interactive_task(rng: &mut SmallRng, i: usize) -> Task {
    match i % 3 {
        0 => Task::bsw_local(seq(rng, 24), seq(rng, 32), Scoring::bwa_mem()),
        1 => {
            let xs: Vec<i32> = (0..20).map(|_| rng.gen_range(0..200)).collect();
            let ys: Vec<i32> = (0..24).map(|_| rng.gen_range(0..200)).collect();
            Task::DtwBanded { xs, ys, width: 8 }
        }
        _ => {
            let mut rpos = 0;
            let anchors: Vec<Anchor> = (0..10)
                .map(|_| {
                    rpos += rng.gen_range(5..40);
                    Anchor {
                        rpos,
                        qpos: rpos - rng.gen_range(0..5),
                        span: 15,
                    }
                })
                .collect();
            Task::Chain {
                anchors,
                params: ChainParams {
                    n_prev: 8,
                    ..ChainParams::minimap2(15.0)
                },
            }
        }
    }
}

/// Default-priority alignment pipeline: global / semi-global BSW, SIMD
/// BSW, fixed-point PairHMM.
fn pipeline_task(rng: &mut SmallRng, i: usize) -> Task {
    match i % 4 {
        0 => Task::bsw_global(seq(rng, 24), seq(rng, 24), Scoring::bwa_mem()),
        1 => Task::Bsw {
            query: seq(rng, 24),
            target: seq(rng, 32),
            scoring: Scoring::bwa_mem(),
            mode: gendp::kernels::AlignMode::SemiGlobal,
        },
        2 => Task::bsw_simd(
            (0..4).map(|_| (seq(rng, 16), seq(rng, 16))).collect(),
            Scoring::bwa_mem(),
        ),
        _ => Task::PairHmm {
            read: seq(rng, 20),
            haplotype: seq(rng, 28),
            qual: 30,
            scale: 1024,
            params: PairHmmParams::gatk(),
        },
    }
}

/// Background polishing mix: POA, Bellman-Ford, FP PairHMM (the FP
/// array), full DTW.
fn batch_task(rng: &mut SmallRng, i: usize) -> Task {
    match i % 4 {
        0 => {
            let truth = seq(rng, 24);
            let mut graph = Poa::new();
            graph.add_sequence(&truth, &Scoring::racon());
            Task::Poa {
                graph,
                probe: seq(rng, 24),
                scoring: Scoring::racon(),
            }
        }
        1 => {
            let n = 14;
            let mut graph = Graph::new(n);
            for v in 0..n - 1 {
                graph.add_edge(v, v + 1, rng.gen_range(1..9));
                let far = rng.gen_range(0..n);
                if far != v {
                    graph.add_edge(v, far, rng.gen_range(1..20));
                }
            }
            Task::BellmanFord {
                graph,
                source: 0,
                rounds: 4,
            }
        }
        2 => Task::PairHmmFloat {
            read: seq(rng, 16),
            haplotype: seq(rng, 24),
            qual: 30,
            params: PairHmmParams::gatk(),
        },
        _ => {
            let xs: Vec<i32> = (0..18).map(|_| rng.gen_range(0..200)).collect();
            let ys: Vec<i32> = (0..18).map(|_| rng.gen_range(0..200)).collect();
            Task::dtw(xs, ys)
        }
    }
}

const PLANS: [TenantPlan; 3] = [
    TenantPlan {
        name: "interactive",
        priority: Priority::Interactive,
        weight: 2,
        make: interactive_task,
    },
    TenantPlan {
        name: "pipeline",
        priority: Priority::Normal,
        weight: 1,
        make: pipeline_task,
    },
    TenantPlan {
        name: "batch",
        priority: Priority::Batch,
        weight: 1,
        make: batch_task,
    },
];

struct RunReport {
    quick: bool,
    wall_seconds: f64,
    stats: ServerStats,
    /// (tenant name, completed, failed, disconnected) tallied from the
    /// tickets themselves — cross-checked against server counters.
    ticket_tallies: Vec<(String, u64, u64, u64)>,
    /// `--kill-shard-at` only: how long after the kill a respawned
    /// shard first served completed work.
    recovery_ms: Option<f64>,
}

/// The chaos side-channel for `--kill-shard-at`: waits for the trigger
/// submission count, kills shard 0, then polls until a respawned shard
/// (spawn id past the initial pool) has completed work.
fn kill_and_time_recovery(server: &Server, kill_at: u64, initial_shards: usize) -> f64 {
    loop {
        if server.stats().totals.submitted >= kill_at {
            break;
        }
        thread::sleep(std::time::Duration::from_millis(1));
    }
    server.kill_shard(0).expect("shard 0 is alive to kill");
    let killed_at = Instant::now();
    let patience = killed_at + std::time::Duration::from_secs(60);
    loop {
        let stats = server.stats();
        if stats
            .shards
            .iter()
            .any(|s| s.shard >= initial_shards && s.completed > 0)
        {
            return killed_at.elapsed().as_secs_f64() * 1e3;
        }
        if Instant::now() > patience {
            eprintln!("chaos: no replacement shard served work within 60s of the kill");
            std::process::exit(1);
        }
        thread::sleep(std::time::Duration::from_millis(1));
    }
}

fn run_load(quick: bool, kill_at: Option<u64>) -> RunReport {
    let tasks_per_tenant = if quick { 800 } else { 2500 };
    let shards = 2;
    let config = ServeConfig {
        shards,
        shard_config: DeviceConfig {
            int_arrays: 16,
            float_arrays: 1,
            workers: 2,
            policy: DispatchPolicy::ShortestQueue,
            retry: RetryPolicy {
                max_attempts: 8,
                ..RetryPolicy::default()
            },
            fault: Some(FaultConfig::uniform(2023, FAULT_PPM)),
            ..DeviceConfig::default()
        },
        batch_max: 64,
        quantum_cells: 2048,
        dispatch_queue: 2,
        ..ServeConfig::default()
    };
    let tenants: Vec<TenantConfig> = PLANS
        .iter()
        .map(|p| {
            TenantConfig::new(p.name)
                .priority(p.priority)
                .weight(p.weight)
                .quotas(1 << 14, 1 << 14)
        })
        .collect();
    let mut server = Server::start(config, tenants).expect("server start");

    let started = Instant::now();
    let (ticket_tallies, recovery_ms) = thread::scope(|scope| {
        let submitters: Vec<_> = PLANS
            .iter()
            .enumerate()
            .map(|(t, plan)| {
                let client = server.client(plan.name).expect("registered tenant");
                let name = plan.name.to_string();
                let make = plan.make;
                scope.spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(7 + t as u64);
                    let mut tickets: Vec<Ticket> = Vec::with_capacity(tasks_per_tenant);
                    let epoch = Instant::now();
                    let mut due = 0.0f64;
                    for i in 0..tasks_per_tenant {
                        // Open loop: exponential inter-arrival, never
                        // waiting for completions; when the process falls
                        // behind schedule it submits immediately.
                        due += -(1.0 - rng.gen::<f64>()).ln() / ARRIVAL_RATE;
                        let ahead = due - epoch.elapsed().as_secs_f64();
                        if ahead > 0.0 {
                            thread::sleep(std::time::Duration::from_secs_f64(ahead));
                        }
                        match client.submit(make(&mut rng, i)) {
                            Ok(ticket) => tickets.push(ticket),
                            Err(e) => panic!("{name}: unexpected rejection: {e}"),
                        }
                    }
                    let (mut completed, mut failed, mut disconnected) = (0u64, 0u64, 0u64);
                    for ticket in tickets {
                        match ticket.wait() {
                            Ok(_) => completed += 1,
                            Err(gendp::serve::ServeError::Disconnected) => disconnected += 1,
                            Err(_) => failed += 1,
                        }
                    }
                    (name, completed, failed, disconnected)
                })
            })
            .collect();
        let chaos = kill_at.map(|at| {
            let server = &server;
            // Clamp to half the stream so the kill always lands while
            // there is traffic left for the replacement to serve.
            let at = at.min((3 * tasks_per_tenant / 2) as u64);
            scope.spawn(move || kill_and_time_recovery(server, at, shards))
        });

        let tallies: Vec<_> = submitters
            .into_iter()
            .map(|h| h.join().expect("submitter thread"))
            .collect();
        let recovery = chaos.map(|h| h.join().expect("chaos thread"));
        (tallies, recovery)
    });
    let wall_seconds = started.elapsed().as_secs_f64();
    server.shutdown();
    let stats = server.stats();
    RunReport {
        quick,
        wall_seconds,
        stats,
        ticket_tallies,
        recovery_ms,
    }
}

fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

fn render_json(r: &RunReport, floor: f64, quick_floor: f64) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"gendp-bench-serve/v1\",\n");
    s.push_str(&format!("  \"quick\": {},\n", r.quick));
    s.push_str(&format!("  \"wall_seconds\": {:.3},\n", r.wall_seconds));
    s.push_str(&format!(
        "  \"total_reads_per_sec\": {:.1},\n",
        r.stats.totals.completed as f64 / r.wall_seconds
    ));
    s.push_str("  \"tenants\": [\n");
    let n = r.stats.tenants.len();
    for (i, t) in r.stats.tenants.iter().enumerate() {
        let c = &t.counters;
        s.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"priority\": \"{}\",\n      \
             \"weight\": {},\n      \"submitted\": {},\n      \"accepted\": {},\n      \
             \"rejected\": {},\n      \"completed\": {},\n      \"failed\": {},\n      \
             \"lost\": {},\n      \"cells\": {},\n      \"reads_per_sec\": {:.1},\n      \
             \"p50_ms\": {:.3},\n      \"p99_ms\": {:.3},\n      \"p999_ms\": {:.3}\n    }}{}\n",
            t.name,
            t.priority,
            t.weight,
            c.submitted,
            c.accepted,
            c.rejected(),
            c.completed,
            c.failed,
            c.outstanding(),
            c.cells,
            c.completed as f64 / r.wall_seconds,
            ms(t.latency.quantile(0.50)),
            ms(t.latency.quantile(0.99)),
            ms(t.latency.quantile(0.999)),
            if i + 1 < n { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    let codes: Vec<String> = r
        .stats
        .totals
        .by_code()
        .iter()
        .map(|(code, count)| format!("\"{code}\": {count}"))
        .collect();
    s.push_str(&format!(
        "  \"rejections_by_code\": {{ {} }},\n",
        codes.join(", ")
    ));
    let life = &r.stats.lifecycle;
    s.push_str(&format!(
        "  \"lifecycle\": {{ \"spawned\": {}, \"respawned\": {}, \"retired\": {}, \
         \"died\": {}, \"requeued_tasks\": {} }},\n",
        life.spawned, life.respawned, life.retired, life.died, life.requeued_tasks,
    ));
    match r.recovery_ms {
        Some(ms) => s.push_str(&format!("  \"recovery_ms\": {ms:.1},\n")),
        None => s.push_str("  \"recovery_ms\": null,\n"),
    }
    let rec = &r.stats.recovery;
    s.push_str(&format!(
        "  \"recovery\": {{ \"faults_injected\": {}, \"retries\": {}, \
         \"redispatches\": {}, \"budget_escalations\": {}, \"panics_contained\": {}, \
         \"quarantined_arrays\": {}, \"tasks_failed\": {} }},\n",
        rec.faults_injected,
        rec.retries,
        rec.redispatches,
        rec.budget_escalations,
        rec.panics_contained,
        rec.quarantined_arrays,
        rec.tasks_failed,
    ));
    s.push_str(&format!(
        "  \"floors\": {{ \"reads_per_sec\": {floor:.1}, \"quick_reads_per_sec\": {quick_floor:.1} }}\n"
    ));
    s.push_str("}\n");
    s
}

/// Extracts a top-level or nested `"key": <number>` by plain string
/// scan — the file is machine-written by this binary.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let at = json.find(&tag)? + tag.len();
    let num: String = json[at..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

fn check_baseline(baseline: &str, r: &RunReport) -> Result<(), String> {
    let mut problems = Vec::new();
    let floor_key = if r.quick {
        "quick_reads_per_sec"
    } else {
        "reads_per_sec"
    };
    match extract_number(baseline, floor_key) {
        None => problems.push(format!("baseline is missing floors.{floor_key}")),
        Some(floor) => {
            let fresh = r.stats.totals.completed as f64 / r.wall_seconds;
            if fresh < floor {
                problems.push(format!(
                    "throughput {fresh:.1} reads/sec below the committed {floor:.1} floor"
                ));
            }
        }
    }
    if r.stats.totals.failed > 0 {
        problems.push(format!(
            "{} tasks terminally failed (retry budget should absorb a 5% fault rate)",
            r.stats.totals.failed
        ));
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let baseline_path = flag_value(&args, "--baseline");
    let kill_at = flag_value(&args, "--kill-shard-at").map(|v| {
        v.parse::<u64>()
            .unwrap_or_else(|e| panic!("--kill-shard-at {v}: {e}"))
    });

    // The 5% plan injects worker panics by design; keep their default
    // stderr traces out of the report.
    silence_injected_panics();

    let report = run_load(quick, kill_at);

    println!(
        "{:<13} {:>9} {:>9} {:>9} {:>6} {:>5} {:>11} {:>9} {:>9} {:>9}",
        "tenant",
        "submitted",
        "accepted",
        "completed",
        "failed",
        "lost",
        "reads/sec",
        "p50 ms",
        "p99 ms",
        "p999 ms"
    );
    for t in &report.stats.tenants {
        let c = &t.counters;
        println!(
            "{:<13} {:>9} {:>9} {:>9} {:>6} {:>5} {:>11.1} {:>9.3} {:>9.3} {:>9.3}",
            t.name,
            c.submitted,
            c.accepted,
            c.completed,
            c.failed,
            c.outstanding(),
            c.completed as f64 / report.wall_seconds,
            ms(t.latency.quantile(0.50)),
            ms(t.latency.quantile(0.99)),
            ms(t.latency.quantile(0.999)),
        );
    }
    let totals = &report.stats.totals;
    let throughput = totals.completed as f64 / report.wall_seconds;
    println!(
        "{:<13} {:>9} {:>9} {:>9} {:>6} {:>5} {:>11.1}  ({:.2}s wall)",
        "TOTAL",
        totals.submitted,
        totals.accepted,
        totals.completed,
        totals.failed,
        totals.outstanding(),
        throughput,
        report.wall_seconds,
    );
    let rec = &report.stats.recovery;
    println!(
        "recovery: {} faults injected, {} retries, {} redispatches, {} panics contained, \
         {} arrays quarantined",
        rec.faults_injected,
        rec.retries,
        rec.redispatches,
        rec.panics_contained,
        rec.quarantined_arrays
    );
    let codes: Vec<String> = totals
        .by_code()
        .iter()
        .map(|(code, count)| format!("{code}={count}"))
        .collect();
    println!("rejections: {}", codes.join(" "));
    if let Some(recovery) = report.recovery_ms {
        let life = &report.stats.lifecycle;
        println!(
            "chaos: shard 0 killed under load; pool healed in {recovery:.1} ms \
             ({} died, {} respawned, {} tasks requeued)",
            life.died, life.respawned, life.requeued_tasks
        );
    }

    // Delivery is a hard invariant: every accepted task resolves, and
    // the ticket tallies must agree with the server's own counters.
    let mut lost = totals.outstanding();
    for (name, completed, failed, disconnected) in &report.ticket_tallies {
        lost += disconnected;
        let server_side = report
            .stats
            .tenants
            .iter()
            .find(|t| &t.name == name)
            .expect("tenant in stats");
        if server_side.counters.completed != *completed || server_side.counters.failed != *failed {
            eprintln!(
                "{name}: ticket tallies ({completed} ok, {failed} failed) disagree with server \
                 counters ({} ok, {} failed)",
                server_side.counters.completed, server_side.counters.failed
            );
            std::process::exit(1);
        }
    }
    if lost > 0 {
        eprintln!("{lost} tasks were lost (admitted but never delivered)");
        std::process::exit(1);
    }

    // Committed floors are ~1/3 of throughput observed on the reference
    // single-core container — loose enough for noisy CI hosts, tight
    // enough to catch the service collapsing.
    let (floor, quick_floor) = match baseline_path
        .as_ref()
        .and_then(|p| std::fs::read_to_string(p).ok())
    {
        // Keep the committed floors stable when checking against a
        // baseline; refresh them only on free runs.
        Some(baseline) => (
            extract_number(&baseline, "reads_per_sec").unwrap_or(throughput / 3.0),
            extract_number(&baseline, "quick_reads_per_sec").unwrap_or(throughput / 3.0),
        ),
        None => {
            let f = throughput / 3.0;
            (f, f)
        }
    };
    let json = render_json(&report, floor, quick_floor);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path}");

    if let Some(path) = baseline_path {
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        if !baseline.contains("\"schema\": \"gendp-bench-serve/v1\"") {
            eprintln!("baseline {path} is not a gendp-bench-serve/v1 report");
            std::process::exit(2);
        }
        match check_baseline(&baseline, &report) {
            Ok(()) => println!("baseline check vs {path}: ok"),
            Err(problems) => {
                eprintln!("baseline check vs {path} FAILED:\n{problems}");
                std::process::exit(1);
            }
        }
    }
}
