//! Prints the paper's table7 reproduction. See DESIGN.md §5.
fn main() {
    println!("{}", gendp_bench::tables::table7());
}
