//! Regenerates every table and figure of the paper's evaluation in one
//! run (pass --quick for reduced workloads). Output is the source of
//! EXPERIMENTS.md.
use gendp_bench::{measure, tables, Scale};

fn main() {
    let scale = Scale::from_args();
    println!("{}", tables::table1());
    println!("{}", tables::table2());
    println!("{}", tables::table6(scale));
    println!("{}", tables::table7());
    println!("{}", tables::table8());
    println!("{}", tables::table9());
    println!("{}", tables::table10());
    let ms = measure::measure_all(scale);
    println!("{}", tables::table11(&ms));
    println!("{}", tables::table12(&ms));
    println!("{}", tables::table13(&ms));
    println!("{}", tables::table14());
    println!("{}", tables::table15(&ms));
    println!("{}", tables::fig10a(&ms));
    println!("{}", tables::fig10b(&ms));
    println!("{}", tables::fig10c(&ms));
    println!("{}", tables::fig10d());
    println!("{}", tables::fig11(scale));
    println!("{}", tables::pruning_fraction(scale));
    println!("{}", tables::dependency_range(scale));
    println!("{}", tables::table16(scale));
}
