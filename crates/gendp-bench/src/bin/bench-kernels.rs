//! Hot-path benchmark: the six evaluated kernels (BSW, PairHMM, POA,
//! Chain, DTW, Bellman-Ford) at fixed task sizes, each measured on both
//! execution paths through the unified [`Accelerator`] lifecycle:
//!
//! * **interpreted** (the *before* side): the per-run path the crate had
//!   before the decoded engine — every repetition regenerates, verifies
//!   and interprets the programs (`run_task` on
//!   [`Engine::Interpreted`]).
//! * **decoded** (the *after* side): the pre-decoded hot path — programs
//!   are generated, lowered and verified once ([`Accelerator::prepare`]),
//!   and each repetition pays only `PreparedTask::execute`, i.e. the
//!   alloc-free simulation loop itself — pinned to the bounds-checked
//!   access path (`PreparedTask::force_checked`).
//! * **certified** (the certificate dividend): the same prepared task on
//!   the certified-unchecked access path — the verifier's certificate
//!   proved every access in bounds, so the decoded loop skips its
//!   bounds checks.
//!
//! All paths produce bit- and cycle-identical results (asserted here and
//! covered by the engine-equivalence and certificate-soundness suites);
//! only the host-side cost differs.
//!
//! Emits `BENCH_kernels.json` with, per kernel: DP cells, simulated
//! cycles, cells/cycle (machine-independent), and per path the host wall
//! time, host cells/sec and heap allocations per simulated cycle.
//! `speedup` is interpreted-wall / decoded-wall; `certified_speedup` is
//! decoded-wall / certified-wall.
//!
//! Flags:
//! * `--quick` — reduced task sizes and one repetition (CI smoke).
//! * `--out <path>` — where to write the JSON (default
//!   `BENCH_kernels.json`).
//! * `--baseline <path>` — compare against a committed baseline and exit
//!   non-zero if any kernel's simulated cells/cycle drifts, or its
//!   decoded-vs-interpreted speedup falls below an absolute 1.5x floor.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use gendp::core::{BellmanFordTask, ChainTask, PoaTask, WavefrontTask};
use gendp::core::{GendpPipeline, Wavefront2d};
use gendp::dpax::Engine;
use gendp::kernels::bellman_ford::random_roadmap;
use gendp::kernels::chain::ChainParams;
use gendp::kernels::pairhmm::PairHmmParams;
use gendp::kernels::poa::Poa;
use gendp::kernels::Scoring;
use gendp::seq::{extract_anchors, DnaSeq, Genome, KmerIndex, MutationProfile};
use gendp::{AccelConfig, Accelerator, TaskOutput};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Counts every heap allocation, so the report can show the decoded
/// engine's alloc-free per-cycle loops against the interpreter's
/// per-cycle temporaries.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One engine's host-side measurement of a fixed task.
struct EngineSide {
    wall_seconds: f64,
    cells_per_sec: f64,
    allocs_per_cycle: f64,
}

/// One kernel's benchmark row.
struct KernelBench {
    name: &'static str,
    cells: u64,
    cycles: u64,
    cells_per_cycle: f64,
    decoded: EngineSide,
    certified: EngineSide,
    interpreted: EngineSide,
    speedup: f64,
    certified_speedup: f64,
}

/// Times `reps` runs of one closure that executes the task and returns
/// (cells, cycles); all repetitions are identical by construction. Each
/// repetition is timed on its own and the *minimum* is reported: the
/// fastest repetition is the one least perturbed by scheduler noise, and
/// since every repetition does identical work it is the best estimate of
/// the true cost.
fn time_engine(reps: u32, mut run: impl FnMut() -> (u64, u64)) -> (EngineSide, u64, u64) {
    // Warm-up run outside the timed window (first-touch page faults,
    // lazily initialized LUTs).
    let (cells, cycles) = run();
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let again = run();
        best = best.min(start.elapsed().as_secs_f64());
        assert_eq!(again, (cells, cycles), "non-deterministic benchmark task");
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    (
        EngineSide {
            wall_seconds: best,
            cells_per_sec: if best > 0.0 { cells as f64 / best } else { 0.0 },
            allocs_per_cycle: allocs as f64 / (cycles as f64 * reps as f64),
        },
        cells,
        cycles,
    )
}

/// Benchmarks one accelerator+task on both execution paths: the prepared
/// decoded hot loop against the full per-run interpreted path.
fn bench<A, F>(name: &'static str, reps: u32, build: F, task: &A::Task<'_>) -> KernelBench
where
    A: Accelerator,
    F: Fn() -> A,
{
    // After: prepare once (codegen + lowering, untimed), time execute on
    // the bounds-checked decoded path.
    let accel = build().configure(AccelConfig::new().engine(Engine::Decoded));
    let mut prep = accel.prepare(task);
    prep.force_checked();
    let (decoded, cells, cycles) = time_engine(reps, move || {
        let stats = prep.execute().unwrap_or_else(|e| panic!("{name}: {e}"));
        (stats.cells(), stats.cycles)
    });
    // Certificate dividend: the same prepared task, bounds checks proven
    // away by gendp-verify's certificate.
    let accel = build().configure(AccelConfig::new().engine(Engine::Decoded));
    let mut prep = accel.prepare(task);
    assert!(
        prep.is_certified(),
        "{name}: kernel programs must certify for the unchecked path"
    );
    let (certified, c_cells, c_cycles) = time_engine(reps, move || {
        let stats = prep.execute().unwrap_or_else(|e| panic!("{name}: {e}"));
        (stats.cells(), stats.cycles)
    });
    // Before: the one-shot path, regenerating and re-verifying per run.
    let accel = build().configure(AccelConfig::new().engine(Engine::Interpreted));
    let (interpreted, i_cells, i_cycles) = time_engine(reps, move || {
        let out = accel
            .run_task(task)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let stats = out.stats();
        (stats.cells(), stats.cycles)
    });
    assert_eq!(
        (cells, cycles),
        (i_cells, i_cycles),
        "{name}: engines disagree on simulated work"
    );
    assert_eq!(
        (cells, cycles),
        (c_cells, c_cycles),
        "{name}: the certified path disagrees on simulated work"
    );
    KernelBench {
        name,
        cells,
        cycles,
        cells_per_cycle: cells as f64 / cycles as f64,
        speedup: interpreted.wall_seconds / decoded.wall_seconds,
        certified_speedup: decoded.wall_seconds / certified.wall_seconds,
        decoded,
        certified,
        interpreted,
    }
}

fn codes(s: &DnaSeq) -> Vec<i32> {
    s.codes().iter().map(|&c| c as i32).collect()
}

fn run_suite(quick: bool) -> Vec<KernelBench> {
    let reps = if quick { 1 } else { 10 };
    let mut rng = SmallRng::seed_from_u64(2023);
    let mut out = Vec::new();

    // BSW: local alignment of a mutated window against its source.
    let (tn, qn) = if quick { (32, 24) } else { (96, 72) };
    let scoring = Scoring::bwa_mem();
    let t = DnaSeq::random(tn, &mut rng);
    let q = MutationProfile::illumina().apply(&t.window(2, qn), &mut rng);
    let (rows, cols) = (codes(&t), codes(&q));
    let task = WavefrontTask {
        rows: &rows,
        cols: &cols,
        n_pes: 4,
        band: None,
    };
    out.push(bench::<Wavefront2d, _>(
        "bsw",
        reps,
        || GendpPipeline::bsw(&scoring),
        &task,
    ));

    // PairHMM: fixed-point log-space forward.
    let (hn, rn) = if quick { (32, 24) } else { (72, 56) };
    let hap = DnaSeq::random(hn, &mut rng);
    let read = MutationProfile::illumina().apply(&hap.window(2, rn), &mut rng);
    let (rows, cols) = (codes(&read), codes(&hap));
    let task = WavefrontTask {
        rows: &rows,
        cols: &cols,
        n_pes: 4,
        band: None,
    };
    out.push(bench::<Wavefront2d, _>(
        "pairhmm",
        reps,
        || GendpPipeline::pairhmm(&PairHmmParams::gatk(), 30, 1024, rows.len()),
        &task,
    ));

    // POA: probe vs a two-sequence graph.
    let truth_len = if quick { 30 } else { 56 };
    let truth = DnaSeq::random(truth_len, &mut rng);
    let mut graph = Poa::new();
    graph.add_sequence(&truth, &Scoring::racon());
    graph.add_sequence(
        &MutationProfile::nanopore().apply(&truth, &mut rng),
        &Scoring::racon(),
    );
    let probe = MutationProfile::nanopore().apply(&truth, &mut rng);
    let task = PoaTask {
        graph: &graph,
        seq: &probe,
        n_pes: 4,
    };
    out.push(bench(
        "poa",
        reps,
        || GendpPipeline::poa(Scoring::racon()),
        &task,
    ));

    // Chain: anchors from a mutated read against an indexed genome.
    let n_pes = 8;
    let params = ChainParams {
        n_prev: n_pes,
        ..ChainParams::minimap2(15.0)
    };
    let genome_len = if quick { 400 } else { 1200 };
    let genome = Genome::random(genome_len, &mut rng);
    let index = KmerIndex::build(genome.seq(), 15);
    let read_src = genome.window(10, if quick { 120 } else { 400 });
    let read = MutationProfile::nanopore().apply(&read_src, &mut rng);
    let anchors = extract_anchors(&index, &read);
    assert!(anchors.len() >= 4, "anchor workload collapsed");
    let task = ChainTask {
        anchors: &anchors,
        n_pes,
    };
    out.push(bench("chain", reps, || GendpPipeline::chain(params), &task));

    // DTW: full table between two signals.
    let (xn, yn) = if quick { (15, 12) } else { (48, 40) };
    let xs: Vec<i32> = (0..xn).map(|_| rng.gen_range(0..200)).collect();
    let ys: Vec<i32> = (0..yn).map(|_| rng.gen_range(0..200)).collect();
    let task = WavefrontTask {
        rows: &xs,
        cols: &ys,
        n_pes: 4,
        band: None,
    };
    out.push(bench::<Wavefront2d, _>(
        "dtw",
        reps,
        GendpPipeline::dtw,
        &task,
    ));

    // Bellman-Ford: full relaxation on a random roadmap.
    let n_vertices = if quick { 20 } else { 48 };
    let graph = random_roadmap(n_vertices, 2, 5, &mut rng);
    let task = BellmanFordTask {
        graph: &graph,
        source: 0,
        rounds: graph.vertex_count() - 1,
    };
    out.push(bench(
        "bellman_ford",
        reps,
        GendpPipeline::bellman_ford,
        &task,
    ));

    out
}

fn render_json(quick: bool, rows: &[KernelBench]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"gendp-bench-kernels/v1\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let side = |e: &EngineSide| {
            format!(
                "{{ \"wall_seconds\": {:.6}, \"cells_per_sec\": {:.1}, \
                 \"allocs_per_cycle\": {:.4} }}",
                e.wall_seconds, e.cells_per_sec, e.allocs_per_cycle
            )
        };
        s.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"cells\": {},\n      \
             \"cycles\": {},\n      \"cells_per_cycle\": {:.6},\n      \
             \"decoded\": {},\n      \"certified\": {},\n      \
             \"interpreted\": {},\n      \
             \"speedup\": {:.3},\n      \"certified_speedup\": {:.3}\n    }}{}\n",
            r.name,
            r.cells,
            r.cycles,
            r.cells_per_cycle,
            side(&r.decoded),
            side(&r.certified),
            side(&r.interpreted),
            r.speedup,
            r.certified_speedup,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extracts `"key": <number>` occurring after the kernel's name tag.
/// Minimal by design: the file is machine-written by this binary.
fn extract_metric(json: &str, kernel: &str, key: &str) -> Option<f64> {
    let tag = format!("\"name\": \"{kernel}\"");
    let at = json.find(&tag)? + tag.len();
    let rest = &json[at..];
    // Stay inside this kernel's object.
    let end = rest.find("\"name\":").unwrap_or(rest.len());
    let scope = &rest[..end];
    let kt = format!("\"{key}\":");
    let ka = scope.find(&kt)? + kt.len();
    let num: String = scope[ka..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

/// Every kernel must keep at least this decoded-vs-interpreted speedup.
/// Wall-clock ratios swing with host load (the committed baseline was
/// measured at 3.8-6.1x), so the gate is an absolute floor — generous
/// enough for timing noise, tight enough to catch the decoded engine
/// degenerating back to interpreter-level throughput.
const MIN_SPEEDUP: f64 = 1.5;

/// The certified-unchecked path must keep at least this fraction of the
/// bounds-checked decoded throughput. The expected value is ≥ 1.0 (it
/// removes work); the floor sits below parity only to absorb host timing
/// noise, while still catching the unchecked path regressing into a
/// slowdown.
const MIN_CERTIFIED_RATIO: f64 = 0.9;

/// Compares the fresh report against a committed baseline. The simulated
/// cells/cycle is deterministic and must match; the decoded-engine
/// speedup is host-measured and only has to clear [`MIN_SPEEDUP`].
fn check_baseline(baseline: &str, rows: &[KernelBench]) -> Result<(), String> {
    let mut problems = Vec::new();
    for r in rows {
        if let Some(base_cpc) = extract_metric(baseline, r.name, "cells_per_cycle") {
            let drift = (r.cells_per_cycle - base_cpc).abs() / base_cpc.max(1e-12);
            // The simulated rate only changes when kernels or codegen
            // change; those changes must come with a refreshed baseline.
            if drift > 0.25 {
                problems.push(format!(
                    "{}: cells/cycle {:.6} drifted from baseline {:.6}",
                    r.name, r.cells_per_cycle, base_cpc
                ));
            }
        } else {
            problems.push(format!("{}: missing from baseline", r.name));
        }
        if r.speedup < MIN_SPEEDUP {
            problems.push(format!(
                "{}: decoded-engine speedup {:.2}x below the {MIN_SPEEDUP}x floor",
                r.name, r.speedup
            ));
        }
        if r.certified_speedup < MIN_CERTIFIED_RATIO {
            problems.push(format!(
                "{}: certified-unchecked ratio {:.2}x below the \
                 {MIN_CERTIFIED_RATIO}x floor vs decoded-checked",
                r.name, r.certified_speedup
            ));
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let baseline_path = flag_value(&args, "--baseline");

    let rows = run_suite(quick);

    println!(
        "{:<13} {:>9} {:>9} {:>11} {:>13} {:>13} {:>13} {:>8} {:>9}",
        "kernel",
        "cells",
        "cycles",
        "cells/cycle",
        "int cells/s",
        "dec cells/s",
        "cert cells/s",
        "speedup",
        "cert/dec"
    );
    for r in &rows {
        println!(
            "{:<13} {:>9} {:>9} {:>11.4} {:>13.0} {:>13.0} {:>13.0} {:>7.2}x {:>8.2}x",
            r.name,
            r.cells,
            r.cycles,
            r.cells_per_cycle,
            r.interpreted.cells_per_sec,
            r.decoded.cells_per_sec,
            r.certified.cells_per_sec,
            r.speedup,
            r.certified_speedup,
        );
    }

    let json = render_json(quick, &rows);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path}");

    if let Some(path) = baseline_path {
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        // Schema sanity: the baseline must be a bench-kernels report.
        if !baseline.contains("\"schema\": \"gendp-bench-kernels/v1\"") {
            eprintln!("baseline {path} is not a gendp-bench-kernels/v1 report");
            std::process::exit(2);
        }
        match check_baseline(&baseline, &rows) {
            Ok(()) => println!("baseline check vs {path}: ok"),
            Err(problems) => {
                eprintln!("baseline check vs {path} FAILED:\n{problems}");
                std::process::exit(1);
            }
        }
    }
}
