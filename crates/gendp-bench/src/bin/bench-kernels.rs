//! Hot-path benchmark: the six evaluated kernels (BSW, PairHMM, POA,
//! Chain, DTW, Bellman-Ford) at fixed task sizes, each measured across
//! the execution tiers of the unified [`Accelerator`] lifecycle. Tier
//! selection goes exclusively through [`TierPolicy`]; each measured row
//! records the tier the policy *resolved* to, read back from the
//! [`RunStats`](gendp::dpax::RunStats) provenance the run stamps.
//!
//! * **interpreted** (the *before* side): the per-run path the crate had
//!   before the decoded engine — every repetition regenerates, verifies
//!   and interprets the programs (`run_task` under
//!   `TierPolicy::interpreted()`).
//! * **decoded**: the pre-decoded hot path — programs are generated,
//!   lowered and verified once ([`Accelerator::prepare`]), and each
//!   repetition pays only `PreparedTask::execute`, i.e. the alloc-free
//!   simulation loop itself — pinned to the bounds-checked access path
//!   (`PreparedTask::force_checked`).
//! * **certified** (the certificate dividend): the same prepared task on
//!   the certified-unchecked access path — the verifier's certificate
//!   proved every access in bounds, so the decoded loop skips its
//!   bounds checks.
//! * **functional** (where the driver lowers one): the batched
//!   wavefront sweep that skips per-cycle simulation entirely. Outputs
//!   and DP-cell counts are bit-identical to the simulated tiers
//!   (asserted here); cycles come from the certificate's analytic model
//!   and are reported separately. Kernels whose dependency pattern has
//!   no functional lowering yet fall back down the tier chain and emit
//!   no functional row.
//!
//! All tiers produce bit-identical functional results (asserted here and
//! covered by the engine-equivalence and certificate-soundness suites);
//! only the host-side cost — and, for the functional tier, the cycle
//! provenance — differs.
//!
//! Emits `BENCH_kernels.json` (schema `gendp-bench-kernels/v2`) with,
//! per kernel: DP cells, simulated cycles, cells/cycle
//! (machine-independent), and per tier the resolved-tier tag, host wall
//! time, host cells/sec and heap allocations per simulated cycle.
//! `speedup` is interpreted-wall / decoded-wall; `certified_speedup` is
//! decoded-wall / certified-wall; `functional_speedup` is decoded-wall /
//! functional-wall (absent when the tier does not engage).
//!
//! Flags:
//! * `--quick` — reduced task sizes and fewer repetitions (CI smoke).
//! * `--out <path>` — where to write the JSON (default
//!   `BENCH_kernels.json`).
//! * `--baseline <path>` — compare against a committed baseline and exit
//!   non-zero if any kernel's simulated cells/cycle drifts, its
//!   decoded-vs-interpreted speedup falls below an absolute 1.5x floor,
//!   or the functional tier misses its floors (10x over decoded on the
//!   gated kernels, parity anywhere it engages).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use gendp::core::{BellmanFordTask, ChainTask, PoaTask, WavefrontTask};
use gendp::core::{GendpPipeline, Wavefront2d};
use gendp::dpax::{Tier, TierPolicy};
use gendp::kernels::bellman_ford::random_roadmap;
use gendp::kernels::chain::ChainParams;
use gendp::kernels::pairhmm::PairHmmParams;
use gendp::kernels::poa::Poa;
use gendp::kernels::Scoring;
use gendp::seq::{extract_anchors, DnaSeq, Genome, KmerIndex, MutationProfile};
use gendp::{AccelConfig, Accelerator, TaskOutput};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Counts every heap allocation, so the report can show the decoded
/// engine's alloc-free per-cycle loops against the interpreter's
/// per-cycle temporaries.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// One tier's host-side measurement of a fixed task. `tier` is the
/// resolved execution tier read back from the run's provenance, not the
/// requested one — the measured row names what actually ran.
struct TierSide {
    tier: Tier,
    wall_seconds: f64,
    cells_per_sec: f64,
    allocs_per_cycle: f64,
}

/// The functional tier's extra cycle provenance: its cycles come from
/// the certificate's analytic model, not a simulation.
struct FunctionalCycles {
    cycles: u64,
    estimated: bool,
}

/// One kernel's benchmark row.
struct KernelBench {
    name: &'static str,
    cells: u64,
    cycles: u64,
    cells_per_cycle: f64,
    decoded: TierSide,
    certified: TierSide,
    interpreted: TierSide,
    /// Present only when the functional tier engages for this kernel.
    functional: Option<(TierSide, FunctionalCycles)>,
    speedup: f64,
    certified_speedup: f64,
    functional_speedup: Option<f64>,
}

/// One measured side of a kernel: a repeatable runner plus its
/// accumulated timing. All repetitions are identical by construction;
/// the *minimum* wall time is reported — the repetition least perturbed
/// by scheduler noise is the best estimate of the true cost.
struct Runner<'a> {
    run: Box<dyn FnMut() -> (Tier, u64, u64) + 'a>,
    tier: Tier,
    cells: u64,
    cycles: u64,
    best: f64,
    allocs: u64,
}

impl<'a> Runner<'a> {
    /// Wraps a runner, executing it once as warm-up outside the timed
    /// window (first-touch page faults, lazily initialized LUTs) and
    /// recording the invariants every later repetition must reproduce.
    fn new(mut run: Box<dyn FnMut() -> (Tier, u64, u64) + 'a>) -> Self {
        let (tier, cells, cycles) = run();
        Runner {
            run,
            tier,
            cells,
            cycles,
            best: f64::INFINITY,
            allocs: 0,
        }
    }

    fn side(&self, reps: u32) -> TierSide {
        TierSide {
            tier: self.tier,
            wall_seconds: self.best,
            cells_per_sec: if self.best > 0.0 {
                self.cells as f64 / self.best
            } else {
                0.0
            },
            allocs_per_cycle: self.allocs as f64 / (self.cycles as f64 * reps as f64),
        }
    }
}

/// Times every side round-robin — rep 1 of each side, then rep 2 of
/// each, … — instead of finishing one side before starting the next.
/// The report's headline numbers are *ratios between sides*, and
/// sequential timing feeds systematic drift (CPU frequency scaling,
/// background load arriving mid-suite) entirely into one side of a
/// ratio; interleaving spreads it evenly so the min-of-reps ratios
/// converge even on a noisy host.
fn time_interleaved(reps: u32, runners: &mut [Runner]) {
    for _ in 0..reps {
        for r in runners.iter_mut() {
            let allocs_before = ALLOCS.load(Ordering::Relaxed);
            let start = Instant::now();
            let again = (r.run)();
            let elapsed = start.elapsed().as_secs_f64();
            r.allocs += ALLOCS.load(Ordering::Relaxed) - allocs_before;
            r.best = r.best.min(elapsed);
            assert_eq!(
                again,
                (r.tier, r.cells, r.cycles),
                "non-deterministic benchmark task"
            );
        }
    }
}

/// Benchmarks one accelerator+task across every tier that engages: the
/// prepared decoded hot loop (checked and certified-unchecked) and the
/// functional sweep against the full per-run interpreted path.
fn bench<A, F>(name: &'static str, reps: u32, build: F, task: &A::Task<'_>) -> KernelBench
where
    A: Accelerator,
    F: Fn() -> A,
{
    // Prepare once per side (codegen + lowering, untimed); the timed
    // windows cover only the per-repetition execution.
    // Decoded: the bounds-checked decoded hot loop.
    let accel = build().configure(AccelConfig::new().tiers(TierPolicy::decoded()));
    let mut prep_dec = accel.prepare(task);
    prep_dec.force_checked();
    // Certificate dividend: the same prepared task, bounds checks proven
    // away by gendp-verify's certificate (the default policy).
    let accel = build().configure(AccelConfig::new().tiers(TierPolicy::decoded_certified()));
    let mut prep_cert = accel.prepare(task);
    assert!(
        prep_cert.is_certified(),
        "{name}: kernel programs must certify for the unchecked path"
    );
    // Functional fast path, where the driver lowers one. Falls back down
    // the chain otherwise — detected through the resolved provenance, so
    // this harness stays engine-generic.
    let accel = build().configure(AccelConfig::new().tiers(TierPolicy::functional()));
    let mut prep_fun = accel.prepare(task);
    let fun_engages = prep_fun.resolved_tier() == Tier::Functional;
    let fcycles = fun_engages.then(|| {
        let probe = prep_fun.execute().unwrap_or_else(|e| panic!("{name}: {e}"));
        FunctionalCycles {
            cycles: probe.cycles,
            estimated: probe.cycles_estimated,
        }
    });
    // Before: the one-shot path, regenerating and re-verifying per run.
    let accel_int = build().configure(AccelConfig::new().tiers(TierPolicy::interpreted()));

    let mut runners = Vec::new();
    runners.push(Runner::new(Box::new(move || {
        let stats = prep_dec.execute().unwrap_or_else(|e| panic!("{name}: {e}"));
        (stats.tier, stats.cells(), stats.cycles)
    })));
    runners.push(Runner::new(Box::new(move || {
        let stats = prep_cert
            .execute()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        (stats.tier, stats.cells(), stats.cycles)
    })));
    if fun_engages {
        runners.push(Runner::new(Box::new(move || {
            let stats = prep_fun.execute().unwrap_or_else(|e| panic!("{name}: {e}"));
            (stats.tier, stats.cells(), stats.cycles)
        })));
    }
    runners.push(Runner::new(Box::new(move || {
        let out = accel_int
            .run_task(task)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let stats = out.stats();
        (stats.tier, stats.cells(), stats.cycles)
    })));
    time_interleaved(reps, &mut runners);

    let mut sides = runners.into_iter();
    let decoded_r = sides.next().expect("decoded side");
    let certified_r = sides.next().expect("certified side");
    let functional_r = fun_engages.then(|| sides.next().expect("functional side"));
    let interpreted_r = sides.next().expect("interpreted side");

    let (cells, cycles) = (decoded_r.cells, decoded_r.cycles);
    assert_eq!(
        (cells, cycles),
        (interpreted_r.cells, interpreted_r.cycles),
        "{name}: tiers disagree on simulated work"
    );
    assert_eq!(
        (cells, cycles),
        (certified_r.cells, certified_r.cycles),
        "{name}: the certified path disagrees on simulated work"
    );
    // Cells-only cross-check: the functional tier reports analytic
    // cycles, so simulated-cycle equality is not expected.
    if let Some(f) = &functional_r {
        assert_eq!(
            cells, f.cells,
            "{name}: the functional tier disagrees on DP cells"
        );
    }
    let decoded = decoded_r.side(reps);
    let certified = certified_r.side(reps);
    let interpreted = interpreted_r.side(reps);
    let functional = functional_r.map(|f| {
        (
            f.side(reps),
            fcycles.expect("probe ran when the tier engages"),
        )
    });
    assert_eq!(decoded.tier, Tier::Decoded, "{name}: decoded provenance");
    assert_eq!(
        certified.tier,
        Tier::DecodedCertified,
        "{name}: certified provenance"
    );
    assert_eq!(
        interpreted.tier,
        Tier::Interpreted,
        "{name}: interpreted provenance"
    );
    KernelBench {
        name,
        cells,
        cycles,
        cells_per_cycle: cells as f64 / cycles as f64,
        speedup: interpreted.wall_seconds / decoded.wall_seconds,
        certified_speedup: decoded.wall_seconds / certified.wall_seconds,
        functional_speedup: functional
            .as_ref()
            .map(|(f, _)| decoded.wall_seconds / f.wall_seconds),
        decoded,
        certified,
        interpreted,
        functional,
    }
}

fn codes(s: &DnaSeq) -> Vec<i32> {
    s.codes().iter().map(|&c| c as i32).collect()
}

fn run_suite(quick: bool) -> Vec<KernelBench> {
    // Even the smoke run takes min-of-5: a single repetition of the tiny
    // quick tasks is pure scheduler noise against the ratio floors.
    let reps = if quick { 5 } else { 10 };
    let mut rng = SmallRng::seed_from_u64(2023);
    let mut out = Vec::new();

    // BSW: local alignment of a mutated window against its source.
    let (tn, qn) = if quick { (32, 24) } else { (96, 72) };
    let scoring = Scoring::bwa_mem();
    let t = DnaSeq::random(tn, &mut rng);
    let q = MutationProfile::illumina().apply(&t.window(2, qn), &mut rng);
    let (rows, cols) = (codes(&t), codes(&q));
    let task = WavefrontTask {
        rows: &rows,
        cols: &cols,
        n_pes: 4,
        band: None,
    };
    out.push(bench::<Wavefront2d, _>(
        "bsw",
        reps,
        || GendpPipeline::bsw(&scoring),
        &task,
    ));

    // PairHMM: fixed-point log-space forward.
    let (hn, rn) = if quick { (32, 24) } else { (72, 56) };
    let hap = DnaSeq::random(hn, &mut rng);
    let read = MutationProfile::illumina().apply(&hap.window(2, rn), &mut rng);
    let (rows, cols) = (codes(&read), codes(&hap));
    let task = WavefrontTask {
        rows: &rows,
        cols: &cols,
        n_pes: 4,
        band: None,
    };
    out.push(bench::<Wavefront2d, _>(
        "pairhmm",
        reps,
        || GendpPipeline::pairhmm(&PairHmmParams::gatk(), 30, 1024, rows.len()),
        &task,
    ));

    // POA: probe vs a two-sequence graph.
    let truth_len = if quick { 30 } else { 56 };
    let truth = DnaSeq::random(truth_len, &mut rng);
    let mut graph = Poa::new();
    graph.add_sequence(&truth, &Scoring::racon());
    graph.add_sequence(
        &MutationProfile::nanopore().apply(&truth, &mut rng),
        &Scoring::racon(),
    );
    let probe = MutationProfile::nanopore().apply(&truth, &mut rng);
    let task = PoaTask {
        graph: &graph,
        seq: &probe,
        n_pes: 4,
    };
    out.push(bench(
        "poa",
        reps,
        || GendpPipeline::poa(Scoring::racon()),
        &task,
    ));

    // Chain: anchors from a mutated read against an indexed genome.
    let n_pes = 8;
    let params = ChainParams {
        n_prev: n_pes,
        ..ChainParams::minimap2(15.0)
    };
    let genome_len = if quick { 400 } else { 1200 };
    let genome = Genome::random(genome_len, &mut rng);
    let index = KmerIndex::build(genome.seq(), 15);
    let read_src = genome.window(10, if quick { 120 } else { 400 });
    let read = MutationProfile::nanopore().apply(&read_src, &mut rng);
    let anchors = extract_anchors(&index, &read);
    assert!(anchors.len() >= 4, "anchor workload collapsed");
    let task = ChainTask {
        anchors: &anchors,
        n_pes,
    };
    out.push(bench("chain", reps, || GendpPipeline::chain(params), &task));

    // DTW: full table between two signals.
    let (xn, yn) = if quick { (15, 12) } else { (48, 40) };
    let xs: Vec<i32> = (0..xn).map(|_| rng.gen_range(0..200)).collect();
    let ys: Vec<i32> = (0..yn).map(|_| rng.gen_range(0..200)).collect();
    let task = WavefrontTask {
        rows: &xs,
        cols: &ys,
        n_pes: 4,
        band: None,
    };
    out.push(bench::<Wavefront2d, _>(
        "dtw",
        reps,
        GendpPipeline::dtw,
        &task,
    ));

    // Bellman-Ford: full relaxation on a random roadmap.
    let n_vertices = if quick { 20 } else { 48 };
    let graph = random_roadmap(n_vertices, 2, 5, &mut rng);
    let task = BellmanFordTask {
        graph: &graph,
        source: 0,
        rounds: graph.vertex_count() - 1,
    };
    out.push(bench(
        "bellman_ford",
        reps,
        GendpPipeline::bellman_ford,
        &task,
    ));

    out
}

fn render_json(quick: bool, rows: &[KernelBench]) -> String {
    let side = |e: &TierSide| {
        format!(
            "{{ \"tier\": \"{}\", \"wall_seconds\": {:.6}, \"cells_per_sec\": {:.1}, \
             \"allocs_per_cycle\": {:.4} }}",
            e.tier, e.wall_seconds, e.cells_per_sec, e.allocs_per_cycle
        )
    };
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"gendp-bench-kernels/v2\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"kernels\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let functional = match &r.functional {
            Some((f, fc)) => format!(
                "{{ \"tier\": \"{}\", \"cycles\": {}, \"cycles_estimated\": {}, \
                 \"wall_seconds\": {:.6}, \"cells_per_sec\": {:.1}, \
                 \"allocs_per_cycle\": {:.4} }}",
                f.tier,
                fc.cycles,
                fc.estimated,
                f.wall_seconds,
                f.cells_per_sec,
                f.allocs_per_cycle
            ),
            None => "null".to_string(),
        };
        let functional_speedup = match r.functional_speedup {
            Some(v) => format!("{v:.3}"),
            None => "null".to_string(),
        };
        s.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"cells\": {},\n      \
             \"cycles\": {},\n      \"cells_per_cycle\": {:.6},\n      \
             \"decoded\": {},\n      \"certified\": {},\n      \
             \"interpreted\": {},\n      \"functional\": {},\n      \
             \"speedup\": {:.3},\n      \"certified_speedup\": {:.3},\n      \
             \"functional_speedup\": {}\n    }}{}\n",
            r.name,
            r.cells,
            r.cycles,
            r.cells_per_cycle,
            side(&r.decoded),
            side(&r.certified),
            side(&r.interpreted),
            functional,
            r.speedup,
            r.certified_speedup,
            functional_speedup,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extracts `"key": <number>` occurring after the kernel's name tag.
/// Minimal by design: the file is machine-written by this binary.
fn extract_metric(json: &str, kernel: &str, key: &str) -> Option<f64> {
    let tag = format!("\"name\": \"{kernel}\"");
    let at = json.find(&tag)? + tag.len();
    let rest = &json[at..];
    // Stay inside this kernel's object.
    let end = rest.find("\"name\":").unwrap_or(rest.len());
    let scope = &rest[..end];
    let kt = format!("\"{key}\":");
    let ka = scope.find(&kt)? + kt.len();
    let num: String = scope[ka..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
        .collect();
    num.parse().ok()
}

/// Every kernel must keep at least this decoded-vs-interpreted speedup.
/// Wall-clock ratios swing with host load (the committed baseline was
/// measured at 3.8-6.1x), so the gate is an absolute floor — generous
/// enough for timing noise, tight enough to catch the decoded engine
/// degenerating back to interpreter-level throughput.
const MIN_SPEEDUP: f64 = 1.5;

/// The certified-unchecked path must keep at least this fraction of the
/// bounds-checked decoded throughput. The expected value is ≥ 1.0 (it
/// removes work); the floor sits below parity only to absorb host timing
/// noise, while still catching the unchecked path regressing into a
/// slowdown.
const MIN_CERTIFIED_RATIO: f64 = 0.9;

/// The functional tier must beat the decoded simulation by at least this
/// factor on the gated kernels ([`FUNCTIONAL_GATED`]). Skipping the
/// per-cycle machinery is worth orders of magnitude; a 10x floor leaves
/// room for host noise while catching the fast path degenerating into a
/// reimplementation of the simulator.
const MIN_FUNCTIONAL_RATIO: f64 = 10.0;

/// Kernels whose functional speedup is gated at [`MIN_FUNCTIONAL_RATIO`].
/// Everywhere else the tier engages it only has to clear parity (1x).
const FUNCTIONAL_GATED: [&str; 2] = ["bsw", "dtw"];

/// Compares the fresh report against a committed baseline. The simulated
/// cells/cycle is deterministic and must match; the host-measured ratios
/// only have to clear their absolute floors.
fn check_baseline(baseline: &str, rows: &[KernelBench]) -> Result<(), String> {
    let mut problems = Vec::new();
    for r in rows {
        if let Some(base_cpc) = extract_metric(baseline, r.name, "cells_per_cycle") {
            let drift = (r.cells_per_cycle - base_cpc).abs() / base_cpc.max(1e-12);
            // The simulated rate only changes when kernels or codegen
            // change; those changes must come with a refreshed baseline.
            if drift > 0.25 {
                problems.push(format!(
                    "{}: cells/cycle {:.6} drifted from baseline {:.6}",
                    r.name, r.cells_per_cycle, base_cpc
                ));
            }
        } else {
            problems.push(format!("{}: missing from baseline", r.name));
        }
        if r.speedup < MIN_SPEEDUP {
            problems.push(format!(
                "{}: decoded-engine speedup {:.2}x below the {MIN_SPEEDUP}x floor",
                r.name, r.speedup
            ));
        }
        if r.certified_speedup < MIN_CERTIFIED_RATIO {
            problems.push(format!(
                "{}: certified-unchecked ratio {:.2}x below the \
                 {MIN_CERTIFIED_RATIO}x floor vs decoded-checked",
                r.name, r.certified_speedup
            ));
        }
        let gated = FUNCTIONAL_GATED.contains(&r.name);
        match r.functional_speedup {
            Some(f) if gated && f < MIN_FUNCTIONAL_RATIO => problems.push(format!(
                "{}: functional speedup {:.2}x below the {MIN_FUNCTIONAL_RATIO}x \
                 floor vs decoded",
                r.name, f
            )),
            Some(f) if !gated && f < 1.0 => problems.push(format!(
                "{}: functional tier engaged but ran {:.2}x decoded (sub-parity)",
                r.name, f
            )),
            None if gated => problems.push(format!(
                "{}: functional tier did not engage on a gated kernel",
                r.name
            )),
            _ => {}
        }
    }
    if problems.is_empty() {
        Ok(())
    } else {
        Err(problems.join("\n"))
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let baseline_path = flag_value(&args, "--baseline");

    let rows = run_suite(quick);

    println!(
        "{:<13} {:>9} {:>9} {:>11} {:>13} {:>13} {:>13} {:>13} {:>8} {:>9} {:>9}",
        "kernel",
        "cells",
        "cycles",
        "cells/cycle",
        "int cells/s",
        "dec cells/s",
        "cert cells/s",
        "func cells/s",
        "speedup",
        "cert/dec",
        "func/dec"
    );
    for r in &rows {
        let (func_rate, func_ratio) = match (&r.functional, r.functional_speedup) {
            (Some((f, _)), Some(ratio)) => {
                (format!("{:.0}", f.cells_per_sec), format!("{ratio:.1}x"))
            }
            _ => ("-".to_string(), "-".to_string()),
        };
        println!(
            "{:<13} {:>9} {:>9} {:>11.4} {:>13.0} {:>13.0} {:>13.0} {:>13} {:>7.2}x {:>8.2}x {:>9}",
            r.name,
            r.cells,
            r.cycles,
            r.cells_per_cycle,
            r.interpreted.cells_per_sec,
            r.decoded.cells_per_sec,
            r.certified.cells_per_sec,
            func_rate,
            r.speedup,
            r.certified_speedup,
            func_ratio,
        );
    }

    let json = render_json(quick, &rows);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    println!("\nwrote {out_path}");

    if let Some(path) = baseline_path {
        let baseline =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        // Schema sanity: the baseline must be a bench-kernels report.
        if !baseline.contains("\"schema\": \"gendp-bench-kernels/v2\"") {
            eprintln!("baseline {path} is not a gendp-bench-kernels/v2 report");
            std::process::exit(2);
        }
        match check_baseline(&baseline, &rows) {
            Ok(()) => println!("baseline check vs {path}: ok"),
            Err(problems) => {
                eprintln!("baseline check vs {path} FAILED:\n{problems}");
                std::process::exit(1);
            }
        }
    }
}
