//! Prints the paper's table6 reproduction (pass --quick for a reduced
//! workload). See DESIGN.md §5.
fn main() {
    println!(
        "{}",
        gendp_bench::tables::table6(gendp_bench::Scale::from_args())
    );
}
