//! Prints the paper's table1 reproduction. See DESIGN.md §5.
fn main() {
    println!("{}", gendp_bench::tables::table1());
}
