//! Prints the pruning-based PairHMM scan-fraction artifact (paper §6;
//! pass --quick for a reduced workload).
fn main() {
    println!(
        "{}",
        gendp_bench::tables::pruning_fraction(gendp_bench::Scale::from_args())
    );
}
