//! Prints the paper's fig11 reproduction (pass --quick for a reduced
//! workload). See DESIGN.md §5.
fn main() {
    println!(
        "{}",
        gendp_bench::tables::fig11(gendp_bench::Scale::from_args())
    );
}
