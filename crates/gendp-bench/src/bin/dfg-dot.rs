//! Dumps every kernel's objective-function DFG in Graphviz DOT format
//! (one file per kernel in the given directory, default `target/dfgs`),
//! for documentation and DPMap debugging.
use std::fs;
use std::path::PathBuf;

use gendp::dfg::to_dot;
use gendp::kernels::chain::ChainParams;
use gendp::kernels::dfgs;
use gendp::kernels::pairhmm::PairHmmParams;
use gendp::kernels::Scoring;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/dfgs".to_string())
        .into();
    fs::create_dir_all(&dir)?;
    let graphs = [
        dfgs::bsw_dfg(&Scoring::bwa_mem()),
        dfgs::bsw_simd_dfg(&Scoring::bwa_mem()),
        dfgs::bsw_global_dfg(&Scoring::bwa_mem()),
        dfgs::pairhmm_log_dfg(&PairHmmParams::gatk(), 1024),
        dfgs::pairhmm_float_dfg(&PairHmmParams::gatk()),
        dfgs::poa_dfg(&Scoring::racon()),
        dfgs::chain_dfg(&ChainParams::minimap2(15.0)),
        dfgs::dtw_dfg(),
        dfgs::bellman_ford_dfg(),
        dfgs::lcs_dfg(),
    ];
    for g in &graphs {
        let path = dir.join(format!("{}.dot", g.name()));
        fs::write(&path, to_dot(g))?;
        println!("wrote {} ({} operators)", path.display(), g.len());
    }
    Ok(())
}
