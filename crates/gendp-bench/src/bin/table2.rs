//! Prints the paper's Table 2 reproduction (ALU reduction-tree ablation).
fn main() {
    println!("{}", gendp_bench::tables::table2());
}
