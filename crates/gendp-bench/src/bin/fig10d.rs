//! Prints the paper's fig10d reproduction. See DESIGN.md §5.
fn main() {
    println!("{}", gendp_bench::tables::fig10d());
}
