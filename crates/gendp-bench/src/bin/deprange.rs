//! Prints the POA dependency-distance distribution (paper §7.6.1; pass
//! --quick for a reduced workload).
fn main() {
    println!(
        "{}",
        gendp_bench::tables::dependency_range(gendp_bench::Scale::from_args())
    );
}
