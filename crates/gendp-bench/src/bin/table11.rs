//! Prints the paper's table11 reproduction (pass --quick for a reduced
//! workload). See DESIGN.md §5.
fn main() {
    let scale = gendp_bench::Scale::from_args();
    let ms = gendp_bench::measure::measure_all(scale);
    println!("{}", gendp_bench::tables::table11(&ms));
}
