//! Program-footprint artifact: control and compute program sizes per
//! kernel configuration, against the paper's 208 KB instruction-buffer
//! budget (Table 7). Control instructions are sized at 4 bytes, VLIW
//! compute words at 16 bytes (2 CUs x 3 opcodes + 6 operand fields).
use gendp::core::GendpPipeline;
use gendp::kernels::pairhmm::PairHmmParams;
use gendp::kernels::Scoring;

fn main() {
    println!("Instruction footprint per kernel configuration");
    println!("kernel    | VLIW words | ctrl insts/PE (100x60 task) | est. bytes/PE");
    let rows: Vec<i32> = (0..60).map(|i| i % 4).collect();
    let cols: Vec<i32> = (0..100).map(|i| (i * 7) % 4).collect();
    let configs = [
        ("BSW", GendpPipeline::bsw(&Scoring::bwa_mem())),
        (
            "PairHMM",
            GendpPipeline::pairhmm(&PairHmmParams::gatk(), 30, 1024, cols.len()),
        ),
        ("DTW", GendpPipeline::dtw()),
        ("LCS", GendpPipeline::lcs()),
    ];
    for (name, accel) in configs {
        let programs = accel.generate_programs(&rows, &cols, 4);
        let ctrl_max = programs.iter().map(|p| p.len()).max().unwrap_or(0);
        let vliw = accel.mapping().program.len();
        let bytes = ctrl_max * 4 + vliw * 16;
        println!(
            "{name:9} | {vliw:10} | {ctrl_max:27} | {bytes:10} ({:.1} KB)",
            bytes as f64 / 1024.0
        );
    }
    println!(
        "(paper: 208 KB of instruction buffers across the tile = ~3 KB/PE;\n\
         our per-task unrolled programs exceed a loop-rolled encoding by the\n\
         loop trip counts — the rolled equivalent is the per-cell body, about\n\
         a dozen instructions)"
    );
}
