//! Prints the artifact-appendix simulation-cost table (pass --quick for a
//! reduced workload).
fn main() {
    println!(
        "{}",
        gendp_bench::tables::table16(gendp_bench::Scale::from_args())
    );
}
