//! Prints the paper's table9 reproduction. See DESIGN.md §5.
fn main() {
    println!("{}", gendp_bench::tables::table9());
}
