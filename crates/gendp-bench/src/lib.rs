//! # gendp-bench
//!
//! The experiment harness reproducing every table and figure of the GenDP
//! paper's evaluation (see DESIGN.md §5 for the experiment index and
//! EXPERIMENTS.md for recorded results).
//!
//! Each `table*` / `fig*` function renders one artifact as text, printing
//! the paper's published numbers next to what this reproduction measures
//! (cycle-level simulation for GenDP, host measurements of the Rust
//! reference kernels for the CPU side, recorded constants for closed
//! systems — DESIGN.md §4).
//!
//! Run them through the binaries, e.g.
//! `cargo run --release -p gendp-bench --bin table2`, or all at once with
//! `--bin all-experiments`. Every binary accepts `--quick` for a reduced
//! workload (the default workloads are sized for release builds).

pub mod measure;
pub mod tables;

/// Workload scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Reduced workloads for smoke tests and debug builds.
    pub quick: bool,
}

impl Scale {
    /// Parses `--quick` from the process arguments.
    pub fn from_args() -> Self {
        Scale {
            quick: std::env::args().any(|a| a == "--quick"),
        }
    }

    /// The full (release-sized) scale.
    pub fn full() -> Self {
        Scale { quick: false }
    }

    /// The reduced scale.
    pub fn quick() -> Self {
        Scale { quick: true }
    }

    /// Picks between the full and quick variant of a parameter.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }
}
