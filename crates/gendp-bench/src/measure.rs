//! Measurement machinery: runs each kernel on the simulated accelerator
//! and times the reference software kernels on this host.

use std::time::Instant;

use gendp::core::{pack_lanes, AcceleratorRun, GendpPipeline};
use gendp::kernels::chain::{chain_original, ChainParams};
use gendp::kernels::pairhmm::{forward_f64, PairHmmParams};
use gendp::kernels::poa::Poa;
use gendp::kernels::{bsw_i8, Scoring};
use gendp::model::baselines::Kernel;
use gendp::model::scaling::scale_area_to_7nm;
use gendp::seq::{extract_anchors, DnaSeq, Genome, KmerIndex, MutationProfile};
use rand::{rngs::SmallRng, SeedableRng};

use crate::Scale;

/// One DPAx tile's area at 7 nm (the normalization denominator of
/// Fig. 10(a), paper §7.2).
pub fn tile_area_7nm() -> f64 {
    scale_area_to_7nm(gendp::model::area::AreaBreakdown::dpax_28nm().total_area())
}

/// Measurement of one kernel on the simulated accelerator plus the host
/// reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelMeasurement {
    /// Which kernel.
    pub kernel: Kernel,
    /// Simulated accelerator counters (one array / one chain).
    pub run: AcceleratorRun,
    /// SIMD lanes the configuration uses.
    pub simd_lanes: usize,
    /// Parallel array units per DPAx tile for this kernel (16 independent
    /// arrays for 2-D kernels; 1 for Chain, whose 64-PE chain *is* the 16
    /// arrays concatenated).
    pub units: usize,
    /// Throughput normalization penalty (Chain's extra reordered cells;
    /// 1.0 elsewhere — paper §6).
    pub penalty: f64,
    /// Host-measured single-thread Rust reference throughput, GCUPS.
    pub cpu_gcups_1t: f64,
    /// Estimated DRAM traffic per cell update (bytes): task inputs
    /// entering the input data buffers plus results leaving the output
    /// buffers, per computed cell (inter-PE traffic stays on chip).
    pub dram_bytes_per_cell: f64,
}

impl KernelMeasurement {
    /// GenDP raw throughput per tile, GCUPS (penalized for Chain).
    pub fn gendp_gcups(&self) -> f64 {
        self.run.gcups(self.units, self.simd_lanes) / self.penalty
    }

    /// GenDP normalized throughput, MCUPS/mm² at 7 nm.
    pub fn gendp_mcups_mm2(&self) -> f64 {
        self.gendp_gcups() * 1000.0 / tile_area_7nm()
    }
}

fn codes(s: &DnaSeq) -> Vec<i32> {
    s.codes().iter().map(|&c| c as i32).collect()
}

/// Measures the SIMD BSW configuration on `tasks` batches of four
/// ~100 x 60 alignment tasks (paper Table 1's BSW shape), plus the 8-bit
/// host kernel.
pub fn measure_bsw(scale: Scale) -> KernelMeasurement {
    let mut rng = SmallRng::seed_from_u64(1001);
    let (qlen, tlen, batches) = scale.pick((100usize, 60usize, 2usize), (24, 16, 1));
    let scoring = Scoring::bwa_mem();
    let accel = GendpPipeline::bsw_simd(&scoring);
    let genome = Genome::random(10_000, &mut rng);

    let mut cells = 0u64;
    let mut cycles = 0u64;
    let mut ctrl = 0u64;
    let mut vliw = 0u64;
    let mut active = 0.0f64;
    let mut host_tasks = Vec::new();
    for _ in 0..batches {
        let tasks: Vec<(DnaSeq, DnaSeq)> = (0..4)
            .map(|_| {
                let pos = rand::Rng::gen_range(&mut rng, 0..genome.len() - qlen - 20);
                let t = genome.window(pos, tlen);
                let q = MutationProfile::illumina().apply(&genome.window(pos, qlen), &mut rng);
                (q.window(0, q.len().min(qlen)), t)
            })
            .collect();
        let qs: Vec<Vec<u8>> = tasks.iter().map(|(q, _)| q.codes()).collect();
        let ts: Vec<Vec<u8>> = tasks.iter().map(|(_, t)| t.codes()).collect();
        let cols = pack_lanes([&qs[0], &qs[1], &qs[2], &qs[3]]);
        let rows = pack_lanes([&ts[0], &ts[1], &ts[2], &ts[3]]);
        let out = accel.run(&rows, &cols, 4).expect("bsw simulation");
        cells += out.stats.cells();
        cycles += out.stats.cycles;
        ctrl += out.stats.ctrl_insts();
        vliw += out.stats.vliw_issued();
        active += out.stats.vliw_utilization() * out.stats.vliw_issued() as f64;
        host_tasks.extend(tasks);
    }

    // Host reference: the same tasks through the scalar 8-bit kernel.
    let reps = scale.pick(50, 5);
    let start = Instant::now();
    let mut host_cells = 0u64;
    for _ in 0..reps {
        for (q, t) in &host_tasks {
            host_cells += bsw_i8(q, t, &scoring, 1000).cells;
        }
    }
    let cpu_gcups_1t = host_cells as f64 / start.elapsed().as_secs_f64() / 1e9;

    KernelMeasurement {
        kernel: Kernel::Bsw,
        run: AcceleratorRun {
            cells,
            cycles,
            ctrl_insts: ctrl,
            vliw_insts: vliw,
            vliw_utilization: if vliw == 0 { 0.0 } else { active / vliw as f64 },
        },
        simd_lanes: 4,
        units: 16,
        penalty: 1.0,
        cpu_gcups_1t,
        // Per 4-lane batch: (tlen + qlen) input words + 4 drained words,
        // over tlen x qlen cells x 4 lanes.
        dram_bytes_per_cell: 4.0 * (tlen + qlen + 4) as f64 / (tlen * qlen * 4) as f64,
    }
}

/// Measures the log-domain PairHMM configuration on read–haplotype pairs
/// of the paper's ~100 x 60 shape, plus the f64 forward host kernel.
pub fn measure_pairhmm(scale: Scale) -> KernelMeasurement {
    let mut rng = SmallRng::seed_from_u64(1002);
    let (read_len, hap_len, tasks) = scale.pick((100usize, 60usize, 2usize), (20, 14, 1));
    let params = PairHmmParams::gatk();
    let (qual, scale_fx) = (30u8, 1024);
    let genome = Genome::random(10_000, &mut rng);
    let accel = GendpPipeline::pairhmm(&params, qual, scale_fx, hap_len);

    let mut cells = 0u64;
    let mut cycles = 0u64;
    let mut ctrl = 0u64;
    let mut vliw = 0u64;
    let mut util = 0.0;
    let mut host_tasks = Vec::new();
    for k in 0..tasks {
        let pos = 100 * k + 7;
        let hap = genome.window(pos, hap_len);
        let read = MutationProfile::illumina().apply(&genome.window(pos, read_len), &mut rng);
        let read = read.window(0, read.len().min(read_len));
        let out = accel
            .run(&codes(&read), &codes(&hap), 4)
            .expect("pairhmm simulation");
        cells += out.stats.cells();
        cycles += out.stats.cycles;
        ctrl += out.stats.ctrl_insts();
        vliw += out.stats.vliw_issued();
        util += out.stats.vliw_utilization() * out.stats.vliw_issued() as f64;
        host_tasks.push((read, hap));
    }

    let reps = scale.pick(20, 3);
    let start = Instant::now();
    let mut host_cells = 0u64;
    for _ in 0..reps {
        for (read, hap) in &host_tasks {
            let quals = vec![qual; read.len()];
            let _ = forward_f64(read, &quals, hap, &params);
            host_cells += (read.len() * hap.len()) as u64;
        }
    }
    let cpu_gcups_1t = host_cells as f64 / start.elapsed().as_secs_f64() / 1e9;

    KernelMeasurement {
        kernel: Kernel::PairHmm,
        run: AcceleratorRun {
            cells,
            cycles,
            ctrl_insts: ctrl,
            vliw_insts: vliw,
            vliw_utilization: if vliw == 0 { 0.0 } else { util / vliw as f64 },
        },
        simd_lanes: 1,
        units: 16,
        penalty: 1.0,
        cpu_gcups_1t,
        // Inputs: read + haplotype; outputs: the last row's m/i pairs.
        dram_bytes_per_cell: 4.0 * (read_len + hap_len + 2 * hap_len) as f64
            / (read_len * hap_len) as f64,
    }
}

/// Measures POA alignment against a noisy-read graph, plus the host POA.
pub fn measure_poa(scale: Scale) -> KernelMeasurement {
    let mut rng = SmallRng::seed_from_u64(1003);
    let (window, seed_reads, probes) = scale.pick((150usize, 8usize, 2usize), (40, 4, 1));
    let genome = Genome::random(5_000, &mut rng);
    let truth = genome.window(50, window);
    let scoring = Scoring::racon();
    let mut poa = Poa::new();
    poa.add_sequence(&truth, &scoring);
    for _ in 0..seed_reads {
        poa.add_sequence(
            &MutationProfile::nanopore().apply(&truth, &mut rng),
            &scoring,
        );
    }
    let accel = GendpPipeline::poa(scoring);

    let mut cells = 0u64;
    let mut cycles = 0u64;
    let mut ctrl = 0u64;
    let mut vliw = 0u64;
    let mut util = 0.0;
    let mut probe_seqs = Vec::new();
    for _ in 0..probes {
        let probe = MutationProfile::nanopore().apply(&truth, &mut rng);
        let run = accel.run(&poa, &probe, 4).expect("poa simulation");
        cells += run.stats.cells();
        cycles += run.stats.cycles;
        ctrl += run.stats.ctrl_insts();
        vliw += run.stats.vliw_issued();
        util += run.stats.vliw_utilization() * run.stats.vliw_issued() as f64;
        probe_seqs.push(probe);
    }

    let reps = scale.pick(20, 3);
    let start = Instant::now();
    let mut host_cells = 0u64;
    for _ in 0..reps {
        for probe in &probe_seqs {
            host_cells += poa.align(probe, &scoring).cells;
        }
    }
    let cpu_gcups_1t = host_cells as f64 / start.elapsed().as_secs_f64() / 1e9;

    KernelMeasurement {
        kernel: Kernel::Poa,
        run: AcceleratorRun {
            cells,
            cycles,
            ctrl_insts: ctrl,
            vliw_insts: vliw,
            vliw_utilization: if vliw == 0 { 0.0 } else { util / vliw as f64 },
        },
        simd_lanes: 1,
        units: 16,
        penalty: 1.0,
        cpu_gcups_1t,
        // The paper charges POA 8 output bytes per cell for the traceback
        // directions (§7.2) on top of the streamed sequence inputs.
        dram_bytes_per_cell: 8.0 + 4.0 * 2.0 / window as f64,
    }
}

/// Measures chaining on the 64-PE concatenated array, plus the original
/// (N = 25) host kernel. The GenDP throughput is penalized by `64 / 25`
/// for the extra reordered cells, mirroring the paper's 3.72x adjustment
/// of its GPU/GenDP numbers (§6).
pub fn measure_chain(scale: Scale) -> KernelMeasurement {
    let mut rng = SmallRng::seed_from_u64(1004);
    let n_pes = scale.pick(64usize, 16);
    let read_len = scale.pick(3_000usize, 600);
    let genome = Genome::random(40_000, &mut rng);
    let read = MutationProfile::pacbio().apply(&genome.window(8_000, read_len), &mut rng);
    let idx = KmerIndex::build(genome.seq(), 15);
    let anchors = extract_anchors(&idx, &read);
    assert!(anchors.len() > 30, "chain workload too small");

    let params = ChainParams {
        n_prev: n_pes,
        ..ChainParams::minimap2(15.0)
    };
    let accel = GendpPipeline::chain(params);
    let run = accel.run(&anchors, n_pes).expect("chain simulation");

    let original = ChainParams::minimap2(15.0); // N = 25 on the host
    let reps = scale.pick(200, 20);
    let start = Instant::now();
    let mut host_cells = 0u64;
    for _ in 0..reps {
        host_cells += chain_original(&anchors, &original).cells;
    }
    let cpu_gcups_1t = host_cells as f64 / start.elapsed().as_secs_f64() / 1e9;

    KernelMeasurement {
        kernel: Kernel::Chain,
        run: AcceleratorRun::from_stats(&run.stats),
        simd_lanes: 1,
        units: 1, // the 64-PE chain is the whole tile
        penalty: n_pes as f64 / original.n_prev as f64,
        cpu_gcups_1t,
        // Per anchor: a 4-word record in and one score out, over n_pes
        // pair evaluations.
        dram_bytes_per_cell: 4.0 * 5.0 / n_pes as f64,
    }
}

/// Measures all four evaluated kernels (paper column order: BSW, Chain,
/// PairHMM, POA).
pub fn measure_all(scale: Scale) -> [KernelMeasurement; 4] {
    [
        measure_bsw(scale),
        measure_chain(scale),
        measure_pairhmm(scale),
        measure_poa(scale),
    ]
}

/// Measures the DTW extension kernel (paper Fig. 11).
pub fn measure_dtw(scale: Scale) -> AcceleratorRun {
    let mut rng = SmallRng::seed_from_u64(1005);
    let n = scale.pick(120usize, 24);
    let xs: Vec<i32> = (0..n)
        .map(|_| rand::Rng::gen_range(&mut rng, 0..1000))
        .collect();
    let ys: Vec<i32> = (0..n)
        .map(|_| rand::Rng::gen_range(&mut rng, 0..1000))
        .collect();
    let out = GendpPipeline::dtw()
        .run(&xs, &ys, 4)
        .expect("dtw simulation");
    AcceleratorRun::from_stats(&out.stats)
}

/// Measures the Bellman-Ford extension kernel (paper Fig. 11).
pub fn measure_bellman_ford(scale: Scale) -> AcceleratorRun {
    let mut rng = SmallRng::seed_from_u64(1006);
    let n = scale.pick(200usize, 40);
    let g = gendp::kernels::bellman_ford::random_roadmap(n, 4, 24, &mut rng);
    let rounds = scale.pick(12usize, 6);
    let run = GendpPipeline::bellman_ford()
        .run(&g, 0, rounds)
        .expect("bf simulation");
    AcceleratorRun::from_stats(&run.stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_measurements_produce_positive_rates() {
        for m in measure_all(Scale::quick()) {
            assert!(m.run.cells > 0, "{}", m.kernel);
            assert!(m.gendp_gcups() > 0.0, "{}", m.kernel);
            assert!(m.gendp_mcups_mm2() > 0.0);
            assert!(m.cpu_gcups_1t > 0.0);
            assert!(m.run.vliw_utilization > 0.0 && m.run.vliw_utilization <= 1.0);
        }
    }

    #[test]
    fn extension_kernels_run() {
        assert!(measure_dtw(Scale::quick()).cells > 0);
        assert!(measure_bellman_ford(Scale::quick()).cells > 0);
    }

    #[test]
    fn tile_area_matches_table12() {
        assert!((tile_area_7nm() * 64.0 - 44.3).abs() < 0.5);
    }
}
