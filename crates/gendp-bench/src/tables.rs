//! Text renderers for every table and figure of the paper's evaluation.
//!
//! Convention: each artifact prints the paper's published value next to
//! this reproduction's measured/modeled value, so EXPERIMENTS.md can
//! record both.

use std::fmt::Write as _;

use gendp::dpmap::analyze_tree_depth;
use gendp::kernels::chain::{map_read, ChainParams};
use gendp::kernels::dfgs;
use gendp::kernels::info::KERNELS;
use gendp::kernels::pairhmm::PairHmmParams;
use gendp::kernels::Scoring;
use gendp::model::area::{AreaBreakdown, Component};
use gendp::model::baselines::{Kernel, CPU_BASELINES, GPU_BASELINES, PAPER};
use gendp::model::dram::DramModel;
use gendp::model::power::PowerBreakdown;
use gendp::model::scalability::{scale_tiles, GPU_RAW_GCUPS};
use gendp::model::scalar_isa::{instructions_per_cell, ScalarIsa};
use gendp::model::scaling::{scale_power_to_7nm, GPU_DIE_AREA_MM2};
use gendp::model::softbrain::{softbrain_mappings, PAPER_OVERALL_SPEEDUP};
use gendp::model::throughput::geomean;
use gendp::model::tia::{estimate_tia, TiaPattern};
use gendp::seq::{Genome, KmerIndex, LongReadProfile};
use rand::{rngs::SmallRng, SeedableRng};

use crate::measure::{measure_bellman_ford, measure_dtw, KernelMeasurement};
use crate::Scale;

/// The four kernel DFGs in paper column order (BSW, Chain, PairHMM, POA).
pub fn kernel_dfgs() -> [gendp::dfg::Dfg; 4] {
    [
        dfgs::bsw_dfg(&Scoring::bwa_mem()),
        dfgs::chain_dfg(&ChainParams::minimap2(15.0)),
        dfgs::pairhmm_log_dfg(&PairHmmParams::gatk(), 1024),
        dfgs::poa_dfg(&Scoring::racon()),
    ]
}

/// Table 1: characteristics of the DP kernels.
pub fn table1() -> String {
    let mut s = String::from(
        "Table 1: Characteristics of DP kernels\n\
         kernel   | typical table | dependency                     | precision\n",
    );
    for k in KERNELS {
        let table = if k.typical_table.1 == 1 {
            format!("1D ~{}", k.typical_table.0)
        } else {
            format!("2D ~{}x{}", k.typical_table.0, k.typical_table.1)
        };
        let _ = writeln!(
            s,
            "{:8} | {:13} | {:30} | {}",
            k.name,
            table,
            k.dependency.to_string(),
            k.precision
        );
    }
    s.push_str("(pipeline time shares, paper §2.3: 31% / 70% / 47% / 75%)\n");
    s
}

/// Table 2: RF accesses and CU utilization for 1/2/3-level ALU trees.
pub fn table2() -> String {
    let mut s = String::from(
        "Table 2: ALU reduction trees with different levels\n\
         kernel   lvl | RF writes/cell (paper) | CU util (paper)\n",
    );
    for (i, dfg) in kernel_dfgs().iter().enumerate() {
        let name = Kernel::ALL[i].name();
        for lvl in 1..=3u8 {
            let st = analyze_tree_depth(dfg, lvl);
            let _ = writeln!(
                s,
                "{:8} {lvl}   | {:3} ({:3})              | {:5.1}% ({:5.1}%)",
                name,
                st.rf_accesses(),
                PAPER.rf_accesses[i][(lvl - 1) as usize],
                100.0 * st.cu_utilization(),
                100.0 * PAPER.cu_utilization[i][(lvl - 1) as usize],
            );
        }
    }
    s.push_str(
        "(our DFGs are independent re-derivations of the objective functions;\n\
         absolute operator counts differ from the authors', the 1>=2>=3 shape\n\
         and the utilization decline are the reproduced claims)\n",
    );
    s
}

/// Table 6: chaining accuracy, original minimap2 (N=25) vs reordered
/// (N=64), on simulated long reads against a repetitive genome.
pub fn table6(scale: Scale) -> String {
    let mut rng = SmallRng::seed_from_u64(2006);
    let genome_len = scale.pick(200_000usize, 30_000);
    let n_reads = scale.pick(300usize, 40);
    let genome = Genome::random_with_repeats(genome_len, 12, 2_000, &mut rng);
    let index = KmerIndex::build(genome.seq(), 15);
    let profile = LongReadProfile {
        min_len: 1_000,
        max_len: 8_000,
        ..LongReadProfile::pacbio()
    };
    let reads = profile.sample(&genome, n_reads, &mut rng);

    let evaluate = |params: &ChainParams, reordered: bool| -> (f64, f64) {
        let mut errors = 0usize;
        let mut lowq = Vec::new();
        for read in &reads {
            match map_read(&index, &read.seq, params, reordered) {
                None => errors += 1,
                Some(m) => {
                    let ok = (m.ref_start - read.true_pos as i32).abs() < 1_000;
                    if !ok {
                        errors += 1;
                    }
                    if m.mapq < 10 {
                        lowq.push(ok);
                    }
                }
            }
        }
        let err_rate = errors as f64 / reads.len() as f64;
        let lowq_err = if lowq.is_empty() {
            0.0
        } else {
            lowq.iter().filter(|&&ok| !ok).count() as f64 / lowq.len() as f64
        };
        let phred = if lowq_err <= 0.0 {
            60.0
        } else {
            -10.0 * lowq_err.log10()
        };
        (err_rate, phred)
    };

    let (err_orig, phred_orig) = evaluate(&ChainParams::minimap2(15.0), false);
    let (err_reord, phred_reord) = evaluate(&ChainParams::reordered(15.0), true);
    let mut s = String::from("Table 6: Chain accuracy comparison\n");
    let _ = writeln!(
        s,
        "                        | minimap2 (N=25)    | reordered (N=64)\n\
         map failure or error   | {:.4}% ({:.4}%) | {:.4}% ({:.4}%)\n\
         Phred of low-q (Q<10)  | {:.2} ({:.2})      | {:.2} ({:.2})",
        100.0 * err_orig,
        100.0 * PAPER.chain_accuracy.0,
        100.0 * err_reord,
        100.0 * PAPER.chain_accuracy.1,
        phred_orig,
        PAPER.chain_phred.0,
        phred_reord,
        PAPER.chain_phred.1,
    );
    let _ = writeln!(
        s,
        "({} simulated long reads on a {} bp repeat-seeded genome; the claim\n\
         reproduced is that the two orders have equivalent accuracy: \
         delta = {:+.4}%)",
        reads.len(),
        genome_len,
        100.0 * (err_reord - err_orig)
    );
    s
}

/// Table 7: DPAx area and power breakdown (28 nm component model).
pub fn table7() -> String {
    let mut s = String::from("Table 7: Breakdown of area and power of DPAx ASIC (28 nm)\n");
    let comps = [
        Component::ComputeUnitArray,
        Component::Decoder,
        Component::RegisterFile,
        Component::IntegerPe,
        Component::IntegerPeArray,
        Component::IntegerPeArrays,
        Component::FloatPe,
        Component::FloatPeArray,
        Component::DataBuffer,
        Component::InstructionBuffer,
        Component::Scratchpad,
        Component::Fifo,
    ];
    for c in comps {
        let (a, p) = c.area_power_28nm();
        let _ = writeln!(s, "{:28} | {:6.3} mm2 | {:6.3} W", c.name(), a, p);
    }
    let b = AreaBreakdown::dpax_28nm();
    let _ = writeln!(
        s,
        "logic subtotal               | {:6.3} mm2 | {:6.3} W\n\
         memory subtotal              | {:6.3} mm2 | {:6.3} W\n\
         total                        | {:6.3} mm2 | {:6.3} W   (paper: 5.391 / 3.569)",
        b.logic_area,
        b.logic_power,
        b.memory_area,
        b.memory_power,
        b.total_area(),
        b.total_power()
    );
    s
}

/// Table 8: DPAx + DRAM power split.
pub fn table8() -> String {
    let published = PowerBreakdown::dpax_28nm();
    let modeled = PowerBreakdown::from_models(
        &AreaBreakdown::dpax_28nm(),
        &DramModel::ddr4_2400_8ch(),
        33.0,
    );
    let mut s = String::from("Table 8: Breakdown of DPAx power (W)\n");
    let _ = writeln!(
        s,
        "        | static | dynamic | total\n\
         DPAx    | {:.3} ({:.3}) | {:.3} ({:.3}) | {:.3} ({:.3})\n\
         DRAM    | {:.3} ({:.3}) | {:.3} ({:.3}) | {:.3}\n\
         total   |        |         | {:.3} ({:.3})\n\
         (modeled (published); DRAM at ~33 GB/s average demand)",
        modeled.dpax_static,
        published.dpax_static,
        modeled.dpax_dynamic,
        published.dpax_dynamic,
        modeled.dpax_total(),
        published.dpax_total(),
        modeled.dram_static,
        published.dram_static,
        modeled.dram_dynamic,
        published.dram_dynamic,
        modeled.dram_static + modeled.dram_dynamic,
        modeled.total(),
        published.total(),
    );
    s
}

/// Table 9: SoftBrain mapping comparison.
pub fn table9() -> String {
    let mut s = String::from(
        "Table 9: Benchmark implementation on SoftBrain\n\
         kernel   | dim   | stages | padding | SIMD lanes(util) | eff cells/cyc | GenDP speedup (paper)\n",
    );
    for m in softbrain_mappings() {
        let _ = writeln!(
            s,
            "{:8} | {:5} | {:6} | {:6.1}% | {:2} ({:5.1}%)      | {:6.2}        | {:.2}x",
            m.kernel.name(),
            m.dim.to_string(),
            m.pipeline_stages,
            100.0 * m.padding_overhead,
            m.simd_lanes,
            100.0 * m.simd_utilization,
            m.effective_cells_per_cycle(),
            m.paper_gendp_speedup,
        );
    }
    let speeds: Vec<f64> = softbrain_mappings()
        .iter()
        .map(|m| m.paper_gendp_speedup)
        .collect();
    let _ = writeln!(
        s,
        "geomean speedup: {:.2}x (paper §7.3: {PAPER_OVERALL_SPEEDUP}x)",
        geomean(&speeds)
    );
    s
}

/// Table 10: triggered instructions required on TIA.
pub fn table10() -> String {
    let mut s = String::from(
        "Table 10: Triggered Instructions (TI) required on TIA\n\
         kernel   | TIs est (paper) | PEs est (paper)\n",
    );
    for (i, dfg) in kernel_dfgs().iter().enumerate() {
        let k = Kernel::ALL[i];
        let e = estimate_tia(dfg, TiaPattern::for_kernel(k));
        let _ = writeln!(
            s,
            "{:8} | {:3} ({:3})       | {:2} ({:2})",
            k.name(),
            e.tis,
            PAPER.tia_tis[i],
            e.pes,
            PAPER.tia_pes[i],
        );
    }
    s
}

/// Table 11: VLIW utilization, measured on the simulator.
pub fn table11(ms: &[KernelMeasurement; 4]) -> String {
    let mut s = String::from(
        "Table 11: VLIW utilization\n\
         kernel   | measured | paper\n",
    );
    for m in ms {
        let i = Kernel::ALL
            .iter()
            .position(|&k| k == m.kernel)
            .expect("kernel");
        let _ = writeln!(
            s,
            "{:8} | {:5.1}%   | {:5.1}%",
            m.kernel.name(),
            100.0 * m.run.vliw_utilization,
            100.0 * PAPER.vliw_utilization[i],
        );
    }
    s
}

/// Table 12: 64-tile scaling under the DRAM bandwidth ceiling.
pub fn table12(ms: &[KernelMeasurement; 4]) -> String {
    let dram = DramModel::ddr4_2400_8ch();
    let mut s = String::from("Table 12: GenDP and GPU raw performance comparison\n");
    let _ = writeln!(
        s,
        "                  | area (mm2) | raw perf (GCUPS) | speedup vs GPU\n\
         NVIDIA A100 GPU  | {:8.1}   | {:8.1}         | 1x",
        GPU_DIE_AREA_MM2, GPU_RAW_GCUPS,
    );
    // Per-kernel: one tile's sustained DRAM demand caps the tile count.
    let _ = writeln!(
        s,
        "per-kernel scaling (measured per-tile GCUPS x bytes/cell -> GB/s -> tiles):"
    );
    let mut agg_gcups = 0.0;
    for m in ms {
        let bw = m.gendp_gcups() * m.dram_bytes_per_cell;
        let r = scale_tiles(m.gendp_gcups(), m.dram_bytes_per_cell, &dram);
        agg_gcups += r.gcups;
        let _ = writeln!(
            s,
            "  {:8} | {:6.2} GCUPS/tile | {:5.2} B/cell | {:6.2} GB/s | {:2} tiles -> {:7.1} GCUPS ({:5.2}x GPU)",
            m.kernel.name(),
            m.gendp_gcups(),
            m.dram_bytes_per_cell,
            bw,
            r.tiles,
            r.gcups,
            r.speedup_vs_gpu,
        );
    }
    let _ = writeln!(
        s,
        "mean per-kernel aggregate: {:.1} GCUPS at each kernel's own tile count",
        agg_gcups / ms.len() as f64
    );
    let paper_point = scale_tiles(297.5 / 64.0, 0.5, &dram);
    let _ = writeln!(
        s,
        "paper point: 64 tiles, 44.3 mm2, 297.5 GCUPS, 6.17x (check: {} tiles, {:.1} GCUPS, {:.2}x)\n\
         (POA's 8 B/cell trace-back output makes it the bandwidth-bound\n\
         kernel, matching §7.2's \"bottleneck ... is the memory accesses\")",
        paper_point.tiles, paper_point.gcups, paper_point.speedup_vs_gpu,
    );
    s
}

/// Table 13: CPU baselines (paper platforms) plus this host's
/// single-thread Rust reference measurement.
pub fn table13(ms: &[KernelMeasurement; 4]) -> String {
    let mut s = String::from(
        "Table 13: CPU baselines (runtime in seconds on the paper's datasets)\n\
         CPU                              | SIMD   | thr |    BSW |  Chain | PairHMM |   POA\n",
    );
    for r in CPU_BASELINES {
        let _ = writeln!(
            s,
            "{:32} | {:6} | {:3} | {:6.4} | {:6.3} | {:7.3} | {:5.1}",
            r.cpu,
            r.simd,
            r.threads,
            r.runtime_s[0],
            r.runtime_s[1],
            r.runtime_s[2],
            r.runtime_s[3]
        );
    }
    let _ = writeln!(
        s,
        "this host (Rust scalar, 1 thread) GCUPS: BSW {:.3} | Chain {:.3} | PairHMM {:.3} | POA {:.3}\n\
         (the paper's rows are recorded constants; AVX-512/CUDA binaries cannot run here — DESIGN.md §4)",
        ms[0].cpu_gcups_1t, ms[1].cpu_gcups_1t, ms[2].cpu_gcups_1t, ms[3].cpu_gcups_1t
    );
    s
}

/// Table 14: GPU baselines (recorded constants).
pub fn table14() -> String {
    let mut s = String::from(
        "Table 14: GPU baselines (runtime in seconds on the paper's datasets)\n\
         GPU               | arch  | CUDA |   BSW |  Chain | PairHMM |   POA\n",
    );
    for r in GPU_BASELINES {
        let _ = writeln!(
            s,
            "{:17} | {:5} | {:4} | {:5.3} | {:6.3} | {:7.3} | {:5.2}",
            r.gpu, r.arch, r.cuda, r.runtime_s[0], r.runtime_s[1], r.runtime_s[2], r.runtime_s[3]
        );
    }
    s
}

/// Table 15: GenDP speedups over the CPU and GPU baselines.
pub fn table15(ms: &[KernelMeasurement; 4]) -> String {
    let mut s = String::from(
        "Table 15: GenDP speedup over CPU and GPU baselines (MCUPS/mm2, 7 nm)\n\
         kernel   | CPU (paper) | GPU (paper) | GenDP meas (paper) | vs CPU (paper) | vs GPU (paper)\n",
    );
    for m in ms {
        let i = Kernel::ALL
            .iter()
            .position(|&k| k == m.kernel)
            .expect("kernel");
        let row = PAPER.table15_row(m.kernel);
        let meas = m.gendp_mcups_mm2();
        let _ = writeln!(
            s,
            "{:8} | {:7.1}     | {:7.1}     | {:8.0} ({:6.0})  | {:6.1}x ({:5.1}x) | {:6.1}x ({:5.1}x)",
            m.kernel.name(),
            row.cpu_mcups_mm2,
            row.gpu_mcups_mm2,
            meas,
            row.gendp_mcups_mm2,
            meas / row.cpu_mcups_mm2,
            row.speedup_cpu,
            meas / row.gpu_mcups_mm2,
            row.speedup_gpu,
        );
        let _ = i;
    }
    s.push_str(
        "(measured = cycle-level simulation at 2 GHz, one tile scaled per kernel\n\
         configuration; CPU/GPU denominators are the paper's recorded baselines)\n",
    );
    s
}

/// Fig. 10(a): throughput/mm² vs CPU and GPU (geomeans).
pub fn fig10a(ms: &[KernelMeasurement; 4]) -> String {
    let mut vs_cpu = Vec::new();
    let mut vs_gpu = Vec::new();
    let mut s = String::from(
        "Fig 10(a): normalized throughput/mm2 (MCUPS/mm2, 7 nm)\n\
         kernel   | GenDP measured | speedup vs CPU | speedup vs GPU\n",
    );
    for m in ms {
        let row = PAPER.table15_row(m.kernel);
        let meas = m.gendp_mcups_mm2();
        let c = meas / row.cpu_mcups_mm2;
        let g = meas / row.gpu_mcups_mm2;
        vs_cpu.push(c);
        vs_gpu.push(g);
        let _ = writeln!(
            s,
            "{:8} | {:12.0}   | {:8.1}x      | {:8.1}x",
            m.kernel.name(),
            meas,
            c,
            g
        );
    }
    let _ = writeln!(
        s,
        "geomean: vs CPU {:.1}x (paper {:.1}x) | vs GPU {:.1}x (paper {:.1}x)",
        geomean(&vs_cpu),
        PAPER.headline_speedups.0,
        geomean(&vs_gpu),
        PAPER.headline_speedups.1,
    );
    s
}

/// Fig. 10(b): throughput/W vs the GPU.
pub fn fig10b(ms: &[KernelMeasurement; 4]) -> String {
    // One tile at 7 nm plus its DRAM.
    let tile_power = scale_power_to_7nm(PowerBreakdown::dpax_28nm().dpax_total()) + 1.091;
    let gpu_tdp = 300.0;
    let mut ratios = Vec::new();
    let mut s = String::from(
        "Fig 10(b): throughput/Watt vs GPU (GCUPS/W)\n\
         kernel   | GenDP | GPU   | ratio\n",
    );
    for m in ms {
        let row = PAPER.table15_row(m.kernel);
        let gendp = m.gendp_gcups() / tile_power;
        let gpu = row.gpu_gcups / gpu_tdp;
        ratios.push(gendp / gpu);
        let _ = writeln!(
            s,
            "{:8} | {:5.2} | {:5.3} | {:6.1}x",
            m.kernel.name(),
            gendp,
            gpu,
            gendp / gpu
        );
    }
    let _ = writeln!(
        s,
        "geomean {:.1}x (paper: {:.1}x); tile power {:.2} W at 7 nm incl. DRAM",
        geomean(&ratios),
        PAPER.perf_per_watt_vs_gpu,
        tile_power
    );
    s
}

/// Fig. 10(c): GenDP vs the custom ASIC accelerators.
pub fn fig10c(ms: &[KernelMeasurement; 4]) -> String {
    let mut s = String::from(
        "Fig 10(c): GenDP vs custom genomics ASICs (MCUPS/mm2)\n\
         kernel   | ASIC (paper)  | GenDP measured (paper) | slowdown\n",
    );
    let mut slowdowns = Vec::new();
    for m in ms {
        let row = PAPER.table15_row(m.kernel);
        if let Some(asic) = row.asic_mcups_mm2 {
            let meas = m.gendp_mcups_mm2();
            let slow = asic / meas;
            slowdowns.push(slow);
            let _ = writeln!(
                s,
                "{:8} | {:8.0}      | {:8.0} ({:6.0})      | {:.2}x",
                m.kernel.name(),
                asic,
                meas,
                row.gendp_mcups_mm2,
                slow
            );
        }
    }
    let _ = writeln!(
        s,
        "geomean slowdown {:.2}x (paper: {:.1}x) — the price of programmability (§7.3)",
        geomean(&slowdowns),
        PAPER.asic_slowdown_geomean
    );
    s
}

/// Fig. 10(d): compute instructions per cell, GenDP vs riscv64/x86-64.
pub fn fig10d() -> String {
    let mut s = String::from(
        "Fig 10(d): instructions per cell update\n\
         kernel   | GenDP VLIW | riscv64 | x86-64 | riscv/GenDP | x86/GenDP\n",
    );
    let mut red_r = Vec::new();
    let mut red_x = Vec::new();
    for (i, dfg) in kernel_dfgs().iter().enumerate() {
        let gendp = gendp::dpmap::map_dfg(dfg).program.len() as u32;
        let r = instructions_per_cell(dfg, ScalarIsa::Riscv64);
        let x = instructions_per_cell(dfg, ScalarIsa::X8664);
        red_r.push(r as f64 / gendp as f64);
        red_x.push(x as f64 / gendp as f64);
        let _ = writeln!(
            s,
            "{:8} | {:10} | {:7} | {:6} | {:9.1}x | {:8.1}x",
            Kernel::ALL[i].name(),
            gendp,
            r,
            x,
            r as f64 / gendp as f64,
            x as f64 / gendp as f64,
        );
    }
    let _ = writeln!(
        s,
        "average reduction: riscv64 {:.1}x (paper {:.1}x) | x86-64 {:.1}x (paper {:.1}x)",
        red_r.iter().sum::<f64>() / 4.0,
        PAPER.isa_reduction.0,
        red_x.iter().sum::<f64>() / 4.0,
        PAPER.isa_reduction.1,
    );
    s
}

/// Fig. 11: the DTW and Bellman-Ford extension kernels.
pub fn fig11(scale: Scale) -> String {
    let dtw = measure_dtw(scale);
    let bf = measure_bellman_ford(scale);
    let dtw_dfg = dfgs::dtw_dfg();
    let bf_dfg = dfgs::bellman_ford_dfg();
    let mut s = String::from(
        "Fig 11: GenDP on the broader-field kernels (paper §7.6.5)\n\
         kernel        | cells | cells/cyc | VLIW util | insts/cell | riscv64/GenDP | x86-64/GenDP\n",
    );
    for (name, run, dfg) in [("DTW", dtw, &dtw_dfg), ("Bellman-Ford", bf, &bf_dfg)] {
        let gendp = gendp::dpmap::map_dfg(dfg).program.len() as u32;
        let r = instructions_per_cell(dfg, ScalarIsa::Riscv64);
        let x = instructions_per_cell(dfg, ScalarIsa::X8664);
        let _ = writeln!(
            s,
            "{:13} | {:5} | {:9.3} | {:8.1}% | {:10.1} | {:12.1}x | {:11.1}x",
            name,
            run.cells,
            run.cells_per_cycle(),
            100.0 * run.vliw_utilization,
            run.insts_per_cell(),
            r as f64 / gendp as f64,
            x as f64 / gendp as f64,
        );
    }
    s.push_str(
        "(both kernels run on the same framework unchanged: DTW via the 2-D\n\
         wavefront mapping, Bellman-Ford from the scratchpad — §7.6)\n",
    );
    s
}

/// §6 analog: the pruning-based PairHMM scan covers 97.7% of the paper's
/// workload; measure the active-cell fraction of our pruned forward scan
/// on GATK-like read–haplotype pairs.
pub fn pruning_fraction(scale: Scale) -> String {
    use gendp::kernels::pairhmm::forward_pruned;
    use gendp::seq::HaplotypeProfile;
    let mut rng = SmallRng::seed_from_u64(2020);
    let n_pairs = scale.pick(200usize, 20);
    let genome = Genome::random(50_000, &mut rng);
    let pairs = HaplotypeProfile::gatk_like().sample(&genome, n_pairs, &mut rng);
    let params = PairHmmParams::gatk();
    let mut total = 0u64;
    let mut active = 0u64;
    let mut max_rel_err = 0f64;
    for p in &pairs {
        let (pruned, st) = forward_pruned(&p.read.seq, &p.read.quals, &p.haplotype, &params, 1e-12);
        let full =
            gendp::kernels::pairhmm::forward_f64(&p.read.seq, &p.read.quals, &p.haplotype, &params);
        max_rel_err = max_rel_err.max(((pruned - full) / full).abs());
        total += st.cells_total;
        active += st.cells_active;
    }
    let mut s = String::from("Pruning-based PairHMM scan (paper §6)\n");
    let _ = writeln!(
        s,
        "pairs: {}  cells: {}  active: {}  active fraction: {:.1}%",
        pairs.len(),
        total,
        active,
        100.0 * active as f64 / total as f64,
    );
    let _ = writeln!(
        s,
        "max relative log-likelihood error vs full forward: {max_rel_err:.2e}"
    );
    s.push_str(
        "(the paper runs the scan phase - 97.7% of its workload - on DPAx and\n\
         the remainder on the host; the measured fraction shows how much of\n\
         the table the scan touches on GATK-like inputs)\n",
    );
    s
}

/// §7.6.1 analog: the distribution of POA dependency distances. The paper
/// supports distances up to 128 rows on-chip and reports 2.4% of its
/// workload exceeding that (executed on the host).
pub fn dependency_range(scale: Scale) -> String {
    use gendp::kernels::poa::Poa;
    use gendp::seq::{MutationProfile, ReadGroupProfile};
    let mut rng = SmallRng::seed_from_u64(2021);
    let (window, groups) = scale.pick((400usize, 4usize), (80, 2));
    let genome = Genome::random(20_000, &mut rng);
    let profile = ReadGroupProfile {
        window_len: window,
        min_reads: 10,
        max_reads: 16,
        errors: MutationProfile::nanopore(),
    };
    let mut hist = [0u64; 4]; // 1, 2-16, 17-128, >128
    for group in profile.sample(&genome, groups, &mut rng) {
        let mut poa = Poa::new();
        for (k, read) in group.reads.iter().enumerate() {
            // Late reads occasionally carry a long deletion — the paper's
            // stated source of ultra-long dependencies (§6, §7.6.1).
            let read = if k + 2 >= group.reads.len() && read.len() > 250 {
                let dlen = rand::Rng::gen_range(&mut rng, 150..280usize);
                let at = rand::Rng::gen_range(&mut rng, 20..read.len() - dlen - 20);
                let mut cut: Vec<gendp::seq::Base> = read.bases()[..at].to_vec();
                cut.extend_from_slice(&read.bases()[at + dlen..]);
                gendp::seq::DnaSeq::from(cut)
            } else {
                read.clone()
            };
            poa.add_sequence(&read, &Scoring::racon());
        }
        let order = poa.topological_order();
        let rank = {
            let mut r = vec![0usize; poa.node_count()];
            for (k, &v) in order.iter().enumerate() {
                r[v] = k;
            }
            r
        };
        for &v in &order {
            for &(u, _) in poa.preds(v) {
                let d = rank[v] - rank[u];
                let bucket = match d {
                    1 => 0,
                    2..=16 => 1,
                    17..=128 => 2,
                    _ => 3,
                };
                hist[bucket] += 1;
            }
        }
    }
    let total: u64 = hist.iter().sum();
    let pct = |k: usize| 100.0 * hist[k] as f64 / total.max(1) as f64;
    let mut s = String::from("POA dependency-distance distribution (paper §7.6.1)\n");
    let rows = [("1", 0usize), ("2-16", 1), ("17-128", 2), (">128", 3)];
    for (label, k) in rows {
        let _ = writeln!(
            s,
            "row distance {:7}: {:7} ({:5.2}%)",
            label,
            hist[k],
            pct(k)
        );
    }
    s.push_str(
        "(paper: 2.4% of its POA workload exceeds distance 128 and runs on\n\
         the host; on-chip support covers distances <= 128. Long deletions\n\
         in late reads drive the tail; under linear-gap scoring, spurious\n\
         matches inside deleted regions fragment very long bridges, so the\n\
         measured tail sits almost entirely within the on-chip range.)\n",
    );
    s
}

/// Artifact-appendix Table 16 analog: simulated cells vs host wall time
/// for each kernel configuration, showing how simulation cost scales.
pub fn table16(scale: Scale) -> String {
    use std::time::Instant;
    let mut s = String::from(
        "Table 16 (artifact appendix): simulation cost on this host
         kernel   | simulated cells | sim cycles | host seconds | cells/s (host)
",
    );
    type Measurer = Box<dyn Fn() -> crate::measure::KernelMeasurement>;
    let runs: [(&str, Measurer); 4] = [
        ("BSW", Box::new(move || crate::measure::measure_bsw(scale))),
        (
            "Chain",
            Box::new(move || crate::measure::measure_chain(scale)),
        ),
        (
            "PairHMM",
            Box::new(move || crate::measure::measure_pairhmm(scale)),
        ),
        ("POA", Box::new(move || crate::measure::measure_poa(scale))),
    ];
    for (name, f) in runs {
        let start = Instant::now();
        let m = f();
        let secs = start.elapsed().as_secs_f64();
        let _ = writeln!(
            s,
            "{:8} | {:15} | {:10} | {:12.3} | {:10.0}",
            name,
            m.run.cells,
            m.run.cycles,
            secs,
            m.run.cells as f64 / secs,
        );
    }
    s.push_str(
        "(the paper's full datasets need ~250 simulation hours on its simulator;
         scale workloads with the same trade-off via --quick vs full runs)
",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::measure_all;

    #[test]
    fn static_tables_render() {
        for t in [
            table1(),
            table2(),
            table7(),
            table8(),
            table9(),
            table10(),
            table14(),
            fig10d(),
        ] {
            assert!(t.lines().count() >= 4, "{t}");
        }
    }

    #[test]
    fn measured_tables_render_quick() {
        let ms = measure_all(Scale::quick());
        for t in [
            table11(&ms),
            table12(&ms),
            table13(&ms),
            table15(&ms),
            fig10a(&ms),
            fig10b(&ms),
            fig10c(&ms),
        ] {
            assert!(t.lines().count() >= 4, "{t}");
        }
    }

    #[test]
    fn chain_accuracy_table_renders_quick() {
        let t = table6(Scale::quick());
        assert!(t.contains("minimap2"));
        assert!(t.contains("reordered"));
    }

    #[test]
    fn fig11_renders_quick() {
        let t = fig11(Scale::quick());
        assert!(t.contains("DTW"));
        assert!(t.contains("Bellman-Ford"));
    }

    #[test]
    fn extra_artifacts_render_quick() {
        let p = pruning_fraction(Scale::quick());
        assert!(p.contains("active fraction"));
        let d = dependency_range(Scale::quick());
        assert!(d.contains(">128"));
        let t = table16(Scale::quick());
        assert!(t.contains("cells/s"));
    }
}
