//! Parallel tile sweep: run a batch of independent accelerator tasks
//! across host threads (paper Fig. 4: arrays work on independent tasks, so
//! throughput scales linearly in array count — and simulating them is
//! embarrassingly parallel for the same reason).
//!
//! [`run_batch`] is a work-stealing sweep over any [`Accelerator`]: worker
//! threads claim tasks from a shared atomic index, each task runs a
//! self-contained cycle-level simulation, and results land in submission
//! order regardless of which worker finished first. Plain [`std::thread`]
//! — no external dependencies.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use gendp_dpax::SimError;

use crate::accel::Accelerator;

/// One task's result slot: filled by whichever worker claims the task.
type ResultSlot<T> = Mutex<Option<Result<T, SimError>>>;

/// Runs every task in `tasks` on `workers` host threads and returns each
/// task's result in submission order.
///
/// Tasks are claimed dynamically (an atomic work index), so long tasks do
/// not convoy short ones behind a static partition. Results are
/// deterministic: each task's value, statistics and error (if any) are
/// independent of the worker count and claim order.
///
/// `workers` is clamped to `1..=tasks.len()`; `workers == 1` degenerates
/// to a sequential sweep on the calling thread's children.
pub fn run_batch<'t, A>(
    accel: &A,
    tasks: &[A::Task<'t>],
    workers: usize,
) -> Vec<Result<A::Output, SimError>>
where
    A: Accelerator + Sync,
    A::Task<'t>: Sync,
    A::Output: Send,
{
    if tasks.is_empty() {
        return Vec::new();
    }
    let workers = workers.clamp(1, tasks.len());
    let next = AtomicUsize::new(0);
    let slots: Vec<ResultSlot<A::Output>> = tasks.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks.len() {
                    break;
                }
                let result = accel.run_task(&tasks[i]);
                *slots[i].lock().expect("unpoisoned result slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("unpoisoned result slot")
                .expect("every claimed task stores a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::{TaskOutput, WavefrontTask};
    use crate::pipeline::{bsw_score, GendpPipeline};
    use gendp_kernels::{bsw_i32, AlignMode, Scoring};
    use gendp_seq::DnaSeq;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn batch_results_are_in_submission_order_and_worker_independent() {
        let scoring = Scoring::bwa_mem();
        let accel = GendpPipeline::bsw(&scoring);
        let mut rng = SmallRng::seed_from_u64(17);
        let pairs: Vec<(DnaSeq, DnaSeq)> = (0..6)
            .map(|k| {
                (
                    DnaSeq::random(8 + k, &mut rng),
                    DnaSeq::random(10 + k, &mut rng),
                )
            })
            .collect();
        let rows_cols: Vec<(Vec<i32>, Vec<i32>)> = pairs
            .iter()
            .map(|(q, t)| {
                (
                    t.codes().iter().map(|&c| c as i32).collect(),
                    q.codes().iter().map(|&c| c as i32).collect(),
                )
            })
            .collect();
        let tasks: Vec<WavefrontTask<'_>> = rows_cols
            .iter()
            .map(|(rows, cols)| WavefrontTask {
                rows,
                cols,
                n_pes: 4,
                band: None,
            })
            .collect();

        let parallel = run_batch(&accel, &tasks, 4);
        let sequential = run_batch(&accel, &tasks, 1);
        assert_eq!(parallel.len(), pairs.len());
        for (k, (run, (q, t))) in parallel.iter().zip(&pairs).enumerate() {
            let out = run.as_ref().expect("simulation");
            let expect = bsw_i32(q, t, &scoring, 1000, AlignMode::Local);
            assert_eq!(bsw_score(out), expect.score, "task {k}");
            let seq_out = sequential[k].as_ref().expect("sequential");
            assert_eq!(out.stats(), seq_out.stats(), "task {k} stats");
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let accel = GendpPipeline::dtw();
        let tasks: Vec<WavefrontTask<'_>> = Vec::new();
        assert!(run_batch(&accel, &tasks, 8).is_empty());
    }
}
