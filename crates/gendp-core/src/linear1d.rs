//! Control-program generation for the 1-D chaining table (paper
//! Fig. 5(c,d)): the 16 integer PE arrays concatenate into one large
//! systolic array; anchors stream through it while finalized anchor
//! records return through the FIFO and are broadcast to every PE ("the
//! value of cell #0 is loaded from the FIFO to each PE", §3.1) — the
//! broadcast runs at wire speed while residents advance one PE per update,
//! so each resident meets a different finalized parent at every PE.
//!
//! With an array of `P` PEs this computes exactly the reordered chaining
//! of Guo et al. with window `N = P` (each anchor is updated by its `P`
//! immediate predecessors), which in turn equals the original minimap2
//! recurrence with the same window — validated against
//! [`gendp_kernels::chain::chain_reordered`].

use gendp_dpax::{Engine, PeArray, PeArrayConfig, RunStats, SimError, TierPolicy};

use crate::accel::PreparedTask;
use gendp_dpmap::{map_dfg, Mapping};
use gendp_isa::{ControlInst, ControlProgram, Loc, Luts, Mode, Space, Word};
use gendp_kernels::chain::ChainParams;
use gendp_kernels::dfgs::chain_dfg;
use gendp_seq::Anchor;

/// A configured chaining accelerator.
#[derive(Debug)]
pub struct ChainAccelerator {
    mapping: Mapping,
    params: ChainParams,
    budget_scale: u64,
    /// Execution-tier selection for task runs.
    tiers: TierPolicy,
}

/// Functional result of one chaining task on DPAx.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainRun {
    /// Final chain score per anchor, in input order.
    pub scores: Vec<i32>,
    /// Simulator statistics.
    pub stats: RunStats,
}

/// The `qi` placed in dummy parent records: far beyond any real position,
/// so every validity select rejects the link.
const DUMMY_POS: i32 = 1 << 28;

impl ChainAccelerator {
    /// Maps the chaining objective function.
    pub fn new(params: ChainParams) -> Self {
        ChainAccelerator {
            mapping: map_dfg(&chain_dfg(&params)),
            params,
            budget_scale: 1,
            tiers: TierPolicy::default(),
        }
    }

    /// Scales the internally derived cycle budget (retry escalation after
    /// a [`SimError::Timeout`]); the budget is only a cutoff, never a
    /// result change.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn budget_scale(mut self, scale: u64) -> Self {
        assert!(scale > 0, "budget scale must be positive");
        self.budget_scale = scale;
        self
    }

    /// Selects the execution-tier policy (certified decoded simulation
    /// with automatic fallback by default; all tiers are bit-identical).
    pub fn tiers(mut self, tiers: TierPolicy) -> Self {
        self.tiers = tiers;
        self
    }

    /// Selects the simulator execution engine.
    #[deprecated(
        since = "0.2.0",
        note = "use `tiers(TierPolicy::...)`; raw engines no longer select the execution path"
    )]
    #[allow(deprecated)] // shim body is the one sanctioned from_engine caller
    pub fn engine(self, engine: Engine) -> Self {
        self.tiers(TierPolicy::from_engine(engine))
    }

    /// The chaining parameters (window = the PE count passed to
    /// [`run`](Self::run)).
    pub fn params(&self) -> &ChainParams {
        &self.params
    }

    /// The DPMap result for the objective function.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    fn ext(&self, name: &str) -> u16 {
        self.mapping.layout.ext_slot(name).expect("chain ext")
    }

    fn pe_program(&self, p: usize, n_pes: usize, n_anchors: usize) -> ControlProgram {
        let mut prog = ControlProgram::new();
        let (qi, ri, fi) = (self.ext("qi"), self.ext("ri"), self.ext("fi"));
        let (qj, rj, spanj, fj) = (
            self.ext("qj"),
            self.ext("rj"),
            self.ext("spanj"),
            self.ext("fj"),
        );
        let fj_out = self
            .mapping
            .layout
            .output_slot("fj")
            .expect("chain output fj");
        let last = p == n_pes - 1;
        let in_loc = Loc::port(Space::In);
        let out_loc = Loc::port(Space::Out);
        // PE k's resident at local iteration i is anchor a_i, and it must
        // be paired with finalized parent a_{i - (n_pes - k)}: the first
        // `n_pes - k` iterations use invalid dummy parents, later ones pop
        // the broadcast FIFO.
        let warmup = n_pes - p;

        // Unused parent-tracking inputs are pinned once.
        prog.push(ControlInst::Li {
            dest: Loc::rf(self.ext("idx_i")),
            imm: 0,
        });
        prog.push(ControlInst::Li {
            dest: Loc::rf(self.ext("pj")),
            imm: 0,
        });

        let send_resident = |prog: &mut ControlProgram| {
            if last {
                // Finalized: (q, r, f) to the FIFO, the score to the output
                // buffer.
                prog.push(ControlInst::mv(Loc::port(Space::Fifo), Loc::rf(qj)));
                prog.push(ControlInst::mv(Loc::port(Space::Fifo), Loc::rf(rj)));
                prog.push(ControlInst::mv(Loc::port(Space::Fifo), Loc::rf(fj_out)));
                prog.push(ControlInst::mv(out_loc, Loc::rf(fj_out)));
            } else {
                prog.push(ControlInst::mv(out_loc, Loc::rf(qj)));
                prog.push(ControlInst::mv(out_loc, Loc::rf(rj)));
                prog.push(ControlInst::mv(out_loc, Loc::rf(spanj)));
                prog.push(ControlInst::mv(out_loc, Loc::rf(fj_out)));
            }
        };

        for i in 0..n_anchors {
            // (a) ship the previous resident onward first: the last PE's
            // push is the very record it pops as its next parent.
            if i > 0 {
                send_resident(&mut prog);
            }
            // (b) the finalized parent record for this iteration.
            if i < warmup {
                // Pipeline warm-up: invalid dummy parents.
                prog.push(ControlInst::Li {
                    dest: Loc::rf(qi),
                    imm: DUMMY_POS,
                });
                prog.push(ControlInst::Li {
                    dest: Loc::rf(ri),
                    imm: DUMMY_POS,
                });
                prog.push(ControlInst::Li {
                    dest: Loc::rf(fi),
                    imm: 0,
                });
            } else {
                prog.push(ControlInst::mv(Loc::rf(qi), Loc::port(Space::Fifo)));
                prog.push(ControlInst::mv(Loc::rf(ri), Loc::port(Space::Fifo)));
                prog.push(ControlInst::mv(Loc::rf(fi), Loc::port(Space::Fifo)));
            }
            // (c) take the next resident.
            prog.push(ControlInst::mv(Loc::rf(qj), in_loc));
            prog.push(ControlInst::mv(Loc::rf(rj), in_loc));
            prog.push(ControlInst::mv(Loc::rf(spanj), in_loc));
            prog.push(ControlInst::mv(Loc::rf(fj), in_loc));
            // (d) update it.
            prog.push(ControlInst::set_compute(0));
        }
        // Flush the final resident.
        if n_anchors > 0 {
            send_resident(&mut prog);
        }
        prog.push(ControlInst::Halt);
        prog
    }

    /// Runs one chaining task on a `n_pes`-PE array (the lookahead window
    /// equals `n_pes`; the paper's configuration is 64 = 16 concatenated
    /// 4-PE arrays).
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics if `anchors` is empty or unsorted.
    pub fn run(&self, anchors: &[Anchor], n_pes: usize) -> Result<ChainRun, SimError> {
        let mut prep = self.prepare(anchors, n_pes);
        let stats = prep.execute()?;
        let scores = prep.output().iter().map(|w| w.as_i32()).collect();
        Ok(ChainRun { scores, stats })
    }

    /// Binds one chaining task to a loaded array for repeated
    /// [`PreparedTask::execute`] replays. [`run`](Self::run) is `prepare`
    /// + one execute + output parsing.
    ///
    /// # Panics
    ///
    /// Panics if `anchors` is empty or unsorted.
    pub fn prepare(&self, anchors: &[Anchor], n_pes: usize) -> PreparedTask {
        assert!(!anchors.is_empty(), "no anchors");
        assert!(
            anchors.windows(2).all(|w| w[0] <= w[1]),
            "anchors must be sorted"
        );
        let array = self.build_array(anchors.len(), n_pes);
        // Residents enter as (q, r, span, f0 = span) records.
        let inputs = anchors
            .iter()
            .flat_map(|a| [a.qpos, a.rpos, a.span, a.span])
            .map(Word::from_i32)
            .collect();
        let budget =
            ((anchors.len() as u64 + n_pes as u64) * (self.mapping.program.len() as u64 + 24) * 4
                + 10_000)
                .saturating_mul(self.budget_scale);
        PreparedTask::new(array, inputs, budget)
    }

    /// Statically verifies the programs generated for an `n_anchors`-anchor
    /// task on a `n_pes`-PE array, without running them.
    pub fn verify(&self, n_anchors: usize, n_pes: usize) -> gendp_verify::Report {
        self.build_array(n_anchors, n_pes).verify_programs()
    }

    /// Builds the loaded array for a task shape (shared by `run` and
    /// `verify`); inputs are fed separately.
    fn build_array(&self, n_anchors: usize, n_pes: usize) -> PeArray {
        let mut cfg = PeArrayConfig::with_pes(n_pes)
            .mode(Mode::Int32)
            .luts(Luts::default())
            .fifo_broadcast()
            .tiers(self.tiers);
        cfg.rf_slots = cfg.rf_slots.max(self.mapping.layout.slot_count() as usize);
        cfg.fifo_capacity = cfg.fifo_capacity.max(3 * (n_pes + 4));
        let mut array = PeArray::new(cfg);
        for p in 0..n_pes {
            array.load_pe_control(p, self.pe_program(p, n_pes, n_anchors));
        }
        array.load_compute_all(self.mapping.program.clone());
        array
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendp_kernels::chain::chain_reordered;
    use gendp_seq::{extract_anchors, DnaSeq, Genome, KmerIndex, MutationProfile};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn diagonal_anchors(n: usize, step: i32, span: i32) -> Vec<Anchor> {
        (0..n as i32)
            .map(|i| Anchor {
                rpos: 100 + i * step,
                qpos: 50 + i * step,
                span,
            })
            .collect()
    }

    fn check_against_reference(anchors: &[Anchor], n_pes: usize) {
        let params = ChainParams {
            n_prev: n_pes,
            ..ChainParams::minimap2(15.0)
        };
        let acc = ChainAccelerator::new(params);
        let run = acc.run(anchors, n_pes).expect("simulation");
        let expect = chain_reordered(anchors, &params);
        assert_eq!(run.scores, expect.scores);
        assert_eq!(run.stats.cells(), (anchors.len() * n_pes) as u64);
    }

    #[test]
    fn collinear_anchors_match_reference() {
        check_against_reference(&diagonal_anchors(30, 20, 15), 8);
    }

    #[test]
    fn single_anchor() {
        check_against_reference(&diagonal_anchors(1, 20, 15), 4);
    }

    #[test]
    fn real_read_anchors_match_reference() {
        let mut rng = SmallRng::seed_from_u64(21);
        let g = Genome::random(8_000, &mut rng);
        let read = MutationProfile::pacbio().apply(&g.window(2_000, 1_200), &mut rng);
        let idx = KmerIndex::build(g.seq(), 14);
        let anchors = extract_anchors(&idx, &read);
        assert!(anchors.len() > 50, "got {} anchors", anchors.len());
        check_against_reference(&anchors, 8);
    }

    #[test]
    fn random_anchor_sets_match_reference() {
        let mut rng = SmallRng::seed_from_u64(22);
        for _ in 0..3 {
            let mut anchors: Vec<Anchor> = (0..rng.gen_range(10..60))
                .map(|_| Anchor {
                    rpos: rng.gen_range(0..5_000),
                    qpos: rng.gen_range(0..3_000),
                    span: 15,
                })
                .collect();
            anchors.sort_unstable();
            anchors.dedup();
            check_against_reference(&anchors, 6);
        }
    }

    #[test]
    fn window_is_pe_count() {
        // With fewer PEs than predecessors, distant links are missed
        // exactly as a smaller window would miss them.
        let anchors = diagonal_anchors(20, 20, 15);
        let acc4 = ChainAccelerator::new(ChainParams {
            n_prev: 4,
            ..ChainParams::minimap2(15.0)
        });
        let run = acc4.run(&anchors, 4).unwrap();
        let expect = chain_reordered(
            &anchors,
            &ChainParams {
                n_prev: 4,
                ..ChainParams::minimap2(15.0)
            },
        );
        assert_eq!(run.scores, expect.scores);
    }

    #[test]
    fn junk_dna_never_deadlocks() {
        let mut rng = SmallRng::seed_from_u64(23);
        let r1 = DnaSeq::random(400, &mut rng);
        let idx = KmerIndex::build(&r1, 11);
        let r2 = DnaSeq::random(400, &mut rng);
        let anchors = extract_anchors(&idx, &r2);
        if !anchors.is_empty() {
            check_against_reference(&anchors, 8);
        }
    }
}
