//! The functional execution tier for 2-D wavefront kernels: batched
//! row-sweep evaluation of the kernel semantics, no per-cycle simulation.
//!
//! # Why this is bit-identical to the simulator
//!
//! The control programs [`Wavefront2d`](crate::Wavefront2d) generates are
//! fully unrolled and deterministic: the only inter-PE communication is
//! the forwarded stream tuple (column character + streamed outputs), which
//! travels strictly row `i` → row `i+1` in FIFO order through blocking
//! ports. Stall timing can therefore never change *which* value a cell
//! reads — only *when* — so executing the rows in global row order (each
//! PE's rows in increasing order, with that PE's register file persisting
//! across its rows) commits exactly the same register-file values, cell
//! evaluations and output words as the concurrent systolic execution.
//!
//! The sweep mirrors the generated program move for move: row prologue
//! (row character, left/carry initializers, stream landing preload), then
//! per cell — column character in, diagonal reads *before* landing
//! updates, landing updates, optional column index, one compute
//! activation ([`gendp_isa::eval_cell`], the same arithmetic the
//! simulated engines run), last-row collects or stream forwarding, left
//! updates — and finally the per-PE drains in chain order. Forwarded
//! column characters are taken from the post-compute register file (not
//! assumed from the input), so a kernel whose compute program overwrites
//! the column-character slot still streams identically.
//!
//! # Cycle reporting
//!
//! Nothing is simulated, so cycles come from the certificate's analytic
//! model: `cycle_exact` when the model proves exactness, otherwise the
//! proven `cycle_bound` with [`RunStats::cycles_estimated`] set (wavefront
//! programs touch ports and FIFOs, so they are never stall-free and
//! `cycle_exact` is `None` in practice).

use gendp_dpax::{PeStats, RunStats, Tier};
use gendp_isa::{eval_cell, eval_cell_certified, DecodedComputeProgram, Luts, Mode, Word};
use gendp_verify::Certificate;

use crate::wavefront2d::Border;

/// One streamed value of the plan: where it lands, where the compute
/// program writes it, and its borders.
#[derive(Debug, Clone)]
pub(crate) struct PlanStream {
    pub landing: usize,
    pub out: usize,
    pub row0: Border,
    pub col0: Border,
}

/// A diagonal role: copy the landing of stream `src` (still holding the
/// `(i-1, j-1)` value) into ext slot `ext` before the landings advance.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanDiag {
    pub ext: usize,
    /// Index into [`FunctionalPlan::streams`].
    pub src: usize,
}

/// A left/carry role: ext slot, producing output slot, column-0 border,
/// and whether it re-initializes every row (left) or once per PE (carry).
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanLeft {
    pub ext: usize,
    pub out: usize,
    pub col0: Border,
    pub per_row: bool,
}

/// Reusable execution buffers, kept across [`FunctionalPlan::execute`]
/// replays so the hot loop allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct Workspace {
    /// Per-PE register files, flattened (`n_pes * rf_slots`).
    rfs: Vec<Word>,
    /// Previous row's forwarded tuples, flattened per stream.
    prev: Vec<Word>,
    /// Current row's forwarded tuples.
    cur: Vec<Word>,
    /// Output words in simulator order: last-row collects, then drains.
    out: Vec<Word>,
    /// Cells computed per PE.
    cells: Vec<u64>,
}

/// A wavefront task lowered for functional execution: role slots
/// resolved, compute program pre-decoded, per-cell statistic weights
/// pre-summed. Built by `Wavefront2d::prepare`/`prepare_banded` when the
/// tier policy requests [`Tier::Functional`].
#[derive(Debug)]
pub struct FunctionalPlan {
    pub(crate) program: DecodedComputeProgram,
    pub(crate) mode: Mode,
    pub(crate) luts: Luts,
    pub(crate) rf_slots: usize,
    pub(crate) n_pes: usize,
    pub(crate) rows: Vec<i32>,
    /// Streamed tasks: the column characters. Banded tasks: the padded
    /// column sequence indexed by `row + k`.
    pub(crate) cols: Vec<i32>,
    /// `Some(width)` for banded tasks.
    pub(crate) band: Option<usize>,
    pub(crate) row_char: usize,
    pub(crate) col_char: usize,
    pub(crate) streams: Vec<PlanStream>,
    pub(crate) diags: Vec<PlanDiag>,
    pub(crate) lefts: Vec<PlanLeft>,
    pub(crate) col_index: Option<usize>,
    pub(crate) collects: Vec<usize>,
    pub(crate) drains: Vec<usize>,
    /// Per-activation `(vliw_issued, cu_slots_active, rf_accesses)`.
    pub(crate) weights: (u64, u64, u64),
    pub(crate) ws: Workspace,
}

impl FunctionalPlan {
    /// Output words of the last execution, in the simulator's order
    /// (last-row collects cycling the collect names, then per-PE drains
    /// cycling the drain names, first PE first).
    pub fn output(&self) -> &[Word] {
        &self.ws.out
    }

    /// Runs the task functionally and reports statistics with analytic
    /// cycles from `cert` (see the module docs). Infallible: the sweep
    /// has no ports to deadlock, no budget to exhaust, and runs only
    /// statically verified programs.
    pub fn execute(&mut self, cert: Option<&Certificate>) -> RunStats {
        let mut ws = std::mem::take(&mut self.ws);
        ws.rfs.clear();
        ws.rfs.resize(self.n_pes * self.rf_slots, Word::ZERO);
        ws.out.clear();
        ws.cells.clear();
        ws.cells.resize(self.n_pes, 0);
        // A safe certificate entitles the sweep to the unchecked
        // register-file access path, exactly like the decoded engine's
        // certified mode (the functional tier only engages with one; the
        // checked path keeps `execute` total for direct callers).
        let certified = cert.is_some_and(|c| c.safe());
        match (self.band, certified) {
            (None, true) => self.sweep_streamed(&mut ws, eval_cell_certified),
            (None, false) => self.sweep_streamed(&mut ws, eval_cell),
            (Some(width), true) => self.sweep_banded(&mut ws, width, eval_cell_certified),
            (Some(width), false) => self.sweep_banded(&mut ws, width, eval_cell),
        }
        // Drains: PE p relays its upstreams' drains then appends its own,
        // so the sink sees them in chain order.
        let active = self.n_pes.min(self.rows.len());
        for p in 0..active {
            let rf = &ws.rfs[p * self.rf_slots..(p + 1) * self.rf_slots];
            for &slot in &self.drains {
                ws.out.push(rf[slot]);
            }
        }
        let stats = self.stats(&ws.cells, cert);
        self.ws = ws;
        stats
    }

    /// The full-table sweep, mirroring `Wavefront2d::pe_program`.
    /// `eval` is one of [`eval_cell`]/[`eval_cell_certified`] — passed as
    /// a function item so each access path monomorphizes and inlines.
    fn sweep_streamed(
        &self,
        ws: &mut Workspace,
        eval: impl Fn(&DecodedComputeProgram, Mode, &Luts, &mut [Word]),
    ) {
        let m = self.rows.len();
        let n = self.cols.len();
        let ns = self.streams.len();
        // Tuple layout: [column characters; n][stream 0; n][stream 1; n]…
        ws.prev.clear();
        ws.prev.extend(self.cols.iter().map(|&c| Word::from_i32(c)));
        ws.prev.resize((1 + ns) * n, Word::ZERO);
        ws.cur.clear();
        ws.cur.resize((1 + ns) * n, Word::ZERO);

        for r in 0..m {
            let p = r % self.n_pes;
            let rf = &mut ws.rfs[p * self.rf_slots..(p + 1) * self.rf_slots];
            let last = r + 1 == m;

            // Row prologue.
            rf[self.row_char] = Word::from_i32(self.rows[r]);
            for l in &self.lefts {
                if l.per_row || r == p {
                    rf[l.ext] = Word::from_i32(l.col0.at(r));
                }
            }
            for s in &self.streams {
                rf[s.landing] = Word::from_i32(if r == 0 {
                    s.row0.at(0)
                } else {
                    s.col0.at(r - 1)
                });
            }

            for c in 1..=n {
                let idx = c - 1;
                rf[self.col_char] = ws.prev[idx];
                // Diagonal reads before the landings advance.
                for d in &self.diags {
                    rf[d.ext] = rf[self.streams[d.src].landing];
                }
                for (v, s) in self.streams.iter().enumerate() {
                    rf[s.landing] = if r == 0 {
                        Word::from_i32(s.row0.at(c))
                    } else {
                        ws.prev[(1 + v) * n + idx]
                    };
                }
                if let Some(j) = self.col_index {
                    rf[j] = Word::from_i32(c as i32);
                }
                eval(&self.program, self.mode, &self.luts, rf);
                ws.cells[p] += 1;
                if last {
                    for &slot in &self.collects {
                        ws.out.push(rf[slot]);
                    }
                } else {
                    // Forward the *post-compute* column character, exactly
                    // like the generated `mv out rf[col_char]`.
                    ws.cur[idx] = rf[self.col_char];
                    for (v, s) in self.streams.iter().enumerate() {
                        ws.cur[(1 + v) * n + idx] = rf[s.out];
                    }
                }
                for l in &self.lefts {
                    rf[l.ext] = rf[l.out];
                }
            }
            if !last {
                std::mem::swap(&mut ws.prev, &mut ws.cur);
            }
        }
    }

    /// The banded sweep, mirroring `Wavefront2d::pe_program_banded`:
    /// row `r` computes `width` cells starting at its own diagonal, column
    /// characters baked from the padded sequence, streams shifted one
    /// tuple (the previous row's first tuple is this row's preload).
    fn sweep_banded(
        &self,
        ws: &mut Workspace,
        width: usize,
        eval: impl Fn(&DecodedComputeProgram, Mode, &Luts, &mut [Word]),
    ) {
        let m = self.rows.len();
        let ns = self.streams.len();
        ws.prev.clear();
        ws.prev.resize(ns * width, Word::ZERO);
        ws.cur.clear();
        ws.cur.resize(ns * width, Word::ZERO);

        for r in 0..m {
            let p = r % self.n_pes;
            let rf = &mut ws.rfs[p * self.rf_slots..(p + 1) * self.rf_slots];
            let last = r + 1 == m;

            rf[self.row_char] = Word::from_i32(self.rows[r]);
            for l in &self.lefts {
                if l.per_row || r == p {
                    rf[l.ext] = Word::from_i32(l.col0.at(r));
                }
            }
            for (v, s) in self.streams.iter().enumerate() {
                rf[s.landing] = if r == 0 {
                    Word::from_i32(s.row0.at(0))
                } else {
                    ws.prev[v * width]
                };
            }

            for k in 0..width {
                rf[self.col_char] = Word::from_i32(self.cols[r + k]);
                for d in &self.diags {
                    rf[d.ext] = rf[self.streams[d.src].landing];
                }
                // The up value: next tuple, except the last cell of the
                // row, whose up-neighbor sits outside the band.
                for (v, s) in self.streams.iter().enumerate() {
                    rf[s.landing] = if k + 1 == width {
                        Word::from_i32(s.row0.at(r + k + 1))
                    } else if r == 0 {
                        Word::from_i32(s.row0.at(k + 1))
                    } else {
                        ws.prev[v * width + k + 1]
                    };
                }
                if let Some(j) = self.col_index {
                    rf[j] = Word::from_i32((r + k + 1) as i32);
                }
                eval(&self.program, self.mode, &self.luts, rf);
                ws.cells[p] += 1;
                if !last {
                    for (v, s) in self.streams.iter().enumerate() {
                        ws.cur[v * width + k] = rf[s.out];
                    }
                }
                for l in &self.lefts {
                    rf[l.ext] = rf[l.out];
                }
            }
            if !last {
                std::mem::swap(&mut ws.prev, &mut ws.cur);
            }
        }
    }

    /// Builds the run statistics: per-PE cell counts from the sweep,
    /// compute-side counters from the pre-summed per-activation weights,
    /// cycles from the certificate's analytic model. Control-thread and
    /// FIFO counters are zero — nothing was simulated.
    fn stats(&self, cells: &[u64], cert: Option<&Certificate>) -> RunStats {
        let (cycles, estimated) = match cert {
            Some(c) => match (c.cycle_exact(), c.cycle_bound()) {
                (Some(exact), _) => (exact, false),
                (None, Some(bound)) => (bound, true),
                (None, None) => (c.cycle_floor(), true),
            },
            None => (0, true),
        };
        let (w_vliw, w_slots, w_rf) = self.weights;
        RunStats {
            cycles,
            fifo_pushes: 0,
            fifo_pops: 0,
            fifo_high_water: 0,
            per_pe: cells
                .iter()
                .map(|&cells| PeStats {
                    cells,
                    vliw_issued: cells * w_vliw,
                    cu_slots_active: cells * w_slots,
                    rf_accesses: cells * w_rf,
                    ..PeStats::default()
                })
                .collect(),
            tier: Tier::Functional,
            cycles_estimated: estimated,
        }
    }
}
