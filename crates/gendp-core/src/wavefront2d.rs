//! Control-program generation for 2-D wavefront kernels (paper Fig. 5(a,b)):
//! BSW, PairHMM, DTW, LCS.
//!
//! Rows of the DP table are assigned to PEs round-robin; the row character
//! is held statically per row while column characters and boundary values
//! stream through the systolic chain. The FIFO carries the boundary between
//! row groups (last PE of group `g` → first PE of group `g+1`). Programs
//! are generated fully unrolled per task.

use std::collections::BTreeMap;

use gendp_dfg::Dfg;
use gendp_dpax::{Engine, PeArray, PeArrayConfig, RunStats, SimError, Tier, TierPolicy};

use crate::accel::PreparedTask;
use crate::functional::{FunctionalPlan, PlanDiag, PlanLeft, PlanStream};
use gendp_dpmap::{map_dfg, Mapping};
use gendp_isa::{ControlInst, ControlProgram, Loc, Luts, Mode, Space, Word};

/// A boundary-value rule, evaluated per column (row-0 borders) or per row
/// (column-0 borders).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Border {
    /// The same value everywhere.
    Const(i32),
    /// `base + step * k`.
    Linear {
        /// Value at `k = 0`.
        base: i32,
        /// Increment per step.
        step: i32,
    },
    /// One value at `k = 0`, another for `k > 0` (e.g. DTW's origin).
    FirstThenConst {
        /// Value at `k = 0`.
        first: i32,
        /// Value for `k > 0`.
        rest: i32,
    },
    /// One value at `k = 0`, then `base + step * k` (e.g. the global-mode
    /// gap border `0, -(o+e), -(o+2e), ...`).
    FirstThenLinear {
        /// Value at `k = 0`.
        first: i32,
        /// Linear base for `k > 0`.
        base: i32,
        /// Linear step for `k > 0`.
        step: i32,
    },
}

impl Border {
    /// The border value at index `k`.
    pub fn at(self, k: usize) -> i32 {
        match self {
            Border::Const(v) => v,
            Border::Linear { base, step } => base + step * k as i32,
            Border::FirstThenConst { first, rest } => {
                if k == 0 {
                    first
                } else {
                    rest
                }
            }
            Border::FirstThenLinear { first, base, step } => {
                if k == 0 {
                    first
                } else {
                    base + step * k as i32
                }
            }
        }
    }
}

/// Where a row's incoming stream originates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowSource {
    /// Row 0: borders only, column characters from the input data buffer.
    Borders,
    /// From the previous PE's output port.
    Port,
    /// From the FIFO (first row of a later row group).
    Fifo,
}

#[derive(Debug, Clone)]
struct UpRole {
    ext: String,
    src: String,
}

#[derive(Debug, Clone)]
struct LeftRole {
    ext: String,
    src: String,
    col0: Border,
    /// True: re-initialize at every row start (a true left neighbor).
    /// False: initialize once per PE (a running reduction carried across
    /// all the PE's rows, e.g. BSW's packed maximum).
    per_row: bool,
}

/// A configured 2-D wavefront kernel, ready to generate per-task programs
/// and run them on the DPAx simulator.
#[derive(Debug)]
pub struct Wavefront2d {
    mapping: Mapping,
    mode: Mode,
    luts: Luts,
    row_char: String,
    col_char: String,
    streamed: Vec<String>,
    up: Vec<UpRole>,
    diag: Vec<UpRole>,
    left: Vec<LeftRole>,
    row0: BTreeMap<String, Border>,
    col0: BTreeMap<String, Border>,
    col_index: Option<String>,
    collect: Vec<String>,
    drain: Vec<String>,
    /// Landing RF slot per streamed value.
    landing: BTreeMap<String, u16>,
    rf_slots: usize,
    /// Multiplier on the internally derived cycle budget (retry
    /// escalation); never changes results, only the [`SimError::Timeout`]
    /// cutoff.
    budget_scale: u64,
    /// Execution-tier policy. A functional request lowers the task to a
    /// [`FunctionalPlan`] at `prepare` time; the chain degrades to the
    /// simulated tiers when the kernel cannot run functionally.
    tiers: TierPolicy,
}

/// Functional results of one accelerator task.
#[derive(Debug, Clone, PartialEq)]
pub struct Wavefront2dOutput {
    /// Per collected output name: the last row's values, one per column.
    pub last_row: BTreeMap<String, Vec<i32>>,
    /// Per drained ext name: one final value per PE.
    pub drained: BTreeMap<String, Vec<i32>>,
    /// Simulator statistics.
    pub stats: RunStats,
}

impl Wavefront2d {
    /// Maps the objective function and prepares an empty role
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if the DFG is invalid (see [`map_dfg`]).
    pub fn new(dfg: &Dfg, mode: Mode, luts: Luts, row_char: &str, col_char: &str) -> Self {
        let mapping = map_dfg(dfg);
        assert!(
            mapping.layout.ext_slot(row_char).is_some(),
            "row char ext `{row_char}` missing"
        );
        assert!(
            mapping.layout.ext_slot(col_char).is_some(),
            "col char ext `{col_char}` missing"
        );
        let rf_slots = mapping.layout.slot_count() as usize;
        Wavefront2d {
            mapping,
            mode,
            luts,
            row_char: row_char.to_string(),
            col_char: col_char.to_string(),
            streamed: Vec::new(),
            up: Vec::new(),
            diag: Vec::new(),
            left: Vec::new(),
            row0: BTreeMap::new(),
            col0: BTreeMap::new(),
            col_index: None,
            collect: Vec::new(),
            drain: Vec::new(),
            landing: BTreeMap::new(),
            rf_slots,
            budget_scale: 1,
            tiers: TierPolicy::default(),
        }
    }

    /// Scales the internally derived cycle budget by `scale` (retry
    /// escalation after a [`SimError::Timeout`]). The budget is only a
    /// cutoff: a run that completes produces identical results and cycle
    /// counts at any scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn budget_scale(mut self, scale: u64) -> Self {
        assert!(scale > 0, "budget scale must be positive");
        self.budget_scale = scale;
        self
    }

    /// Sets the execution-tier policy (all tiers produce bit-identical
    /// outputs; the functional tier reports analytic cycles).
    pub fn tiers(mut self, tiers: TierPolicy) -> Self {
        self.tiers = tiers;
        self
    }

    /// Selects the simulator execution engine.
    #[deprecated(since = "0.2.0", note = "use `tiers(TierPolicy::...)`")]
    #[allow(deprecated)] // shim body is the one sanctioned from_engine caller
    pub fn engine(self, engine: Engine) -> Self {
        self.tiers(TierPolicy::from_engine(engine))
    }

    fn ext_slot(&self, name: &str) -> u16 {
        self.mapping
            .layout
            .ext_slot(name)
            .unwrap_or_else(|| panic!("unknown ext `{name}`"))
    }

    fn out_slot(&self, name: &str) -> u16 {
        self.mapping
            .layout
            .output_slot(name)
            .unwrap_or_else(|| panic!("unknown output `{name}`"))
    }

    /// Declares a streamed value: output `src` of row `i` is consumed by
    /// row `i+1`. `row0` gives the virtual row-0 border per column; `col0`
    /// the column-0 value per row (for the diagonal preload).
    pub fn stream(&mut self, src: &str, row0: Border, col0: Border) -> &mut Self {
        let _ = self.out_slot(src);
        self.streamed.push(src.to_string());
        self.row0.insert(src.to_string(), row0);
        self.col0.insert(src.to_string(), col0);
        self
    }

    /// Wires ext `ext` to the streamed value `src` at the cell above
    /// (`(i-1, j)`).
    pub fn up(&mut self, ext: &str, src: &str) -> &mut Self {
        let slot = self.ext_slot(ext);
        assert!(
            self.streamed.contains(&src.to_string()),
            "`{src}` not streamed"
        );
        self.landing.insert(src.to_string(), slot);
        self.up.push(UpRole {
            ext: ext.to_string(),
            src: src.to_string(),
        });
        self
    }

    /// Wires ext `ext` to the streamed value `src` at the diagonal cell
    /// (`(i-1, j-1)`).
    pub fn diag(&mut self, ext: &str, src: &str) -> &mut Self {
        let _ = self.ext_slot(ext);
        assert!(
            self.streamed.contains(&src.to_string()),
            "`{src}` not streamed"
        );
        self.diag.push(UpRole {
            ext: ext.to_string(),
            src: src.to_string(),
        });
        self
    }

    /// Wires ext `ext` to the output `src` of the previous cell in the same
    /// row (`(i, j-1)`), initialized at column 0 by `col0` (per row).
    pub fn left(&mut self, ext: &str, src: &str, col0: Border) -> &mut Self {
        let _ = self.ext_slot(ext);
        let _ = self.out_slot(src);
        self.left.push(LeftRole {
            ext: ext.to_string(),
            src: src.to_string(),
            col0,
            per_row: true,
        });
        self
    }

    /// Wires ext `ext` to the output `src` of the previous cell like
    /// [`left`](Self::left), but initializes it only once per PE: the value
    /// is a running reduction carried across all the PE's rows (e.g. BSW's
    /// packed score maximum), recovered at the end with
    /// [`drain`](Self::drain).
    pub fn carry(&mut self, ext: &str, src: &str, init: i32) -> &mut Self {
        let _ = self.ext_slot(ext);
        let _ = self.out_slot(src);
        self.left.push(LeftRole {
            ext: ext.to_string(),
            src: src.to_string(),
            col0: Border::Const(init),
            per_row: false,
        });
        self
    }

    /// Wires ext `ext` to the 1-based column index.
    pub fn col_index(&mut self, ext: &str) -> &mut Self {
        let _ = self.ext_slot(ext);
        self.col_index = Some(ext.to_string());
        self
    }

    /// Collects output `name` from every cell of the last row.
    pub fn collect_last_row(&mut self, name: &str) -> &mut Self {
        let _ = self.out_slot(name);
        self.collect.push(name.to_string());
        self
    }

    /// Drains ext `name`'s final per-PE value at the end of the run (used
    /// for running reductions carried as left roles, e.g. BSW's packed
    /// maximum).
    pub fn drain(&mut self, name: &str) -> &mut Self {
        let _ = self.ext_slot(name);
        self.drain.push(name.to_string());
        self
    }

    /// Finishes role configuration: allocates landing slots for streamed
    /// values without an up-role.
    ///
    /// # Panics
    ///
    /// Panics if a diagonal role references a value with no landing slot
    /// allocation path, which cannot happen through this API.
    pub fn finish(&mut self) -> &mut Self {
        let mut next = self.rf_slots as u16;
        for v in &self.streamed {
            self.landing.entry(v.clone()).or_insert_with(|| {
                let s = next;
                next += 1;
                s
            });
        }
        self.rf_slots = next as usize;
        self
    }

    /// The DPMap result for the objective function.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Generates the fully unrolled control program for PE `p` of `n_pes`,
    /// for a table with the given row/column character codes.
    fn pe_program(&self, p: usize, n_pes: usize, rows: &[i32], cols: &[i32]) -> ControlProgram {
        let m = rows.len();
        let n = cols.len();
        let mut prog = ControlProgram::new();
        let col_char_slot = self.ext_slot(&self.col_char);
        let row_char_slot = self.ext_slot(&self.row_char);
        let last_owner = (m - 1) % n_pes;

        let mut row = p;
        while row < m {
            let source = if row == 0 {
                RowSource::Borders
            } else if p == 0 {
                RowSource::Fifo
            } else {
                RowSource::Port
            };
            let src_loc = match source {
                RowSource::Fifo => Loc::port(Space::Fifo),
                _ => Loc::port(Space::In),
            };
            let is_last_row = row == m - 1;
            // Forward destination for the next row's stream.
            let fwd_loc = if p == n_pes - 1 && !is_last_row {
                Loc::port(Space::Fifo)
            } else {
                Loc::port(Space::Out)
            };

            // Row prologue.
            prog.push(ControlInst::Li {
                dest: Loc::rf(row_char_slot),
                imm: rows[row],
            });
            let first_own_row = row == p;
            for l in &self.left {
                if l.per_row || first_own_row {
                    prog.push(ControlInst::Li {
                        dest: Loc::rf(self.ext_slot(&l.ext)),
                        imm: l.col0.at(row),
                    });
                }
            }
            for v in &self.streamed {
                let preload = if row == 0 {
                    self.row0[v].at(0)
                } else {
                    self.col0[v].at(row - 1)
                };
                prog.push(ControlInst::Li {
                    dest: Loc::rf(self.landing[v]),
                    imm: preload,
                });
            }

            for c in 1..=n {
                // Column character.
                prog.push(ControlInst::mv(Loc::rf(col_char_slot), src_loc));
                // Diagonal shifts read landings before they are updated.
                for d in &self.diag {
                    prog.push(ControlInst::mv(
                        Loc::rf(self.ext_slot(&d.ext)),
                        Loc::rf(self.landing[&d.src]),
                    ));
                }
                // Landing updates.
                for v in &self.streamed {
                    if row == 0 {
                        prog.push(ControlInst::Li {
                            dest: Loc::rf(self.landing[v]),
                            imm: self.row0[v].at(c),
                        });
                    } else {
                        prog.push(ControlInst::mv(Loc::rf(self.landing[v]), src_loc));
                    }
                }
                if let Some(j) = &self.col_index {
                    prog.push(ControlInst::Li {
                        dest: Loc::rf(self.ext_slot(j)),
                        imm: c as i32,
                    });
                }
                prog.push(ControlInst::set_compute(0));
                if is_last_row {
                    for name in &self.collect {
                        prog.push(ControlInst::mv(
                            Loc::port(Space::Out),
                            Loc::rf(self.out_slot(name)),
                        ));
                    }
                } else {
                    prog.push(ControlInst::mv(fwd_loc, Loc::rf(col_char_slot)));
                    for v in &self.streamed {
                        prog.push(ControlInst::mv(fwd_loc, Loc::rf(self.out_slot(v))));
                    }
                }
                for l in &self.left {
                    prog.push(ControlInst::mv(
                        Loc::rf(self.ext_slot(&l.ext)),
                        Loc::rf(self.out_slot(&l.src)),
                    ));
                }
            }
            row += n_pes;
        }

        // Relay the last row's collected words if they pass through us.
        if p > last_owner {
            for _ in 0..(n * self.collect.len()) {
                prog.push(ControlInst::mv(Loc::port(Space::Out), Loc::port(Space::In)));
            }
        }
        // Drain per-PE state: forward upstream drains, then append ours.
        let active_pes = n_pes.min(m);
        if p < active_pes {
            for _ in 0..(p * self.drain.len()) {
                prog.push(ControlInst::mv(Loc::port(Space::Out), Loc::port(Space::In)));
            }
            for d in &self.drain {
                prog.push(ControlInst::mv(
                    Loc::port(Space::Out),
                    Loc::rf(self.ext_slot(d)),
                ));
            }
        } else {
            // PEs without rows still relay the drains of active upstreams.
            for _ in 0..(active_pes * self.drain.len()) {
                prog.push(ControlInst::mv(Loc::port(Space::Out), Loc::port(Space::In)));
            }
        }
        prog.push(ControlInst::Halt);
        prog
    }

    /// Generates the control program of PE `p` for a *banded* table
    /// (paper §7.6.2: static active regions): row `i` computes columns
    /// `i..i+width` of a column sequence padded with `width` sentinel
    /// characters, so every row has the same cell count and the streams
    /// stay balanced with a one-tuple shift. Column characters are baked
    /// per row (they differ row to row inside the band).
    fn pe_program_banded(
        &self,
        p: usize,
        n_pes: usize,
        rows: &[i32],
        padded_cols: &[i32],
        width: usize,
    ) -> ControlProgram {
        let m = rows.len();
        let mut prog = ControlProgram::new();
        let col_char_slot = self.ext_slot(&self.col_char);
        let row_char_slot = self.ext_slot(&self.row_char);
        assert!(
            self.collect.is_empty() && self.diag.len() <= self.streamed.len(),
            "banded mode drains per-PE state only"
        );

        let mut row = p;
        while row < m {
            let source = if row == 0 {
                RowSource::Borders
            } else if p == 0 {
                RowSource::Fifo
            } else {
                RowSource::Port
            };
            let src_loc = match source {
                RowSource::Fifo => Loc::port(Space::Fifo),
                _ => Loc::port(Space::In),
            };
            let is_last_row = row == m - 1;
            let fwd_loc = if p == n_pes - 1 && !is_last_row {
                Loc::port(Space::Fifo)
            } else {
                Loc::port(Space::Out)
            };

            prog.push(ControlInst::Li {
                dest: Loc::rf(row_char_slot),
                imm: rows[row],
            });
            for l in &self.left {
                if l.per_row || row == p {
                    prog.push(ControlInst::Li {
                        dest: Loc::rf(self.ext_slot(&l.ext)),
                        imm: l.col0.at(row),
                    });
                }
            }
            // Band shift: the previous row's FIRST tuple is this row's
            // first diagonal, so it preloads the landings; row 0 preloads
            // its borders.
            for v in &self.streamed {
                if row == 0 {
                    prog.push(ControlInst::Li {
                        dest: Loc::rf(self.landing[v]),
                        imm: self.row0[v].at(0),
                    });
                } else {
                    prog.push(ControlInst::mv(Loc::rf(self.landing[v]), src_loc));
                }
            }

            for k in 0..width {
                // Baked column character: padded column index row + k.
                prog.push(ControlInst::Li {
                    dest: Loc::rf(col_char_slot),
                    imm: padded_cols[row + k],
                });
                for d in &self.diag {
                    prog.push(ControlInst::mv(
                        Loc::rf(self.ext_slot(&d.ext)),
                        Loc::rf(self.landing[&d.src]),
                    ));
                }
                // The up value: next streamed tuple, except the last cell of
                // the row, whose up-neighbor sits outside the band.
                for v in &self.streamed {
                    if k + 1 == width {
                        prog.push(ControlInst::Li {
                            dest: Loc::rf(self.landing[v]),
                            imm: self.row0[v].at(row + k + 1),
                        });
                    } else if row == 0 {
                        prog.push(ControlInst::Li {
                            dest: Loc::rf(self.landing[v]),
                            imm: self.row0[v].at(k + 1),
                        });
                    } else {
                        prog.push(ControlInst::mv(Loc::rf(self.landing[v]), src_loc));
                    }
                }
                if let Some(j) = &self.col_index {
                    prog.push(ControlInst::Li {
                        dest: Loc::rf(self.ext_slot(j)),
                        imm: (row + k + 1) as i32,
                    });
                }
                prog.push(ControlInst::set_compute(0));
                if !is_last_row {
                    for v in &self.streamed {
                        prog.push(ControlInst::mv(fwd_loc, Loc::rf(self.out_slot(v))));
                    }
                }
                for l in &self.left {
                    prog.push(ControlInst::mv(
                        Loc::rf(self.ext_slot(&l.ext)),
                        Loc::rf(self.out_slot(&l.src)),
                    ));
                }
            }
            row += n_pes;
        }

        // Drain per-PE state exactly as the full-table path does.
        let active_pes = n_pes.min(m);
        if p < active_pes {
            for _ in 0..(p * self.drain.len()) {
                prog.push(ControlInst::mv(Loc::port(Space::Out), Loc::port(Space::In)));
            }
            for d in &self.drain {
                prog.push(ControlInst::mv(
                    Loc::port(Space::Out),
                    Loc::rf(self.ext_slot(d)),
                ));
            }
        } else {
            for _ in 0..(active_pes * self.drain.len()) {
                prog.push(ControlInst::mv(Loc::port(Space::Out), Loc::port(Space::In)));
            }
        }
        prog.push(ControlInst::Halt);
        prog
    }

    /// Runs one *banded* task (paper §7.6.2): row `i` computes `width`
    /// cells starting at its own diagonal. Columns are padded with
    /// `sentinel` characters so every row computes the same cell count;
    /// results are read from the drained per-PE reductions.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty, `width` is zero, or the configuration
    /// collects last-row values (banded mode supports drains only).
    pub fn run_banded(
        &self,
        rows: &[i32],
        cols: &[i32],
        width: usize,
        sentinel: i32,
        n_pes: usize,
    ) -> Result<Wavefront2dOutput, SimError> {
        let m = rows.len();
        let mut prep = self.prepare_banded(rows, cols, width, sentinel, n_pes);
        let stats = prep.execute()?;
        let out = prep.output();
        let active_pes = n_pes.min(m);
        let mut drained: BTreeMap<String, Vec<i32>> = self
            .drain
            .iter()
            .map(|d| (d.clone(), Vec::with_capacity(active_pes)))
            .collect();
        for (k, w) in out.iter().enumerate() {
            let name = &self.drain[k % self.drain.len()];
            drained.get_mut(name).expect("drain name").push(w.as_i32());
        }
        Ok(Wavefront2dOutput {
            last_row: BTreeMap::new(),
            drained,
            stats,
        })
    }

    /// Generates (without running) the per-PE control programs for a task,
    /// e.g. to inspect, disassemble or size them (the instruction-buffer
    /// footprint of paper Table 7).
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is empty.
    pub fn generate_programs(
        &self,
        rows: &[i32],
        cols: &[i32],
        n_pes: usize,
    ) -> Vec<ControlProgram> {
        assert!(!rows.is_empty() && !cols.is_empty(), "empty table");
        (0..n_pes)
            .map(|p| self.pe_program(p, n_pes, rows, cols))
            .collect()
    }

    /// Statically verifies the control and compute programs generated for
    /// one streamed task shape, without running them.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is empty.
    pub fn verify(&self, rows: &[i32], cols: &[i32], n_pes: usize) -> gendp_verify::Report {
        assert!(!rows.is_empty() && !cols.is_empty(), "empty table");
        self.build_array(rows, cols, n_pes).verify_programs()
    }

    /// Statically verifies the programs generated for one *banded* task
    /// shape (see [`Self::run_banded`]), without running them.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty or `width` is zero.
    pub fn verify_banded(
        &self,
        rows: &[i32],
        cols: &[i32],
        width: usize,
        sentinel: i32,
        n_pes: usize,
    ) -> gendp_verify::Report {
        assert!(!rows.is_empty() && !cols.is_empty(), "empty table");
        assert!(width > 0, "band width must be positive");
        self.build_array_banded(rows, cols, width, sentinel, n_pes)
            .verify_programs()
    }

    /// Builds the loaded array for a streamed task (shared by `run` and
    /// `verify`); inputs are fed separately.
    fn build_array(&self, rows: &[i32], cols: &[i32], n_pes: usize) -> PeArray {
        let n = cols.len();
        let mut cfg = PeArrayConfig::with_pes(n_pes)
            .mode(self.mode)
            .luts(self.luts.clone())
            .tiers(self.tiers);
        cfg.rf_slots = self.rf_slots.max(cfg.rf_slots);
        cfg.fifo_capacity = ((self.streamed.len() + 2) * (n + 2)).max(cfg.fifo_capacity);
        let mut array = PeArray::new(cfg);
        for p in 0..n_pes {
            array.load_pe_control(p, self.pe_program(p, n_pes, rows, cols));
        }
        array.load_compute_all(self.mapping.program.clone());
        array
    }

    /// Builds the loaded array for a banded task (shared by `run_banded`
    /// and `verify_banded`).
    fn build_array_banded(
        &self,
        rows: &[i32],
        cols: &[i32],
        width: usize,
        sentinel: i32,
        n_pes: usize,
    ) -> PeArray {
        let m = rows.len();
        let mut padded: Vec<i32> = cols.to_vec();
        padded.resize(cols.len().max(m + width) + 1, sentinel);
        let mut cfg = PeArrayConfig::with_pes(n_pes)
            .mode(self.mode)
            .luts(self.luts.clone())
            .tiers(self.tiers);
        cfg.rf_slots = self.rf_slots.max(cfg.rf_slots);
        cfg.fifo_capacity = ((self.streamed.len() + 2) * (width + 2)).max(cfg.fifo_capacity);
        let mut array = PeArray::new(cfg);
        for p in 0..n_pes {
            array.load_pe_control(p, self.pe_program_banded(p, n_pes, rows, &padded, width));
        }
        array.load_compute_all(self.mapping.program.clone());
        array
    }

    /// Lowers one task shape to a [`FunctionalPlan`]: role names resolved
    /// to slots, compute program pre-decoded, statistic weights pre-summed.
    /// `rf_slots` must match the built array's so the per-PE register
    /// files agree.
    fn functional_plan(
        &self,
        rows: &[i32],
        cols: Vec<i32>,
        band: Option<usize>,
        n_pes: usize,
        rf_slots: usize,
    ) -> FunctionalPlan {
        let streams = self
            .streamed
            .iter()
            .map(|v| PlanStream {
                landing: self.landing[v] as usize,
                out: self.out_slot(v) as usize,
                row0: self.row0[v],
                col0: self.col0[v],
            })
            .collect();
        let diags = self
            .diag
            .iter()
            .map(|d| PlanDiag {
                ext: self.ext_slot(&d.ext) as usize,
                src: self
                    .streamed
                    .iter()
                    .position(|s| *s == d.src)
                    .expect("diag sources are streamed"),
            })
            .collect();
        let lefts = self
            .left
            .iter()
            .map(|l| PlanLeft {
                ext: self.ext_slot(&l.ext) as usize,
                out: self.out_slot(&l.src) as usize,
                col0: l.col0,
                per_row: l.per_row,
            })
            .collect();
        FunctionalPlan {
            program: (&self.mapping.program).into(),
            mode: self.mode,
            luts: self.luts.clone(),
            rf_slots,
            n_pes,
            rows: rows.to_vec(),
            cols,
            band,
            row_char: self.ext_slot(&self.row_char) as usize,
            col_char: self.ext_slot(&self.col_char) as usize,
            streams,
            diags,
            lefts,
            col_index: self.col_index.as_ref().map(|j| self.ext_slot(j) as usize),
            collects: self
                .collect
                .iter()
                .map(|c| self.out_slot(c) as usize)
                .collect(),
            drains: self
                .drain
                .iter()
                .map(|d| self.ext_slot(d) as usize)
                .collect(),
            weights: gendp_isa::cell_stat_weights(&self.mapping.program),
            ws: Default::default(),
        }
    }

    /// Binds one streamed task to a loaded array — programs generated,
    /// lowered and loaded, column stream staged, budget derived — for
    /// repeated [`PreparedTask::execute`] replays. [`run`](Self::run) is
    /// `prepare` + one execute + output parsing. When the tier policy
    /// requests [`Tier::Functional`], the task is additionally lowered to
    /// a [`FunctionalPlan`] and `execute` skips the simulator entirely.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is empty.
    pub fn prepare(&self, rows: &[i32], cols: &[i32], n_pes: usize) -> PreparedTask {
        assert!(!rows.is_empty() && !cols.is_empty(), "empty table");
        let m = rows.len();
        let n = cols.len();
        let array = self.build_array(rows, cols, n_pes);
        let budget = ((m as u64 + n_pes as u64)
            * (n as u64 + 4)
            * (self.mapping.program.len() as u64 + self.streamed.len() as u64 * 2 + 12)
            * 4
            + 10_000)
            .saturating_mul(self.budget_scale);
        let inputs = cols.iter().map(|&c| Word::from_i32(c)).collect();
        let plan = (self.tiers.requested() == Tier::Functional).then(|| {
            self.functional_plan(rows, cols.to_vec(), None, n_pes, array.config().rf_slots)
        });
        PreparedTask::with_plan(array, inputs, budget, plan)
    }

    /// Binds one banded task to a loaded array (the band's column windows
    /// are baked into the per-PE programs, so no input stream is staged).
    /// [`run_banded`](Self::run_banded) is `prepare_banded` + one execute
    /// + output parsing.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty or `width` is zero.
    pub fn prepare_banded(
        &self,
        rows: &[i32],
        cols: &[i32],
        width: usize,
        sentinel: i32,
        n_pes: usize,
    ) -> PreparedTask {
        assert!(!rows.is_empty() && !cols.is_empty(), "empty table");
        assert!(width > 0, "band width must be positive");
        let m = rows.len();
        let array = self.build_array_banded(rows, cols, width, sentinel, n_pes);
        let budget = ((m as u64 + n_pes as u64)
            * (width as u64 + 4)
            * (self.mapping.program.len() as u64 + self.streamed.len() as u64 * 2 + 12)
            * 4
            + 10_000)
            .saturating_mul(self.budget_scale);
        let plan = (self.tiers.requested() == Tier::Functional).then(|| {
            // Same padding rule as `build_array_banded`.
            let mut padded: Vec<i32> = cols.to_vec();
            padded.resize(cols.len().max(m + width) + 1, sentinel);
            self.functional_plan(rows, padded, Some(width), n_pes, array.config().rf_slots)
        });
        PreparedTask::with_plan(array, Vec::new(), budget, plan)
    }

    /// Runs one task on a `n_pes`-PE array; returns functional outputs and
    /// statistics.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (deadlock, timeout, bad access).
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is empty.
    pub fn run(
        &self,
        rows: &[i32],
        cols: &[i32],
        n_pes: usize,
    ) -> Result<Wavefront2dOutput, SimError> {
        let m = rows.len();
        let n = cols.len();
        let mut prep = self.prepare(rows, cols, n_pes);
        let stats = prep.execute()?;

        // Parse the output buffer: last-row collects then drains.
        let out = prep.output();
        let n_collect = n * self.collect.len();
        let mut last_row: BTreeMap<String, Vec<i32>> = self
            .collect
            .iter()
            .map(|c| (c.clone(), Vec::with_capacity(n)))
            .collect();
        for (k, w) in out.iter().take(n_collect).enumerate() {
            let name = &self.collect[k % self.collect.len()];
            last_row
                .get_mut(name)
                .expect("collect name")
                .push(w.as_i32());
        }
        let active_pes = n_pes.min(m);
        let mut drained: BTreeMap<String, Vec<i32>> = self
            .drain
            .iter()
            .map(|d| (d.clone(), Vec::with_capacity(active_pes)))
            .collect();
        for (k, w) in out.iter().skip(n_collect).enumerate() {
            let name = &self.drain[k % self.drain.len()];
            drained.get_mut(name).expect("drain name").push(w.as_i32());
        }
        Ok(Wavefront2dOutput {
            last_row,
            drained,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendp_kernels::dfgs::{bsw_dfg, bsw_luts, dtw_dfg, lcs_dfg};
    use gendp_kernels::dtw::dtw;
    use gendp_kernels::lcs::lcs;
    use gendp_kernels::{bsw_i32, AlignMode, Scoring};
    use gendp_seq::DnaSeq;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    const NEG: i32 = i32::MIN / 4;

    fn bsw_wavefront() -> Wavefront2d {
        let scoring = Scoring::bwa_mem();
        let dfg = bsw_dfg(&scoring);
        let mut w = Wavefront2d::new(&dfg, Mode::Int32, bsw_luts(&scoring), "x", "y");
        w.stream("h", Border::Const(0), Border::Const(0))
            .stream("e", Border::Const(NEG), Border::Const(NEG))
            .up("h_up", "h")
            .up("e_up", "e")
            .diag("h_diag", "h")
            .left("h_left", "h", Border::Const(0))
            .left("f_left", "f", Border::Const(NEG))
            .carry("best", "best", 0)
            .col_index("j")
            .collect_last_row("h")
            .drain("best")
            .finish();
        w
    }

    fn run_bsw_on_dpax(q: &DnaSeq, t: &DnaSeq, n_pes: usize) -> (i32, Wavefront2dOutput) {
        let w = bsw_wavefront();
        let rows: Vec<i32> = t.codes().iter().map(|&c| c as i32).collect();
        let cols: Vec<i32> = q.codes().iter().map(|&c| c as i32).collect();
        let out = w.run(&rows, &cols, n_pes).expect("simulation");
        let best = out.drained["best"]
            .iter()
            .copied()
            .max()
            .expect("per-PE bests");
        (best >> 16, out)
    }

    #[test]
    fn bsw_on_dpax_matches_reference_small() {
        let q: DnaSeq = "ACGTACGTAC".parse().unwrap();
        let t: DnaSeq = "ACGTTCGTAC".parse().unwrap();
        let (score, out) = run_bsw_on_dpax(&q, &t, 4);
        let expect = bsw_i32(&q, &t, &Scoring::bwa_mem(), 1000, AlignMode::Local);
        assert_eq!(score, expect.score);
        assert_eq!(out.stats.cells(), 100);
        assert_eq!(out.last_row["h"].len(), 10);
    }

    #[test]
    fn bsw_on_dpax_matches_reference_random() {
        let mut rng = SmallRng::seed_from_u64(11);
        for round in 0..6 {
            let tl = rng.gen_range(5..40);
            let ql = rng.gen_range(5..40);
            let t = DnaSeq::random(tl, &mut rng);
            let q = DnaSeq::random(ql, &mut rng);
            let (score, _) = run_bsw_on_dpax(&q, &t, 4);
            let expect = bsw_i32(&q, &t, &Scoring::bwa_mem(), 1000, AlignMode::Local);
            assert_eq!(score, expect.score, "round {round}: q={q} t={t}");
        }
    }

    #[test]
    fn bsw_works_on_other_array_sizes() {
        let mut rng = SmallRng::seed_from_u64(12);
        let t = DnaSeq::random(13, &mut rng);
        let q = DnaSeq::random(9, &mut rng);
        let expect = bsw_i32(&q, &t, &Scoring::bwa_mem(), 1000, AlignMode::Local);
        for n_pes in [1, 2, 3, 4, 8] {
            let (score, _) = run_bsw_on_dpax(&q, &t, n_pes);
            assert_eq!(score, expect.score, "n_pes {n_pes}");
        }
    }

    #[test]
    fn bsw_fewer_rows_than_pes() {
        let mut rng = SmallRng::seed_from_u64(13);
        let t = DnaSeq::random(2, &mut rng);
        let q = DnaSeq::random(7, &mut rng);
        let expect = bsw_i32(&q, &t, &Scoring::bwa_mem(), 1000, AlignMode::Local);
        let (score, _) = run_bsw_on_dpax(&q, &t, 4);
        assert_eq!(score, expect.score);
    }

    #[test]
    fn dtw_on_dpax_matches_reference() {
        const INF: i32 = 1 << 28;
        let dfg = dtw_dfg();
        let mut w = Wavefront2d::new(&dfg, Mode::Int32, Luts::default(), "x", "y");
        w.stream(
            "d",
            Border::FirstThenConst {
                first: 0,
                rest: INF,
            },
            Border::Const(INF),
        )
        .up("d_up", "d")
        .diag("d_diag", "d")
        .left("d_left", "d", Border::Const(INF))
        .collect_last_row("d")
        .finish();
        let mut rng = SmallRng::seed_from_u64(14);
        for _ in 0..4 {
            let xs: Vec<i32> = (0..rng.gen_range(4..20))
                .map(|_| rng.gen_range(0..100))
                .collect();
            let ys: Vec<i32> = (0..rng.gen_range(4..20))
                .map(|_| rng.gen_range(0..100))
                .collect();
            let out = w.run(&xs, &ys, 4).expect("simulation");
            let got = *out.last_row["d"].last().expect("corner cell") as i64;
            let expect = dtw(&xs, &ys).distance;
            assert_eq!(got, expect, "x={xs:?} y={ys:?}");
        }
    }

    #[test]
    fn lcs_on_dpax_matches_reference() {
        let dfg = lcs_dfg();
        let mut w = Wavefront2d::new(&dfg, Mode::Int32, Luts::default(), "x", "y");
        w.stream("c", Border::Const(0), Border::Const(0))
            .up("c_up", "c")
            .diag("c_diag", "c")
            .left("c_left", "c", Border::Const(0))
            .collect_last_row("c")
            .finish();
        let mut rng = SmallRng::seed_from_u64(15);
        for _ in 0..4 {
            let xs: Vec<i32> = (0..rng.gen_range(3..25))
                .map(|_| rng.gen_range(0..4))
                .collect();
            let ys: Vec<i32> = (0..rng.gen_range(3..25))
                .map(|_| rng.gen_range(0..4))
                .collect();
            let out = w.run(&xs, &ys, 4).expect("simulation");
            let got = *out.last_row["c"].last().expect("corner");
            let expect = lcs(&xs, &ys).length as i32;
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn stats_count_every_cell_once() {
        let w = bsw_wavefront();
        let out = w.run(&[0, 1, 2, 3, 0, 1, 2], &[0, 1, 2, 3, 3], 4).unwrap();
        assert_eq!(out.stats.cells(), 35);
        assert!(out.stats.cycles > 35);
        assert!(out.stats.vliw_utilization() > 0.0);
    }

    #[test]
    fn border_rules() {
        assert_eq!(Border::Const(5).at(0), 5);
        assert_eq!(Border::Const(5).at(9), 5);
        assert_eq!(Border::Linear { base: 2, step: -3 }.at(0), 2);
        assert_eq!(Border::Linear { base: 2, step: -3 }.at(4), -10);
        assert_eq!(Border::FirstThenConst { first: 0, rest: 7 }.at(0), 0);
        assert_eq!(Border::FirstThenConst { first: 0, rest: 7 }.at(1), 7);
    }
}
