//! The unified accelerator front door: every dependency-pattern driver
//! ([`Wavefront2d`], [`ChainAccelerator`], [`PoaAccelerator`],
//! [`BellmanFordAccelerator`]) implements one [`Accelerator`] trait with a
//! common lifecycle — **configure → verify → run → report** — so callers
//! (the `gendp-runtime` device, the benchmark harness, batch sweeps) can
//! drive any kernel through one code path.
//!
//! * [`AccelConfig`] carries the driver-independent knobs: the cycle-budget
//!   multiplier and the execution [`TierPolicy`].
//! * A driver's task type (e.g. [`WavefrontTask`]) is a plain borrow of the
//!   per-task inputs, so a batch of tasks can be swept without cloning
//!   sequences.
//! * [`TaskOutput`] gives uniform access to the run statistics of any
//!   driver's functional output, and [`Accelerator::report`] summarizes
//!   them into the paper's units ([`AcceleratorRun`]).
//!
//! [`crate::parallel::run_batch`] builds on this trait to sweep a task
//! batch across host threads.

use gendp_dpax::{Engine, PeArray, RunStats, SimError, Tier, TierPolicy};
use gendp_dpmap::Mapping;
use gendp_isa::Word;
use gendp_kernels::bellman_ford::Graph;
use gendp_kernels::poa::Poa;
use gendp_seq::{Anchor, DnaSeq};

use crate::functional::FunctionalPlan;
use crate::graph2d::{PoaAccelerator, PoaRun};
use crate::linear1d::{ChainAccelerator, ChainRun};
use crate::pipeline::AcceleratorRun;
use crate::spm1d::{BellmanFordAccelerator, BellmanFordRun};
use crate::wavefront2d::{Wavefront2d, Wavefront2dOutput};

/// Driver-independent configuration applied by [`Accelerator::configure`]:
/// the retry-escalation budget multiplier and the execution-tier policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccelConfig {
    /// Multiplier on the internally derived cycle budget (a cutoff only;
    /// never a result change). Must be positive.
    pub budget_scale: u64,
    /// Execution-tier selection for task runs.
    pub tiers: TierPolicy,
}

impl Default for AccelConfig {
    fn default() -> Self {
        AccelConfig {
            budget_scale: 1,
            tiers: TierPolicy::default(),
        }
    }
}

impl AccelConfig {
    /// The default configuration (budget scale 1, default tier policy).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the budget multiplier, returning `self` for chaining.
    pub fn budget_scale(mut self, scale: u64) -> Self {
        self.budget_scale = scale;
        self
    }

    /// Sets the execution-tier policy, returning `self` for chaining.
    pub fn tiers(mut self, tiers: TierPolicy) -> Self {
        self.tiers = tiers;
        self
    }

    /// Sets the simulator engine, returning `self` for chaining.
    #[deprecated(
        since = "0.2.0",
        note = "use `tiers(TierPolicy::...)`; raw engines no longer select the execution path"
    )]
    #[allow(deprecated)] // shim body is the one sanctioned from_engine caller
    pub fn engine(self, engine: Engine) -> Self {
        self.tiers(TierPolicy::from_engine(engine))
    }
}

/// Uniform access to the simulator statistics of any driver's functional
/// output.
pub trait TaskOutput {
    /// The statistics of the run that produced this output.
    fn stats(&self) -> &RunStats;
}

impl TaskOutput for Wavefront2dOutput {
    fn stats(&self) -> &RunStats {
        &self.stats
    }
}

impl TaskOutput for ChainRun {
    fn stats(&self) -> &RunStats {
        &self.stats
    }
}

impl TaskOutput for PoaRun {
    fn stats(&self) -> &RunStats {
        &self.stats
    }
}

impl TaskOutput for BellmanFordRun {
    fn stats(&self) -> &RunStats {
        &self.stats
    }
}

/// Band restriction of a [`WavefrontTask`] (banded DTW and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BandSpec {
    /// Band width in cells per row.
    pub width: usize,
    /// Sentinel streamed outside the band (must lose every select).
    pub sentinel: i32,
}

/// One 2-D wavefront task: the row/column input streams, the array width,
/// and an optional band.
#[derive(Debug, Clone, Copy)]
pub struct WavefrontTask<'a> {
    /// Per-row values (e.g. target codes).
    pub rows: &'a [i32],
    /// Per-column values (e.g. query codes).
    pub cols: &'a [i32],
    /// PEs in the simulated array.
    pub n_pes: usize,
    /// Banded execution, when set (drain-only configurations).
    pub band: Option<BandSpec>,
}

/// One chaining task: the anchor run and the array width (= window).
#[derive(Debug, Clone, Copy)]
pub struct ChainTask<'a> {
    /// Sorted anchors.
    pub anchors: &'a [Anchor],
    /// PEs in the simulated array (the chaining window).
    pub n_pes: usize,
}

/// One POA task: graph, probe sequence and array width.
#[derive(Debug, Clone, Copy)]
pub struct PoaTask<'a> {
    /// The partial-order graph to align against.
    pub graph: &'a Poa,
    /// The probe sequence.
    pub seq: &'a DnaSeq,
    /// PEs in the simulated array.
    pub n_pes: usize,
}

/// One Bellman-Ford task: graph, source vertex and relaxation rounds.
#[derive(Debug, Clone, Copy)]
pub struct BellmanFordTask<'a> {
    /// The edge-list graph.
    pub graph: &'a Graph,
    /// Source vertex.
    pub source: usize,
    /// Relaxation sweeps to run.
    pub rounds: usize,
}

/// One task bound to a loaded array: control programs generated, lowered
/// to their decoded forms and loaded, inputs staged, cycle budget derived
/// — all the one-time work of [`Accelerator::run_task`].
/// [`execute`](Self::execute) then replays the task from a clean
/// architectural state as often as wanted, paying only the simulation
/// itself (static verification runs once, on the first execution, and its
/// result is kept across resets).
///
/// `run_task` is exactly [`Accelerator::prepare`] + one `execute` + output
/// parsing, so a prepared execution is bit- and cycle-identical to the
/// one-shot path; it just amortizes program generation, lowering and
/// verification across executions. This is the measurement surface of the
/// `bench-kernels` harness: the "after" side times `execute` alone — the
/// simulation hot loop — while the "before" side times the full per-run
/// path the crate had before the decoded engine existed.
pub struct PreparedTask {
    array: PeArray,
    inputs: Vec<Word>,
    budget: u64,
    /// Functional lowering of the task, present only when the driver built
    /// one (the policy requested [`Tier::Functional`] and the pattern
    /// supports the batched sweep).
    plan: Option<FunctionalPlan>,
    /// Whether the most recent `execute` ran the functional tier (routes
    /// `output()` to the plan's buffer instead of the array's).
    functional_ran: bool,
}

impl PreparedTask {
    pub(crate) fn new(array: PeArray, inputs: Vec<Word>, budget: u64) -> Self {
        Self::with_plan(array, inputs, budget, None)
    }

    pub(crate) fn with_plan(
        mut array: PeArray,
        inputs: Vec<Word>,
        budget: u64,
        plan: Option<FunctionalPlan>,
    ) -> Self {
        // Run the verification gate eagerly so the certificate — cycle
        // bounds, certified DP-cell cost, safety — is readable *before*
        // the first execution (schedulers admit on it). A verification
        // failure is deferred: `execute` re-runs the gate and reports it
        // exactly as the one-shot path always has.
        let _ = array.ensure_verified();
        PreparedTask {
            array,
            inputs,
            budget,
            plan,
            functional_ran: false,
        }
    }

    /// True when `execute` will take the functional fast path: the driver
    /// lowered a plan, the policy requested the functional tier, and the
    /// certificate proved the programs safe.
    fn functional_available(&self) -> bool {
        self.plan.is_some()
            && self.array.config().tiers.requested() == Tier::Functional
            && self.array.certificate().is_some_and(|c| c.safe())
    }

    /// The execution tier `execute` resolves to under the configured
    /// [`TierPolicy`], after fallback.
    pub fn resolved_tier(&self) -> Tier {
        if self.functional_available() {
            Tier::Functional
        } else {
            self.array.resolved_tier()
        }
    }

    /// The safety/cost certificate of the loaded programs, once the
    /// verification gate has run (always, except under `no_verify`).
    pub fn certificate(&self) -> Option<&gendp_verify::Certificate> {
        self.array.certificate()
    }

    /// True when executions run the certified-unchecked decoded access
    /// path (the certificate proved every access in bounds).
    pub fn is_certified(&self) -> bool {
        self.array.is_certified()
    }

    /// Pins executions to the bounds-checked access path even though the
    /// certificate may allow the unchecked one. The certificate stays
    /// readable; only the path downgrade is sticky. This is how
    /// `bench-kernels` measures checked against certified-unchecked from
    /// the same prepared task. The functional fast path is also disabled —
    /// it has no bounds-checked variant to pin to.
    pub fn force_checked(&mut self) {
        self.plan = None;
        self.array.force_checked();
    }

    /// Executes the task once under the configured [`TierPolicy`].
    ///
    /// On the functional tier this replays the prepared lowering directly
    /// — batched wavefront loops over flat buffers, no per-cycle
    /// simulation — with cycles reported from the certificate's analytic
    /// model. On the simulated tiers it resets the array's architectural
    /// state, feeds the staged inputs and runs to completion.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors ([`SimError`]), exactly as
    /// [`Accelerator::run_task`] does. A strict policy whose requested
    /// tier is unavailable fails with [`SimError::TierUnavailable`].
    pub fn execute(&mut self) -> Result<RunStats, SimError> {
        if self.functional_available() {
            self.functional_ran = true;
            // Disjoint borrows: the certificate lives on the array, the
            // plan's execute mutates only the plan.
            let cert = self.array.certificate();
            let plan = self.plan.as_mut().expect("functional_available checked");
            return Ok(plan.execute(cert));
        }
        let tiers = self.array.config().tiers;
        if tiers.is_strict() && tiers.requested() == Tier::Functional {
            return Err(SimError::TierUnavailable {
                requested: Tier::Functional,
                available: self.array.resolved_tier(),
            });
        }
        self.functional_ran = false;
        self.array.reset();
        self.array.feed_input(self.inputs.iter().copied());
        self.array.run(self.budget)
    }

    /// The output words of the most recent [`execute`](Self::execute).
    pub fn output(&self) -> &[Word] {
        if self.functional_ran {
            self.plan.as_ref().expect("functional ran").output()
        } else {
            self.array.output()
        }
    }

    /// The derived cycle budget an execution runs under.
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

/// The common lifecycle of every GenDP dependency-pattern driver:
/// **configure → verify → run → report**.
///
/// Implementations are self-contained per task — running a task mutates no
/// driver state — which is what makes batch sweeps
/// ([`crate::parallel::run_batch`]) deterministic under any worker count.
pub trait Accelerator {
    /// The per-task input bundle (a borrow; tasks are cheap to copy).
    type Task<'a>;
    /// The functional output of one task.
    type Output: TaskOutput;

    /// Stable driver name (the dependency pattern it implements).
    fn name(&self) -> &'static str;

    /// Applies driver-independent configuration, returning `self` for
    /// chaining.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.budget_scale` is zero.
    fn configure(self, cfg: AccelConfig) -> Self;

    /// The DPMap result for the objective function (register-file layout
    /// and compute program).
    fn mapping(&self) -> &Mapping;

    /// Statically verifies the programs generated for one task shape,
    /// without running them.
    fn verify_task(&self, task: &Self::Task<'_>) -> gendp_verify::Report;

    /// Binds one task to a loaded array for repeated
    /// [`PreparedTask::execute`] replays that pay only simulation.
    /// [`run_task`](Self::run_task) is `prepare` + one execute + output
    /// parsing.
    fn prepare(&self, task: &Self::Task<'_>) -> PreparedTask;

    /// Runs one task on a simulated array.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors ([`SimError`]).
    fn run_task(&self, task: &Self::Task<'_>) -> Result<Self::Output, SimError>;

    /// Summarizes one task's output in the paper's units.
    fn report(output: &Self::Output) -> AcceleratorRun {
        AcceleratorRun::from_stats(output.stats())
    }
}

impl Accelerator for Wavefront2d {
    type Task<'a> = WavefrontTask<'a>;
    type Output = Wavefront2dOutput;

    fn name(&self) -> &'static str {
        "wavefront2d"
    }

    fn configure(self, cfg: AccelConfig) -> Self {
        self.budget_scale(cfg.budget_scale).tiers(cfg.tiers)
    }

    fn mapping(&self) -> &Mapping {
        Wavefront2d::mapping(self)
    }

    fn verify_task(&self, task: &WavefrontTask<'_>) -> gendp_verify::Report {
        match task.band {
            Some(band) => {
                self.verify_banded(task.rows, task.cols, band.width, band.sentinel, task.n_pes)
            }
            None => self.verify(task.rows, task.cols, task.n_pes),
        }
    }

    fn prepare(&self, task: &WavefrontTask<'_>) -> PreparedTask {
        match task.band {
            Some(band) => {
                self.prepare_banded(task.rows, task.cols, band.width, band.sentinel, task.n_pes)
            }
            None => Wavefront2d::prepare(self, task.rows, task.cols, task.n_pes),
        }
    }

    fn run_task(&self, task: &WavefrontTask<'_>) -> Result<Wavefront2dOutput, SimError> {
        match task.band {
            Some(band) => {
                self.run_banded(task.rows, task.cols, band.width, band.sentinel, task.n_pes)
            }
            None => self.run(task.rows, task.cols, task.n_pes),
        }
    }
}

impl Accelerator for ChainAccelerator {
    type Task<'a> = ChainTask<'a>;
    type Output = ChainRun;

    fn name(&self) -> &'static str {
        "linear1d"
    }

    fn configure(self, cfg: AccelConfig) -> Self {
        self.budget_scale(cfg.budget_scale).tiers(cfg.tiers)
    }

    fn mapping(&self) -> &Mapping {
        ChainAccelerator::mapping(self)
    }

    fn verify_task(&self, task: &ChainTask<'_>) -> gendp_verify::Report {
        self.verify(task.anchors.len(), task.n_pes)
    }

    fn prepare(&self, task: &ChainTask<'_>) -> PreparedTask {
        ChainAccelerator::prepare(self, task.anchors, task.n_pes)
    }

    fn run_task(&self, task: &ChainTask<'_>) -> Result<ChainRun, SimError> {
        self.run(task.anchors, task.n_pes)
    }
}

impl Accelerator for PoaAccelerator {
    type Task<'a> = PoaTask<'a>;
    type Output = PoaRun;

    fn name(&self) -> &'static str {
        "graph2d"
    }

    fn configure(self, cfg: AccelConfig) -> Self {
        self.budget_scale(cfg.budget_scale).tiers(cfg.tiers)
    }

    fn mapping(&self) -> &Mapping {
        PoaAccelerator::mapping(self)
    }

    fn verify_task(&self, task: &PoaTask<'_>) -> gendp_verify::Report {
        self.verify(task.graph, task.seq.len(), task.n_pes)
    }

    fn prepare(&self, task: &PoaTask<'_>) -> PreparedTask {
        PoaAccelerator::prepare(self, task.graph, task.seq, task.n_pes)
    }

    fn run_task(&self, task: &PoaTask<'_>) -> Result<PoaRun, SimError> {
        self.run(task.graph, task.seq, task.n_pes)
    }
}

impl Accelerator for BellmanFordAccelerator {
    type Task<'a> = BellmanFordTask<'a>;
    type Output = BellmanFordRun;

    fn name(&self) -> &'static str {
        "spm1d"
    }

    fn configure(self, cfg: AccelConfig) -> Self {
        self.budget_scale(cfg.budget_scale).tiers(cfg.tiers)
    }

    fn mapping(&self) -> &Mapping {
        BellmanFordAccelerator::mapping(self)
    }

    fn verify_task(&self, task: &BellmanFordTask<'_>) -> gendp_verify::Report {
        self.verify(task.graph, task.source, task.rounds)
    }

    fn prepare(&self, task: &BellmanFordTask<'_>) -> PreparedTask {
        BellmanFordAccelerator::prepare(self, task.graph, task.source, task.rounds)
    }

    fn run_task(&self, task: &BellmanFordTask<'_>) -> Result<BellmanFordRun, SimError> {
        self.run(task.graph, task.source, task.rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{bsw_score, GendpPipeline};
    use gendp_kernels::{bsw_i32, AlignMode, Scoring};
    use rand::{rngs::SmallRng, SeedableRng};

    fn bsw_inputs() -> (DnaSeq, DnaSeq) {
        let mut rng = SmallRng::seed_from_u64(41);
        let q = DnaSeq::random(12, &mut rng);
        let t = DnaSeq::random(16, &mut rng);
        (q, t)
    }

    #[test]
    fn trait_lifecycle_matches_inherent_calls() {
        let scoring = Scoring::bwa_mem();
        let (q, t) = bsw_inputs();
        let rows: Vec<i32> = t.codes().iter().map(|&c| c as i32).collect();
        let cols: Vec<i32> = q.codes().iter().map(|&c| c as i32).collect();
        let accel = GendpPipeline::bsw(&scoring).configure(AccelConfig::new());
        assert_eq!(Accelerator::name(&accel), "wavefront2d");
        let task = WavefrontTask {
            rows: &rows,
            cols: &cols,
            n_pes: 4,
            band: None,
        };
        assert!(accel.verify_task(&task).is_clean());
        let out = accel.run_task(&task).expect("simulation");
        let expect = bsw_i32(&q, &t, &scoring, 1000, AlignMode::Local);
        assert_eq!(bsw_score(&out), expect.score);
        let report = Wavefront2d::report(&out);
        assert_eq!(report.cells, out.stats().cells());
        assert!(report.cells_per_cycle() > 0.0);
    }

    #[test]
    fn configure_selects_engine_without_changing_results() {
        let scoring = Scoring::bwa_mem();
        let (q, t) = bsw_inputs();
        let rows: Vec<i32> = t.codes().iter().map(|&c| c as i32).collect();
        let cols: Vec<i32> = q.codes().iter().map(|&c| c as i32).collect();
        let task = WavefrontTask {
            rows: &rows,
            cols: &cols,
            n_pes: 4,
            band: None,
        };
        let decoded = GendpPipeline::bsw(&scoring)
            .configure(AccelConfig::new().tiers(TierPolicy::decoded()))
            .run_task(&task)
            .expect("decoded");
        let interp = GendpPipeline::bsw(&scoring)
            .configure(AccelConfig::new().tiers(TierPolicy::interpreted()))
            .run_task(&task)
            .expect("interpreted");
        assert_eq!(decoded.last_row, interp.last_row);
        assert_eq!(decoded.stats, interp.stats);
    }

    #[test]
    fn prepared_execution_replays_bit_identically() {
        let scoring = Scoring::bwa_mem();
        let (q, t) = bsw_inputs();
        let rows: Vec<i32> = t.codes().iter().map(|&c| c as i32).collect();
        let cols: Vec<i32> = q.codes().iter().map(|&c| c as i32).collect();
        let task = WavefrontTask {
            rows: &rows,
            cols: &cols,
            n_pes: 4,
            band: None,
        };
        let accel = GendpPipeline::bsw(&scoring);
        let oneshot = accel.run_task(&task).expect("one-shot run");

        let mut prep = Accelerator::prepare(&accel, &task);
        let first = prep.execute().expect("first execution");
        let first_out: Vec<_> = prep.output().to_vec();
        assert_eq!(&first, oneshot.stats(), "prepared != one-shot stats");

        // A replay starts from a clean architectural state: identical
        // statistics and identical output words.
        let second = prep.execute().expect("replayed execution");
        assert_eq!(first, second, "replay diverged from first execution");
        assert_eq!(first_out, prep.output(), "replay output diverged");
    }

    #[test]
    fn every_driver_reports_through_the_same_trait() {
        let bf = GendpPipeline::bellman_ford();
        assert_eq!(Accelerator::name(&bf), "spm1d");
        let mut graph = Graph::new(3);
        graph.add_edge(0, 1, 5);
        graph.add_edge(1, 2, 2);
        let task = BellmanFordTask {
            graph: &graph,
            source: 0,
            rounds: 2,
        };
        assert!(bf.verify_task(&task).is_clean());
        let run = bf.run_task(&task).expect("simulation");
        assert_eq!(run.dist, vec![0, 5, 7]);
        let report = BellmanFordAccelerator::report(&run);
        assert_eq!(report.cycles, run.stats().cycles);
    }
}
