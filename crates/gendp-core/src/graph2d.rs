//! Control-program generation for graph-structured 2-D kernels (paper
//! Fig. 2c / §3.1): Partial Order Alignment.
//!
//! Graph nodes in topological order become rows; besides the previous
//! row's values, a cell may depend on *earlier* rows (the orange arrows of
//! Fig. 2c). Those long-range values are kept live in the systolic stream:
//! every row forwards the h-vectors of all rows that some later row still
//! needs (the live set), which is exactly the extra data movement the
//! paper blames for POA's memory-bound behaviour on GenDP (§7.2). Rows
//! with more than two predecessors run the two-predecessor compute program
//! repeatedly — the paper's "variable number of block iterations within
//! each cell" (§7.3). End-node scores park in the scratchpad until the
//! final drain.

use gendp_dpax::{Engine, PeArray, PeArrayConfig, RunStats, SimError, TierPolicy};

use crate::accel::PreparedTask;
use gendp_dpmap::{map_dfg, Mapping};
use gendp_isa::{AddrReg, ControlInst, ControlProgram, Loc, Mode, Space, Word};
use gendp_kernels::dfgs::poa_dfg;
use gendp_kernels::poa::Poa;
use gendp_kernels::scoring::{GapModel, Scoring};
use gendp_seq::DnaSeq;

const NEG: i32 = i32::MIN / 4;

/// A configured POA accelerator for one graph (programs are generated per
/// task; the paper likewise loads per-task dependency information, §7.2).
#[derive(Debug)]
pub struct PoaAccelerator {
    mapping: Mapping,
    scoring: Scoring,
    gap: i32,
    budget_scale: u64,
    /// Execution-tier selection for task runs.
    tiers: TierPolicy,
}

/// Functional result of aligning one sequence to the graph on DPAx.
#[derive(Debug, Clone, PartialEq)]
pub struct PoaRun {
    /// The global alignment score (best end-node score).
    pub score: i32,
    /// Simulator statistics.
    pub stats: RunStats,
}

/// Static per-task structure derived from the graph.
struct RowPlan {
    /// Node id of each row (topological order).
    rows: Vec<usize>,
    /// Predecessor rows (ranks) per row; empty = virtual border row.
    preds: Vec<Vec<usize>>,
    /// Live set after each row: rows whose h-vector must still flow.
    live_after: Vec<Vec<usize>>,
    /// Column-0 value of each row (host-computed border recursion).
    col0: Vec<i32>,
    /// Whether each row is an end node.
    is_end: Vec<bool>,
}

impl PoaAccelerator {
    /// Maps the POA objective function.
    ///
    /// # Panics
    ///
    /// Panics if the scoring's gap model is not linear.
    pub fn new(scoring: Scoring) -> Self {
        let gap = match scoring.gap {
            GapModel::Linear { extend } => extend,
            _ => panic!("POA uses the linear gap model"),
        };
        PoaAccelerator {
            mapping: map_dfg(&poa_dfg(&scoring)),
            scoring,
            gap,
            budget_scale: 1,
            tiers: TierPolicy::default(),
        }
    }

    /// Scales the internally derived cycle budget (retry escalation after
    /// a [`SimError::Timeout`]); the budget is only a cutoff, never a
    /// result change.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn budget_scale(mut self, scale: u64) -> Self {
        assert!(scale > 0, "budget scale must be positive");
        self.budget_scale = scale;
        self
    }

    /// Selects the execution-tier policy (certified decoded simulation
    /// with automatic fallback by default; all tiers are bit-identical).
    pub fn tiers(mut self, tiers: TierPolicy) -> Self {
        self.tiers = tiers;
        self
    }

    /// Selects the simulator execution engine.
    #[deprecated(
        since = "0.2.0",
        note = "use `tiers(TierPolicy::...)`; raw engines no longer select the execution path"
    )]
    #[allow(deprecated)] // shim body is the one sanctioned from_engine caller
    pub fn engine(self, engine: Engine) -> Self {
        self.tiers(TierPolicy::from_engine(engine))
    }

    /// The DPMap result for the objective function.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    fn ext(&self, name: &str) -> u16 {
        self.mapping.layout.ext_slot(name).expect("poa ext")
    }

    fn plan(&self, graph: &Poa) -> RowPlan {
        let rows = graph.topological_order();
        let rank_of = {
            let mut r = vec![0usize; graph.node_count()];
            for (rank, &v) in rows.iter().enumerate() {
                r[v] = rank;
            }
            r
        };
        let preds: Vec<Vec<usize>> = rows
            .iter()
            .map(|&v| {
                let mut p: Vec<usize> = graph.preds(v).iter().map(|&(u, _)| rank_of[u]).collect();
                p.sort_unstable();
                p
            })
            .collect();
        // last_consumer[u] = max rank that still reads row u.
        let mut last_consumer = vec![0usize; rows.len()];
        for (r, ps) in preds.iter().enumerate() {
            for &u in ps {
                last_consumer[u] = last_consumer[u].max(r);
            }
        }
        let live_after: Vec<Vec<usize>> = (0..rows.len())
            .map(|r| (0..=r).filter(|&u| last_consumer[u] > r).collect())
            .collect();
        // Border recursion H[r][0] = max over preds(H[p][0]) - gap, with
        // the virtual border H[-][0] = 0.
        let mut col0 = vec![0i32; rows.len()];
        for r in 0..rows.len() {
            let best = if preds[r].is_empty() {
                0
            } else {
                preds[r].iter().map(|&p| col0[p]).max().expect("preds")
            };
            col0[r] = best - self.gap;
        }
        let is_end = rows.iter().map(|&v| graph.succs(v).is_empty()).collect();
        RowPlan {
            rows,
            preds,
            live_after,
            col0,
            is_end,
        }
    }

    /// Generates PE `p`'s unrolled control program.
    #[allow(clippy::too_many_arguments)]
    fn pe_program(
        &self,
        p: usize,
        n_pes: usize,
        plan: &RowPlan,
        graph: &Poa,
        n: usize,
        scratch_base: u16,
    ) -> (ControlProgram, usize) {
        let m = plan.rows.len();
        let mut prog = ControlProgram::new();
        let vb = self.ext("vb");
        let y = self.ext("y");
        let p1l = self.ext("h_p1_left");
        let p1 = self.ext("h_p1");
        let p2l = self.ext("h_p2_left");
        let p2 = self.ext("h_p2");
        let hl = self.ext("h_left");
        let h_out = self.mapping.layout.output_slot("h").expect("poa h");
        let last_pe = p == n_pes - 1;

        // Landing slots per live stream element: assigned by position in
        // the (sorted) incoming live set; `cur` holds column j, `prev`
        // column j-1.
        let slot_cur = |idx: usize| scratch_base + 2 * idx as u16;
        let slot_prev = |idx: usize| scratch_base + 2 * idx as u16 + 1;

        let mut saves = 0usize; // end-node scores parked in the SPM
        let mut row = p;
        while row < m {
            let incoming: &[usize] = if row == 0 {
                &[]
            } else {
                &plan.live_after[row - 1]
            };
            let in_idx = |u: usize| -> usize {
                incoming
                    .iter()
                    .position(|&x| x == u)
                    .unwrap_or_else(|| panic!("row {row}: pred {u} not live in stream"))
            };
            let src_loc = if row == 0 {
                Loc::port(Space::In) // only the column characters
            } else if p == 0 {
                Loc::port(Space::Fifo)
            } else {
                Loc::port(Space::In)
            };
            let outgoing = &plan.live_after[row];
            let fwd_loc = if last_pe {
                Loc::port(Space::Fifo)
            } else {
                Loc::port(Space::Out)
            };
            let forwards = row + 1 < m;

            // Row prologue.
            prog.push(ControlInst::Li {
                dest: Loc::rf(vb),
                imm: graph.base(plan.rows[row]).code() as i32,
            });
            prog.push(ControlInst::Li {
                dest: Loc::rf(hl),
                imm: plan.col0[row],
            });
            for (k, &u) in incoming.iter().enumerate() {
                let _ = k;
                prog.push(ControlInst::Li {
                    dest: Loc::rf(slot_cur(in_idx(u))),
                    imm: plan.col0[u],
                });
            }
            let preds = &plan.preds[row];

            for c in 1..=n {
                // Column character.
                prog.push(ControlInst::mv(Loc::rf(y), src_loc));
                // Shift landings: prev <- cur, cur <- stream.
                for (k, _) in incoming.iter().enumerate() {
                    prog.push(ControlInst::mv(Loc::rf(slot_prev(k)), Loc::rf(slot_cur(k))));
                    prog.push(ControlInst::mv(Loc::rf(slot_cur(k)), src_loc));
                }
                // Predecessor pairs, two per compute invocation.
                let load_pred =
                    |prog: &mut ControlProgram, ext_l: u16, ext_u: u16, pr: Option<usize>| {
                        match pr {
                            None => {
                                // No such predecessor: candidates must lose.
                                prog.push(ControlInst::Li {
                                    dest: Loc::rf(ext_l),
                                    imm: NEG,
                                });
                                prog.push(ControlInst::Li {
                                    dest: Loc::rf(ext_u),
                                    imm: NEG,
                                });
                            }
                            Some(u) => {
                                let k = in_idx(u);
                                prog.push(ControlInst::mv(Loc::rf(ext_l), Loc::rf(slot_prev(k))));
                                prog.push(ControlInst::mv(Loc::rf(ext_u), Loc::rf(slot_cur(k))));
                            }
                        }
                    };
                if preds.is_empty() {
                    // Virtual border row: h(-, j) = -gap * j.
                    prog.push(ControlInst::Li {
                        dest: Loc::rf(p1l),
                        imm: -self.gap * (c as i32 - 1),
                    });
                    prog.push(ControlInst::Li {
                        dest: Loc::rf(p1),
                        imm: -self.gap * c as i32,
                    });
                    prog.push(ControlInst::Li {
                        dest: Loc::rf(p2l),
                        imm: NEG,
                    });
                    prog.push(ControlInst::Li {
                        dest: Loc::rf(p2),
                        imm: NEG,
                    });
                    prog.push(ControlInst::set_compute(0));
                } else {
                    for (inv, pair) in preds.chunks(2).enumerate() {
                        if inv > 0 {
                            // Fold the previous invocation's h into this one
                            // through the left candidate: cl = h_left - gap,
                            // so stage h_prev + gap.
                            prog.push(ControlInst::mv(Loc::areg(15), Loc::rf(h_out)));
                            prog.push(ControlInst::Addi {
                                rd: AddrReg(15),
                                rs1: AddrReg(15),
                                imm: self.gap,
                            });
                            prog.push(ControlInst::mv(Loc::rf(hl), Loc::areg(15)));
                        }
                        load_pred(&mut prog, p1l, p1, Some(pair[0]));
                        load_pred(&mut prog, p2l, p2, pair.get(1).copied());
                        prog.push(ControlInst::set_compute(0));
                    }
                    if preds.len() > 2 {
                        // Restore the true left value for the next cell's
                        // epilogue (done below via h_out anyway).
                    }
                }
                // Forward: char, then the outgoing live vectors in order.
                if forwards {
                    prog.push(ControlInst::mv(fwd_loc, Loc::rf(y)));
                    for &u in outgoing {
                        if u == row {
                            prog.push(ControlInst::mv(fwd_loc, Loc::rf(h_out)));
                        } else {
                            prog.push(ControlInst::mv(fwd_loc, Loc::rf(slot_cur(in_idx(u)))));
                        }
                    }
                }
                // Left-neighbor update.
                prog.push(ControlInst::mv(Loc::rf(hl), Loc::rf(h_out)));
            }
            // Park an end node's final-column score in the scratchpad.
            if plan.is_end[row] {
                prog.push(ControlInst::mv(Loc::spm(saves as u16), Loc::rf(h_out)));
                saves += 1;
            }
            row += n_pes;
        }

        (prog, saves)
    }

    /// Aligns `seq` against `graph` on a `n_pes`-PE array, returning the
    /// global alignment score — bit-identical to
    /// [`gendp_kernels::poa::Poa::align`].
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics if the graph or the sequence is empty.
    pub fn run(&self, graph: &Poa, seq: &DnaSeq, n_pes: usize) -> Result<PoaRun, SimError> {
        let mut prep = self.prepare(graph, seq, n_pes);
        let stats = prep.execute()?;
        let score = prep
            .output()
            .iter()
            .map(|w| w.as_i32())
            .max()
            .expect("at least one end node");
        Ok(PoaRun { score, stats })
    }

    /// Binds one alignment task to a loaded array for repeated
    /// [`PreparedTask::execute`] replays. [`run`](Self::run) is `prepare`
    /// + one execute + output parsing.
    ///
    /// # Panics
    ///
    /// Panics if the graph or the sequence is empty.
    pub fn prepare(&self, graph: &Poa, seq: &DnaSeq, n_pes: usize) -> PreparedTask {
        assert!(!seq.is_empty(), "empty sequence");
        let n = seq.len();
        let (array, m, max_live) = self.build_array(graph, n, n_pes);
        let inputs = seq
            .codes()
            .iter()
            .map(|&c| Word::from_i32(c as i32))
            .collect();
        let budget = ((m + n_pes as u64)
            * (n as u64 + 4)
            * (self.mapping.program.len() as u64 * 3 + 6 * max_live as u64 + 24)
            * 4
            + 10_000)
            .saturating_mul(self.budget_scale);
        PreparedTask::new(array, inputs, budget)
    }

    /// Statically verifies the programs generated to align a
    /// `seq_len`-base sequence against `graph`, without running them.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or `seq_len` is zero.
    pub fn verify(&self, graph: &Poa, seq_len: usize, n_pes: usize) -> gendp_verify::Report {
        assert!(seq_len > 0, "empty sequence");
        self.build_array(graph, seq_len, n_pes).0.verify_programs()
    }

    /// Builds the loaded array for one alignment task (shared by `run`
    /// and `verify`); returns it with the row count and the peak live-set
    /// size used for budgeting.
    fn build_array(&self, graph: &Poa, n: usize, n_pes: usize) -> (PeArray, u64, usize) {
        assert!(graph.node_count() > 0, "empty graph");
        let plan = self.plan(graph);
        let max_live = plan
            .live_after
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
            .max(1);
        let scratch_base = self.mapping.layout.slot_count();

        let mut cfg = PeArrayConfig::with_pes(n_pes)
            .mode(Mode::Int32)
            .luts(gendp_isa::Luts::with_scores(
                self.scoring.matches,
                -self.scoring.mismatch,
            ))
            .tiers(self.tiers);
        cfg.rf_slots = (scratch_base as usize + 2 * max_live + 2).max(cfg.rf_slots);
        cfg.fifo_capacity = ((max_live + 2) * (n + 2)).max(cfg.fifo_capacity);
        cfg.spm_words = cfg
            .spm_words
            .max(plan.is_end.iter().filter(|&&e| e).count() + 2);
        let mut array = PeArray::new(cfg);

        // Per-PE programs plus the SPM drain epilogue.
        let mut saves_per_pe = Vec::with_capacity(n_pes);
        let mut programs = Vec::with_capacity(n_pes);
        for p in 0..n_pes {
            let (prog, saves) = self.pe_program(p, n_pes, &plan, graph, n, scratch_base);
            programs.push(prog);
            saves_per_pe.push(saves);
        }
        for p in 0..n_pes {
            let upstream: usize = saves_per_pe[..p].iter().sum();
            let prog = &mut programs[p];
            for _ in 0..upstream {
                prog.push(ControlInst::mv(Loc::port(Space::Out), Loc::port(Space::In)));
            }
            for k in 0..saves_per_pe[p] {
                prog.push(ControlInst::mv(Loc::port(Space::Out), Loc::spm(k as u16)));
            }
            prog.push(ControlInst::Halt);
        }
        for (p, prog) in programs.into_iter().enumerate() {
            array.load_pe_control(p, prog);
        }
        array.load_compute_all(self.mapping.program.clone());
        (array, plan.rows.len() as u64, max_live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendp_seq::{Genome, MutationProfile};
    use rand::{rngs::SmallRng, SeedableRng};

    fn check(graph: &Poa, seq: &DnaSeq, n_pes: usize) {
        let acc = PoaAccelerator::new(Scoring::racon());
        let run = acc.run(graph, seq, n_pes).expect("simulation");
        let expect = graph.align(seq, &Scoring::racon());
        assert_eq!(run.score, expect.score);
        assert!(run.stats.cells() >= (graph.node_count() * seq.len()) as u64);
    }

    #[test]
    fn chain_graph_matches_reference() {
        let mut poa = Poa::new();
        let backbone: DnaSeq = "ACGTTGCAAC".parse().unwrap();
        poa.add_sequence(&backbone, &Scoring::racon());
        check(&poa, &backbone, 4);
        check(&poa, &"ACGTTGCAAC".parse().unwrap(), 2);
        check(&poa, &"ACGATGCAC".parse().unwrap(), 4);
    }

    #[test]
    fn branched_graph_matches_reference() {
        let mut rng = SmallRng::seed_from_u64(41);
        let g = Genome::random(60, &mut rng);
        let truth = g.window(0, 40);
        let mut poa = Poa::new();
        poa.add_sequence(&truth, &Scoring::racon());
        // Noisy reads create mismatch/insertion branches (multi-pred
        // nodes).
        for _ in 0..4 {
            let noisy = MutationProfile::nanopore().apply(&truth, &mut rng);
            poa.add_sequence(&noisy, &Scoring::racon());
        }
        let probe = MutationProfile::nanopore().apply(&truth, &mut rng);
        check(&poa, &probe, 4);
        check(&poa, &truth, 4);
    }

    #[test]
    fn heavily_bubbled_graph_matches_reference() {
        let mut rng = SmallRng::seed_from_u64(42);
        let g = Genome::random(40, &mut rng);
        let truth = g.window(0, 30);
        let mut poa = Poa::new();
        poa.add_sequence(&truth, &Scoring::racon());
        for _ in 0..8 {
            let noisy = MutationProfile::pacbio().apply(&truth, &mut rng);
            poa.add_sequence(&noisy, &Scoring::racon());
        }
        let probe = MutationProfile::pacbio().apply(&truth, &mut rng);
        check(&poa, &probe, 4);
    }

    #[test]
    fn works_on_various_array_sizes() {
        let mut rng = SmallRng::seed_from_u64(43);
        let truth = DnaSeq::random(25, &mut rng);
        let mut poa = Poa::new();
        poa.add_sequence(&truth, &Scoring::racon());
        poa.add_sequence(
            &MutationProfile::nanopore().apply(&truth, &mut rng),
            &Scoring::racon(),
        );
        let probe = MutationProfile::nanopore().apply(&truth, &mut rng);
        for n_pes in [1, 2, 3, 4, 8] {
            check(&poa, &probe, n_pes);
        }
    }
}
