//! Bellman-Ford on DPAx (paper §7.6.5): the distance vector lives in a
//! PE's scratchpad memory; edge relaxations stream through the compute
//! unit. Long-range dependencies (an edge's `d_u` living anywhere in the
//! vertex set) are exactly the scratchpad-served access pattern of §3.1;
//! graphs larger than the scratchpad would spill to DRAM (§7.6.1).

use gendp_dpax::{Engine, PeArray, PeArrayConfig, RunStats, SimError, TierPolicy};

use crate::accel::PreparedTask;
use gendp_dpmap::{map_dfg, Mapping};
use gendp_isa::{ControlInst, ControlProgram, Loc, Luts, Mode, Space};
use gendp_kernels::bellman_ford::Graph;
use gendp_kernels::dfgs::bellman_ford_dfg;

/// Distance value standing in for infinity on the 32-bit datapath.
pub const INF: i32 = 1 << 28;

/// A configured Bellman-Ford accelerator (one PE; tasks parallelize across
/// arrays).
#[derive(Debug)]
pub struct BellmanFordAccelerator {
    mapping: Mapping,
    budget_scale: u64,
    /// Execution-tier selection for task runs.
    tiers: TierPolicy,
}

/// Functional result of one shortest-path task on DPAx.
#[derive(Debug, Clone, PartialEq)]
pub struct BellmanFordRun {
    /// Distance per vertex ([`INF`] when unreachable).
    pub dist: Vec<i32>,
    /// Simulator statistics.
    pub stats: RunStats,
}

impl Default for BellmanFordAccelerator {
    fn default() -> Self {
        Self::new()
    }
}

impl BellmanFordAccelerator {
    /// Maps the relaxation objective function.
    pub fn new() -> Self {
        BellmanFordAccelerator {
            mapping: map_dfg(&bellman_ford_dfg()),
            budget_scale: 1,
            tiers: TierPolicy::default(),
        }
    }

    /// Scales the internally derived cycle budget (retry escalation after
    /// a [`SimError::Timeout`]); the budget is only a cutoff, never a
    /// result change.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is zero.
    pub fn budget_scale(mut self, scale: u64) -> Self {
        assert!(scale > 0, "budget scale must be positive");
        self.budget_scale = scale;
        self
    }

    /// Selects the execution-tier policy (certified decoded simulation
    /// with automatic fallback by default; all tiers are bit-identical).
    pub fn tiers(mut self, tiers: TierPolicy) -> Self {
        self.tiers = tiers;
        self
    }

    /// Selects the simulator execution engine.
    #[deprecated(
        since = "0.2.0",
        note = "use `tiers(TierPolicy::...)`; raw engines no longer select the execution path"
    )]
    #[allow(deprecated)] // shim body is the one sanctioned from_engine caller
    pub fn engine(self, engine: Engine) -> Self {
        self.tiers(TierPolicy::from_engine(engine))
    }

    /// The DPMap result for the relaxation.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    fn ext(&self, name: &str) -> u16 {
        self.mapping.layout.ext_slot(name).expect("bf ext")
    }

    /// Runs `rounds` relaxation sweeps over the edge list from `source`,
    /// then reads the distance vector back.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty, the source is out of range, or the
    /// vertex count exceeds the scratchpad.
    pub fn run(
        &self,
        graph: &Graph,
        source: usize,
        rounds: usize,
    ) -> Result<BellmanFordRun, SimError> {
        let mut prep = self.prepare(graph, source, rounds);
        let stats = prep.execute()?;
        let dist = prep.output().iter().map(|x| x.as_i32()).collect();
        Ok(BellmanFordRun { dist, stats })
    }

    /// Binds one shortest-path task to a loaded single-PE array for
    /// repeated [`PreparedTask::execute`] replays (the graph is baked into
    /// the relaxation program, so no input stream is staged).
    /// [`run`](Self::run) is `prepare` + one execute + output parsing.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::run`].
    pub fn prepare(&self, graph: &Graph, source: usize, rounds: usize) -> PreparedTask {
        let n = graph.vertex_count();
        let array = self.build_array(graph, source, rounds);
        let budget = ((rounds as u64 * graph.edge_count() as u64 + n as u64)
            * (self.mapping.program.len() as u64 + 8)
            + 10_000)
            .saturating_mul(self.budget_scale);
        PreparedTask::new(array, Vec::new(), budget)
    }

    /// Statically verifies the relaxation program generated for a task,
    /// without running it.
    ///
    /// # Panics
    ///
    /// Same contract as [`Self::run`].
    pub fn verify(&self, graph: &Graph, source: usize, rounds: usize) -> gendp_verify::Report {
        self.build_array(graph, source, rounds).verify_programs()
    }

    /// Builds the loaded single-PE array (shared by `run` and `verify`).
    fn build_array(&self, graph: &Graph, source: usize, rounds: usize) -> PeArray {
        let n = graph.vertex_count();
        assert!(n > 0, "empty graph");
        assert!(source < n, "source out of range");
        let mut cfg = PeArrayConfig::with_pes(1)
            .mode(Mode::Int32)
            .luts(Luts::default())
            .tiers(self.tiers);
        cfg.rf_slots = cfg.rf_slots.max(self.mapping.layout.slot_count() as usize);
        assert!(n <= cfg.spm_words, "graph exceeds the scratchpad");

        let (d_u, w, d_v) = (self.ext("d_u"), self.ext("w"), self.ext("d_v"));
        let d_out = self.mapping.layout.output_slot("d").expect("bf output d");

        let mut prog = ControlProgram::new();
        prog.push(ControlInst::Li {
            dest: Loc::rf(self.ext("u_idx")),
            imm: 0,
        });
        prog.push(ControlInst::Li {
            dest: Loc::rf(self.ext("p_v")),
            imm: 0,
        });
        // Initialize the distance vector in the scratchpad.
        for v in 0..n {
            prog.push(ControlInst::Li {
                dest: Loc::spm(v as u16),
                imm: if v == source { 0 } else { INF },
            });
        }
        // Relaxation sweeps.
        for _ in 0..rounds {
            for &(u, v, weight) in graph.edges() {
                prog.push(ControlInst::mv(Loc::rf(d_u), Loc::spm(u as u16)));
                prog.push(ControlInst::mv(Loc::rf(d_v), Loc::spm(v as u16)));
                prog.push(ControlInst::Li {
                    dest: Loc::rf(w),
                    imm: weight as i32,
                });
                prog.push(ControlInst::set_compute(0));
                prog.push(ControlInst::mv(Loc::spm(v as u16), Loc::rf(d_out)));
            }
        }
        // Read the distances back.
        for v in 0..n {
            prog.push(ControlInst::mv(Loc::port(Space::Out), Loc::spm(v as u16)));
        }
        prog.push(ControlInst::Halt);

        let mut array = PeArray::new(cfg);
        array.load_pe_control(0, prog);
        array.load_pe_compute(0, self.mapping.program.clone());
        array
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gendp_kernels::bellman_ford::{bellman_ford, random_roadmap};
    use rand::{rngs::SmallRng, SeedableRng};

    fn check(graph: &Graph, source: usize) {
        let acc = BellmanFordAccelerator::new();
        let rounds = graph.vertex_count().saturating_sub(1).max(1);
        let run = acc.run(graph, source, rounds).expect("simulation");
        let expect = bellman_ford(graph, source);
        let expect_i32: Vec<i32> = expect
            .dist
            .iter()
            .map(|d| d.map(|v| v as i32).unwrap_or(INF))
            .collect();
        assert_eq!(run.dist, expect_i32);
        assert_eq!(
            run.stats.cells(),
            (rounds * graph.edge_count()) as u64,
            "one relaxation per edge per round"
        );
    }

    #[test]
    fn diamond_graph() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 4);
        g.add_edge(1, 2, 2);
        g.add_edge(1, 3, 6);
        g.add_edge(2, 3, 3);
        check(&g, 0);
    }

    #[test]
    fn unreachable_vertices_stay_at_infinity() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 5);
        let acc = BellmanFordAccelerator::new();
        let run = acc.run(&g, 0, 2).unwrap();
        assert_eq!(run.dist, vec![0, 5, INF]);
    }

    #[test]
    fn random_roadmaps_match_reference() {
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..3 {
            let g = random_roadmap(40, 3, 8, &mut rng);
            check(&g, 0);
        }
    }

    #[test]
    fn negative_edges_without_cycle() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 2, -3);
        g.add_edge(0, 2, 4);
        check(&g, 0);
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bad_source_panics() {
        let g = Graph::new(2);
        let _ = BellmanFordAccelerator::new().run(&g, 5, 1);
    }
}
