//! # gendp-core
//!
//! The GenDP framework (paper Fig. 3): given a DP kernel's *inter-cell
//! dependency pattern* and *intra-cell objective function*, configure the
//! DPAx accelerator, generate control and compute programs, run the
//! cycle-level simulation and return functional results plus performance
//! statistics.
//!
//! * The objective function is a [`gendp_dfg::Dfg`]; DPMap
//!   ([`gendp_dpmap::map_dfg`]) turns it into the per-cell VLIW compute
//!   program and register-file layout.
//! * The dependency pattern picks a control-program generator:
//!   [`wavefront2d`] for 2-D tables (BSW, PairHMM, DTW, LCS),
//!   [`linear1d`] for the 1-D chaining table, [`graph2d`] for
//!   graph-structured POA, and [`spm1d`] for scratchpad-resident
//!   Bellman-Ford relaxation.
//! * Control programs are generated fully unrolled per task (the paper
//!   generates control instructions manually, §4.4); per-cell instruction
//!   counts — the quantities the evaluation reports — are identical to a
//!   loop-rolled encoding.
//!
//! The end-to-end correctness contract, enforced by this crate's tests and
//! the workspace integration tests: **every kernel's DPAx simulation
//! reproduces the reference software kernel's scores exactly** (bit-exact
//! integer results; the log-domain PairHMM matches its fixed-point
//! reference bit-exactly, which in turn tracks the floating-point forward
//! algorithm).

pub mod accel;
pub mod functional;
pub mod graph2d;
pub mod linear1d;
pub mod parallel;
pub mod pipeline;
pub mod spm1d;
pub mod wavefront2d;

pub use accel::{
    AccelConfig, Accelerator, BandSpec, BellmanFordTask, ChainTask, PoaTask, PreparedTask,
    TaskOutput, WavefrontTask,
};
pub use functional::FunctionalPlan;
pub use parallel::run_batch;
pub use pipeline::{
    bsw_score, bsw_semiglobal_score, bsw_simd16_scores, bsw_simd_scores, dtw_banded_distance,
    pack_halves, pack_lanes, pairhmm_float_lik, pairhmm_loglik, schedule_tile, AcceleratorRun,
    GendpPipeline, TileReport, NEG_SIMD,
};
pub use wavefront2d::{Border, RowSource, Wavefront2d, Wavefront2dOutput};
